#include "lpc/miner.hpp"

namespace aroma::lpc {

TraceIssueMiner::TraceIssueMiner(sim::Tracer& tracer, IssueLog& log)
    : tracer_(tracer), log_(log) {
  tracer_.set_hook(
      [this](const sim::TraceRecord& rec) { on_record(rec); });
}

TraceIssueMiner::~TraceIssueMiner() { tracer_.set_hook({}); }

double TraceIssueMiner::severity_for(sim::TraceLevel level) {
  switch (level) {
    case sim::TraceLevel::kError: return 0.8;
    case sim::TraceLevel::kWarn: return 0.45;
    default: return 0.2;
  }
}

void TraceIssueMiner::on_record(const sim::TraceRecord& record) {
  if (record.level < sim::TraceLevel::kWarn) return;
  // The same message repeating is one issue, not many: count occurrences.
  if (++seen_[record.message] > 1) {
    ++deduplicated_;
    return;
  }
  Issue issue;
  issue.description = record.message;
  issue.entity = record.category;
  issue.severity = severity_for(record.level);
  classifier_.assign(issue);
  log_.add(std::move(issue));
  ++mined_;
}

std::map<Layer, std::size_t> TraceIssueMiner::layer_counts() const {
  std::map<Layer, std::size_t> out;
  for (const Issue& i : log_.issues()) ++out[i.layer];
  return out;
}

// ---------------------------------------------------------------------------
// SpanIssueMiner

SpanIssueMiner::SpanIssueMiner(obs::SpanTracer& spans, IssueLog& log)
    : spans_(spans), log_(log) {
  spans_.set_hook(
      [this](const obs::SpanRecord& rec) { on_record(rec); });
}

SpanIssueMiner::~SpanIssueMiner() { spans_.set_hook({}); }

void SpanIssueMiner::check_drops() {
  if (drop_warned_ || spans_.dropped() == 0) return;
  drop_warned_ = true;
  Issue issue;
  issue.description = "span buffer dropped " +
                      std::to_string(spans_.dropped()) +
                      " records; the trace is capped and must not be "
                      "trusted as complete";
  issue.entity = "obs.spans";
  issue.layer = Layer::kResource;  // a diagnostics-capacity problem
  issue.classified = false;
  issue.severity = 0.45;
  log_.add(std::move(issue));
  ++mined_;
}

void SpanIssueMiner::on_record(const obs::SpanRecord& record) {
  check_drops();
  if (record.level < sim::TraceLevel::kWarn) return;
  // The same event name recurring is one issue, not many.
  if (++seen_[record.name] > 1) {
    ++deduplicated_;
    return;
  }
  Issue issue;
  issue.description = record.name;
  bool classify = false;
  for (const auto& [key, value] : record.args) {
    issue.description += " " + key + "=" + value;
    classify = classify || key == "classify";
  }
  issue.entity = record.name;
  if (classify) {
    classifier_.assign(issue);  // layer from the text, not the emitter
  } else {
    issue.layer = record.layer;  // declared by the emitter, not guessed
    issue.classified = false;
  }
  issue.severity = record.level == sim::TraceLevel::kError ? 0.8 : 0.45;
  log_.add(std::move(issue));
  ++mined_;
}

std::map<Layer, std::size_t> SpanIssueMiner::layer_counts() const {
  std::map<Layer, std::size_t> out;
  for (const Issue& i : log_.issues()) ++out[i.layer];
  return out;
}

}  // namespace aroma::lpc
