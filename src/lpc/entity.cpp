#include "lpc/entity.hpp"

namespace aroma::lpc {

SystemModel smart_projector_case_study() {
  SystemModel m;
  m.name = "smart-projector";
  m.conditions = env::AmbientConditions{21.0, 400.0, 0.4};
  m.ambient_noise_db = 42.0;  // lab with conversation nearby

  // --- Devices -------------------------------------------------------------
  DeviceEntity laptop;
  laptop.name = "presenter-laptop";
  laptop.physical = phys::profiles::laptop();
  laptop.resources.jvm = true;
  laptop.resources.jini = true;
  laptop.resources.vnc = true;
  laptop.resources.assumed_user = user::smart_projector_prototype_requirements();
  ApplicationFacet clients;
  clients.name = "projection+control clients";
  clients.workflow_steps = 6;  // vnc server, discover, 2x acquire, start, power
  clients.avg_step_difficulty = 0.45;
  clients.gives_state_feedback = false;   // paper: icons *should* change
  clients.sessions_leased = true;
  clients.needs_jvm = true;
  clients.needs_jini = true;
  clients.needs_vnc = true;
  laptop.application = clients;
  laptop.purpose = user::research_prototype_purpose();
  m.devices.push_back(laptop);

  DeviceEntity adapter;
  adapter.name = "aroma-adapter";
  adapter.physical = phys::profiles::aroma_adapter();
  adapter.resources.jvm = true;
  adapter.resources.jini = true;
  adapter.resources.vnc = true;
  ApplicationFacet services;
  services.name = "smart-projector services";
  services.workflow_steps = 0;  // no direct user interaction
  services.sessions_leased = true;
  services.needs_jvm = true;
  services.needs_jini = true;
  services.needs_vnc = true;
  adapter.application = services;
  adapter.purpose = user::research_prototype_purpose();
  m.devices.push_back(adapter);

  DeviceEntity projector;
  projector.name = "digital-projector";
  projector.physical = phys::profiles::digital_projector();
  projector.resources.tcp_ip = false;
  projector.purpose = user::commercial_product_purpose();  // off-the-shelf
  m.devices.push_back(projector);

  DeviceEntity lookup;
  lookup.name = "jini-lookup-service";
  lookup.physical = phys::profiles::desktop_pc_with_radio();
  lookup.resources.jvm = true;
  lookup.resources.jini = true;
  lookup.purpose = user::research_prototype_purpose();
  m.devices.push_back(lookup);

  // --- Users ---------------------------------------------------------------
  UserEntity presenter;
  presenter.name = "presenter";
  presenter.faculties = user::personas::office_worker();
  presenter.goals = user::presenter_goals();
  presenter.mental_model_divergence = 0.45;  // naive prior vs two services
  m.users.push_back(presenter);

  UserEntity researcher;
  researcher.name = "aroma-researcher";
  researcher.faculties = user::personas::computer_scientist();
  researcher.goals = user::researcher_goals();
  researcher.mental_model_divergence = 0.05;
  m.users.push_back(researcher);

  // --- Bindings ------------------------------------------------------------
  m.interactions.push_back({0, 0, 0.5});   // presenter at the laptop
  m.interactions.push_back({1, 0, 0.5});   // researcher can drive it too
  m.interactions.push_back({0, 2, 4.0});   // presenter reads the projection
  m.dependencies.push_back({0, 3, 12.0, "clients discover services via Jini"});
  m.dependencies.push_back({1, 3, 10.0, "services register with the registrar"});
  m.dependencies.push_back({0, 1, 8.0, "laptop streams its display (VNC)"});
  m.dependencies.push_back({1, 2, 0.5, "adapter drives the projector panel"});
  return m;
}

}  // namespace aroma::lpc
