#include "lpc/issue.hpp"

#include <algorithm>
#include <cctype>

namespace aroma::lpc {

namespace {
std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}
}  // namespace

IssueClassifier::IssueClassifier() {
  const auto add_all = [this](Layer layer,
                              std::initializer_list<const char*> words,
                              double weight = 1.0) {
    for (const char* w : words) add_term(layer, w, weight);
  };

  add_all(Layer::kEnvironment,
          {"interference", "2.4 ghz", "radio band", "background noise",
           "ambient", "acoustic", "out of range", "ranging", "coverage",
           "temperature", "lighting", "crowded", "social", "cubicle",
           "subway", "outdoor", "weather", "obstacle", "environment"});
  add_all(Layer::kPhysical,
          {"hardware", "battery", "antenna", "bandwidth", "bitrate",
           "transceiver", "wireless adapter", "pcmcia", "button", "reach",
           "proximity", "ergonomic", "weight", "biometric", "body",
           "physically", "screen size", "lamp", "cable", "voice signal",
           "speech recognition accuracy", "acuity", "motor"});
  add_all(Layer::kResource,
          {"operating system", "api", "protocol stack", "memory", "storage",
           "jvm", "java", "jini", "vnc", "lookup service", "tcp",
           "self-configur", "speaks", "language", "english", "skill",
           "faculty", "training", "education", "window system", "toolkit",
           "driver", "configuration", "install", "administrator",
           "troubleshoot", "diagnos", "single-threaded", "responsive",
           // Fleet vocabulary: a dead worker process or a stalled control
           // plane is an infrastructure (resource-layer) failure.
           "worker process", "heartbeat", "checkpoint", "migration",
           "control plane",
           // Service-tier vocabulary: an overloaded registrar shedding
           // lookups is degraded infrastructure, not a user-level issue.
           "registrar", "admission", "shed", "overload", "federation",
           "delegation", "query cache", "session gateway"});
  add_all(Layer::kAbstract,
          {"mental model", "confus", "session", "hijack", "state",
           "workflow", "steps", "on-line help", "documentation", "intuitive",
           "surprise", "icon", "feedback", "both clients", "forget",
           "wrong order", "relinquish", "conceptual burden", "expectation",
           "metaphor", "interaction model", "consisten"});
  add_all(Layer::kIntentional,
          {"goal", "purpose", "requirement", "intention", "needs of",
           "adoption", "market", "harmony", "use case", "value",
           "motivation", "commercial product", "research prototype",
           "superior product", "why it was created", "casual user"});
}

void IssueClassifier::add_term(Layer layer, std::string term, double weight) {
  terms_.push_back(Term{lowercase(term), layer, weight});
}

Classification IssueClassifier::classify(std::string_view description) const {
  const std::string text = lowercase(description);
  Classification c{};
  c.scores = {0, 0, 0, 0, 0};
  for (const Term& t : terms_) {
    if (text.find(t.text) != std::string::npos) {
      c.scores[static_cast<std::size_t>(t.layer)] += t.weight;
    }
  }
  double best = -1.0;
  double second = 0.0;
  Layer best_layer = Layer::kAbstract;  // default bucket for untagged issues
  for (Layer l : kAllLayers) {
    const double s = c.scores[static_cast<std::size_t>(l)];
    if (s > best) {
      second = best < 0.0 ? 0.0 : best;
      best = s;
      best_layer = s > 0.0 ? l : best_layer;
    } else if (s > second) {
      second = s;
    }
  }
  c.layer = best_layer;
  c.confidence = best > 0.0 ? (best - second) / best : 0.0;
  return c;
}

void IssueClassifier::assign(Issue& issue) const {
  const Classification c = classify(issue.description);
  issue.layer = c.layer;
  issue.classified = true;
}

std::uint64_t IssueLog::add(Issue issue) {
  issue.id = next_id_++;
  issues_.push_back(std::move(issue));
  return issues_.back().id;
}

std::vector<const Issue*> IssueLog::at_layer(Layer layer) const {
  std::vector<const Issue*> out;
  for (const auto& i : issues_) {
    if (i.layer == layer) out.push_back(&i);
  }
  return out;
}

std::size_t IssueLog::count_at(Layer layer) const {
  return at_layer(layer).size();
}

double IssueLog::total_severity_at(Layer layer) const {
  double total = 0.0;
  for (const auto* i : at_layer(layer)) total += i->severity;
  return total;
}

std::function<void(const std::string&, double)> shed_issue_filer(
    IssueLog& log, std::string entity) {
  return [&log, entity = std::move(entity)](const std::string& description,
                                            double severity) {
    Issue issue;
    issue.description = description;
    issue.layer = Layer::kResource;
    issue.severity = severity;
    issue.entity = entity;
    log.add(issue);
  };
}

}  // namespace aroma::lpc
