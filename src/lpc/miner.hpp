// Trace-to-issue mining: the model watching a live system.
//
// Components emit traces when something layer-relevant happens (retry
// limits, hijack attempts, depleted batteries, failed discovery). The
// miner subscribes to a world's tracer, classifies each warning/error into
// its LPC layer, and accumulates an IssueLog — so a running simulation
// produces exactly the classified issue inventory the paper's model was
// designed to organize.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "lpc/issue.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace aroma::lpc {

class TraceIssueMiner {
 public:
  /// Installs itself as the tracer's hook; the tracer must outlive the
  /// miner (or the miner must be detached first). Records below kWarn are
  /// ignored.
  TraceIssueMiner(sim::Tracer& tracer, IssueLog& log);
  ~TraceIssueMiner();
  TraceIssueMiner(const TraceIssueMiner&) = delete;
  TraceIssueMiner& operator=(const TraceIssueMiner&) = delete;

  std::uint64_t mined() const { return mined_; }
  std::uint64_t deduplicated() const { return deduplicated_; }

  /// Per-layer counts of mined issues.
  std::map<Layer, std::size_t> layer_counts() const;

 private:
  void on_record(const sim::TraceRecord& record);
  static double severity_for(sim::TraceLevel level);

  sim::Tracer& tracer_;
  IssueLog& log_;
  IssueClassifier classifier_;
  std::map<std::string, std::uint64_t> seen_;  // message -> count
  std::uint64_t mined_ = 0;
  std::uint64_t deduplicated_ = 0;
};

/// Structured-event mining: consumes obs::SpanTracer records (warnings and
/// errors) instead of parsing free-text traces. The layer comes straight
/// off the record — the emitting component declared it — so no vocabulary
/// guessing is involved, and issues survive the span buffer's capacity cap
/// because the hook sees instants past it.
///
/// Two exceptions to "the emitter declared the layer": a record carrying a
/// "classify" arg (e.g. a watchdog fire, whose layer depends on what the
/// anomaly turned out to be) is routed through the IssueClassifier, which
/// assigns the layer from the record's text. And when the span buffer has
/// dropped records, the miner raises one warning issue itself — a capped
/// trace must never be silently trusted as complete.
class SpanIssueMiner {
 public:
  /// Installs itself as the span tracer's hook; the tracer must outlive
  /// the miner. Records below kWarn are ignored.
  SpanIssueMiner(obs::SpanTracer& spans, IssueLog& log);
  ~SpanIssueMiner();
  SpanIssueMiner(const SpanIssueMiner&) = delete;
  SpanIssueMiner& operator=(const SpanIssueMiner&) = delete;

  std::uint64_t mined() const { return mined_; }
  std::uint64_t deduplicated() const { return deduplicated_; }

  /// Raises the spans-dropped warning issue if the tracer has dropped
  /// records and it was not raised yet. Runs on every hooked record too;
  /// call this once more at end of run in case drops happened after the
  /// last warning-level record.
  void check_drops();

  /// Per-layer counts of mined issues.
  std::map<Layer, std::size_t> layer_counts() const;

 private:
  void on_record(const obs::SpanRecord& record);

  obs::SpanTracer& spans_;
  IssueLog& log_;
  IssueClassifier classifier_;
  std::map<std::string, std::uint64_t> seen_;  // event name -> count
  std::uint64_t mined_ = 0;
  std::uint64_t deduplicated_ = 0;
  bool drop_warned_ = false;
};

}  // namespace aroma::lpc
