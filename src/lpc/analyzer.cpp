#include "lpc/analyzer.hpp"

#include <algorithm>
#include <cstdio>

namespace aroma::lpc {

std::vector<const Finding*> AnalysisReport::at_layer(Layer layer) const {
  std::vector<const Finding*> out;
  for (const auto& f : findings) {
    if (f.layer == layer) out.push_back(&f);
  }
  return out;
}

std::size_t AnalysisReport::count_at(Layer layer) const {
  return at_layer(layer).size();
}

double AnalysisReport::max_severity_at(Layer layer) const {
  double m = 0.0;
  for (const auto* f : at_layer(layer)) m = std::max(m, f->severity);
  return m;
}

double AnalysisReport::max_severity() const {
  double m = 0.0;
  for (const auto& f : findings) m = std::max(m, f.severity);
  return m;
}

std::string AnalysisReport::render() const {
  std::string out;
  out += "LPC analysis of '" + system_name + "'\n";
  out += std::string(60, '=') + "\n";
  // Paper's case-study order: intentional first, environment last.
  for (auto it = kAllLayers.rbegin(); it != kAllLayers.rend(); ++it) {
    const Layer layer = *it;
    out += "\n[" + std::string(to_string(layer)) + " layer]  ";
    out += std::string(device_facet(layer)) + "  <-- " +
           std::string(constraint_phrase(layer)) + " --> " +
           std::string(user_facet(layer)) + "\n";
    const auto here = at_layer(layer);
    if (here.empty()) {
      out += "  (no findings)\n";
      continue;
    }
    for (const auto* f : here) {
      char head[32];
      std::snprintf(head, sizeof head, "  [sev %.2f] ", f->severity);
      out += head;
      out += f->description + "\n";
      if (!f->recommendation.empty()) {
        out += "      -> " + f->recommendation + "\n";
      }
    }
  }
  return out;
}

AnalysisReport Analyzer::analyze(const SystemModel& model) const {
  AnalysisReport r;
  r.system_name = model.name;
  r.findings = check_all(model);
  return r;
}

void Analyzer::absorb_issues(AnalysisReport& report,
                             const IssueLog& log) const {
  for (const Issue& issue : log.issues()) {
    Issue copy = issue;
    if (!copy.classified) classifier_.assign(copy);
    Finding f;
    f.layer = copy.layer;
    f.description = copy.description;
    f.severity = copy.severity;
    f.subject = copy.entity;
    report.findings.push_back(std::move(f));
  }
}

std::string render_layer_table() {
  std::string out;
  out += "Layered Pervasive Computing model (Figure 1)\n";
  out +=
      "layer        | device side                | constraint             "
      " | user side\n";
  out += std::string(100, '-') + "\n";
  for (auto it = kAllLayers.rbegin(); it != kAllLayers.rend(); ++it) {
    char line[256];
    std::snprintf(line, sizeof line, "%-12s | %-26s | %-24s | %s\n",
                  std::string(to_string(*it)).c_str(),
                  std::string(device_facet(*it)).c_str(),
                  std::string(constraint_phrase(*it)).c_str(),
                  std::string(user_facet(*it)).c_str());
    out += line;
  }
  return out;
}

}  // namespace aroma::lpc
