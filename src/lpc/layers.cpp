#include "lpc/layers.hpp"

namespace aroma::lpc {

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment: return "environment";
    case Layer::kPhysical: return "physical";
    case Layer::kResource: return "resource";
    case Layer::kAbstract: return "abstract";
    case Layer::kIntentional: return "intentional";
  }
  return "?";
}

std::string_view device_facet(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment: return "Environment";
    case Layer::kPhysical: return "Physical Devices";
    case Layer::kResource: return "Mem | Sto | Exe | UI | Net";
    case Layer::kAbstract: return "Application";
    case Layer::kIntentional: return "Design Purpose";
  }
  return "?";
}

std::string_view user_facet(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment: return "Environment";
    case Layer::kPhysical: return "Physical User";
    case Layer::kResource: return "User Faculties";
    case Layer::kAbstract: return "Mental Models";
    case Layer::kIntentional: return "User Goals";
  }
  return "?";
}

std::string_view constraint_phrase(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment:
      return "entities must be compatible with the environment";
    case Layer::kPhysical:
      return "must be compatible with";
    case Layer::kResource:
      return "must not be frustrated by";
    case Layer::kAbstract:
      return "must be consistent with";
    case Layer::kIntentional:
      return "must be in harmony with";
  }
  return "?";
}

sim::Time user_side_change_period(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment: return sim::Time::sec(3600.0 * 24 * 365);
    case Layer::kPhysical: return sim::Time::sec(3600.0 * 24 * 365 * 5);
    case Layer::kResource: return sim::Time::sec(3600.0 * 24 * 30);  // training
    case Layer::kAbstract: return sim::Time::sec(3600.0);            // per use
    case Layer::kIntentional: return sim::Time::sec(60.0);           // by the minute
  }
  return sim::Time::zero();
}

sim::Time device_side_change_period(Layer layer) {
  switch (layer) {
    case Layer::kEnvironment: return sim::Time::sec(3600.0 * 24 * 365);
    case Layer::kPhysical: return sim::Time::sec(3600.0 * 24 * 365 * 3);
    case Layer::kResource: return sim::Time::sec(3600.0 * 24 * 180);  // OS/ROM
    case Layer::kAbstract: return sim::Time::sec(3600.0 * 24 * 30);   // releases
    case Layer::kIntentional: return sim::Time::sec(3600.0 * 24 * 365 * 2);
  }
  return sim::Time::zero();
}

bool parse_layer(std::string_view name, Layer& out) {
  for (Layer l : kAllLayers) {
    if (name == to_string(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

}  // namespace aroma::lpc
