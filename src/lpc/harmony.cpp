#include "lpc/harmony.hpp"

#include <algorithm>

#include "sim/random.hpp"
#include "user/faculties.hpp"

namespace aroma::lpc {

std::vector<HarmonyAssessment> assess_harmony(
    const SystemModel& m, const user::AdoptionModel& adoption) {
  std::vector<HarmonyAssessment> out;
  for (const auto& ia : m.interactions) {
    const UserEntity& u = m.users[ia.user_index];
    const DeviceEntity& d = m.devices[ia.device_index];
    HarmonyAssessment h;
    h.user = u.name;
    h.device = d.name;
    h.harmony = user::harmony(u.goals, d.purpose);
    h.burden = d.application ? conceptual_burden(*d.application) : 0.0;
    h.faculty_fit =
        user::faculty_fit(u.faculties, d.resources.assumed_user);
    h.adoption_probability =
        adoption.probability(h.harmony, h.burden, h.faculty_fit);
    out.push_back(std::move(h));
  }
  return out;
}

double expected_adoption(const std::vector<HarmonyAssessment>& a) {
  double total = 0.0;
  for (const auto& h : a) total += h.adoption_probability;
  return total;
}

std::size_t simulate_adoption(const SystemModel& m,
                              const user::AdoptionModel& adoption,
                              std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::size_t adopters = 0;
  if (m.interactions.empty()) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Draw a base interaction, then perturb the user's traits: real
    // populations are spread around the personas.
    const auto& ia = m.interactions[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m.interactions.size()) - 1))];
    const UserEntity& u = m.users[ia.user_index];
    const DeviceEntity& d = m.devices[ia.device_index];
    user::Faculties f = u.faculties;
    f.gui_skill = std::clamp(f.gui_skill + rng.normal(0.0, 0.15), 0.0, 1.0);
    f.patience = std::clamp(f.patience + rng.normal(0.0, 0.15), 0.05, 1.0);
    f.tech_troubleshooting =
        std::clamp(f.tech_troubleshooting + rng.normal(0.0, 0.1), 0.0, 1.0);
    const double h = user::harmony(u.goals, d.purpose);
    const double burden =
        d.application ? conceptual_burden(*d.application) : 0.0;
    const double fit = user::faculty_fit(f, d.resources.assumed_user);
    if (rng.bernoulli(adoption.probability(h, burden, fit))) ++adopters;
  }
  return adopters;
}

}  // namespace aroma::lpc
