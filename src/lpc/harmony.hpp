// System-level harmony and adoption scoring (the intentional layer, made
// quantitative for FIG5).
#pragma once

#include <string>
#include <vector>

#include "lpc/constraints.hpp"
#include "lpc/entity.hpp"
#include "user/goals.hpp"

namespace aroma::lpc {

/// Per-(user, device) intentional-layer assessment.
struct HarmonyAssessment {
  std::string user;
  std::string device;
  double harmony = 0.0;        // goal/purpose overlap
  double burden = 0.0;         // abstract-layer conceptual burden
  double faculty_fit = 0.0;    // resource-layer fit
  double adoption_probability = 0.0;
};

/// Assesses every interaction in the model with the given adoption model.
std::vector<HarmonyAssessment> assess_harmony(
    const SystemModel& m, const user::AdoptionModel& adoption);

/// Expected adopters among the model's interactions (sum of probabilities).
double expected_adoption(const std::vector<HarmonyAssessment>& a);

/// Simulates a population of `n` users with trait noise around each
/// interaction's user, counting adopters — the Monte-Carlo version used by
/// the FIG5 bench. Deterministic in `seed`.
std::size_t simulate_adoption(const SystemModel& m,
                              const user::AdoptionModel& adoption,
                              std::size_t n, std::uint64_t seed);

}  // namespace aroma::lpc
