// Model entities: the facet-per-layer description of each participant.
//
// Figure 1 gives every entity a column of five facets. A device entity has
// (environment needs, hardware, logical resources, application, design
// purpose); a user entity has (environment tolerance, physiology,
// faculties, mental model, goals). The analyzer pairs facets across
// entities and checks the layer constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "env/environment.hpp"
#include "phys/physical_user.hpp"
#include "phys/profile.hpp"
#include "user/faculties.hpp"
#include "user/goals.hpp"

namespace aroma::lpc {

/// Resource-layer facet of a device: what software substrate is present
/// and what it implicitly assumes of users.
struct LogicalResources {
  bool jvm = false;
  bool jini = false;
  bool vnc = false;
  bool tcp_ip = true;
  bool self_configuring = false;
  double usable_memory_fraction = 0.7;
  user::FacultyRequirements assumed_user{};
  /// Languages the UI can present (message catalogs on the device). A user
  /// whose language is listed is served natively, which removes the
  /// "assumes English" resource-layer finding for them.
  std::vector<std::string> ui_languages{"en"};
};

/// Abstract-layer facet of a device: the application running on it.
struct ApplicationFacet {
  std::string name;
  int workflow_steps = 1;               // how many things a user must do
  double avg_step_difficulty = 0.3;     // conceptual difficulty, 0..1
  bool gives_state_feedback = false;    // e.g. availability icons
  bool sessions_leased = false;         // forgotten sessions self-recover
  /// Software substrate demanded from the resource layer.
  bool needs_jvm = false;
  bool needs_jini = false;
  bool needs_vnc = false;
};

/// A device entity (one column of Figure 1).
struct DeviceEntity {
  std::string name;
  phys::DeviceProfile physical;
  LogicalResources resources;
  std::optional<ApplicationFacet> application;
  user::DesignPurpose purpose;
};

/// A user entity (the other column).
struct UserEntity {
  std::string name;
  phys::Physiology physiology;
  user::Faculties faculties;
  std::vector<user::Goal> goals;
  /// Estimated mental-model divergence for the applications in scope
  /// (0 = perfect understanding), typically measured by simulation.
  double mental_model_divergence = 0.3;
};

/// An interaction binding: who uses what, at what physical distance.
struct Interaction {
  std::size_t user_index;
  std::size_t device_index;
  double distance_m = 0.5;
};

/// Device-device dependency (e.g. adapter needs the lookup service).
struct Dependency {
  std::size_t from_device;
  std::size_t to_device;
  double distance_m = 10.0;
  std::string why;
};

/// The complete system under analysis.
struct SystemModel {
  std::string name;
  env::AmbientConditions conditions{};
  double ambient_noise_db = 35.0;
  std::vector<DeviceEntity> devices;
  std::vector<UserEntity> users;
  std::vector<Interaction> interactions;
  std::vector<Dependency> dependencies;
};

/// Builds the paper's Smart Projector case study as a SystemModel: the
/// presenter, the laptop, the smart projector (projector + adapter), and
/// the Jini lookup service.
SystemModel smart_projector_case_study();

}  // namespace aroma::lpc
