// Per-layer constraint checks: the executable semantics of Figures 2-5.
//
// Each checker walks the SystemModel's entities and bindings and emits
// findings at its layer. The analyzer aggregates them into the kind of
// layer-by-layer report the paper writes by hand for the Smart Projector.
#pragma once

#include <string>
#include <vector>

#include "lpc/entity.hpp"
#include "lpc/layers.hpp"

namespace aroma::lpc {

struct Finding {
  Layer layer;
  std::string description;
  double severity = 0.5;          // 0..1
  std::string subject;            // entity or entity-pair involved
  std::string recommendation;     // optional
};

/// Environment layer: entities vs. ambient conditions; voice UIs vs. noise
/// and social context; shared-band congestion risk.
std::vector<Finding> check_environment(const SystemModel& m);

/// Physical layer: user physiology vs. device hardware at the interaction
/// distance; wireless link budget for device-device dependencies;
/// bandwidth adequacy for display streaming.
std::vector<Finding> check_physical(const SystemModel& m);

/// Resource layer: application software demands vs. device logical
/// resources; device assumed faculties vs. actual user faculties.
std::vector<Finding> check_resource(const SystemModel& m);

/// Abstract layer: mental-model divergence and conceptual burden vs. what
/// each interacting user can bear; feedback and session-recovery hygiene.
std::vector<Finding> check_abstract(const SystemModel& m);

/// Intentional layer: goal/purpose harmony per interacting (user, device).
std::vector<Finding> check_intentional(const SystemModel& m);

/// All layers, bottom-up.
std::vector<Finding> check_all(const SystemModel& m);

/// Normalized conceptual burden of an application in [0,1] from its step
/// count and difficulty — the quantity FIG4 sweeps.
double conceptual_burden(const ApplicationFacet& app);

}  // namespace aroma::lpc
