// Issue records and the layer classifier.
//
// The model's stated purpose: "properly classify issues raised during
// discussion and provide needed context." The classifier scores an issue's
// free text against a per-layer vocabulary (seeded from the paper's own
// layer discussions) and assigns the best-scoring layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "lpc/layers.hpp"

namespace aroma::lpc {

struct Issue {
  std::uint64_t id = 0;
  std::string description;
  Layer layer = Layer::kEnvironment;
  double severity = 0.5;          // 0 cosmetic .. 1 blocks the purpose
  std::string entity;             // which entity raised it (optional)
  bool classified = false;        // layer assigned by classifier vs author
};

struct Classification {
  Layer layer;
  double confidence;              // margin-based, 0..1
  std::array<double, 5> scores;   // per-layer raw scores
};

/// Keyword-vocabulary classifier. Deterministic and dependency-free — the
/// goal is a faithful, inspectable realization of "place issues in their
/// appropriate context", not NLP.
class IssueClassifier {
 public:
  /// Constructs with the built-in vocabulary distilled from the paper.
  IssueClassifier();

  /// Adds a domain-specific term (e.g. from a project glossary).
  void add_term(Layer layer, std::string term, double weight = 1.0);

  Classification classify(std::string_view description) const;

  /// Classifies and fills in the issue's layer field.
  void assign(Issue& issue) const;

  std::size_t vocabulary_size() const { return terms_.size(); }

 private:
  struct Term {
    std::string text;   // lowercase
    Layer layer;
    double weight;
  };
  std::vector<Term> terms_;
};

/// An issue log that accumulates findings and reports per-layer counts —
/// the bookkeeping a design discussion would keep against the model.
class IssueLog {
 public:
  std::uint64_t add(Issue issue);
  const std::vector<Issue>& issues() const { return issues_; }
  std::vector<const Issue*> at_layer(Layer layer) const;
  std::size_t count_at(Layer layer) const;
  double total_severity_at(Layer layer) const;

 private:
  std::vector<Issue> issues_;
  std::uint64_t next_id_ = 1;
};

/// Adapter from the service tier's shed-report hook (a plain
/// description+severity callback, so aroma_disco stays free of lpc
/// dependencies) to an IssueLog entry at the resource layer:
///
///   registrar.set_issue_hook(lpc::shed_issue_filer(log, "jini-registrar-3"));
std::function<void(const std::string&, double)> shed_issue_filer(
    IssueLog& log, std::string entity);

}  // namespace aroma::lpc
