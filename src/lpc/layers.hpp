// The Layered Pervasive Computing (LPC) model: five layers, each pairing a
// device-side concept with a user-side concept under a binding constraint.
//
//   Intentional   Design Purpose        ~ must be in harmony with ~ User Goals
//   Abstract      Application           ~ must be consistent with ~ Mental Models
//   Resource      Mem|Sto|Exe|UI|Net    ~ must not frustrate ~      User Faculties
//   Physical      Physical Devices      ~ must be compatible with ~ Physical User
//   Environment   (shared substrate both sides are embedded in)
//
// "While for devices, the higher layers represent increasing degrees of
// abstraction, for users, the higher layers represent increasing temporal
// specificity" — lower layers change more slowly.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace aroma::lpc {

enum class Layer : std::uint8_t {
  kEnvironment = 0,
  kPhysical = 1,
  kResource = 2,
  kAbstract = 3,
  kIntentional = 4,
};

inline constexpr std::array<Layer, 5> kAllLayers = {
    Layer::kEnvironment, Layer::kPhysical, Layer::kResource, Layer::kAbstract,
    Layer::kIntentional};

std::string_view to_string(Layer layer);

/// The device-side concept at each layer (Figure 1, left column).
std::string_view device_facet(Layer layer);

/// The user-side concept at each layer (Figure 1, right column).
std::string_view user_facet(Layer layer);

/// The binding constraint between the two sides (Figures 2-5).
std::string_view constraint_phrase(Layer layer);

/// The resource layer's five device resource boxes (Figure 3).
inline constexpr std::array<std::string_view, 5> kResourceBoxes = {
    "Mem", "Sto", "Exe", "UI", "Net"};

/// Typical timescale on which the *user-side* concept at a layer changes:
/// goals change by the minute; physiology takes years. Encodes the paper's
/// temporal-specificity gradient so analyses can reason about which
/// mismatches are fixable in-session and which are design-time facts.
sim::Time user_side_change_period(Layer layer);

/// Device-side analogue: applications update faster than hardware.
sim::Time device_side_change_period(Layer layer);

/// Parses a layer from its lowercase name ("environment", ...); returns
/// false on unknown names.
bool parse_layer(std::string_view name, Layer& out);

}  // namespace aroma::lpc
