#include "lpc/constraints.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "env/propagation.hpp"

namespace aroma::lpc {

namespace {

const DeviceEntity& dev(const SystemModel& m, std::size_t i) {
  return m.devices[i];
}
const UserEntity& usr(const SystemModel& m, std::size_t i) {
  return m.users[i];
}

}  // namespace

double conceptual_burden(const ApplicationFacet& app) {
  // Saturating: each difficult step adds burden; feedback and leased
  // sessions relieve part of it (fewer surprises, fewer stuck states).
  double raw = static_cast<double>(app.workflow_steps) *
               (0.35 + app.avg_step_difficulty);
  if (app.gives_state_feedback) raw *= 0.75;
  if (app.sessions_leased) raw *= 0.9;
  return 1.0 - std::exp(-raw / 3.0);
}

std::vector<Finding> check_environment(const SystemModel& m) {
  std::vector<Finding> out;
  // Count radios sharing the 2.4 GHz band: congestion risk scales with it.
  std::size_t radios = 0;
  for (const auto& d : m.devices) radios += d.physical.net.has_radio ? 1 : 0;
  if (radios >= 3) {
    Finding f;
    f.layer = Layer::kEnvironment;
    f.subject = m.name;
    f.severity = std::min(1.0, 0.15 * static_cast<double>(radios));
    f.description =
        std::to_string(radios) +
        " devices share the 2.4 GHz band; co-channel interference will "
        "degrade throughput as density grows";
    f.recommendation =
        "spread devices across channels 1/6/11; study high-density behaviour";
    out.push_back(f);
  }
  // Voice interfaces vs. ambient noise and social setting.
  for (const auto& d : m.devices) {
    if (!d.physical.ui.has_microphone) continue;
    if (m.ambient_noise_db > 55.0) {
      out.push_back({Layer::kEnvironment,
                     "ambient noise of " + std::to_string(m.ambient_noise_db) +
                         " dB will defeat voice input on " + d.name,
                     0.7, d.name,
                     "require push-to-talk or raise the mic gain model"});
    }
    if (m.conditions.occupant_density > 0.8) {
      out.push_back({Layer::kEnvironment,
                     "voice control of " + d.name +
                         " is socially inappropriate in a crowded space",
                     0.5, d.name, "offer a silent interaction mode"});
    }
  }
  // Thermal envelope.
  for (const auto& d : m.devices) {
    if (m.conditions.temperature_c < d.physical.min_operating_c ||
        m.conditions.temperature_c > d.physical.max_operating_c) {
      out.push_back({Layer::kEnvironment,
                     d.name + " is outside its operating temperature range",
                     1.0, d.name, ""});
    }
  }
  return out;
}

std::vector<Finding> check_physical(const SystemModel& m) {
  std::vector<Finding> out;
  // User-device physical compatibility at the declared distance.
  for (const auto& ia : m.interactions) {
    const UserEntity& u = usr(m, ia.user_index);
    const DeviceEntity& d = dev(m, ia.device_index);
    phys::PhysicalUser pu(0, u.name, nullptr, u.physiology);
    for (const auto& issue : phys::check_physical_compatibility(
             pu, d.physical, ia.distance_m, m.conditions)) {
      out.push_back({Layer::kPhysical, issue.description + " (" + u.name +
                         " vs " + d.name + ")",
                     issue.severity, u.name + "/" + d.name, ""});
    }
  }
  // Wireless link budget for device-device dependencies.
  env::PathLossModel pl;
  for (const auto& dep : m.dependencies) {
    const DeviceEntity& a = dev(m, dep.from_device);
    const DeviceEntity& b = dev(m, dep.to_device);
    if (!a.physical.net.has_radio || !b.physical.net.has_radio) continue;
    const double range = pl.nominal_range_m(a.physical.net.tx_power_dbm,
                                            b.physical.net.sensitivity_dbm);
    if (dep.distance_m > range) {
      out.push_back({Layer::kPhysical,
                     a.name + " -> " + b.name + " link (" + dep.why +
                         ") exceeds nominal radio range",
                     0.9, a.name + "/" + b.name,
                     "reduce distance or raise transmit power"});
    }
  }
  // Display streaming vs. link bitrate: full-screen raw updates per second.
  for (const auto& dep : m.dependencies) {
    const DeviceEntity& a = dev(m, dep.from_device);
    const DeviceEntity& b = dev(m, dep.to_device);
    if (!a.application || !a.application->needs_vnc) continue;
    if (!a.physical.net.has_radio) continue;
    const auto& ui = a.physical.ui;
    if (ui.display_width_px == 0) continue;
    const double raw_bits_per_frame =
        static_cast<double>(ui.display_width_px) * ui.display_height_px * 32;
    const double fps =
        std::min(a.physical.net.bitrate_bps, b.physical.net.bitrate_bps) /
        raw_bits_per_frame;
    if (fps < 5.0) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "wireless bitrate sustains only ~%.2f raw full-screen "
                    "frames/s from %s; rapid animation is impossible",
                    fps, a.name.c_str());
      out.push_back({Layer::kPhysical, buf, 0.6, a.name,
                     "use damage-based incremental updates and compression"});
    }
  }
  // Tethering: interaction requires staying within reach of a heavy device.
  for (const auto& ia : m.interactions) {
    const DeviceEntity& d = dev(m, ia.device_index);
    if (d.application && d.application->workflow_steps > 0 &&
        d.physical.mass_kg > 1.5 && !d.physical.ui.has_microphone) {
      out.push_back({Layer::kPhysical,
                     "controlling via " + d.name +
                         " requires physical proximity to it; a pervasive "
                         "system should place minimal physical constraints",
                     0.4, d.name, "add voice or handheld control"});
      break;
    }
  }
  return out;
}

std::vector<Finding> check_resource(const SystemModel& m) {
  std::vector<Finding> out;
  // Application software demands vs. the device's logical resources.
  for (const auto& d : m.devices) {
    if (!d.application) continue;
    const ApplicationFacet& app = *d.application;
    auto need = [&](bool needs, bool has, const char* what) {
      if (needs && !has) {
        out.push_back({Layer::kResource,
                       d.name + " application requires " + what +
                           " which the device does not provide",
                       0.9, d.name, ""});
      }
    };
    need(app.needs_jvm, d.resources.jvm, "a Java runtime");
    need(app.needs_jini, d.resources.jini, "Jini libraries");
    need(app.needs_vnc, d.resources.vnc, "a VNC stack");
  }
  // Developer-assumed faculties vs. the actual interacting users.
  for (const auto& ia : m.interactions) {
    const UserEntity& u = usr(m, ia.user_index);
    const DeviceEntity& d = dev(m, ia.device_index);
    if (!d.application || d.application->workflow_steps == 0) continue;
    // i18n: when the device carries the user's language, the language
    // assumption is satisfied natively.
    user::FacultyRequirements req = d.resources.assumed_user;
    for (const auto& lang : d.resources.ui_languages) {
      if (lang == u.faculties.language) req.language = lang;
    }
    for (const auto& mm : user::check_faculty_fit(u.faculties, req)) {
      out.push_back({Layer::kResource,
                     mm.what + " (" + u.name + " using " + d.name + ")",
                     mm.severity, u.name + "/" + d.name,
                     "lower the assumption or provide automated diagnostics"});
    }
  }
  // Self-configuration: users are not system administrators.
  for (const auto& d : m.devices) {
    if (d.application && d.application->workflow_steps > 0 &&
        !d.resources.self_configuring) {
      out.push_back({Layer::kResource,
                     d.name + " networking is not self-configuring; users "
                              "are not system administrators",
                     0.5, d.name, "make discovery and joining automatic"});
    }
  }
  return out;
}

std::vector<Finding> check_abstract(const SystemModel& m) {
  std::vector<Finding> out;
  for (const auto& ia : m.interactions) {
    const UserEntity& u = usr(m, ia.user_index);
    const DeviceEntity& d = dev(m, ia.device_index);
    if (!d.application || d.application->workflow_steps == 0) continue;
    const double burden = conceptual_burden(*d.application);
    if (burden > u.faculties.patience) {
      char buf[200];
      std::snprintf(buf, sizeof buf,
                    "conceptual burden of %s (%.2f) exceeds what %s will "
                    "bear (%.2f); the system will not be used",
                    d.application->name.c_str(), burden, u.name.c_str(),
                    u.faculties.patience);
      out.push_back({Layer::kAbstract, buf, burden, u.name + "/" + d.name,
                     "collapse the multi-step procedure into one action"});
    }
    if (u.mental_model_divergence > 0.3) {
      out.push_back({Layer::kAbstract,
                     u.name + "'s mental model diverges from " +
                         d.application->name +
                         " behaviour; expect surprises and debugging-like use",
                     u.mental_model_divergence, u.name + "/" + d.name,
                     "align behaviour with common metaphors"});
    }
    if (!d.application->gives_state_feedback) {
      out.push_back({Layer::kAbstract,
                     d.application->name +
                         " gives no availability feedback; desktop icons "
                         "should change their appearance accordingly",
                     0.4, d.name, "integrate discovery state into the UI"});
    }
    if (!d.application->sessions_leased) {
      out.push_back({Layer::kAbstract,
                     d.application->name +
                         " cannot recover from users who forget to "
                         "relinquish control without an administrator",
                     0.6, d.name, "lease all sessions"});
    }
  }
  return out;
}

std::vector<Finding> check_intentional(const SystemModel& m) {
  std::vector<Finding> out;
  for (const auto& ia : m.interactions) {
    const UserEntity& u = usr(m, ia.user_index);
    const DeviceEntity& d = dev(m, ia.device_index);
    const double h = user::harmony(u.goals, d.purpose);
    if (h < 0.5) {
      char buf[200];
      std::snprintf(buf, sizeof buf,
                    "design purpose '%s' is in weak harmony (%.2f) with "
                    "%s's goals",
                    d.purpose.name.c_str(), h, u.name.c_str());
      out.push_back({Layer::kIntentional, buf, 1.0 - h,
                     u.name + "/" + d.name,
                     "re-derive requirements from this user's goals"});
    }
  }
  return out;
}

std::vector<Finding> check_all(const SystemModel& m) {
  std::vector<Finding> out;
  for (auto* fn : {check_environment, check_physical, check_resource,
                   check_abstract, check_intentional}) {
    auto part = fn(m);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace aroma::lpc
