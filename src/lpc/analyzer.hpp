// The system analyzer: runs all layer checks over a SystemModel and
// renders the paper-style layer-by-layer report.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "lpc/constraints.hpp"
#include "lpc/entity.hpp"
#include "lpc/issue.hpp"

namespace aroma::lpc {

struct AnalysisReport {
  std::string system_name;
  std::vector<Finding> findings;

  std::vector<const Finding*> at_layer(Layer layer) const;
  std::size_t count_at(Layer layer) const;
  double max_severity_at(Layer layer) const;
  /// Worst finding severity anywhere; 0 when the model is clean.
  double max_severity() const;

  /// Renders a textual report in the paper's structure: one section per
  /// layer, top (intentional) to bottom (environment), as the case-study
  /// analysis is ordered.
  std::string render() const;
};

class Analyzer {
 public:
  /// Runs every layer constraint check.
  AnalysisReport analyze(const SystemModel& model) const;

  /// Classifies free-text issues into layers and appends them as findings
  /// (severity taken from the issue).
  void absorb_issues(AnalysisReport& report, const IssueLog& log) const;

  const IssueClassifier& classifier() const { return classifier_; }

 private:
  IssueClassifier classifier_;
};

/// Renders Figure 1 (the layer/facet table) as text — the model itself,
/// regenerated from code rather than drawn.
std::string render_layer_table();

}  // namespace aroma::lpc
