// Deterministic anomaly watchdogs.
//
// A WatchdogSet rides the kernel's event tap (fed by obs::FlightRecorder):
// every executed event costs it a couple of integer compares, and all
// thresholds are evaluated against simulated state — event timestamps, the
// pending-event count, telemetry counters — so whether (and exactly when) a
// watchdog fires is a pure function of the seed. Firing never schedules a
// kernel event; a fire emits a classified warning instant through the span
// tracer (mined into an lpc issue by SpanIssueMiner's layer classifier),
// stamps a record into the flight recorder, and invokes the dump hook so
// the owner can capture a black box of the moments leading up to the
// anomaly.
//
// Catalog:
//   kSimStall       same-timestamp event run exceeds stall_run_limit
//                   (a runaway zero-delay chain; simulated time has stalled)
//   kQueueDepth     pending-event queue crosses queue_depth_limit
//   kSpanDropSurge  span tracer dropped >= span_drop_surge records within
//                   one window (the trace is no longer trustworthy)
//   kLeaseChurn     discovery lease grant/expiry/cancel churn within one
//                   window reaches lease_churn_limit
//   kRetryStorm     MAC retransmissions within one window reach
//                   retry_storm_limit (e.g. an RF-jammed medium)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace aroma::obs {

class FlightRecorder;

enum class Watchdog : std::uint8_t {
  kSimStall = 0,
  kQueueDepth,
  kSpanDropSurge,
  kLeaseChurn,
  kRetryStorm,
};
inline constexpr std::size_t kWatchdogCount =
    static_cast<std::size_t>(Watchdog::kRetryStorm) + 1;

std::string_view to_string(Watchdog w);

struct WatchdogOptions {
  std::uint64_t stall_run_limit = 10000;
  std::size_t queue_depth_limit = 1 << 16;
  std::uint64_t span_drop_surge = 1;
  std::uint64_t lease_churn_limit = 16;
  std::uint64_t retry_storm_limit = 64;
  /// Cadence of the windowed checks (queue depth, deltas). Evaluated
  /// passively against event timestamps — never scheduled.
  sim::Time window = sim::Time::ms(250);
  /// A watchdog goes silent after this many fires (keeps a pathological
  /// run from flooding the issue log and the dump hook).
  std::uint64_t max_fires_each = 8;
};

struct WatchdogFire {
  Watchdog which = Watchdog::kSimStall;
  sim::Time at;
  std::uint64_t value = 0;  // observed
  std::uint64_t limit = 0;  // configured threshold
};

class WatchdogSet {
 public:
  explicit WatchdogSet(sim::World& world, WatchdogOptions options = {});
  WatchdogSet(const WatchdogSet&) = delete;
  WatchdogSet& operator=(const WatchdogSet&) = delete;

  /// Flight recorder that receives a record per fire (optional).
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Called after every fire — the owner's chance to dump the flight
  /// recorder. Must not schedule kernel events.
  void set_dump_hook(std::function<void(const WatchdogFire&)> hook) {
    hook_ = std::move(hook);
  }

  /// Per-event evaluation, called from the flight recorder's kernel tap.
  /// Steady-state cost: two integer compares.
  void on_event(sim::Time when, sim::EventCategory category) {
    (void)category;
    const std::int64_t t = when.count();
    if (t == last_when_ns_) {
      if (++run_len_ == options_.stall_run_limit) stall_fire(when, run_len_);
    } else {
      last_when_ns_ = t;
      run_len_ = 1;
    }
    if (t >= next_window_ns_) window_checks(when);
  }

  const WatchdogOptions& options() const { return options_; }
  const std::vector<WatchdogFire>& fires() const { return fires_; }
  std::uint64_t fired(Watchdog w) const {
    return fired_[static_cast<std::size_t>(w)];
  }
  std::uint64_t total_fired() const { return fires_.size(); }

 private:
  // The flight recorder mirrors the stall-run counter and window deadline
  // into its own hot state so the per-event tap stays on one cache line; it
  // calls back in here only when a threshold actually trips.
  friend class FlightRecorder;

  void stall_fire(sim::Time when, std::uint64_t run_len);
  void window_checks(sim::Time when);
  void fire(Watchdog which, std::string_view detail, sim::Time at,
            std::uint64_t value, std::uint64_t limit);
  /// Registry handles are deque-stable, so each watched counter is looked
  /// up by name only until it first exists; afterwards every window reads
  /// the cached pointer.
  std::uint64_t counter_value(const void** slot, std::string_view name) const;

  sim::World& world_;
  WatchdogOptions options_;
  FlightRecorder* recorder_ = nullptr;
  std::function<void(const WatchdogFire&)> hook_;

  std::int64_t last_when_ns_ = -1;
  std::uint64_t run_len_ = 0;
  std::int64_t next_window_ns_ = 0;

  std::uint64_t last_dropped_ = 0;
  std::uint64_t last_churn_ = 0;
  std::uint64_t last_retries_ = 0;
  bool queue_armed_ = true;

  // Cached Counter pointers (see counter_value).
  const void* c_grants_ = nullptr;
  const void* c_expirations_ = nullptr;
  const void* c_cancellations_ = nullptr;
  const void* c_retries_ = nullptr;

  std::array<std::uint64_t, kWatchdogCount> fired_{};
  std::vector<WatchdogFire> fires_;
};

}  // namespace aroma::obs
