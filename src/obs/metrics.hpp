// Metrics registry: named counters, gauges, and histograms with LPC-layer
// labels.
//
// Components resolve metric handles once (construction time) and bump them
// on the hot path with a single pointer check; when no registry is attached
// to the world the handle is null and the cost is that check alone. All
// values are driven purely by simulated behavior — never wall clock — so a
// snapshot is a deterministic function of the seed and can be regressed
// byte-for-byte (BENCH_metrics.json).
//
// Naming convention: `layer.component.metric` (e.g. env.radio.transmissions,
// net.stack.delivered, disco.lease.expirations). The label carries the
// paper's LPC layer so snapshots group cross-layer behavior the way the
// model does.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lpc/layers.hpp"
#include "obs/hdr.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::obs {

/// Layer label helper that needs no lpc library linkage (obs sits below
/// lpc in the build graph; the enum itself is header-only).
std::string_view layer_label(lpc::Layer layer);

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  /// Overwrites the count (checkpoint restore only — counters are
  /// monotonic under normal operation).
  void set(std::uint64_t v) { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// One registered metric's identity (shared across kinds).
struct MetricInfo {
  std::string name;
  lpc::Layer layer = lpc::Layer::kEnvironment;
};

/// Registry of named metrics. Get-or-create by name; handles are stable for
/// the registry's lifetime (deque storage), so components may cache raw
/// pointers. The registry must outlive every component holding a handle —
/// attach telemetry to a World before constructing components on it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, lpc::Layer layer);
  Gauge& gauge(std::string_view name, lpc::Layer layer);
  /// Fixed-range histogram (sim::Histogram semantics: clamped edge bins).
  sim::Histogram& histogram(std::string_view name, lpc::Layer layer,
                            double lo, double hi, std::size_t bins);
  /// Log-bucketed latency histogram (obs::HdrHistogram semantics: ~3%
  /// relative error at any scale, deterministic percentiles). All HDR
  /// metrics share one shape, so merge never throws.
  HdrHistogram& hdr(std::string_view name, lpc::Layer layer);

  /// Convenience for pull-style publication of existing stats structs.
  void set_gauge(std::string_view name, lpc::Layer layer, double value) {
    gauge(name, layer).set(value);
  }
  void set_counter(std::string_view name, lpc::Layer layer,
                   std::uint64_t value);

  /// Merges `other` into this registry, walking `other` in its registration
  /// order: counters add, gauges last-write-wins (the incoming value
  /// replaces ours), histograms merge bucket-exact (shapes must match —
  /// std::invalid_argument otherwise). Metrics unknown here are created in
  /// the order encountered, so folding N identically-shaped shard
  /// registries in shard order yields one deterministic fleet registry
  /// (merge is associative: (a+b)+c == a+(b+c) entry-for-entry).
  void merge(const MetricsRegistry& other);

  /// Lookup without creation; nullptr when the name was never registered.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const sim::Histogram* find_histogram(std::string_view name) const;
  const HdrHistogram* find_hdr(std::string_view name) const;

  std::size_t size() const { return order_.size(); }

  /// Visits every metric in registration order (snapshot/export order).
  struct Visitor {
    virtual ~Visitor() = default;
    virtual void on_counter(const MetricInfo&, const Counter&) = 0;
    virtual void on_gauge(const MetricInfo&, const Gauge&) = 0;
    virtual void on_histogram(const MetricInfo&, const sim::Histogram&) = 0;
    /// Default no-op so visitors written before HDR metrics keep compiling.
    virtual void on_hdr(const MetricInfo&, const HdrHistogram&) {}
  };
  void visit(Visitor& v) const;

  /// Ordered JSON snapshot: {"name": {"layer": ..., "kind": ..., value}}.
  std::string to_json(int indent = 2) const;

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Serializes every metric (name, layer, kind, value) in registration
  // order. Restore writes values back through get-or-create, so metrics the
  // warmed-up registry has not registered yet are created in snapshot order
  // and component-cached handles stay valid — counters survive a restore
  // with their checkpointed counts.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kHdr };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the kind's deque
  };

  struct CounterEntry {
    MetricInfo info;
    Counter metric;
  };
  struct GaugeEntry {
    MetricInfo info;
    Gauge metric;
  };
  struct HistogramEntry {
    MetricInfo info;
    sim::Histogram metric;
    HistogramEntry(MetricInfo i, double lo, double hi, std::size_t bins)
        : info(std::move(i)), metric(lo, hi, bins) {}
  };

  struct HdrEntry {
    MetricInfo info;
    HdrHistogram metric;
  };

  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<HistogramEntry> histograms_;
  std::deque<HdrEntry> hdrs_;
  std::unordered_map<std::string, Entry> by_name_;
  std::vector<Entry> order_;  // registration order for stable snapshots
};

/// Null-safe handle resolution against a world's attached registry. Returns
/// nullptr when telemetry is off, so callsites reduce to one pointer check.
inline Counter* counter(sim::World& world, std::string_view name,
                        lpc::Layer layer) {
  MetricsRegistry* m = world.metrics();
  return m ? &m->counter(name, layer) : nullptr;
}
inline Gauge* gauge(sim::World& world, std::string_view name,
                    lpc::Layer layer) {
  MetricsRegistry* m = world.metrics();
  return m ? &m->gauge(name, layer) : nullptr;
}
inline sim::Histogram* histogram(sim::World& world, std::string_view name,
                                 lpc::Layer layer, double lo, double hi,
                                 std::size_t bins) {
  MetricsRegistry* m = world.metrics();
  return m ? &m->histogram(name, layer, lo, hi, bins) : nullptr;
}
inline HdrHistogram* hdr(sim::World& world, std::string_view name,
                         lpc::Layer layer) {
  MetricsRegistry* m = world.metrics();
  return m ? &m->hdr(name, layer) : nullptr;
}

}  // namespace aroma::obs
