// Flight recorder: a fixed-capacity POD ring buffer of recent activity,
// dumpable as a versioned binary black box.
//
// The recorder is the observability plane's kernel attachment point: it
// implements sim::Simulator::EventTap, so every executed event writes one
// 32-byte record into the ring (a store and an increment — near-zero
// steady-state cost) and then forwards to the attached watchdogs and
// timeseries sampler. Span edges arrive via SpanTracer::set_flight_recorder
// and metric deltas via the sampler, so the ring interleaves the last N
// kernel events with what the components were doing at the time.
//
// Everything in the ring is driven by simulated behavior, so the ring
// contents — and any dump — are a deterministic function of the seed, and
// attaching the recorder never changes the executed-event stream (the tap
// is observation-only; see simulator.hpp).
//
// A dump is a snap container (same magic/CRC framing as checkpoints) with
// flight-specific sections, bundling the latest full checkpoint blob the
// owner handed to note_checkpoint(). That makes a dump self-contained for
// post-mortem time travel: restore the embedded checkpoint into a fresh
// warmed-up snap::Room, attach a snap::ReplayHarness, run forward, and the
// faulting event (identified by its (when, id, seq) ring record) is
// reached bit-exactly.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "obs/watchdog.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "snap/format.hpp"

namespace aroma::obs {

/// Dump section tags (snap container four-character codes).
inline constexpr std::uint32_t kTagFlightHeader = snap::tag4("FLTH");
inline constexpr std::uint32_t kTagFlightNames = snap::tag4("FLTN");
inline constexpr std::uint32_t kTagFlightRecords = snap::tag4("FLTR");
inline constexpr std::uint32_t kTagFlightCheckpoint = snap::tag4("FLTC");

inline constexpr std::uint32_t kFlightDumpVersion = 1;

enum class FlightKind : std::uint16_t {
  kKernelEvent = 0,  // code = EventCategory, a = event id, b = seq
  kSpanOpen,         // code = interned name, a = span id, b = parent
  kSpanClose,        //   "
  kSpanInstant,      //   "
  kMetricDelta,      // code = interned name, a = value, b = previous value
  kWatchdog,         // code = interned name, a = observed, b = limit
  kCheckpoint,       // code = 0, a = checkpoint id
  kMarker,           // code = interned name
};

std::string_view to_string(FlightKind kind);

// One record layout for the whole plane: the kernel's inline trace ring
// writes kind-0 (kernel event) records directly (see Simulator::TraceHot);
// the recorder adds span/metric/watchdog/checkpoint/marker kinds on top.
using FlightRecord = sim::Simulator::TraceRecord;
static_assert(std::is_trivially_copyable_v<FlightRecord> &&
                  sizeof(FlightRecord) == 32,
              "flight records are fixed 32-byte POD");

class FlightRecorder final : public sim::Simulator::EventTap,
                             public sim::Simulator::TraceSlowPath {
 public:
  /// `capacity` is rounded up to a power of two so the hot-path ring index
  /// is a mask, not a division.
  explicit FlightRecorder(std::size_t capacity = 1 << 12,
                          std::uint32_t shard = 0);

  /// Attaches to the kernel's inline trace ring: the simulator writes the
  /// per-event record and maintains the stall/wake mirrors itself, with no
  /// virtual hop; this recorder is called back (TraceSlowPath) only when a
  /// stall run or wake deadline actually trips. This is the fast path the
  /// fleet uses; the virtual EventTap below stays equivalent for manual
  /// feeding.
  void attach(sim::Simulator& sim) { sim.set_event_trace(&hot_); }
  void detach(sim::Simulator& sim) {
    if (sim.event_trace() == &hot_) sim.set_event_trace(nullptr);
  }

  // sim::Simulator::EventTap — the virtual-tap variant of the same entry
  // point, sharing the TraceHot state so both paths are bit-identical.
  void on_event(sim::Time when, std::uint64_t id, std::uint64_t seq,
                sim::EventCategory category) override {
    const std::int64_t t = when.count();
    FlightRecord& r = ring_[static_cast<std::size_t>(hot_.total) & hot_.mask];
    r.t_ns = t;
    r.kind = static_cast<std::uint16_t>(FlightKind::kKernelEvent);
    r.code = static_cast<std::uint16_t>(category);
    r.shard = hot_.shard;
    r.a = id;
    r.b = seq;
    ++hot_.total;
    if (t == hot_.last_t_ns) {
      if (++hot_.run_len == hot_.stall_run_limit) {
        on_trace_stall(when, hot_.run_len);
      }
    } else {
      hot_.last_t_ns = t;
      hot_.run_len = 1;
    }
    if (t >= hot_.next_wake_ns) wake(when);
  }

  // sim::Simulator::TraceSlowPath — rare-threshold callbacks from the
  // kernel's inline ring writer.
  void on_trace_stall(sim::Time when, std::uint64_t run_len) override {
    watchdogs_->stall_fire(when, run_len);
  }
  void on_trace_wake(sim::Time when) override { wake(when); }

  void set_watchdogs(WatchdogSet* w) {
    watchdogs_ = w;
    hot_.stall_run_limit =
        w ? w->options().stall_run_limit : ~std::uint64_t{0};
    refresh_wake();
  }
  void set_sampler(TimeseriesSampler* s) {
    sampler_ = s;
    refresh_wake();
  }

  /// Name interning: record codes index this table (stable for the
  /// recorder's lifetime, serialized into dumps). Callers pass the same
  /// few short names over and over — but not always through the same
  /// pointer (SpanRecord names are std::strings), so the cache is
  /// content-keyed: a tiny hash of (size, first, last) picks a slot and a
  /// memcmp confirms it. A miss falls back to the map and refreshes the
  /// slot with a pointer into the map's stable key storage.
  std::uint16_t intern(std::string_view name) {
    const InternSlot& slot = intern_cache_[intern_slot(name)];
    if (slot.size == name.size() && slot.data != nullptr &&
        std::memcmp(slot.data, name.data(), name.size()) == 0) {
      return slot.code;
    }
    return intern_slow(name);
  }
  const std::vector<std::string>& names() const { return names_; }

  // Non-kernel sources. Span edges are the other per-event-scale feed, so
  // the record path is inline and writes every field (no zero-fill).
  void record_span(const SpanRecord& rec, FlightKind kind) {
    FlightRecord& r = ring_[static_cast<std::size_t>(hot_.total) & hot_.mask];
    ++hot_.total;
    r.t_ns = (kind == FlightKind::kSpanClose ? rec.end : rec.start).count();
    r.kind = static_cast<std::uint16_t>(kind);
    r.code = intern(rec.name);
    r.shard = hot_.shard;
    r.a = rec.id;
    r.b = rec.parent;
  }
  void record_metric(sim::Time now, std::uint16_t code, std::uint64_t value,
                     std::uint64_t previous);
  void record_watchdog(sim::Time now, std::uint16_t code, std::uint64_t value,
                       std::uint64_t limit);
  void record_marker(sim::Time now, std::string_view name);

  /// Span-edge source for dumps. The tracer already buffers every span it
  /// admits, so rather than paying a per-edge live feed on the hot path,
  /// an owner can point the recorder at the tracer and dump() will
  /// reconstruct the open/close/instant edges overlapping the ring's time
  /// window and merge them chronologically into the record section — the
  /// black box reads the same, the steady-state cost is zero. The live
  /// feed (SpanTracer::set_flight_recorder) remains for owners that want
  /// edges physically resident in the ring between dumps.
  void set_span_source(const SpanTracer* spans) { span_source_ = spans; }

  /// Remembers the latest full checkpoint of the observed world; every
  /// subsequent dump embeds it (and a kCheckpoint ring record marks the
  /// instant). Pass the blob by value — the recorder owns its copy.
  void note_checkpoint(std::uint64_t checkpoint_id, sim::Time captured_at,
                       std::vector<std::uint8_t> blob);
  bool has_checkpoint() const { return !checkpoint_blob_.empty(); }

  /// Serializes the black box: header, name table, ring contents (oldest
  /// first, span edges from the span source merged in), and the latest
  /// checkpoint (when one was noted). Non-const: merged span names are
  /// interned into the dump's name table.
  std::vector<std::uint8_t> dump(std::string_view reason);

  // Ring introspection.
  std::size_t capacity() const { return capacity_; }
  /// Records ever pushed; min(total, capacity) survive in the ring.
  std::uint64_t total() const { return hot_.total; }
  std::size_t size() const {
    return hot_.total < capacity_ ? static_cast<std::size_t>(hot_.total)
                                   : capacity_;
  }
  /// Chronological copy of the live ring contents (oldest first).
  std::vector<FlightRecord> snapshot() const;

  /// Appends `other`'s ring contents with `shard_id` stamped on every
  /// record and name codes re-interned into this recorder's table.
  /// Appending shards in shard order yields one deterministic fleet
  /// recorder regardless of worker count.
  void append_shard(const FlightRecorder& other, std::uint32_t shard_id);

 private:
  static constexpr std::size_t kInternCacheSize = 64;
  struct InternSlot {
    const char* data = nullptr;
    std::size_t size = 0;
    std::uint16_t code = 0;
  };
  static std::size_t intern_slot(std::string_view name) {
    std::size_t h = name.size();
    if (!name.empty()) {
      h = h * 31 + static_cast<unsigned char>(name.front()) * 7 +
          static_cast<unsigned char>(name.back());
    }
    return h & (kInternCacheSize - 1);
  }

  FlightRecord& push();
  std::uint16_t intern_slow(std::string_view name);
  std::vector<FlightRecord> span_edges(std::int64_t t0, std::int64_t t1);
  /// A deadline crossed: runs due watchdog window checks / sampler ticks,
  /// then recomputes next_wake_ns_. Out of line — rare by construction.
  void wake(sim::Time when);
  void refresh_wake();

  // Ring storage is 64-byte aligned so a 32-byte record never straddles a
  // cache line (a vector only guarantees 16); two records share each line.
  struct AlignedDelete {
    void operator()(FlightRecord* p) const {
      ::operator delete(p, std::align_val_t{64});
    }
  };
  std::unique_ptr<FlightRecord[], AlignedDelete> ring_;
  std::size_t capacity_ = 0;
  // The kernel-shared hot descriptor: ring pointer/mask, push counter,
  // stall-run mirror, and the unified wake deadline (min of the watchdog
  // window edge and the sampler due instant).
  sim::Simulator::TraceHot hot_;
  WatchdogSet* watchdogs_ = nullptr;
  TimeseriesSampler* sampler_ = nullptr;
  const SpanTracer* span_source_ = nullptr;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t> name_ids_;
  InternSlot intern_cache_[kInternCacheSize];

  std::uint64_t checkpoint_id_ = 0;
  sim::Time checkpoint_at_ = sim::Time::zero();
  std::vector<std::uint8_t> checkpoint_blob_;
};

/// A parsed black box. Structural problems throw snap::SnapError.
struct FlightDump {
  std::uint32_t version = 0;
  std::uint32_t shard = 0;
  std::string reason;
  std::uint64_t capacity = 0;
  std::uint64_t total = 0;
  std::vector<std::string> names;
  std::vector<FlightRecord> records;  // oldest first
  bool has_checkpoint = false;
  std::uint64_t checkpoint_id = 0;
  std::int64_t checkpoint_at_ns = 0;
  std::vector<std::uint8_t> checkpoint;

  static FlightDump parse(std::span<const std::uint8_t> blob);

  /// The last kernel-event record at or before `t_ns` — the event a replay
  /// should be driven to when diagnosing a fire at `t_ns`.
  const FlightRecord* last_kernel_event_at_or_before(std::int64_t t_ns) const;
};

}  // namespace aroma::obs
