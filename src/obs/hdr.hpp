// Log-bucketed HDR histogram for latency percentiles.
//
// `sim::Histogram` is fixed-range with linear bins — good for bounded
// quantities (queue depths, payload sizes), useless for latencies that span
// five decades. `HdrHistogram` buckets a non-negative integer value (callers
// record microseconds or nanoseconds) on a log-linear grid: exact buckets
// below 2^kSubBucketBits, then kSubBucketCount/2 sub-buckets per octave, so
// relative error is bounded by 1/2^(kSubBucketBits-1) (~3%) at every scale.
//
// Everything is integer arithmetic on recorded counts, so percentile
// extraction is deterministic (a pure function of the recorded multiset),
// and merge is bucket-exact, associative, and commutative — fleet shards
// fold in any grouping with one result. Wired into MetricsRegistry as its
// own metric kind (see metrics.hpp) and round-trips through snap.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::obs {

class HdrHistogram {
 public:
  /// Sub-bucket resolution: values < 64 are exact; larger values carry 5
  /// significant bits (worst-case relative error 1/32).
  static constexpr unsigned kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBucketCount = 1u << kSubBucketBits;
  /// Largest trackable value (~12.7 days in microseconds). Larger samples
  /// clamp into the top bucket and count as saturated().
  static constexpr std::uint64_t kMaxValue = (std::uint64_t{1} << 40) - 1;
  static constexpr std::size_t kBucketCount =
      kSubBucketCount + (40 - kSubBucketBits) * (kSubBucketCount / 2);

  void record(std::uint64_t value) { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  /// Samples above kMaxValue (recorded, clamped into the top bucket).
  std::uint64_t saturated() const { return saturated_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Smallest recorded-value upper bound v such that at least ceil(q*count)
  /// samples are <= v; clamped to [min(), max()] so a single-sample
  /// histogram reports that sample exactly at every quantile. Returns 0
  /// when empty. Deterministic: integer bucket walk, no interpolation.
  std::uint64_t value_at_quantile(double q) const;
  std::uint64_t p50() const { return value_at_quantile(0.50); }
  std::uint64_t p99() const { return value_at_quantile(0.99); }
  std::uint64_t p999() const { return value_at_quantile(0.999); }

  /// Bucket-exact merge; associative and commutative.
  void merge_from(const HdrHistogram& other);

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Sparse encoding: only non-empty buckets are written.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

  /// Bucket geometry, exposed for tests and exporters.
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive upper bound of a bucket's value range.
  static std::uint64_t bucket_upper(std::size_t index);
  std::uint64_t bucket(std::size_t index) const { return buckets_[index]; }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t saturated_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace aroma::obs
