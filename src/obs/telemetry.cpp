#include "obs/telemetry.hpp"

#include <algorithm>

namespace aroma::obs {

Telemetry::Telemetry(TelemetryOptions options) : options_(options) {
  spans_.set_enabled(options_.spans);
  spans_.set_capacity(options_.span_capacity);
}

Telemetry::Telemetry(sim::World& world, TelemetryOptions options)
    : Telemetry(options) {
  attach(world);
}

Telemetry::~Telemetry() {
  while (!attached_.empty()) detach(*attached_.back());
}

void Telemetry::attach(sim::World& world) {
  if (options_.metrics) world.set_metrics(&metrics_);
  if (options_.spans) world.set_spans(&spans_);
  attached_.push_back(&world);
}

void Telemetry::detach(sim::World& world) {
  if (world.metrics() == &metrics_) world.set_metrics(nullptr);
  if (world.spans() == &spans_) world.set_spans(nullptr);
  attached_.erase(std::remove(attached_.begin(), attached_.end(), &world),
                  attached_.end());
}

void Telemetry::snapshot_kernel(const sim::World& world) {
  const sim::Simulator& s = world.sim();
  // Kernel execution is a Resource-layer concern in the LPC model ("Exe").
  const lpc::Layer layer = lpc::Layer::kResource;
  metrics_.set_counter("sim.kernel.executed", layer, s.executed());
  metrics_.set_gauge("sim.kernel.peak_pending", layer,
                     static_cast<double>(s.peak_pending()));
  metrics_.set_gauge("sim.kernel.pending", layer,
                     static_cast<double>(s.pending()));
  metrics_.set_counter("sim.kernel.cancelled", layer, s.cancelled());
  metrics_.set_counter("sim.kernel.stale_handle_rejects", layer,
                       s.stale_handle_rejects());
  // Observability self-accounting: a capped span buffer silently truncates
  // traces, so the drop count must be visible wherever metrics land.
  metrics_.set_counter("obs.spans.records", layer, spans_.records().size());
  metrics_.set_counter("obs.spans.dropped", layer, spans_.dropped());
}

}  // namespace aroma::obs
