#include "obs/flight.hpp"

#include <algorithm>
#include <iterator>

namespace aroma::obs {

std::string_view to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kKernelEvent: return "kernel_event";
    case FlightKind::kSpanOpen: return "span_open";
    case FlightKind::kSpanClose: return "span_close";
    case FlightKind::kSpanInstant: return "span_instant";
    case FlightKind::kMetricDelta: return "metric_delta";
    case FlightKind::kWatchdog: return "watchdog";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kMarker: return "marker";
  }
  return "?";
}

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity, std::uint32_t shard)
    : capacity_(round_up_pow2(capacity == 0 ? 1 : capacity)) {
  ring_.reset(static_cast<FlightRecord*>(::operator new(
      capacity_ * sizeof(FlightRecord), std::align_val_t{64})));
  std::fill_n(ring_.get(), capacity_, FlightRecord{});
  hot_.ring = ring_.get();
  hot_.mask = capacity_ - 1;
  hot_.shard = shard;
  hot_.slow = this;
}

FlightRecord& FlightRecorder::push() {
  FlightRecord& r = ring_[static_cast<std::size_t>(hot_.total) & hot_.mask];
  ++hot_.total;
  r = FlightRecord{};
  r.shard = hot_.shard;
  return r;
}

std::uint16_t FlightRecorder::intern_slow(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it == name_ids_.end()) {
    // Code 0xffff is a sentinel for "table full": better a degenerate name
    // than unbounded growth from pathological callers.
    if (names_.size() >= 0xffff) return 0xffff;
    const auto id = static_cast<std::uint16_t>(names_.size());
    names_.emplace_back(name);
    it = name_ids_.emplace(names_.back(), id).first;
  }
  // Refresh the content-keyed fast-path slot. The map's key storage is
  // node-stable, so the cached pointer outlives any names_ reallocation.
  intern_cache_[intern_slot(name)] =
      InternSlot{it->first.data(), it->first.size(), it->second};
  return it->second;
}

void FlightRecorder::wake(sim::Time when) {
  if (watchdogs_ != nullptr &&
      when.count() >= watchdogs_->next_window_ns_) {
    watchdogs_->window_checks(when);
  }
  if (sampler_ != nullptr && when.count() >= sampler_->next_due_ns()) {
    sampler_->take_sample(when);
  }
  refresh_wake();
}

void FlightRecorder::refresh_wake() {
  std::int64_t next = std::numeric_limits<std::int64_t>::max();
  if (watchdogs_ != nullptr) next = std::min(next, watchdogs_->next_window_ns_);
  if (sampler_ != nullptr) next = std::min(next, sampler_->next_due_ns());
  hot_.next_wake_ns = next;
}

void FlightRecorder::record_metric(sim::Time now, std::uint16_t code,
                                   std::uint64_t value,
                                   std::uint64_t previous) {
  FlightRecord& r = push();
  r.t_ns = now.count();
  r.kind = static_cast<std::uint16_t>(FlightKind::kMetricDelta);
  r.code = code;
  r.a = value;
  r.b = previous;
}

void FlightRecorder::record_watchdog(sim::Time now, std::uint16_t code,
                                     std::uint64_t value,
                                     std::uint64_t limit) {
  FlightRecord& r = push();
  r.t_ns = now.count();
  r.kind = static_cast<std::uint16_t>(FlightKind::kWatchdog);
  r.code = code;
  r.a = value;
  r.b = limit;
}

void FlightRecorder::record_marker(sim::Time now, std::string_view name) {
  FlightRecord& r = push();
  r.t_ns = now.count();
  r.kind = static_cast<std::uint16_t>(FlightKind::kMarker);
  r.code = intern(name);
}

void FlightRecorder::note_checkpoint(std::uint64_t checkpoint_id,
                                     sim::Time captured_at,
                                     std::vector<std::uint8_t> blob) {
  checkpoint_id_ = checkpoint_id;
  checkpoint_at_ = captured_at;
  checkpoint_blob_ = std::move(blob);
  FlightRecord& r = push();
  r.t_ns = captured_at.count();
  r.kind = static_cast<std::uint16_t>(FlightKind::kCheckpoint);
  r.a = checkpoint_id;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>((hot_.total - n + i) %
                                                 capacity_)]);
  }
  return out;
}

void FlightRecorder::append_shard(const FlightRecorder& other,
                                  std::uint32_t shard_id) {
  for (const FlightRecord& src : other.snapshot()) {
    FlightRecord& r = push();
    r = src;
    r.shard = shard_id;
    const auto kind = static_cast<FlightKind>(src.kind);
    // Kernel-event codes are categories (global); everything else indexes
    // the source recorder's name table and must be re-interned into ours.
    if (kind != FlightKind::kKernelEvent && kind != FlightKind::kCheckpoint &&
        src.code < other.names_.size()) {
      r.code = intern(other.names_[src.code]);
    }
  }
}

// Reconstructs span edges from the span source for the [t0, t1] window the
// ring covers, capped (latest kept) so a pathological window cannot blow up
// the dump. Edges are sorted by (t, kind, id) — a deterministic function of
// the tracer contents.
std::vector<FlightRecord> FlightRecorder::span_edges(std::int64_t t0,
                                                     std::int64_t t1) {
  std::vector<FlightRecord> edges;
  auto add = [&](std::int64_t t, FlightKind kind, const SpanRecord& rec) {
    if (t < t0 || t > t1) return;
    FlightRecord r;
    r.t_ns = t;
    r.kind = static_cast<std::uint16_t>(kind);
    r.code = intern(rec.name);
    r.shard = hot_.shard;
    r.a = rec.id;
    r.b = rec.parent;
    edges.push_back(r);
  };
  for (const SpanRecord& rec : span_source_->records()) {
    if (rec.instant) {
      add(rec.start.count(), FlightKind::kSpanInstant, rec);
      continue;
    }
    add(rec.start.count(), FlightKind::kSpanOpen, rec);
    if (!rec.open()) add(rec.end.count(), FlightKind::kSpanClose, rec);
  }
  std::sort(edges.begin(), edges.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.a < b.a;
            });
  const std::size_t cap = capacity_ * 4;
  if (edges.size() > cap) {
    edges.erase(edges.begin(),
                edges.end() - static_cast<std::ptrdiff_t>(cap));
  }
  return edges;
}

std::vector<std::uint8_t> FlightRecorder::dump(std::string_view reason) {
  snap::SnapWriter snap;
  // Times inside a dump are absolute sim-time nanoseconds (raw i64), never
  // rebased: a black box describes one concrete run.
  {
    snap::SectionWriter w(sim::Time::zero());
    w.u32(kFlightDumpVersion);
    w.u32(hot_.shard);
    w.str(std::string(reason));
    w.u64(capacity_);
    w.u64(hot_.total);
    snap.add(kTagFlightHeader, 0, w.take());
  }
  std::vector<FlightRecord> records = snapshot();
  if (span_source_ != nullptr && !records.empty()) {
    // Merge reconstructed span edges for the window the ring covers;
    // ring records win ties so the kernel event stream stays contiguous.
    const std::vector<FlightRecord> edges =
        span_edges(records.front().t_ns, records.back().t_ns);
    std::vector<FlightRecord> merged;
    merged.reserve(records.size() + edges.size());
    std::merge(records.begin(), records.end(), edges.begin(), edges.end(),
               std::back_inserter(merged),
               [](const FlightRecord& a, const FlightRecord& b) {
                 return a.t_ns < b.t_ns;
               });
    records = std::move(merged);
  }
  {
    snap::SectionWriter w(sim::Time::zero());
    w.u64(names_.size());
    for (const std::string& name : names_) w.str(name);
    snap.add(kTagFlightNames, 0, w.take());
  }
  {
    snap::SectionWriter w(sim::Time::zero());
    w.u64(records.size());
    for (const FlightRecord& r : records) {
      w.i64(r.t_ns);
      w.u16(r.kind);
      w.u16(r.code);
      w.u32(r.shard);
      w.u64(r.a);
      w.u64(r.b);
    }
    snap.add(kTagFlightRecords, 0, w.take());
  }
  if (!checkpoint_blob_.empty()) {
    snap::SectionWriter w(sim::Time::zero());
    w.u64(checkpoint_id_);
    w.i64(checkpoint_at_.count());
    w.bytes(checkpoint_blob_.data(), checkpoint_blob_.size());
    snap.add(kTagFlightCheckpoint, snap::kSectionOptional, w.take());
  }
  return snap.finish();
}

FlightDump FlightDump::parse(std::span<const std::uint8_t> blob) {
  const snap::SnapReader snap(blob);
  FlightDump dump;

  const snap::Section* header = snap.find(kTagFlightHeader);
  if (header == nullptr) {
    throw snap::SnapError("flight dump has no FLTH header section");
  }
  {
    snap::SectionReader r(header->payload, sim::Time::zero());
    dump.version = r.u32();
    if (dump.version != kFlightDumpVersion) {
      throw snap::SnapError("unsupported flight dump version " +
                            std::to_string(dump.version));
    }
    dump.shard = r.u32();
    dump.reason = r.str();
    dump.capacity = r.u64();
    dump.total = r.u64();
    r.expect_end();
  }

  if (const snap::Section* s = snap.find(kTagFlightNames)) {
    snap::SectionReader r(s->payload, sim::Time::zero());
    const std::uint64_t n = r.u64();
    dump.names.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) dump.names.push_back(r.str());
    r.expect_end();
  }

  if (const snap::Section* s = snap.find(kTagFlightRecords)) {
    snap::SectionReader r(s->payload, sim::Time::zero());
    const std::uint64_t n = r.u64();
    dump.records.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      FlightRecord rec;
      rec.t_ns = r.i64();
      rec.kind = r.u16();
      rec.code = r.u16();
      rec.shard = r.u32();
      rec.a = r.u64();
      rec.b = r.u64();
      dump.records.push_back(rec);
    }
    r.expect_end();
  }

  if (const snap::Section* s = snap.find(kTagFlightCheckpoint)) {
    snap::SectionReader r(s->payload, sim::Time::zero());
    dump.has_checkpoint = true;
    dump.checkpoint_id = r.u64();
    dump.checkpoint_at_ns = r.i64();
    dump.checkpoint = r.bytes();
    r.expect_end();
  }
  return dump;
}

const FlightRecord* FlightDump::last_kernel_event_at_or_before(
    std::int64_t t_ns) const {
  const FlightRecord* best = nullptr;
  for (const FlightRecord& r : records) {
    if (r.kind != static_cast<std::uint16_t>(FlightKind::kKernelEvent)) {
      continue;
    }
    if (r.t_ns <= t_ns) best = &r;
  }
  return best;
}

}  // namespace aroma::obs
