#include "obs/sampler.hpp"

#include <cmath>

#include "obs/flight.hpp"

namespace aroma::obs {

TimeseriesSampler::TimeseriesSampler(const MetricsRegistry& metrics,
                                     Options options)
    : metrics_(metrics), options_(options) {}

// Registry handles are deque-stable for the registry's lifetime, so the
// sampler caches one {metric pointer, track} source per counter/gauge and
// the steady-state walk is a flat scan of raw pointer reads. A full
// visitation (string lookups, track creation) only happens when the
// registry has grown since the last walk.
void TimeseriesSampler::rebuild_sources() {
  struct SourceVisitor final : MetricsRegistry::Visitor {
    explicit SourceVisitor(TimeseriesSampler& s) : s(s) {}

    void on_counter(const MetricInfo& info, const Counter& c) override {
      add(info, /*is_counter=*/true, &c);
    }
    void on_gauge(const MetricInfo& info, const Gauge& g) override {
      add(info, /*is_counter=*/false, &g);
    }
    void on_histogram(const MetricInfo&, const sim::Histogram&) override {}

    void add(const MetricInfo& info, bool is_counter, const void* metric) {
      auto it = s.track_index_.find(std::string_view(info.name));
      std::size_t index;
      if (it == s.track_index_.end()) {
        index = s.tracks_.size();
        s.tracks_.push_back(Track{info.name, info.layer, is_counter, {}});
        s.track_index_.emplace(std::string_view(info.name), index);
      } else {
        index = it->second;
      }
      const std::vector<Sample>& samples = s.tracks_[index].samples;
      Source src{metric, is_counter, /*has_last=*/false, 0.0, index};
      if (!samples.empty()) {
        src.has_last = true;
        src.last = samples.back().value;
      }
      s.sources_.push_back(src);
    }

    TimeseriesSampler& s;
  } v(*this);

  sources_.clear();
  metrics_.visit(v);
  seen_registry_size_ = metrics_.size();
}

void TimeseriesSampler::take_sample(sim::Time when) {
  if (metrics_.size() != seen_registry_size_) rebuild_sources();
  for (Source& src : sources_) {
    const double value =
        src.is_counter
            ? static_cast<double>(
                  static_cast<const Counter*>(src.metric)->value())
            : static_cast<const Gauge*>(src.metric)->value();
    if (src.has_last && src.last == value) {
      continue;  // unchanged since the last sample: no point
    }
    Track& track = tracks_[src.track];
    if (track.samples.size() >= options_.max_samples_per_track) {
      ++dropped_;
      continue;
    }
    if (recorder_ != nullptr && track.is_counter && src.has_last) {
      if (!track.flight_code_set) {
        track.flight_code = recorder_->intern(track.name);
        track.flight_code_set = true;
      }
      recorder_->record_metric(when, track.flight_code,
                               static_cast<std::uint64_t>(value),
                               static_cast<std::uint64_t>(src.last));
    }
    track.samples.push_back(Sample{when.count(), value});
    src.has_last = true;
    src.last = value;
  }
  ++samples_;
  next_due_ns_ = when.count() + options_.period.count();
}

}  // namespace aroma::obs
