// The telemetry bundle: one MetricsRegistry + one SpanTracer, attachable to
// any number of sequential sim::Worlds.
//
// Attach BEFORE constructing components on a world: components resolve
// their metric handles at construction. Telemetry must outlive everything
// that resolved handles from it. Detaching (or destroying the bundle) puts
// the world back in the zero-cost disabled state.
#pragma once

#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/world.hpp"

namespace aroma::obs {

struct TelemetryOptions {
  bool metrics = true;
  bool spans = true;
  std::size_t span_capacity = 1 << 20;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});
  /// Attaches to `world` on construction.
  explicit Telemetry(sim::World& world, TelemetryOptions options = {});
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  void attach(sim::World& world);
  void detach(sim::World& world);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

  /// Pulls the kernel's counters for `world` into the registry
  /// (sim.kernel.* gauges). Call before snapshotting.
  void snapshot_kernel(const sim::World& world);

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  SpanTracer spans_;
  std::vector<sim::World*> attached_;
};

}  // namespace aroma::obs
