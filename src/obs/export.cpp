#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

namespace aroma::obs {

namespace {

void escape(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

double to_us(sim::Time t) { return static_cast<double>(t.count()) / 1e3; }

void append_us(std::string& out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  out += buf;
}

void append_args(std::string& out, const SpanRecord& r) {
  out += "\"args\": {\"id\": " + std::to_string(r.id) +
         ", \"parent\": " + std::to_string(r.parent);
  for (const auto& [k, v] : r.args) {
    out += ", ";
    escape(out, k);
    out += ": ";
    escape(out, v);
  }
  out += "}";
}

bool write_text(const std::string& text, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << text;
  return static_cast<bool>(f);
}

}  // namespace

std::string to_chrome_trace(const SpanTracer& spans,
                            const TimeseriesSampler* sampler) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // One track per LPC layer, named for the model.
  for (lpc::Layer layer : lpc::kAllLayers) {
    comma();
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(static_cast<int>(layer)) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    escape(out, std::string("lpc.") + std::string(layer_label(layer)));
    out += "}}";
  }
  for (const SpanRecord& r : spans.records()) {
    comma();
    const int tid = static_cast<int>(r.layer);
    out += "{\"name\": ";
    escape(out, r.name);
    out += ", \"cat\": ";
    escape(out, layer_label(r.layer));
    out += ", \"pid\": 1, \"tid\": " + std::to_string(tid);
    out += ", \"ts\": ";
    append_us(out, to_us(r.start));
    if (r.instant) {
      out += ", \"ph\": \"i\", \"s\": \"t\", ";
    } else {
      // Open spans export with zero duration rather than vanish.
      const sim::Time end = r.open() ? r.start : r.end;
      out += ", \"ph\": \"X\", \"dur\": ";
      append_us(out, to_us(end - r.start));
      out += ", ";
    }
    append_args(out, r);
    out += "}";
  }
  if (sampler != nullptr) {
    for (const TimeseriesSampler::Track& track : sampler->tracks()) {
      const int tid = static_cast<int>(track.layer);
      for (const TimeseriesSampler::Sample& s : track.samples) {
        comma();
        out += "{\"ph\": \"C\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
               ", \"name\": ";
        escape(out, track.name);
        out += ", \"ts\": ";
        append_us(out, static_cast<double>(s.t_ns) / 1e3);
        out += ", \"args\": {\"value\": ";
        char buf[40];
        std::snprintf(buf, sizeof buf, "%g", s.value);
        out += buf;
        out += "}}";
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const SpanTracer& spans, const std::string& path,
                        const TimeseriesSampler* sampler) {
  return write_text(to_chrome_trace(spans, sampler), path);
}

std::string to_jsonl(const SpanTracer& spans) {
  std::string out;
  for (const SpanRecord& r : spans.records()) {
    out += "{\"id\": " + std::to_string(r.id) +
           ", \"parent\": " + std::to_string(r.parent) + ", \"name\": ";
    escape(out, r.name);
    out += ", \"layer\": ";
    escape(out, layer_label(r.layer));
    out += ", \"level\": ";
    escape(out, sim::to_string(r.level));
    out += ", \"instant\": ";
    out += r.instant ? "true" : "false";
    out += ", \"start_us\": ";
    append_us(out, to_us(r.start));
    out += ", \"end_us\": ";
    append_us(out, to_us(r.open() ? r.start : r.end));
    out += ", ";
    append_args(out, r);
    out += "}\n";
  }
  return out;
}

bool write_jsonl(const SpanTracer& spans, const std::string& path) {
  return write_text(to_jsonl(spans), path);
}

bool write_metrics_json(const MetricsRegistry& metrics,
                        const std::string& path) {
  return write_text(metrics.to_json() + "\n", path);
}

}  // namespace aroma::obs
