// Periodic timeseries sampler: counter/gauge tracks over simulated time.
//
// Snapshots are cheap but instantaneous; a timeline needs samples. The
// sampler piggybacks on the flight recorder's kernel tap — one integer
// compare per event — and, whenever an event's timestamp crosses the next
// due instant, walks the registry and appends a (t, value) sample to each
// counter/gauge track that changed. No kernel event is ever scheduled, so
// sampling cannot perturb the run; sample instants are event timestamps
// and therefore deterministic.
//
// Tracks export as Chrome trace-event "C" (counter) rows on the existing
// Perfetto path (obs/export.hpp), giving the span timeline live counter
// lanes underneath it.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace aroma::obs {

class FlightRecorder;

class TimeseriesSampler {
 public:
  struct Options {
    sim::Time period = sim::Time::ms(250);
    /// Per-track cap; further samples are counted in samples_dropped().
    std::size_t max_samples_per_track = 1 << 12;
  };

  struct Sample {
    std::int64_t t_ns = 0;
    double value = 0.0;
  };
  struct Track {
    // View into the registry's stable name storage (handles and their
    // MetricInfo never relocate), so building a track allocates nothing
    // for the name and the index below hashes views, not copies.
    std::string_view name;
    lpc::Layer layer = lpc::Layer::kEnvironment;
    bool is_counter = false;
    std::vector<Sample> samples;
    // Interned flight-recorder code, resolved on the track's first
    // recorded delta (steady-state samples must not re-hash the name).
    std::uint16_t flight_code = 0;
    bool flight_code_set = false;
  };

  explicit TimeseriesSampler(const MetricsRegistry& metrics)
      : TimeseriesSampler(metrics, Options()) {}
  TimeseriesSampler(const MetricsRegistry& metrics, Options options);
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  /// Flight recorder that receives a kMetricDelta record per changed
  /// counter sample (optional).
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Called from the flight recorder's kernel tap. Steady-state cost: one
  /// integer compare.
  void on_event(sim::Time when) {
    if (when.count() < next_due_ns_) return;
    take_sample(when);
  }

  /// Forces a sample at `when` (the tap calls this on cadence; owners call
  /// it once more at the end of a run to close every track).
  void take_sample(sim::Time when);

  /// Next sample deadline (ns). The flight recorder folds this into its
  /// unified wake deadline so the steady-state tap never touches the
  /// sampler at all.
  std::int64_t next_due_ns() const { return next_due_ns_; }

  const std::vector<Track>& tracks() const { return tracks_; }
  std::uint64_t samples_taken() const { return samples_; }
  std::uint64_t samples_dropped() const { return dropped_; }
  sim::Time period() const { return options_.period; }

 private:
  const MetricsRegistry& metrics_;
  Options options_;
  FlightRecorder* recorder_ = nullptr;
  void rebuild_sources();

  std::int64_t next_due_ns_ = 0;  // the first event takes the baseline
  std::unordered_map<std::string_view, std::size_t> track_index_;
  // Registry handles are deque-stable, so each counter/gauge is cached as
  // a raw pointer + track index; the steady-state walk never touches the
  // registry's visitation machinery. Rebuilt when the registry grows.
  struct Source {
    const void* metric = nullptr;  // Counter* or Gauge*
    bool is_counter = false;
    // Mirror of tracks_[track].samples.back().value, so the steady-state
    // unchanged-skip is one metric load and one compare — no track deref.
    bool has_last = false;
    double last = 0.0;
    std::size_t track = 0;
  };
  std::vector<Source> sources_;
  std::size_t seen_registry_size_ = 0;
  std::vector<Track> tracks_;
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aroma::obs
