#include "obs/watchdog.hpp"

#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aroma::obs {

std::string_view to_string(Watchdog w) {
  switch (w) {
    case Watchdog::kSimStall: return "watchdog.sim_stall";
    case Watchdog::kQueueDepth: return "watchdog.queue_depth";
    case Watchdog::kSpanDropSurge: return "watchdog.span_drop_surge";
    case Watchdog::kLeaseChurn: return "watchdog.lease_churn";
    case Watchdog::kRetryStorm: return "watchdog.retry_storm";
  }
  return "watchdog.?";
}

namespace {

// Details feed SpanIssueMiner's layer classifier (the "classify" arg below
// routes them through it), so each is phrased in the vocabulary of the LPC
// layer the anomaly belongs to.
std::string_view detail_for(Watchdog w) {
  switch (w) {
    case Watchdog::kSimStall:
      return "simulated clock stalled: runaway same-time event chain is "
             "starving the operating system scheduler";
    case Watchdog::kQueueDepth:
      return "pending event queue past watermark: memory pressure building "
             "in the protocol stack";
    case Watchdog::kSpanDropSurge:
      return "span buffer dropping records: diagnostics capped, "
             "troubleshooting data lost";
    case Watchdog::kLeaseChurn:
      return "lease churn storm: jini lookup service leases expiring "
             "faster than they renew";
    case Watchdog::kRetryStorm:
      return "mac retransmission storm: interference on the 2.4 ghz "
             "radio band";
  }
  return "";
}

}  // namespace

WatchdogSet::WatchdogSet(sim::World& world, WatchdogOptions options)
    : world_(world), options_(options) {}

std::uint64_t WatchdogSet::counter_value(const void** slot,
                                         std::string_view name) const {
  if (*slot == nullptr) {
    const MetricsRegistry* m = world_.metrics();
    if (m == nullptr) return 0;
    *slot = m->find_counter(name);
    if (*slot == nullptr) return 0;  // not created yet; retry next window
  }
  return static_cast<const Counter*>(*slot)->value();
}

void WatchdogSet::stall_fire(sim::Time when, std::uint64_t run_len) {
  fire(Watchdog::kSimStall, detail_for(Watchdog::kSimStall), when, run_len,
       options_.stall_run_limit);
}

void WatchdogSet::window_checks(sim::Time when) {
  next_window_ns_ = when.count() + options_.window.count();

  const std::size_t depth = world_.sim().pending();
  if (depth >= options_.queue_depth_limit) {
    if (queue_armed_) {
      queue_armed_ = false;  // re-arms when depth falls below the limit
      fire(Watchdog::kQueueDepth, detail_for(Watchdog::kQueueDepth), when,
           depth, options_.queue_depth_limit);
    }
  } else {
    queue_armed_ = true;
  }

  if (const SpanTracer* t = world_.spans()) {
    const std::uint64_t dropped = t->dropped();
    if (dropped - last_dropped_ >= options_.span_drop_surge) {
      fire(Watchdog::kSpanDropSurge, detail_for(Watchdog::kSpanDropSurge),
           when, dropped - last_dropped_, options_.span_drop_surge);
    }
    last_dropped_ = dropped;
  }

  const std::uint64_t churn =
      counter_value(&c_grants_, "disco.lease.grants") +
      counter_value(&c_expirations_, "disco.lease.expirations") +
      counter_value(&c_cancellations_, "disco.lease.cancellations");
  if (churn - last_churn_ >= options_.lease_churn_limit) {
    fire(Watchdog::kLeaseChurn, detail_for(Watchdog::kLeaseChurn), when,
         churn - last_churn_, options_.lease_churn_limit);
  }
  last_churn_ = churn;

  const std::uint64_t retries = counter_value(&c_retries_, "phys.mac.retries");
  if (retries - last_retries_ >= options_.retry_storm_limit) {
    fire(Watchdog::kRetryStorm, detail_for(Watchdog::kRetryStorm), when,
         retries - last_retries_, options_.retry_storm_limit);
  }
  last_retries_ = retries;
}

void WatchdogSet::fire(Watchdog which, std::string_view detail, sim::Time at,
                       std::uint64_t value, std::uint64_t limit) {
  std::uint64_t& count = fired_[static_cast<std::size_t>(which)];
  if (count >= options_.max_fires_each) return;
  ++count;
  const std::string_view name = to_string(which);
  fires_.push_back(WatchdogFire{which, at, value, limit});

  if (recorder_) {
    recorder_->record_watchdog(at, recorder_->intern(name), value, limit);
  }
  if (MetricsRegistry* m = world_.metrics()) {
    m->counter("obs.watchdog.fires", lpc::Layer::kResource).add();
  }
  // The emitting layer is a placeholder: the "classify" arg routes the
  // issue through SpanIssueMiner's IssueClassifier, which assigns the
  // layer from the detail text.
  if (SpanTracer* t = world_.spans(); t != nullptr && t->enabled()) {
    t->instant(at, name, lpc::Layer::kResource, 0, sim::TraceLevel::kWarn,
               {{"classify", std::string(detail)},
                {"value", std::to_string(value)},
                {"limit", std::to_string(limit)}});
  }
  if (hook_) hook_(fires_.back());
}

}  // namespace aroma::obs
