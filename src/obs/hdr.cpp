#include "obs/hdr.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "snap/format.hpp"

namespace aroma::obs {

std::size_t HdrHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  const unsigned shift =
      static_cast<unsigned>(std::bit_width(value)) - kSubBucketBits;
  const std::uint64_t sub = value >> shift;  // in [kSubBucketCount/2, count)
  return static_cast<std::size_t>(kSubBucketCount +
                                  (shift - 1) * (kSubBucketCount / 2) +
                                  (sub - kSubBucketCount / 2));
}

std::uint64_t HdrHistogram::bucket_upper(std::size_t index) {
  if (index < kSubBucketCount) return index;
  const std::size_t rem = index - kSubBucketCount;
  const unsigned shift = static_cast<unsigned>(rem / (kSubBucketCount / 2)) + 1;
  const std::uint64_t sub = rem % (kSubBucketCount / 2) + kSubBucketCount / 2;
  return ((sub + 1) << shift) - 1;
}

void HdrHistogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (value > kMaxValue) {
    saturated_ += n;
    value = kMaxValue;
  }
  buckets_[bucket_index(value)] += n;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * n;
}

std::uint64_t HdrHistogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0;
  std::uint64_t target =
      q <= 0.0 ? 1
               : static_cast<std::uint64_t>(
                     std::ceil(q * static_cast<double>(count_)));
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void HdrHistogram::merge_from(const HdrHistogram& other) {
  if (other.count_ == 0) {
    saturated_ += other.saturated_;
    return;
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  saturated_ += other.saturated_;
  sum_ += other.sum_;
}

void HdrHistogram::save(snap::SectionWriter& w) const {
  w.u64(count_);
  w.u64(saturated_);
  w.u64(sum_);
  w.u64(min_);
  w.u64(max_);
  std::uint64_t nonzero = 0;
  for (std::uint64_t c : buckets_) nonzero += c != 0;
  w.u64(nonzero);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] != 0) {
      w.u32(static_cast<std::uint32_t>(i));
      w.u64(buckets_[i]);
    }
  }
}

void HdrHistogram::restore(snap::SectionReader& r) {
  buckets_.fill(0);
  count_ = r.u64();
  saturated_ = r.u64();
  sum_ = r.u64();
  min_ = r.u64();
  max_ = r.u64();
  const std::uint64_t nonzero = r.u64();
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    const std::uint32_t index = r.u32();
    if (index >= kBucketCount) {
      throw snap::SnapError("HdrHistogram bucket index out of range");
    }
    buckets_[index] = r.u64();
  }
}

}  // namespace aroma::obs
