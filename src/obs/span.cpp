#include "obs/span.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "snap/format.hpp"

namespace aroma::obs {

SpanId SpanTracer::begin(sim::Time now, std::string_view name,
                         lpc::Layer layer, SpanId parent,
                         sim::TraceLevel level) {
  if (!enabled_) return 0;
  if (records_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.start = now;
  rec.end = sim::Time::max();
  rec.name = std::string(name);
  rec.layer = layer;
  rec.level = level;
  index_.emplace(rec.id, records_.size());
  records_.push_back(std::move(rec));
  if (flight_) flight_->record_span(records_.back(), FlightKind::kSpanOpen);
  return records_.back().id;
}

void SpanTracer::end(SpanId id, sim::Time now) {
  if (id == 0) return;
  auto it = index_.find(id);
  if (it == index_.end()) return;
  SpanRecord& rec = records_[it->second];
  if (!rec.open()) return;
  rec.end = now;
  if (flight_) flight_->record_span(rec, FlightKind::kSpanClose);
  if (hook_) hook_(rec);
}

SpanId SpanTracer::instant(sim::Time now, std::string_view name,
                           lpc::Layer layer, SpanId parent,
                           sim::TraceLevel level) {
  return instant(now, name, layer, parent, level, {});
}

SpanId SpanTracer::instant(
    sim::Time now, std::string_view name, lpc::Layer layer, SpanId parent,
    sim::TraceLevel level,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_) return 0;
  SpanRecord rec;
  rec.parent = parent;
  rec.start = now;
  rec.end = now;
  rec.name = std::string(name);
  rec.layer = layer;
  rec.level = level;
  rec.instant = true;
  rec.args = std::move(args);
  if (records_.size() >= capacity_) {
    // Dropped from the buffer but still visible to the hook, so issue
    // mining keeps working on long soak runs.
    ++dropped_;
    if (flight_) flight_->record_span(rec, FlightKind::kSpanInstant);
    if (hook_) hook_(rec);
    return 0;
  }
  rec.id = next_id_++;
  index_.emplace(rec.id, records_.size());
  records_.push_back(std::move(rec));
  if (flight_) flight_->record_span(records_.back(), FlightKind::kSpanInstant);
  if (hook_) hook_(records_.back());
  return records_.back().id;
}

void SpanTracer::annotate(SpanId id, std::string_view key,
                          std::string_view value) {
  if (id == 0) return;
  auto it = index_.find(id);
  if (it == index_.end()) return;
  records_[it->second].args.emplace_back(std::string(key), std::string(value));
}

void SpanTracer::append_shard(const SpanTracer& other, std::uint64_t shard_id) {
  const SpanId tag = (shard_id + 1) << kShardIdShift;
  const auto remap = [tag](SpanId id) { return id == 0 ? 0 : (tag | id); };
  for (const SpanRecord& src : other.records_) {
    if (records_.size() >= capacity_) {
      dropped_ += other.records_.size() -
                  (&src - other.records_.data());  // everything left
      return;
    }
    SpanRecord rec = src;
    rec.id = remap(src.id);
    rec.parent = remap(src.parent);
    index_.emplace(rec.id, records_.size());
    records_.push_back(std::move(rec));
  }
  dropped_ += other.dropped_;
}

const SpanRecord* SpanTracer::find(SpanId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

std::size_t SpanTracer::count_with_name(std::string_view name) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const SpanRecord& r) { return r.name == name; }));
}

std::vector<const SpanRecord*> SpanTracer::ancestry(SpanId id) const {
  std::vector<const SpanRecord*> chain;
  while (id != 0) {
    const SpanRecord* rec = find(id);
    if (rec == nullptr) break;
    chain.push_back(rec);
    if (chain.size() > records_.size()) break;  // defensive: cyclic ids
    id = rec->parent;
  }
  return chain;
}

void SpanTracer::clear() {
  records_.clear();
  index_.clear();
  dropped_ = 0;
}

void SpanTracer::save(snap::SectionWriter& w) const {
  w.b(enabled_);
  w.u64(capacity_);
  w.u64(dropped_);
  w.u64(next_id_);
  w.u64(records_.size());
  for (const SpanRecord& rec : records_) {
    w.u64(rec.id);
    w.u64(rec.parent);
    w.time_delta(rec.start);
    w.b(rec.open());
    if (!rec.open()) w.time_delta(rec.end);
    w.str(rec.name);
    w.u8(static_cast<std::uint8_t>(rec.layer));
    w.u8(static_cast<std::uint8_t>(rec.level));
    w.b(rec.instant);
    w.u64(rec.args.size());
    for (const auto& [key, value] : rec.args) {
      w.str(key);
      w.str(value);
    }
  }
}

void SpanTracer::restore(snap::SectionReader& r) {
  records_.clear();
  index_.clear();
  enabled_ = r.b();
  capacity_ = static_cast<std::size_t>(r.u64());
  dropped_ = r.u64();
  next_id_ = r.u64();
  const std::uint64_t n = r.u64();
  records_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SpanRecord rec;
    rec.id = r.u64();
    rec.parent = r.u64();
    rec.start = r.time_delta();
    const bool open = r.b();
    rec.end = open ? sim::Time::max() : r.time_delta();
    rec.name = r.str();
    rec.layer = static_cast<lpc::Layer>(r.u8());
    rec.level = static_cast<sim::TraceLevel>(r.u8());
    rec.instant = r.b();
    const std::uint64_t n_args = r.u64();
    rec.args.reserve(static_cast<std::size_t>(n_args));
    for (std::uint64_t a = 0; a < n_args; ++a) {
      const std::string key = r.str();
      rec.args.emplace_back(key, r.str());
    }
    if (open) rec.args.emplace_back("restored", "true");
    index_.emplace(rec.id, records_.size());
    records_.push_back(std::move(rec));
  }
}

}  // namespace aroma::obs
