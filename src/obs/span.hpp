// Causal span tracing with sim-time clocks.
//
// A span is a named interval (or instant) on an LPC layer, linked to the
// span that caused it. Causality crosses scheduled-event boundaries via the
// kernel's trace context: the span id active when an event is scheduled is
// stamped on the event and restored while it executes, so a span begun
// inside a MAC receive event parents to the frame that carried it — across
// net -> disco -> app hops — with no context threaded through any API.
//
// Records are structured (name, layer, level, key-value args), superseding
// raw Tracer strings; exporters serialize them as JSONL and as Chrome
// trace-event JSON loadable in Perfetto (see obs/export.hpp). The record
// buffer is capacity-capped with a drop counter so soak runs cannot OOM.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lpc/layers.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::obs {

class FlightRecorder;

using SpanId = std::uint64_t;  // 0 = none/dropped

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  sim::Time start;
  sim::Time end;  // == Time::max() while open
  std::string name;
  lpc::Layer layer = lpc::Layer::kEnvironment;
  sim::TraceLevel level = sim::TraceLevel::kInfo;
  bool instant = false;
  std::vector<std::pair<std::string, std::string>> args;

  bool open() const { return !instant && end == sim::Time::max(); }
  sim::Time duration() const {
    return open() ? sim::Time::zero() : end - start;
  }
};

/// Span sink. Ids are sequential from 1, timestamps are simulated time, and
/// every mutation is driven by simulated behavior — records are a
/// deterministic function of the seed.
class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Caps the record buffer; further spans are counted in dropped()
  /// instead of stored (instants still reach the hook, so miners keep
  /// working past the cap).
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::uint64_t dropped() const { return dropped_; }

  /// Opens a span. Returns 0 (a safe no-op id) when disabled or at
  /// capacity.
  SpanId begin(sim::Time now, std::string_view name, lpc::Layer layer,
               SpanId parent, sim::TraceLevel level = sim::TraceLevel::kInfo);
  /// Closes an open span; no-op for 0 or unknown ids.
  void end(SpanId id, sim::Time now);
  /// Zero-duration structured event.
  SpanId instant(sim::Time now, std::string_view name, lpc::Layer layer,
                 SpanId parent,
                 sim::TraceLevel level = sim::TraceLevel::kInfo);
  /// As above with args attached atomically, so the hook (and any miner
  /// behind it) sees them — annotate() after instant() is too late for
  /// hook consumers.
  SpanId instant(sim::Time now, std::string_view name, lpc::Layer layer,
                 SpanId parent, sim::TraceLevel level,
                 std::vector<std::pair<std::string, std::string>> args);
  /// Attaches a key-value argument to a live record; no-op for id 0.
  void annotate(SpanId id, std::string_view key, std::string_view value);

  /// Sees every record as it is created (instants) or closed (spans) —
  /// the structured feed the LPC issue miner consumes.
  void set_hook(std::function<void(const SpanRecord&)> hook) {
    hook_ = std::move(hook);
  }

  /// Feeds span open/close/instant edges into a flight recorder. A second,
  /// dedicated slot: the hook above belongs to the issue miner, and the
  /// recorder must see opens (which the hook never does) so a black box
  /// can show what was in progress when it was dumped.
  void set_flight_recorder(FlightRecorder* recorder) { flight_ = recorder; }

  /// Appends every record of `other` with its id (and nonzero parent)
  /// relocated into a per-shard id space:
  ///   id' = ((shard_id + 1) << kShardIdShift) | id.
  /// Parent links are remapped identically, so causal chains survive the
  /// merge intact, and records from different shards can never collide as
  /// long as a shard emits fewer than 2^kShardIdShift spans. Appending
  /// shards in shard order makes the merged buffer deterministic for any
  /// worker count. Respects this tracer's capacity (overflow counts into
  /// dropped()); intended for a fresh, export-only sink.
  void append_shard(const SpanTracer& other, std::uint64_t shard_id);
  static constexpr unsigned kShardIdShift = 40;

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // The whole record buffer round-trips (ids, parents, timestamps, args).
  // Spans still open at the checkpoint survive and are annotated
  // restored=true, marking that their interval straddles a restore. The
  // hook is structural and untouched.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

  const std::vector<SpanRecord>& records() const { return records_; }
  const SpanRecord* find(SpanId id) const;
  std::size_t count_with_name(std::string_view name) const;
  /// Walks parent links from `id` to the root, returning the chain
  /// (including `id` itself, nearest first). Missing ids end the walk.
  std::vector<const SpanRecord*> ancestry(SpanId id) const;
  void clear();

 private:
  bool enabled_ = true;
  std::size_t capacity_ = 1 << 20;
  std::uint64_t dropped_ = 0;
  SpanId next_id_ = 1;
  std::vector<SpanRecord> records_;
  std::unordered_map<SpanId, std::size_t> index_;  // id -> records_ index
  std::function<void(const SpanRecord&)> hook_;
  FlightRecorder* flight_ = nullptr;
};

/// RAII span bound to a world: opens on construction (parenting to the
/// kernel's current trace context), routes the context to itself so nested
/// spans and scheduled events inherit it, and restores everything on
/// destruction. When no tracer is attached the cost is one null check.
class ScopedSpan {
 public:
  ScopedSpan(sim::World& world, std::string_view name, lpc::Layer layer,
             sim::TraceLevel level = sim::TraceLevel::kInfo)
      : world_(world) {
    SpanTracer* t = world.spans();
    if (t == nullptr || !t->enabled()) return;
    tracer_ = t;
    prev_ctx_ = world.sim().trace_context();
    id_ = t->begin(world.now(), name, layer, prev_ctx_, level);
    world.sim().set_trace_context(id_);
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    world_.sim().set_trace_context(prev_ctx_);
    tracer_->end(id_, world_.now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr && id_ != 0; }
  SpanId id() const { return id_; }
  void annotate(std::string_view key, std::string_view value) {
    if (tracer_) tracer_->annotate(id_, key, value);
  }

 private:
  sim::World& world_;
  SpanTracer* tracer_ = nullptr;
  SpanId id_ = 0;
  std::uint64_t prev_ctx_ = 0;
};

/// Instant helper mirroring ScopedSpan's null-safety: one check when off.
inline SpanId emit_instant(sim::World& world, std::string_view name,
                           lpc::Layer layer,
                           sim::TraceLevel level = sim::TraceLevel::kInfo) {
  SpanTracer* t = world.spans();
  if (t == nullptr || !t->enabled()) return 0;
  return t->instant(world.now(), name, layer, world.sim().trace_context(),
                    level);
}

}  // namespace aroma::obs
