// Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing), JSONL
// span logs, and metrics snapshot files.
//
// The trace clock is simulated time in microseconds, so a Perfetto timeline
// of a run is a deterministic artifact of the seed. Each LPC layer renders
// as its own track (tid), named via trace-event metadata.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"

namespace aroma::obs {

/// Serializes spans in Chrome trace-event format ("X" complete events for
/// closed spans, "i" instants; sim-time microseconds). Loadable in Perfetto
/// and chrome://tracing. When a sampler is given, its timeseries tracks are
/// emitted as "C" counter events so metric history renders alongside spans.
std::string to_chrome_trace(const SpanTracer& spans,
                            const TimeseriesSampler* sampler = nullptr);
bool write_chrome_trace(const SpanTracer& spans, const std::string& path,
                        const TimeseriesSampler* sampler = nullptr);

/// One JSON object per record per line: id, parent, name, layer, level,
/// start/end (microseconds), args.
std::string to_jsonl(const SpanTracer& spans);
bool write_jsonl(const SpanTracer& spans, const std::string& path);

/// Writes MetricsRegistry::to_json() with a trailing newline.
bool write_metrics_json(const MetricsRegistry& metrics,
                        const std::string& path);

}  // namespace aroma::obs
