#include "obs/metrics.hpp"

#include <cstdio>

namespace aroma::obs {

std::string_view layer_label(lpc::Layer layer) {
  switch (layer) {
    case lpc::Layer::kEnvironment: return "environment";
    case lpc::Layer::kPhysical: return "physical";
    case lpc::Layer::kResource: return "resource";
    case lpc::Layer::kAbstract: return "abstract";
    case lpc::Layer::kIntentional: return "intentional";
  }
  return "?";
}

Counter& MetricsRegistry::counter(std::string_view name, lpc::Layer layer) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return counters_[it->second.index].metric;
  const Entry e{Kind::kCounter, counters_.size()};
  counters_.push_back(CounterEntry{{std::string(name), layer}, Counter{}});
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, lpc::Layer layer) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return gauges_[it->second.index].metric;
  const Entry e{Kind::kGauge, gauges_.size()};
  gauges_.push_back(GaugeEntry{{std::string(name), layer}, Gauge{}});
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return gauges_.back().metric;
}

sim::Histogram& MetricsRegistry::histogram(std::string_view name,
                                           lpc::Layer layer, double lo,
                                           double hi, std::size_t bins) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return histograms_[it->second.index].metric;
  const Entry e{Kind::kHistogram, histograms_.size()};
  histograms_.emplace_back(MetricInfo{std::string(name), layer}, lo, hi, bins);
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return histograms_.back().metric;
}

void MetricsRegistry::set_counter(std::string_view name, lpc::Layer layer,
                                  std::uint64_t value) {
  Counter& c = counter(name, layer);
  if (value >= c.value()) c.add(value - c.value());
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  struct MergeVisitor final : Visitor {
    explicit MergeVisitor(MetricsRegistry& to) : to(to) {}
    void on_counter(const MetricInfo& info, const Counter& c) override {
      to.counter(info.name, info.layer).add(c.value());
    }
    void on_gauge(const MetricInfo& info, const Gauge& g) override {
      to.gauge(info.name, info.layer).set(g.value());
    }
    void on_histogram(const MetricInfo& info,
                      const sim::Histogram& h) override {
      sim::Histogram& mine =
          to.histogram(info.name, info.layer, h.lo(), h.hi(), h.bin_count());
      mine.merge_from(h);  // throws on shape mismatch
    }
    MetricsRegistry& to;
  } v(*this);
  other.visit(v);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return &counters_[it->second.index].metric;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return &gauges_[it->second.index].metric;
}

const sim::Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return &histograms_[it->second.index].metric;
}

void MetricsRegistry::visit(Visitor& v) const {
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        v.on_counter(counters_[e.index].info, counters_[e.index].metric);
        break;
      case Kind::kGauge:
        v.on_gauge(gauges_[e.index].info, gauges_[e.index].metric);
        break;
      case Kind::kHistogram:
        v.on_histogram(histograms_[e.index].info, histograms_[e.index].metric);
        break;
    }
  }
}

namespace {

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

class JsonVisitor : public MetricsRegistry::Visitor {
 public:
  JsonVisitor(std::string& out, std::string pad) : out_(out), pad_(pad) {}

  void on_counter(const MetricInfo& info, const Counter& c) override {
    open(info, "counter");
    out_ += "\"value\": " + std::to_string(c.value()) + "}";
  }
  void on_gauge(const MetricInfo& info, const Gauge& g) override {
    open(info, "gauge");
    out_ += "\"value\": ";
    json_number(out_, g.value());
    out_ += "}";
  }
  void on_histogram(const MetricInfo& info, const sim::Histogram& h) override {
    open(info, "histogram");
    out_ += "\"count\": " + std::to_string(h.count());
    out_ += ", \"clamped\": " + std::to_string(h.clamped());
    out_ += ", \"p50\": ";
    json_number(out_, h.median());
    out_ += ", \"p99\": ";
    json_number(out_, h.p99());
    out_ += ", \"bins\": [";
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
      if (i) out_ += ", ";
      out_ += std::to_string(h.bin(i));
    }
    out_ += "]}";
  }

  bool first = true;

 private:
  void open(const MetricInfo& info, std::string_view kind) {
    if (!first) out_ += ",";
    first = false;
    out_ += "\n" + pad_;
    json_escape(out_, info.name);
    out_ += ": {\"layer\": ";
    json_escape(out_, layer_label(info.layer));
    out_ += ", \"kind\": \"";
    out_ += kind;
    out_ += "\", ";
  }

  std::string& out_;
  std::string pad_;
};

}  // namespace

std::string MetricsRegistry::to_json(int indent) const {
  std::string out = "{";
  JsonVisitor v(out, std::string(static_cast<std::size_t>(indent), ' '));
  visit(v);
  out += v.first ? "}" : "\n}";
  return out;
}

}  // namespace aroma::obs
