#include "obs/metrics.hpp"

#include <cstdio>

#include "snap/format.hpp"

namespace aroma::obs {

std::string_view layer_label(lpc::Layer layer) {
  switch (layer) {
    case lpc::Layer::kEnvironment: return "environment";
    case lpc::Layer::kPhysical: return "physical";
    case lpc::Layer::kResource: return "resource";
    case lpc::Layer::kAbstract: return "abstract";
    case lpc::Layer::kIntentional: return "intentional";
  }
  return "?";
}

Counter& MetricsRegistry::counter(std::string_view name, lpc::Layer layer) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return counters_[it->second.index].metric;
  const Entry e{Kind::kCounter, counters_.size()};
  counters_.push_back(CounterEntry{{std::string(name), layer}, Counter{}});
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, lpc::Layer layer) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return gauges_[it->second.index].metric;
  const Entry e{Kind::kGauge, gauges_.size()};
  gauges_.push_back(GaugeEntry{{std::string(name), layer}, Gauge{}});
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return gauges_.back().metric;
}

sim::Histogram& MetricsRegistry::histogram(std::string_view name,
                                           lpc::Layer layer, double lo,
                                           double hi, std::size_t bins) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return histograms_[it->second.index].metric;
  const Entry e{Kind::kHistogram, histograms_.size()};
  histograms_.emplace_back(MetricInfo{std::string(name), layer}, lo, hi, bins);
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return histograms_.back().metric;
}

HdrHistogram& MetricsRegistry::hdr(std::string_view name, lpc::Layer layer) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return hdrs_[it->second.index].metric;
  const Entry e{Kind::kHdr, hdrs_.size()};
  hdrs_.push_back(HdrEntry{{std::string(name), layer}, HdrHistogram{}});
  by_name_.emplace(std::string(name), e);
  order_.push_back(e);
  return hdrs_.back().metric;
}

void MetricsRegistry::set_counter(std::string_view name, lpc::Layer layer,
                                  std::uint64_t value) {
  Counter& c = counter(name, layer);
  if (value >= c.value()) c.add(value - c.value());
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  struct MergeVisitor final : Visitor {
    explicit MergeVisitor(MetricsRegistry& to) : to(to) {}
    void on_counter(const MetricInfo& info, const Counter& c) override {
      to.counter(info.name, info.layer).add(c.value());
    }
    void on_gauge(const MetricInfo& info, const Gauge& g) override {
      to.gauge(info.name, info.layer).set(g.value());
    }
    void on_histogram(const MetricInfo& info,
                      const sim::Histogram& h) override {
      sim::Histogram& mine =
          to.histogram(info.name, info.layer, h.lo(), h.hi(), h.bin_count());
      mine.merge_from(h);  // throws on shape mismatch
    }
    void on_hdr(const MetricInfo& info, const HdrHistogram& h) override {
      to.hdr(info.name, info.layer).merge_from(h);
    }
    MetricsRegistry& to;
  } v(*this);
  other.visit(v);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return &counters_[it->second.index].metric;
}

const HdrHistogram* MetricsRegistry::find_hdr(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kHdr) return nullptr;
  return &hdrs_[it->second.index].metric;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return &gauges_[it->second.index].metric;
}

const sim::Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return &histograms_[it->second.index].metric;
}

void MetricsRegistry::visit(Visitor& v) const {
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        v.on_counter(counters_[e.index].info, counters_[e.index].metric);
        break;
      case Kind::kGauge:
        v.on_gauge(gauges_[e.index].info, gauges_[e.index].metric);
        break;
      case Kind::kHistogram:
        v.on_histogram(histograms_[e.index].info, histograms_[e.index].metric);
        break;
      case Kind::kHdr:
        v.on_hdr(hdrs_[e.index].info, hdrs_[e.index].metric);
        break;
    }
  }
}

namespace {

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

class JsonVisitor : public MetricsRegistry::Visitor {
 public:
  JsonVisitor(std::string& out, std::string pad) : out_(out), pad_(pad) {}

  void on_counter(const MetricInfo& info, const Counter& c) override {
    open(info, "counter");
    out_ += "\"value\": " + std::to_string(c.value()) + "}";
  }
  void on_gauge(const MetricInfo& info, const Gauge& g) override {
    open(info, "gauge");
    out_ += "\"value\": ";
    json_number(out_, g.value());
    out_ += "}";
  }
  void on_histogram(const MetricInfo& info, const sim::Histogram& h) override {
    open(info, "histogram");
    out_ += "\"count\": " + std::to_string(h.count());
    out_ += ", \"clamped\": " + std::to_string(h.clamped());
    out_ += ", \"p50\": ";
    json_number(out_, h.median());
    out_ += ", \"p99\": ";
    json_number(out_, h.p99());
    out_ += ", \"bins\": [";
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
      if (i) out_ += ", ";
      out_ += std::to_string(h.bin(i));
    }
    out_ += "]}";
  }
  void on_hdr(const MetricInfo& info, const HdrHistogram& h) override {
    open(info, "hdr");
    out_ += "\"count\": " + std::to_string(h.count());
    out_ += ", \"saturated\": " + std::to_string(h.saturated());
    out_ += ", \"min\": " + std::to_string(h.min());
    out_ += ", \"max\": " + std::to_string(h.max());
    out_ += ", \"mean\": ";
    json_number(out_, h.mean());
    out_ += ", \"p50\": " + std::to_string(h.p50());
    out_ += ", \"p99\": " + std::to_string(h.p99());
    out_ += ", \"p999\": " + std::to_string(h.p999()) + "}";
  }

  bool first = true;

 private:
  void open(const MetricInfo& info, std::string_view kind) {
    if (!first) out_ += ",";
    first = false;
    out_ += "\n" + pad_;
    json_escape(out_, info.name);
    out_ += ": {\"layer\": ";
    json_escape(out_, layer_label(info.layer));
    out_ += ", \"kind\": \"";
    out_ += kind;
    out_ += "\", ";
  }

  std::string& out_;
  std::string pad_;
};

}  // namespace

void MetricsRegistry::save(snap::SectionWriter& w) const {
  w.u64(order_.size());
  for (const Entry& e : order_) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case Kind::kCounter: {
        const CounterEntry& c = counters_[e.index];
        w.str(c.info.name);
        w.u8(static_cast<std::uint8_t>(c.info.layer));
        w.u64(c.metric.value());
        break;
      }
      case Kind::kGauge: {
        const GaugeEntry& g = gauges_[e.index];
        w.str(g.info.name);
        w.u8(static_cast<std::uint8_t>(g.info.layer));
        w.f64(g.metric.value());
        break;
      }
      case Kind::kHistogram: {
        const HistogramEntry& h = histograms_[e.index];
        w.str(h.info.name);
        w.u8(static_cast<std::uint8_t>(h.info.layer));
        w.f64(h.metric.lo());
        w.f64(h.metric.hi());
        w.u64(h.metric.bin_count());
        w.u64(h.metric.count());
        w.u64(h.metric.clamped());
        for (std::size_t i = 0; i < h.metric.bin_count(); ++i) {
          w.u64(h.metric.bin(i));
        }
        break;
      }
      case Kind::kHdr: {
        const HdrEntry& h = hdrs_[e.index];
        w.str(h.info.name);
        w.u8(static_cast<std::uint8_t>(h.info.layer));
        h.metric.save(w);
        break;
      }
    }
  }
}

void MetricsRegistry::restore(snap::SectionReader& r) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto kind = static_cast<Kind>(r.u8());
    const std::string name = r.str();
    const auto layer = static_cast<lpc::Layer>(r.u8());
    switch (kind) {
      case Kind::kCounter:
        counter(name, layer).set(r.u64());
        break;
      case Kind::kGauge:
        gauge(name, layer).set(r.f64());
        break;
      case Kind::kHistogram: {
        const double lo = r.f64();
        const double hi = r.f64();
        const std::uint64_t bins = r.u64();
        const std::uint64_t total = r.u64();
        const std::uint64_t clamped = r.u64();
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(bins));
        for (auto& c : counts) c = r.u64();
        sim::Histogram& h =
            histogram(name, layer, lo, hi, static_cast<std::size_t>(bins));
        if (h.lo() != lo || h.hi() != hi ||
            h.bin_count() != static_cast<std::size_t>(bins)) {
          throw snap::SnapError("histogram " + name +
                                " shape differs from checkpoint");
        }
        h.load_counts(counts, total, clamped);
        break;
      }
      case Kind::kHdr:
        hdr(name, layer).restore(r);
        break;
      default:
        throw snap::SnapError("unknown metric kind in checkpoint");
    }
  }
}

std::string MetricsRegistry::to_json(int indent) const {
  std::string out = "{";
  JsonVisitor v(out, std::string(static_cast<std::size_t>(indent), ' '));
  visit(v);
  out += v.first ? "}" : "\n}";
  return out;
}

}  // namespace aroma::obs
