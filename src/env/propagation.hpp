// Radio propagation and 2.4 GHz band modelling.
//
// The Aroma prototype ran over a 2.4 GHz wireless LAN; the paper's
// environment-layer discussion is dominated by its properties: limited
// range, interference from co-located devices, and channel overlap. This
// module provides the standard log-distance path-loss model with lognormal
// shadowing, thermal noise, and IEEE-802.11b-style channel overlap factors.
#pragma once

#include <cstdint>
#include <vector>

#include "env/geometry.hpp"

namespace aroma::env {

/// dBm <-> milliwatt conversions.
double dbm_to_mw(double dbm);
double mw_to_dbm(double mw);

/// Thermal noise floor for a receiver: -174 dBm/Hz + 10*log10(bandwidth_hz)
/// + noise_figure_db.
double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db);

/// 2.4 GHz ISM band channels (1..13). Channels are 5 MHz apart but ~22 MHz
/// wide, so nearby channels partially overlap. Returns the fraction of a
/// transmission's power that lands in a receiver's channel: 1.0 co-channel,
/// decreasing linearly to 0.0 at a separation of 5 channels (the classic
/// 1/6/11 non-overlap rule).
double channel_overlap(int tx_channel, int rx_channel);

/// Center frequency in MHz of a 2.4 GHz channel.
double channel_center_mhz(int channel);

/// Log-distance path loss with deterministic per-link lognormal shadowing.
///
/// PL(d) = PL(d0) + 10 * n * log10(d / d0) + X_sigma, where X_sigma is a
/// zero-mean normal draw that is a *pure function* of (seed, link id pair),
/// so the same link always sees the same shadowing in a given world.
class PathLossModel {
 public:
  struct Params {
    double exponent = 3.0;        // indoor office: 2.7 - 3.5
    double ref_loss_db = 40.0;    // loss at d0 = 1 m for 2.4 GHz
    double ref_distance_m = 1.0;
    double shadowing_sigma_db = 4.0;
    std::uint64_t seed = 1;       // world seed for shadowing draws
  };

  /// Memo effectiveness counters (telemetry; see RadioMedium::
  /// publish_metrics). A "hit" returns a cached value untouched; a guard
  /// mismatch (node moved, power changed) recomputes and counts as a miss.
  struct CacheStats {
    std::uint64_t link_hits = 0;
    std::uint64_t link_misses = 0;
    std::uint64_t shadow_hits = 0;
    std::uint64_t shadow_misses = 0;
  };

  PathLossModel() : PathLossModel(Params{}) {}
  explicit PathLossModel(Params p) : p_(p) {}

  const Params& params() const { return p_; }
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Path loss in dB between two points for the (a, b) link. Link ids make
  /// the shadowing reciprocal and stable; pass 0,0 to disable shadowing.
  double loss_db(Vec2 from, Vec2 to, std::uint64_t id_a = 0,
                 std::uint64_t id_b = 0) const;

  /// Received power in dBm given transmit power, positions, and link ids.
  /// Memoized per (id_a, id_b) link: repeated queries with unchanged
  /// positions and power (the common case — static nodes, periodic CCA)
  /// return the cached, bit-identical value without redoing the path math.
  double received_dbm(double tx_dbm, Vec2 from, Vec2 to, std::uint64_t id_a = 0,
                      std::uint64_t id_b = 0) const;

  /// dbm_to_mw(received_dbm(...)), memoized the same way — the interference
  /// and CCA paths sum milliwatts, and the pow() is as hot as the path loss.
  double received_mw(double tx_dbm, Vec2 from, Vec2 to, std::uint64_t id_a = 0,
                     std::uint64_t id_b = 0) const;

  /// Distance at which received power falls to `sensitivity_dbm`, ignoring
  /// shadowing (used for ranging sweeps).
  double nominal_range_m(double tx_dbm, double sensitivity_dbm) const;

  /// Hard upper bound on |shadowing_db| for any link. The Irwin-Hall(4)
  /// draw keeps z strictly inside (-2*sqrt(3), 2*sqrt(3)), so shadowing can
  /// never exceed 2*sqrt(3)*sigma — which makes exact conservative range
  /// culling possible (see RadioMedium's spatial index).
  double shadowing_bound_db() const;

 private:
  double shadowing_db(std::uint64_t id_a, std::uint64_t id_b) const;
  double shadowing_db_uncached(std::uint64_t lo, std::uint64_t hi) const;

  Params p_;

  // Per-link shadowing memo: the draw is a pure function of (seed, lo, hi),
  // so caching returns bit-identical values while skipping the hash chain on
  // the hot delivery/CCA paths. Open-addressed, insert-only; grown on load.
  // Not safe for concurrent queries on one instance (each simulated world
  // owns its own copy, and worlds are single-threaded).
  struct ShadowEntry {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    double db = 0.0;
    bool used = false;
  };
  mutable std::vector<ShadowEntry> shadow_cache_;
  mutable std::size_t shadow_cache_size_ = 0;

  // Directed per-link received-power memo. The guard fields (positions and
  // tx power) are compared exactly on every hit, so moving nodes simply
  // refresh their entry — correctness never depends on staleness.
  struct LinkEntry {
    std::uint64_t id_a = 0;
    std::uint64_t id_b = 0;
    Vec2 from;
    Vec2 to;
    double tx_dbm = 0.0;
    double rx_dbm = 0.0;
    double rx_mw = 0.0;
    bool mw_valid = false;  // rx_mw computed lazily from rx_dbm
    bool used = false;
  };
  /// Finds (or fills) the link cache entry, re-deriving rx_dbm if the guard
  /// fields changed. Returns nullptr for the uncacheable (0, 0) link.
  LinkEntry* link_lookup(double tx_dbm, Vec2 from, Vec2 to, std::uint64_t id_a,
                         std::uint64_t id_b) const;
  mutable std::vector<LinkEntry> link_cache_;
  mutable std::size_t link_cache_size_ = 0;
  mutable CacheStats cache_stats_;
};

/// Computes SINR in dB from signal, interference (mW sum), and noise.
double sinr_db(double signal_dbm, double interference_mw, double noise_dbm);

/// Minimal SINR required to decode at a given 802.11b-era bitrate.
/// Piecewise thresholds: 1 Mb/s: 4 dB, 2 Mb/s: 7 dB, 5.5 Mb/s: 9 dB,
/// 11 Mb/s: 12 dB (interpolated for other rates).
double required_sinr_db(double bitrate_bps);

}  // namespace aroma::env
