// The shared wireless medium: who hears what, and how well.
//
// All radios in a world attach to one RadioMedium. A transmission occupies
// the medium for bits/bitrate seconds; at its end the medium decides, for
// every attached radio, whether the frame was decodable given path loss,
// channel overlap, accumulated co-channel interference (weighted by time
// overlap), thermal noise, and half-duplex constraints. The medium also
// answers clear-channel-assessment queries for CSMA MACs.
//
// Hot-path indexing (Options::spatial_index, on by default):
//  - A uniform spatial hash grid over endpoint positions lets frame
//    delivery cull receivers by a conservative sensitivity radius instead
//    of scanning every attached endpoint. Shadowing is bounded (see
//    PathLossModel::shadowing_bound_db), so the cull is exact: a culled
//    receiver provably cannot clear its sensitivity threshold. Positions
//    are pure functions of time, so the grid is rebuilt lazily, at most
//    once per distinct query timestamp.
//  - Per-channel transmission logs restrict CCA/interference scans to
//    same/adjacent-channel traffic (channel overlap is zero at a
//    separation of 5+), and a per-sender log answers the half-duplex
//    check without walking the whole history.
// Candidate sets are always re-sorted into attach/id order before use, so
// delivery order and floating-point summation order — and therefore
// MediumStats and every downstream metric — are bit-identical to the
// exhaustive reference scans (asserted by env_test and the benches).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "env/geometry.hpp"
#include "env/propagation.hpp"
#include "sim/arena.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::env {

/// Static radio parameters a MAC/transceiver exposes to the medium.
struct RadioConfig {
  std::uint64_t id = 0;             // unique per radio in a world
  int channel = 1;                  // 2.4 GHz channel 1..13
  double sensitivity_dbm = -90.0;   // below this a frame is noise
  double cca_threshold_dbm = -85.0; // carrier-sense busy threshold
  double bandwidth_hz = 22e6;       // 802.11b-style channel width
  double noise_figure_db = 7.0;
};

/// Outcome of one frame at one receiver, reported at frame end.
struct FrameDelivery {
  std::uint64_t tx_id = 0;
  std::uint64_t sender_radio = 0;
  double rssi_dbm = -300.0;
  double sinr_db = -300.0;
  bool decodable = false;
  sim::Time start;
  sim::Time end;
  std::size_t bits = 0;
  double bitrate_bps = 0.0;
  std::shared_ptr<const void> payload;  // opaque to the medium; MAC decodes
};

/// Interface a radio implements to participate in the medium.
class RadioEndpoint {
 public:
  virtual ~RadioEndpoint() = default;
  virtual Vec2 position() const = 0;
  virtual const RadioConfig& radio_config() const = 0;
  /// False while the radio is off or transmitting (half duplex).
  virtual bool receiver_enabled() const = 0;
  /// Invoked at the end of every frame whose RSSI clears sensitivity.
  virtual void on_frame(const FrameDelivery& delivery) = 0;
  /// Hard bound on how fast this endpoint can move (see
  /// MobilityModel::max_speed_mps). Lets the medium's spatial grid age
  /// instead of rebuilding at every timestamp; infinity is always safe.
  virtual double max_speed_mps() const {
    return std::numeric_limits<double>::infinity();
  }

 private:
  friend class RadioMedium;
  // Lookup memo: this endpoint's index in the medium's endpoint table,
  // valid while the epoch matches the medium's ep_map_epoch_ (attach/
  // detach bumps it). Lets CCA skip a hash find per query.
  mutable std::uint32_t medium_ep_idx_ = 0;
  mutable std::uint64_t medium_ep_epoch_ = 0;
};

/// Medium-wide counters for experiments.
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries_attempted = 0;  // RSSI above sensitivity
  std::uint64_t deliveries_decodable = 0;
  std::uint64_t losses_sinr = 0;           // drowned by interference/noise
  std::uint64_t losses_half_duplex = 0;    // receiver was transmitting
  std::uint64_t losses_rx_off = 0;
};

/// Tuning knobs for RadioMedium's hot-path indexing (namespace-scope so it
/// can serve as a default argument).
struct RadioMediumOptions {
  /// Use the spatial grid + channel/sender logs. Off = exhaustive scans
  /// (the reference implementation; kept for equivalence testing).
  bool spatial_index = true;
  /// Grid cell edge in meters; 0 picks a default sized for indoor cells.
  double cell_size_m = 0.0;
  /// Batched link resolution: frame-end fan-out and CCA resolve link
  /// budgets through resolve_links() — one sweep over a dense per-pair
  /// memo with per-sender sweep caching — instead of one memoized model
  /// call per (candidate, frame). Off = the per-delivery scalar path (the
  /// reference; kept for equivalence testing and the bench speedup gate).
  /// Results are bit-identical either way (asserted by env_test).
  bool batch = true;
};

/// One directed link-budget question for RadioMedium::resolve_links.
struct LinkQuery {
  double tx_power_dbm = 0.0;
  Vec2 from;
  Vec2 to;
  std::uint64_t from_id = 0;
  std::uint64_t to_id = 0;
  int tx_channel = 1;
  int rx_channel = 1;
};

/// Answer to one LinkQuery. All four values are bit-identical to what the
/// scalar delivery path computes from the same inputs.
struct LinkResult {
  double rx_dbm = 0.0;    ///< path-model received power, before overlap
  double rx_mw = 0.0;     ///< dbm_to_mw(rx_dbm)
  double overlap = 0.0;   ///< channel_overlap(tx_channel, rx_channel)
  double rssi_dbm = 0.0;  ///< rx_dbm + 10*log10(max(overlap, 1e-12))
};

class RadioMedium {
 public:
  using Options = RadioMediumOptions;

  RadioMedium(sim::World& world, PathLossModel model,
              Options options = Options());

  void attach(RadioEndpoint* endpoint);
  void detach(RadioEndpoint* endpoint);
  std::size_t attached_count() const { return endpoints_.size(); }

  /// Starts a frame on the air. Returns the transmission id; the sender's
  /// own on_frame is never invoked for it. The sender must keep
  /// receiver_enabled() false for the duration (enforced by phys layer).
  std::uint64_t transmit(RadioEndpoint& sender, std::size_t bits,
                         double bitrate_bps, double tx_power_dbm,
                         std::shared_ptr<const void> payload);

  /// Clear-channel assessment: total in-flight energy at `ep`'s position on
  /// its channel exceeds its CCA threshold.
  bool carrier_busy(const RadioEndpoint& ep) const;
  /// As above with the config and position already in hand — lets a
  /// concrete endpoint (which knows its own fields) skip the virtual
  /// getters on the per-backoff-slot CCA path.
  bool carrier_busy_at(const RadioEndpoint& ep, const RadioConfig& cfg,
                       Vec2 pos) const;

  /// In-flight energy (dBm) at a position on a channel; -inf-ish when idle.
  double energy_at(Vec2 pos, int channel, std::uint64_t observer_id) const;

  /// Resolves `queries.size()` link budgets in one pass. Results land in
  /// `results` (which must be at least as long). Queries whose endpoints
  /// are both attached hit the dense per-pair memo; others fall back to the
  /// path-loss model's open-addressed memo. Values are bit-identical to
  /// per-call scalar resolution from the same inputs (asserted by
  /// env_test's batch-equivalence property suite).
  void resolve_links(std::span<const LinkQuery> queries,
                     std::span<LinkResult> results) const;

  /// Batching efficacy counters (telemetry; reported by bench/kernel_bench
  /// under "batching"). All zero while Options::batch is off.
  struct BatchStats {
    std::uint64_t resolve_calls = 0;     ///< resolve_links invocations
    std::uint64_t queries = 0;           ///< link queries across all calls
    std::uint64_t memo_hits = 0;         ///< dense-memo guard matches
    std::uint64_t memo_misses = 0;       ///< dense-memo recomputes
    std::uint64_t fallback_queries = 0;  ///< endpoints not in the dense memo
    std::uint64_t sweep_hits = 0;        ///< frame fan-outs replayed from a
                                         ///< cached per-sender sweep
    std::uint64_t sweep_misses = 0;      ///< fan-outs that rebuilt the sweep
    std::uint64_t cca_hits = 0;          ///< CCA scans answered from the
                                         ///< per-observer energy cache
    std::uint64_t cca_misses = 0;        ///< CCA scans that walked in-flight
  };
  const BatchStats& batch_stats() const { return batch_stats_; }

  const MediumStats& stats() const { return stats_; }
  const PathLossModel& path_loss() const { return model_; }
  const Options& options() const { return options_; }

  /// Publishes pull-style metrics (path-loss memo hit/miss counters) to the
  /// world's registry, if one is attached. The live counters (transmissions,
  /// deliveries, losses) are pushed as they happen and need no call here.
  void publish_metrics();

  /// Must be called if an endpoint's position or radio config changes in a
  /// way its max_speed_mps() bound does not cover (e.g. a teleport via
  /// StaticMobility::set_position, or a sensitivity/channel change).
  /// attach/detach call this automatically. Also drops the batch path's
  /// endpoint snapshot and per-sender sweep caches.
  void invalidate_positions() {
    grid_valid_ = false;
    ep_cache_valid_ = false;
  }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // In-flight transmissions hold frame-end events and opaque payload
  // pointers, so they are never serialized: checkpoints are only taken when
  // the air is clear (no transmission whose end is still in the future).
  // History entries that have already ended are pure logs — they can never
  // overlap a post-restore frame — so restore simply clears them.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct Transmission {
    std::uint64_t id;
    std::uint64_t sender_id;
    Vec2 sender_pos;   // captured at start (sender may move afterwards)
    int channel;
    double power_dbm;
    sim::Time start;
    sim::Time end;
    std::size_t bits;
    double bitrate_bps;
    std::shared_ptr<const void> payload;  // released when the frame ends
    std::uint64_t span = 0;  // obs span covering the frame's airtime
    // Cached endpoint index of the sender for the dense link memo; valid
    // while sender_map_epoch matches ep_map_epoch_ (attach/detach bumps it).
    mutable std::uint32_t sender_idx = 0;
    mutable std::uint64_t sender_map_epoch = 0;
  };

  /// Ids drawn from the owning world's arena (heap passthrough until the
  /// log is rebound; see sim/arena.hpp).
  using IdVector =
      std::vector<std::uint64_t, sim::ArenaAllocator<std::uint64_t>>;

  /// Append-only id log with a lazily advancing head so pruned ids are
  /// skipped without O(n) erasure.
  struct IdLog {
    IdLog() = default;
    explicit IdLog(sim::Arena* arena)
        : ids(sim::ArenaAllocator<std::uint64_t>(arena)) {}

    IdVector ids;
    std::size_t head = 0;

    void push(std::uint64_t id) { ids.push_back(id); }
    void drop_before(std::uint64_t first_id) {
      while (head < ids.size() && ids[head] < first_id) ++head;
      if (head > 64 && head * 2 > ids.size()) {
        ids.erase(ids.begin(),
                  ids.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  void finish(std::uint64_t tx_id);
  void deliver(const Transmission& tx, RadioEndpoint& ep);
  /// Tail of deliver() once the RSSI is known to clear sensitivity: stats,
  /// half-duplex/receiver/SINR verdict, on_frame. Shared by the scalar and
  /// batched fan-out paths (same code => identical side effects).
  void deliver_prepared(const Transmission& tx, RadioEndpoint& ep,
                        double rssi);
  /// Batched frame-end fan-out: candidate cull against the cached endpoint
  /// snapshot, one resolve_links sweep (or a cached per-sender sweep
  /// replay), then deliver_prepared for the passers.
  void finish_batched(const Transmission& tx);
  double interference_mw(const Transmission& tx, const RadioEndpoint& rx) const;
  bool sender_transmitted_during(std::uint64_t sender_id, sim::Time start,
                                 sim::Time end) const;
  void prune_history();

  /// History lookup by id (history ids are contiguous and ascending).
  const Transmission* find_tx(std::uint64_t id) const;
  std::uint64_t first_history_id() const {
    return history_.empty() ? next_tx_id_ : history_.front().id;
  }

  /// Channel bucket: clamps any int channel into the log array.
  static std::size_t channel_bucket(int channel);
  /// Ids of history transmissions on channels overlapping `channel`,
  /// ascending (== history scan order). Result lives in scratch_ids_.
  const std::vector<std::uint64_t>& overlapping_channel_ids(int channel) const;
  /// Ids of *in-flight or not-yet-started* transmissions on channels
  /// overlapping `channel`, ascending. Finished entries are dropped from
  /// the active lists permanently as they are encountered, so the per-CCA
  /// cost tracks the number of live transmissions, not the history window.
  const std::vector<std::uint64_t>& active_channel_ids(int channel,
                                                       sim::Time now) const;

  void rebuild_grid() const;
  double cull_radius_m(double tx_power_dbm) const;

  // --- batch path (Options::batch) ----------------------------------------
  /// Rebuilds the id->index map, dense memo shape, and sweep slots after
  /// attach/detach. Inline no-op once valid — this guards every batch-path
  /// entry point, including the per-backoff-slot CCA.
  void ensure_ep_map() const {
    if (!ep_map_valid_) rebuild_ep_map();
  }
  void rebuild_ep_map() const;
  /// Snapshots every endpoint's position + config at the current timestamp
  /// (skipped entirely when no endpoint can move). Bumps ep_epoch_ — which
  /// invalidates the per-sender sweeps — only when a value actually changed.
  void refresh_endpoint_cache() const;
  /// Resolves one query through the dense memo (or the model fallback).
  void resolve_one(const LinkQuery& q, LinkResult& r) const;
  /// The sender's endpoint index, memoized on the transmission record.
  /// Returns false when the sender is not attached (dense memo unusable).
  bool tx_sender_index(const Transmission& tx, std::uint32_t& idx) const;
  struct DenseLink;
  /// Returns the dense memo entry for the directed pair (fi -> oi) with
  /// rx_dbm/rx_mw valid, recomputing if the guards mismatch.
  DenseLink& dense_fill(std::uint32_t fi, std::uint32_t oi, double tx_dbm,
                        Vec2 from, Vec2 to, std::uint64_t from_id,
                        std::uint64_t to_id) const;
  /// Sentinel endpoint index: "not attached / dense memo unusable".
  static constexpr std::uint32_t kNoEpIdx = 0xffffffffu;
  /// The observer's endpoint index, memoized on the endpoint itself
  /// (epoch-validated). Caller must have run ensure_ep_map().
  std::uint32_t observer_index(const RadioEndpoint& ep,
                               std::uint64_t id) const;
  /// Batched CCA body with the observer index already resolved.
  double energy_at_batched(Vec2 pos, int channel, std::uint64_t observer_id,
                           std::uint32_t oi) const;

  sim::World& world_;
  PathLossModel model_;
  Options options_;
  std::vector<RadioEndpoint*> endpoints_;
  // Transmission log: active + recently finished frames in id order. Backed
  // by the world's arena — the deque's fixed-size buffer nodes recycle
  // through one free list as frames are pushed and pruned, so steady-state
  // traffic costs no heap calls.
  std::deque<Transmission, sim::ArenaAllocator<Transmission>> history_;
  sim::Time max_duration_ = sim::Time::zero();
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;

  // Telemetry handles, resolved once at construction; null when no registry
  // is attached to the world (the disabled-telemetry fast path).
  obs::Counter* m_transmissions_ = nullptr;
  obs::Counter* m_attempted_ = nullptr;
  obs::Counter* m_decodable_ = nullptr;
  obs::Counter* m_loss_sinr_ = nullptr;
  obs::Counter* m_loss_half_duplex_ = nullptr;
  obs::Counter* m_loss_rx_off_ = nullptr;

  // --- indices (all derived data; rebuilt or pruned lazily) ---------------
  static constexpr std::size_t kChannelBuckets = 15;  // 0..14, 1..13 typical
  mutable std::array<IdLog, kChannelBuckets> by_channel_;
  mutable std::array<IdVector, kChannelBuckets> active_by_channel_;
  mutable std::unordered_map<std::uint64_t, IdLog> by_sender_;
  mutable std::vector<std::uint64_t> scratch_ids_;

  // Spatial index: (cell key, endpoint index) pairs sorted by key, rebuilt
  // flat so steady-state queries never allocate. The grid is allowed to age
  // while every endpoint's possible displacement (max speed bound * elapsed
  // time) stays under one cell edge; queries pad the cull radius by that
  // drift, so staleness never costs exactness — only extra candidates.
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> grid_;
  mutable std::vector<std::uint32_t> scratch_candidates_;
  mutable sim::Time grid_time_ = sim::Time::zero();
  mutable bool grid_valid_ = false;
  mutable double min_sensitivity_dbm_ = 0.0;    // refreshed on rebuild
  mutable double grid_speed_bound_mps_ = 0.0;   // max over endpoints
  mutable double grid_drift_m_ = 0.0;           // pad for the current query
  double cell_size_m_ = 16.0;

  // --- batch-path caches (all derived data; see ensure_ep_map /
  // refresh_endpoint_cache) ------------------------------------------------
  /// Dense memo rows/cols are endpoint indices; above this endpoint count
  /// the O(n^2) table is not worth its memory and queries fall back to the
  /// model's open-addressed memo.
  static constexpr std::size_t kDenseMemoMaxEndpoints = 512;

  /// Per-endpoint snapshot: position + the config fields the fan-out needs,
  /// so the batched sweep touches no virtual calls per candidate.
  struct EpSnap {
    Vec2 pos;
    std::uint64_t id = 0;
    int channel = 1;
    double sensitivity_dbm = 0.0;
    double max_speed_mps = 0.0;
  };
  /// Directed per-pair link memo, indexed [from_idx * n + to_idx]. Guard
  /// fields are compared exactly on every use, so motion or power changes
  /// refresh the entry — correctness never depends on staleness.
  struct DenseLink {
    double tx_dbm = 0.0;
    Vec2 from;
    Vec2 to;
    double rx_dbm = 0.0;
    double rx_mw = 0.0;
    std::uint8_t state = 0;  // 0 empty, 1 rx_dbm valid, 2 rx_mw too
  };
  /// Memoized energy_at() answer for one observer. In-flight energy at a
  /// fixed position is piecewise-constant in time: it only changes when an
  /// overlapping-channel transmission starts (transmit() bumps the
  /// cca_activity_seq_ of every bucket it can reach) or a contributor
  /// crosses its end timestamp (bounded by valid_until, the earliest
  /// contributing end). Within one piece the cached sum is the
  /// bit-identical scan result.
  /// Field order packs the entry into one 64-byte cache line.
  struct CcaEntry {
    std::uint64_t seq = 0;      // observer-bucket cca_activity_seq_ at compute
    std::uint64_t id = 0;       // observer id (guards idx reuse)
    Vec2 pos;
    sim::Time t;                // compute timestamp
    sim::Time valid_until;      // exclusive: earliest contributing tx end
    double value_dbm = 0.0;
    int channel = 0;
    bool exact_only = false;    // a tx started at exactly t; value differs
                                // for any later query
  };
  static_assert(sizeof(CcaEntry) == 64);

  /// Cached frame fan-out for one sender: the (receiver index, rssi) pairs
  /// that cleared sensitivity, valid while the guards match and no endpoint
  /// state changed (epoch). Static worlds build each sender's sweep once.
  struct SenderSweep {
    std::uint64_t epoch = 0;
    double power_dbm = 0.0;
    int channel = 0;
    Vec2 pos;
    bool valid = false;
    std::vector<std::pair<std::uint32_t, double>> passers;
  };

  mutable std::unordered_map<std::uint64_t, std::uint32_t> ep_index_;
  mutable std::vector<EpSnap> ep_cache_;
  mutable std::vector<DenseLink> dense_;
  mutable std::size_t dense_n_ = 0;  // 0 = dense memo disabled
  mutable std::vector<SenderSweep> sweeps_;
  mutable bool ep_map_valid_ = false;
  mutable std::uint64_t ep_map_epoch_ = 0;
  mutable bool ep_cache_valid_ = false;
  mutable sim::Time ep_cache_time_;
  mutable double ep_speed_bound_mps_ = 0.0;
  mutable std::uint64_t ep_epoch_ = 0;  // bumps when any snapshot changes
  mutable std::vector<LinkQuery> batch_queries_;
  mutable std::vector<LinkResult> batch_results_;
  mutable std::vector<std::uint32_t> batch_idx_;
  // Fan-out passers for the frame currently being finished. A member (not a
  // local) so its capacity survives across frames; iterated by index because
  // an on_frame callback may attach/detach and rebuild sweeps_ under us.
  mutable std::vector<std::pair<std::uint32_t, double>> scratch_passers_;
  mutable std::vector<CcaEntry> cca_cache_;  // indexed by endpoint index
  /// Per-channel-bucket transmit counters: transmit() bumps every bucket
  /// its channel overlaps (sep < 5), so a CCA entry goes stale only when a
  /// transmission that could actually contribute to it has started.
  /// Buckets start at 1 so default CcaEntry{} (seq 0) never matches.
  std::array<std::uint64_t, kChannelBuckets> cca_activity_seq_{};
  /// Transmissions whose frame-end event has not fired yet, ascending id
  /// (ids are monotonic and finish() fires in end order within a moment).
  /// Pointers into history_ stay valid: the deque only pops entries whose
  /// finish already ran. Lets the batch CCA path skip the per-bucket log
  /// walk entirely.
  std::vector<const Transmission*> in_flight_;
  mutable BatchStats batch_stats_;
  /// overlap_db_[sep] = 10*log10(1 - sep/5) for sep 0..4, the exact
  /// expression deliver() evaluates per candidate; overlap_lin_[sep] is
  /// channel_overlap()'s own return value, tabled so the CCA miss walk
  /// skips the out-of-line call.
  std::array<double, 5> overlap_db_{};
  std::array<double, 5> overlap_lin_{};
};

}  // namespace aroma::env
