// The shared wireless medium: who hears what, and how well.
//
// All radios in a world attach to one RadioMedium. A transmission occupies
// the medium for bits/bitrate seconds; at its end the medium decides, for
// every attached radio, whether the frame was decodable given path loss,
// channel overlap, accumulated co-channel interference (weighted by time
// overlap), thermal noise, and half-duplex constraints. The medium also
// answers clear-channel-assessment queries for CSMA MACs.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "env/geometry.hpp"
#include "env/propagation.hpp"
#include "sim/world.hpp"

namespace aroma::env {

/// Static radio parameters a MAC/transceiver exposes to the medium.
struct RadioConfig {
  std::uint64_t id = 0;             // unique per radio in a world
  int channel = 1;                  // 2.4 GHz channel 1..13
  double sensitivity_dbm = -90.0;   // below this a frame is noise
  double cca_threshold_dbm = -85.0; // carrier-sense busy threshold
  double bandwidth_hz = 22e6;       // 802.11b-style channel width
  double noise_figure_db = 7.0;
};

/// Outcome of one frame at one receiver, reported at frame end.
struct FrameDelivery {
  std::uint64_t tx_id = 0;
  std::uint64_t sender_radio = 0;
  double rssi_dbm = -300.0;
  double sinr_db = -300.0;
  bool decodable = false;
  sim::Time start;
  sim::Time end;
  std::size_t bits = 0;
  double bitrate_bps = 0.0;
  std::shared_ptr<const void> payload;  // opaque to the medium; MAC decodes
};

/// Interface a radio implements to participate in the medium.
class RadioEndpoint {
 public:
  virtual ~RadioEndpoint() = default;
  virtual Vec2 position() const = 0;
  virtual const RadioConfig& radio_config() const = 0;
  /// False while the radio is off or transmitting (half duplex).
  virtual bool receiver_enabled() const = 0;
  /// Invoked at the end of every frame whose RSSI clears sensitivity.
  virtual void on_frame(const FrameDelivery& delivery) = 0;
};

/// Medium-wide counters for experiments.
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries_attempted = 0;  // RSSI above sensitivity
  std::uint64_t deliveries_decodable = 0;
  std::uint64_t losses_sinr = 0;           // drowned by interference/noise
  std::uint64_t losses_half_duplex = 0;    // receiver was transmitting
  std::uint64_t losses_rx_off = 0;
};

class RadioMedium {
 public:
  RadioMedium(sim::World& world, PathLossModel model);

  void attach(RadioEndpoint* endpoint);
  void detach(RadioEndpoint* endpoint);
  std::size_t attached_count() const { return endpoints_.size(); }

  /// Starts a frame on the air. Returns the transmission id; the sender's
  /// own on_frame is never invoked for it. The sender must keep
  /// receiver_enabled() false for the duration (enforced by phys layer).
  std::uint64_t transmit(RadioEndpoint& sender, std::size_t bits,
                         double bitrate_bps, double tx_power_dbm,
                         std::shared_ptr<const void> payload);

  /// Clear-channel assessment: total in-flight energy at `ep`'s position on
  /// its channel exceeds its CCA threshold.
  bool carrier_busy(const RadioEndpoint& ep) const;

  /// In-flight energy (dBm) at a position on a channel; -inf-ish when idle.
  double energy_at(Vec2 pos, int channel, std::uint64_t observer_id) const;

  const MediumStats& stats() const { return stats_; }
  const PathLossModel& path_loss() const { return model_; }

 private:
  struct Transmission {
    std::uint64_t id;
    std::uint64_t sender_id;
    Vec2 sender_pos;   // captured at start (sender may move afterwards)
    int channel;
    double power_dbm;
    sim::Time start;
    sim::Time end;
  };

  void finish(const Transmission& tx, std::size_t bits, double bitrate_bps,
              std::shared_ptr<const void> payload);
  double interference_mw(const Transmission& tx, const RadioEndpoint& rx) const;
  void prune_history();

  sim::World& world_;
  PathLossModel model_;
  std::vector<RadioEndpoint*> endpoints_;
  std::deque<Transmission> history_;  // active + recently finished
  sim::Time max_duration_ = sim::Time::zero();
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;
};

}  // namespace aroma::env
