// The shared wireless medium: who hears what, and how well.
//
// All radios in a world attach to one RadioMedium. A transmission occupies
// the medium for bits/bitrate seconds; at its end the medium decides, for
// every attached radio, whether the frame was decodable given path loss,
// channel overlap, accumulated co-channel interference (weighted by time
// overlap), thermal noise, and half-duplex constraints. The medium also
// answers clear-channel-assessment queries for CSMA MACs.
//
// Hot-path indexing (Options::spatial_index, on by default):
//  - A uniform spatial hash grid over endpoint positions lets frame
//    delivery cull receivers by a conservative sensitivity radius instead
//    of scanning every attached endpoint. Shadowing is bounded (see
//    PathLossModel::shadowing_bound_db), so the cull is exact: a culled
//    receiver provably cannot clear its sensitivity threshold. Positions
//    are pure functions of time, so the grid is rebuilt lazily, at most
//    once per distinct query timestamp.
//  - Per-channel transmission logs restrict CCA/interference scans to
//    same/adjacent-channel traffic (channel overlap is zero at a
//    separation of 5+), and a per-sender log answers the half-duplex
//    check without walking the whole history.
// Candidate sets are always re-sorted into attach/id order before use, so
// delivery order and floating-point summation order — and therefore
// MediumStats and every downstream metric — are bit-identical to the
// exhaustive reference scans (asserted by env_test and the benches).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/geometry.hpp"
#include "env/propagation.hpp"
#include "sim/arena.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::env {

/// Static radio parameters a MAC/transceiver exposes to the medium.
struct RadioConfig {
  std::uint64_t id = 0;             // unique per radio in a world
  int channel = 1;                  // 2.4 GHz channel 1..13
  double sensitivity_dbm = -90.0;   // below this a frame is noise
  double cca_threshold_dbm = -85.0; // carrier-sense busy threshold
  double bandwidth_hz = 22e6;       // 802.11b-style channel width
  double noise_figure_db = 7.0;
};

/// Outcome of one frame at one receiver, reported at frame end.
struct FrameDelivery {
  std::uint64_t tx_id = 0;
  std::uint64_t sender_radio = 0;
  double rssi_dbm = -300.0;
  double sinr_db = -300.0;
  bool decodable = false;
  sim::Time start;
  sim::Time end;
  std::size_t bits = 0;
  double bitrate_bps = 0.0;
  std::shared_ptr<const void> payload;  // opaque to the medium; MAC decodes
};

/// Interface a radio implements to participate in the medium.
class RadioEndpoint {
 public:
  virtual ~RadioEndpoint() = default;
  virtual Vec2 position() const = 0;
  virtual const RadioConfig& radio_config() const = 0;
  /// False while the radio is off or transmitting (half duplex).
  virtual bool receiver_enabled() const = 0;
  /// Invoked at the end of every frame whose RSSI clears sensitivity.
  virtual void on_frame(const FrameDelivery& delivery) = 0;
  /// Hard bound on how fast this endpoint can move (see
  /// MobilityModel::max_speed_mps). Lets the medium's spatial grid age
  /// instead of rebuilding at every timestamp; infinity is always safe.
  virtual double max_speed_mps() const {
    return std::numeric_limits<double>::infinity();
  }
};

/// Medium-wide counters for experiments.
struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries_attempted = 0;  // RSSI above sensitivity
  std::uint64_t deliveries_decodable = 0;
  std::uint64_t losses_sinr = 0;           // drowned by interference/noise
  std::uint64_t losses_half_duplex = 0;    // receiver was transmitting
  std::uint64_t losses_rx_off = 0;
};

/// Tuning knobs for RadioMedium's hot-path indexing (namespace-scope so it
/// can serve as a default argument).
struct RadioMediumOptions {
  /// Use the spatial grid + channel/sender logs. Off = exhaustive scans
  /// (the reference implementation; kept for equivalence testing).
  bool spatial_index = true;
  /// Grid cell edge in meters; 0 picks a default sized for indoor cells.
  double cell_size_m = 0.0;
};

class RadioMedium {
 public:
  using Options = RadioMediumOptions;

  RadioMedium(sim::World& world, PathLossModel model,
              Options options = Options());

  void attach(RadioEndpoint* endpoint);
  void detach(RadioEndpoint* endpoint);
  std::size_t attached_count() const { return endpoints_.size(); }

  /// Starts a frame on the air. Returns the transmission id; the sender's
  /// own on_frame is never invoked for it. The sender must keep
  /// receiver_enabled() false for the duration (enforced by phys layer).
  std::uint64_t transmit(RadioEndpoint& sender, std::size_t bits,
                         double bitrate_bps, double tx_power_dbm,
                         std::shared_ptr<const void> payload);

  /// Clear-channel assessment: total in-flight energy at `ep`'s position on
  /// its channel exceeds its CCA threshold.
  bool carrier_busy(const RadioEndpoint& ep) const;

  /// In-flight energy (dBm) at a position on a channel; -inf-ish when idle.
  double energy_at(Vec2 pos, int channel, std::uint64_t observer_id) const;

  const MediumStats& stats() const { return stats_; }
  const PathLossModel& path_loss() const { return model_; }
  const Options& options() const { return options_; }

  /// Publishes pull-style metrics (path-loss memo hit/miss counters) to the
  /// world's registry, if one is attached. The live counters (transmissions,
  /// deliveries, losses) are pushed as they happen and need no call here.
  void publish_metrics();

  /// Must be called if an endpoint's position or radio config changes in a
  /// way its max_speed_mps() bound does not cover (e.g. a teleport via
  /// StaticMobility::set_position, or a sensitivity change). attach/detach
  /// call this automatically.
  void invalidate_positions() { grid_valid_ = false; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // In-flight transmissions hold frame-end events and opaque payload
  // pointers, so they are never serialized: checkpoints are only taken when
  // the air is clear (no transmission whose end is still in the future).
  // History entries that have already ended are pure logs — they can never
  // overlap a post-restore frame — so restore simply clears them.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct Transmission {
    std::uint64_t id;
    std::uint64_t sender_id;
    Vec2 sender_pos;   // captured at start (sender may move afterwards)
    int channel;
    double power_dbm;
    sim::Time start;
    sim::Time end;
    std::size_t bits;
    double bitrate_bps;
    std::shared_ptr<const void> payload;  // released when the frame ends
    std::uint64_t span = 0;  // obs span covering the frame's airtime
  };

  /// Ids drawn from the owning world's arena (heap passthrough until the
  /// log is rebound; see sim/arena.hpp).
  using IdVector =
      std::vector<std::uint64_t, sim::ArenaAllocator<std::uint64_t>>;

  /// Append-only id log with a lazily advancing head so pruned ids are
  /// skipped without O(n) erasure.
  struct IdLog {
    IdLog() = default;
    explicit IdLog(sim::Arena* arena)
        : ids(sim::ArenaAllocator<std::uint64_t>(arena)) {}

    IdVector ids;
    std::size_t head = 0;

    void push(std::uint64_t id) { ids.push_back(id); }
    void drop_before(std::uint64_t first_id) {
      while (head < ids.size() && ids[head] < first_id) ++head;
      if (head > 64 && head * 2 > ids.size()) {
        ids.erase(ids.begin(),
                  ids.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  void finish(std::uint64_t tx_id);
  void deliver(const Transmission& tx, RadioEndpoint& ep);
  double interference_mw(const Transmission& tx, const RadioEndpoint& rx) const;
  bool sender_transmitted_during(std::uint64_t sender_id, sim::Time start,
                                 sim::Time end) const;
  void prune_history();

  /// History lookup by id (history ids are contiguous and ascending).
  const Transmission* find_tx(std::uint64_t id) const;
  std::uint64_t first_history_id() const {
    return history_.empty() ? next_tx_id_ : history_.front().id;
  }

  /// Channel bucket: clamps any int channel into the log array.
  static std::size_t channel_bucket(int channel);
  /// Ids of history transmissions on channels overlapping `channel`,
  /// ascending (== history scan order). Result lives in scratch_ids_.
  const std::vector<std::uint64_t>& overlapping_channel_ids(int channel) const;
  /// Ids of *in-flight or not-yet-started* transmissions on channels
  /// overlapping `channel`, ascending. Finished entries are dropped from
  /// the active lists permanently as they are encountered, so the per-CCA
  /// cost tracks the number of live transmissions, not the history window.
  const std::vector<std::uint64_t>& active_channel_ids(int channel,
                                                       sim::Time now) const;

  void rebuild_grid() const;
  double cull_radius_m(double tx_power_dbm) const;

  sim::World& world_;
  PathLossModel model_;
  Options options_;
  std::vector<RadioEndpoint*> endpoints_;
  // Transmission log: active + recently finished frames in id order. Backed
  // by the world's arena — the deque's fixed-size buffer nodes recycle
  // through one free list as frames are pushed and pruned, so steady-state
  // traffic costs no heap calls.
  std::deque<Transmission, sim::ArenaAllocator<Transmission>> history_;
  sim::Time max_duration_ = sim::Time::zero();
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;

  // Telemetry handles, resolved once at construction; null when no registry
  // is attached to the world (the disabled-telemetry fast path).
  obs::Counter* m_transmissions_ = nullptr;
  obs::Counter* m_attempted_ = nullptr;
  obs::Counter* m_decodable_ = nullptr;
  obs::Counter* m_loss_sinr_ = nullptr;
  obs::Counter* m_loss_half_duplex_ = nullptr;
  obs::Counter* m_loss_rx_off_ = nullptr;

  // --- indices (all derived data; rebuilt or pruned lazily) ---------------
  static constexpr std::size_t kChannelBuckets = 15;  // 0..14, 1..13 typical
  mutable std::array<IdLog, kChannelBuckets> by_channel_;
  mutable std::array<IdVector, kChannelBuckets> active_by_channel_;
  mutable std::unordered_map<std::uint64_t, IdLog> by_sender_;
  mutable std::vector<std::uint64_t> scratch_ids_;

  // Spatial index: (cell key, endpoint index) pairs sorted by key, rebuilt
  // flat so steady-state queries never allocate. The grid is allowed to age
  // while every endpoint's possible displacement (max speed bound * elapsed
  // time) stays under one cell edge; queries pad the cull radius by that
  // drift, so staleness never costs exactness — only extra candidates.
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> grid_;
  mutable std::vector<std::uint32_t> scratch_candidates_;
  mutable sim::Time grid_time_ = sim::Time::zero();
  mutable bool grid_valid_ = false;
  mutable double min_sensitivity_dbm_ = 0.0;    // refreshed on rebuild
  mutable double grid_speed_bound_mps_ = 0.0;   // max over endpoints
  mutable double grid_drift_m_ = 0.0;           // pad for the current query
  double cell_size_m_ = 16.0;
};

}  // namespace aroma::env
