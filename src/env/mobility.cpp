#include "env/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace aroma::env {

RandomWaypointMobility::RandomWaypointMobility(Params p, Vec2 start,
                                               std::uint64_t seed)
    : p_(p), rng_(seed) {
  Segment s;
  s.start = sim::Time::zero();
  s.end = sim::Time::zero();
  s.pause_end = sim::Time::zero();
  s.from = start;
  s.to = start;
  segments_.push_back(s);
}

void RandomWaypointMobility::extend_until(sim::Time t) const {
  while (segments_.back().pause_end < t) {
    const Segment& last = segments_.back();
    Segment next;
    next.from = last.to;
    next.to = Vec2{rng_.uniform(p_.arena.lo.x, p_.arena.hi.x),
                   rng_.uniform(p_.arena.lo.y, p_.arena.hi.y)};
    const double speed = rng_.uniform(p_.min_speed_mps, p_.max_speed_mps);
    const double dist = distance(next.from, next.to);
    next.start = last.pause_end;
    next.end = next.start + sim::Time::sec(dist / std::max(speed, 1e-6));
    next.pause_end = next.end + p_.pause;
    segments_.push_back(next);
  }
}

Vec2 RandomWaypointMobility::position_at(sim::Time t) const {
  extend_until(t);
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](sim::Time tt, const Segment& s) { return tt < s.start; });
  if (it != segments_.begin()) --it;
  const Segment& s = *it;
  if (t >= s.end) return s.to;  // paused at destination
  const double span = (s.end - s.start).seconds();
  if (span <= 0.0) return s.to;
  const double frac = (t - s.start).seconds() / span;
  return s.from + (s.to - s.from) * frac;
}

RandomWalkMobility::RandomWalkMobility(Params p, Vec2 start, std::uint64_t seed)
    : p_(p), rng_(seed) {
  waypoints_.push_back(p_.arena.clamp(start));
}

void RandomWalkMobility::extend_until(sim::Time t) const {
  const double step_s = p_.step.seconds();
  const auto needed =
      static_cast<std::size_t>(t.seconds() / std::max(step_s, 1e-9)) + 2;
  while (waypoints_.size() < needed) {
    const Vec2 cur = waypoints_.back();
    const double theta = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
    Vec2 next = cur + Vec2{std::cos(theta), std::sin(theta)} *
                          (p_.speed_mps * step_s);
    // Reflect off walls.
    if (next.x < p_.arena.lo.x) next.x = 2 * p_.arena.lo.x - next.x;
    if (next.x > p_.arena.hi.x) next.x = 2 * p_.arena.hi.x - next.x;
    if (next.y < p_.arena.lo.y) next.y = 2 * p_.arena.lo.y - next.y;
    if (next.y > p_.arena.hi.y) next.y = 2 * p_.arena.hi.y - next.y;
    waypoints_.push_back(p_.arena.clamp(next));
  }
}

Vec2 RandomWalkMobility::position_at(sim::Time t) const {
  extend_until(t);
  const double step_s = p_.step.seconds();
  const double idx_f = t.seconds() / std::max(step_s, 1e-9);
  const auto idx = static_cast<std::size_t>(idx_f);
  const double frac = idx_f - static_cast<double>(idx);
  const Vec2 a = waypoints_[std::min(idx, waypoints_.size() - 1)];
  const Vec2 b = waypoints_[std::min(idx + 1, waypoints_.size() - 1)];
  return a + (b - a) * frac;
}

}  // namespace aroma::env
