#include "env/radio_medium.hpp"

#include <algorithm>
#include <cmath>

namespace aroma::env {

RadioMedium::RadioMedium(sim::World& world, PathLossModel model)
    : world_(world), model_(model) {}

void RadioMedium::attach(RadioEndpoint* endpoint) {
  endpoints_.push_back(endpoint);
}

void RadioMedium::detach(RadioEndpoint* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
}

std::uint64_t RadioMedium::transmit(RadioEndpoint& sender, std::size_t bits,
                                    double bitrate_bps, double tx_power_dbm,
                                    std::shared_ptr<const void> payload) {
  const auto duration =
      sim::Time::sec(static_cast<double>(bits) / bitrate_bps);
  Transmission tx;
  tx.id = next_tx_id_++;
  tx.sender_id = sender.radio_config().id;
  tx.sender_pos = sender.position();
  tx.channel = sender.radio_config().channel;
  tx.power_dbm = tx_power_dbm;
  tx.start = world_.now();
  tx.end = world_.now() + duration;
  history_.push_back(tx);
  max_duration_ = std::max(max_duration_, duration);
  ++stats_.transmissions;

  world_.sim().schedule_at(tx.end, [this, tx, bits, bitrate_bps,
                                    payload = std::move(payload)]() mutable {
    finish(tx, bits, bitrate_bps, std::move(payload));
  });
  return tx.id;
}

void RadioMedium::finish(const Transmission& tx, std::size_t bits,
                         double bitrate_bps,
                         std::shared_ptr<const void> payload) {
  for (RadioEndpoint* ep : endpoints_) {
    const RadioConfig& cfg = ep->radio_config();
    if (cfg.id == tx.sender_id) continue;
    const double overlap = channel_overlap(tx.channel, cfg.channel);
    if (overlap <= 0.0) continue;
    const double rssi =
        model_.received_dbm(tx.power_dbm, tx.sender_pos, ep->position(),
                            tx.sender_id, cfg.id) +
        10.0 * std::log10(overlap > 0.0 ? overlap : 1e-12);
    if (rssi < cfg.sensitivity_dbm) continue;
    ++stats_.deliveries_attempted;

    FrameDelivery d;
    d.tx_id = tx.id;
    d.sender_radio = tx.sender_id;
    d.rssi_dbm = rssi;
    d.start = tx.start;
    d.end = tx.end;
    d.bits = bits;
    d.bitrate_bps = bitrate_bps;
    d.payload = payload;

    // Half duplex: did this receiver transmit at any point during the frame?
    bool rx_transmitted = false;
    for (const Transmission& other : history_) {
      if (other.sender_id != cfg.id) continue;
      if (other.start < tx.end && other.end > tx.start) {
        rx_transmitted = true;
        break;
      }
    }

    const double noise =
        thermal_noise_dbm(cfg.bandwidth_hz, cfg.noise_figure_db);
    d.sinr_db = sinr_db(rssi, interference_mw(tx, *ep), noise);

    if (rx_transmitted) {
      d.decodable = false;
      ++stats_.losses_half_duplex;
    } else if (!ep->receiver_enabled()) {
      d.decodable = false;
      ++stats_.losses_rx_off;
    } else if (d.sinr_db < required_sinr_db(bitrate_bps)) {
      d.decodable = false;
      ++stats_.losses_sinr;
    } else {
      d.decodable = true;
      ++stats_.deliveries_decodable;
    }
    ep->on_frame(d);
  }
  prune_history();
}

double RadioMedium::interference_mw(const Transmission& tx,
                                    const RadioEndpoint& rx) const {
  const RadioConfig& cfg = rx.radio_config();
  const double span = (tx.end - tx.start).seconds();
  double total_mw = 0.0;
  for (const Transmission& other : history_) {
    if (other.id == tx.id || other.sender_id == tx.sender_id ||
        other.sender_id == cfg.id) {
      continue;
    }
    const sim::Time o_start = std::max(other.start, tx.start);
    const sim::Time o_end = std::min(other.end, tx.end);
    if (o_end <= o_start) continue;
    const double overlap_frac =
        span > 0.0 ? (o_end - o_start).seconds() / span : 1.0;
    const double ch = channel_overlap(other.channel, cfg.channel);
    if (ch <= 0.0) continue;
    const double p_rx = model_.received_dbm(
        other.power_dbm, other.sender_pos, rx.position(), other.sender_id,
        cfg.id);
    total_mw += dbm_to_mw(p_rx) * ch * overlap_frac;
  }
  return total_mw;
}

bool RadioMedium::carrier_busy(const RadioEndpoint& ep) const {
  const RadioConfig& cfg = ep.radio_config();
  return energy_at(ep.position(), cfg.channel, cfg.id) >= cfg.cca_threshold_dbm;
}

double RadioMedium::energy_at(Vec2 pos, int channel,
                              std::uint64_t observer_id) const {
  const sim::Time now = world_.now();
  double total_mw = 0.0;
  for (const Transmission& tx : history_) {
    if (tx.sender_id == observer_id) continue;
    // A transmission starting at this exact instant is not yet sensed:
    // this is the slotted-CSMA vulnerable window that produces real
    // collisions when two stations' backoff counters expire together.
    if (tx.start >= now || tx.end <= now) continue;
    const double ch = channel_overlap(tx.channel, channel);
    if (ch <= 0.0) continue;
    const double p_rx = model_.received_dbm(tx.power_dbm, tx.sender_pos, pos,
                                            tx.sender_id, observer_id);
    total_mw += dbm_to_mw(p_rx) * ch;
  }
  return mw_to_dbm(total_mw);
}

void RadioMedium::prune_history() {
  // Keep anything that could still overlap an in-flight frame.
  const sim::Time cutoff = world_.now() - max_duration_ - max_duration_;
  while (!history_.empty() && history_.front().end < cutoff) {
    history_.pop_front();
  }
}

}  // namespace aroma::env
