#include "env/radio_medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::env {

RadioMedium::RadioMedium(sim::World& world, PathLossModel model,
                         Options options)
    : world_(world), model_(model), options_(options),
      history_(sim::ArenaAllocator<Transmission>(&world.arena())) {
  // Rebind the id logs to the world's arena (they default-construct in heap
  // mode; the allocator propagation traits make move-assignment carry the
  // arena over).
  for (auto& log : by_channel_) log = IdLog(&world.arena());
  for (auto& v : active_by_channel_) {
    v = IdVector(sim::ArenaAllocator<std::uint64_t>(&world.arena()));
  }
  if (options_.cell_size_m > 0.0) cell_size_m_ = options_.cell_size_m;
  // Precompute 10*log10(channel_overlap) per channel separation — the exact
  // expression deliver() evaluates per candidate, so table lookups are
  // bit-identical to the scalar log10 calls.
  for (int sep = 0; sep < 5; ++sep) {
    const double overlap = channel_overlap(0, sep);
    overlap_lin_[static_cast<std::size_t>(sep)] = overlap;
    overlap_db_[static_cast<std::size_t>(sep)] =
        10.0 * std::log10(overlap > 0.0 ? overlap : 1e-12);
  }
  cca_activity_seq_.fill(1);
  const auto layer = lpc::Layer::kEnvironment;
  m_transmissions_ = obs::counter(world_, "env.radio.transmissions", layer);
  m_attempted_ = obs::counter(world_, "env.radio.deliveries_attempted", layer);
  m_decodable_ = obs::counter(world_, "env.radio.deliveries_decodable", layer);
  m_loss_sinr_ = obs::counter(world_, "env.radio.losses_sinr", layer);
  m_loss_half_duplex_ =
      obs::counter(world_, "env.radio.losses_half_duplex", layer);
  m_loss_rx_off_ = obs::counter(world_, "env.radio.losses_rx_off", layer);
}

void RadioMedium::publish_metrics() {
  obs::MetricsRegistry* m = world_.metrics();
  if (m == nullptr) return;
  const auto layer = lpc::Layer::kEnvironment;
  const PathLossModel::CacheStats& cs = model_.cache_stats();
  m->set_counter("env.radio.path_cache.link_hits", layer, cs.link_hits);
  m->set_counter("env.radio.path_cache.link_misses", layer, cs.link_misses);
  m->set_counter("env.radio.path_cache.shadow_hits", layer, cs.shadow_hits);
  m->set_counter("env.radio.path_cache.shadow_misses", layer,
                 cs.shadow_misses);
}

void RadioMedium::attach(RadioEndpoint* endpoint) {
  endpoints_.push_back(endpoint);
  invalidate_positions();
  ep_map_valid_ = false;
}

void RadioMedium::detach(RadioEndpoint* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
  invalidate_positions();
  ep_map_valid_ = false;
}

std::uint64_t RadioMedium::transmit(RadioEndpoint& sender, std::size_t bits,
                                    double bitrate_bps, double tx_power_dbm,
                                    std::shared_ptr<const void> payload) {
  const auto duration =
      sim::Time::sec(static_cast<double>(bits) / bitrate_bps);
  Transmission tx;
  tx.id = next_tx_id_++;
  tx.sender_id = sender.radio_config().id;
  tx.sender_pos = sender.position();
  tx.channel = sender.radio_config().channel;
  tx.power_dbm = tx_power_dbm;
  tx.start = world_.now();
  tx.end = world_.now() + duration;
  tx.bits = bits;
  tx.bitrate_bps = bitrate_bps;
  tx.payload = std::move(payload);
  // The frame's airtime becomes a span parented to whatever caused the
  // transmission (typically a MAC or fault-injection span); the frame-end
  // event inherits the span as its causal context, so everything delivery
  // triggers downstream parents to this frame.
  if (obs::SpanTracer* t = world_.spans(); t != nullptr && t->enabled()) {
    tx.span = t->begin(world_.now(), "env.radio.frame",
                       lpc::Layer::kEnvironment,
                       world_.sim().trace_context());
    t->annotate(tx.span, "sender", std::to_string(tx.sender_id));
    t->annotate(tx.span, "channel", std::to_string(tx.channel));
    t->annotate(tx.span, "bits", std::to_string(tx.bits));
  }
  by_channel_[channel_bucket(tx.channel)].push(tx.id);
  active_by_channel_[channel_bucket(tx.channel)].push_back(tx.id);
  by_sender_.try_emplace(tx.sender_id, &world_.arena())
      .first->second.push(tx.id);
  history_.push_back(std::move(tx));
  in_flight_.push_back(&history_.back());
  // A new contributor: cached CCA answers for every channel this
  // transmission can reach (sep < 5) are stale.
  {
    const int ch = history_.back().channel;
    const std::size_t blo = channel_bucket(ch - 4);
    const std::size_t bhi = channel_bucket(ch + 4);
    for (std::size_t b = blo; b <= bhi; ++b) ++cca_activity_seq_[b];
  }
  max_duration_ = std::max(max_duration_, duration);
  ++stats_.transmissions;
  if (m_transmissions_) m_transmissions_->add();

  // The frame record lives in history_ until pruned; capturing just the id
  // keeps this closure inside Callback's inline buffer (no allocation).
  const std::uint64_t id = history_.back().id;
  sim::ScopedTraceContext ctx(
      world_.sim(), history_.back().span != 0 ? history_.back().span
                                              : world_.sim().trace_context());
  world_.sim().schedule_at(history_.back().end, sim::EventCategory::kRadio,
                           [this, id] { finish(id); });
  return id;
}

const RadioMedium::Transmission* RadioMedium::find_tx(std::uint64_t id) const {
  const std::uint64_t first = first_history_id();
  if (id < first || id >= first + history_.size()) return nullptr;
  return &history_[static_cast<std::size_t>(id - first)];
}

std::size_t RadioMedium::channel_bucket(int channel) {
  if (channel < 0) return 0;
  if (channel >= static_cast<int>(kChannelBuckets)) return kChannelBuckets - 1;
  return static_cast<std::size_t>(channel);
}

const std::vector<std::uint64_t>& RadioMedium::overlapping_channel_ids(
    int channel) const {
  const std::uint64_t first = first_history_id();
  const std::size_t blo = channel_bucket(channel - 4);
  const std::size_t bhi = channel_bucket(channel + 4);
  scratch_ids_.clear();
  for (std::size_t b = blo; b <= bhi; ++b) {
    IdLog& log = by_channel_[b];
    log.drop_before(first);
    scratch_ids_.insert(scratch_ids_.end(), log.ids.begin() + static_cast<std::ptrdiff_t>(log.head),
                        log.ids.end());
  }
  // Ascending id order == history scan order, so floating-point sums over
  // these candidates are bit-identical to the exhaustive reference.
  std::sort(scratch_ids_.begin(), scratch_ids_.end());
  return scratch_ids_;
}

const std::vector<std::uint64_t>& RadioMedium::active_channel_ids(
    int channel, sim::Time now) const {
  const std::size_t blo = channel_bucket(channel - 4);
  const std::size_t bhi = channel_bucket(channel + 4);
  scratch_ids_.clear();
  for (std::size_t b = blo; b <= bhi; ++b) {
    IdVector& active = active_by_channel_[b];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Transmission* tx = find_tx(active[i]);
      // Once a transmission has ended it can never be sensed again: drop it
      // from the active list for good (amortized O(1) per transmission).
      if (!tx || tx->end <= now) continue;
      active[kept++] = active[i];
      scratch_ids_.push_back(active[i]);
    }
    active.resize(kept);
  }
  std::sort(scratch_ids_.begin(), scratch_ids_.end());
  return scratch_ids_;
}

bool RadioMedium::sender_transmitted_during(std::uint64_t sender_id,
                                            sim::Time start,
                                            sim::Time end) const {
  if (!options_.spatial_index) {
    for (const Transmission& other : history_) {
      if (other.sender_id != sender_id) continue;
      if (other.start < end && other.end > start) return true;
    }
    return false;
  }
  const auto it = by_sender_.find(sender_id);
  if (it == by_sender_.end()) return false;
  IdLog& log = it->second;
  log.drop_before(first_history_id());
  for (std::size_t i = log.head; i < log.ids.size(); ++i) {
    const Transmission* other = find_tx(log.ids[i]);
    if (other && other->start < end && other->end > start) return true;
  }
  return false;
}

void RadioMedium::rebuild_grid() const {
  const sim::Time now = world_.now();
  if (grid_valid_) {
    if (grid_time_ == now) return;
    // Let the grid age while the worst-case displacement stays under one
    // cell edge: queries pad the cull radius by the drift, so the cull is
    // still exact. A world of static endpoints rebuilds exactly once.
    const double dt = (now - grid_time_).seconds();
    const double drift = dt * grid_speed_bound_mps_;  // dt > 0, so inf is ok
    if (drift >= 0.0 && drift <= cell_size_m_) {
      grid_drift_m_ = drift;
      return;
    }
  }
  const bool fresh = grid_.size() != endpoints_.size();
  if (fresh) {
    grid_.resize(endpoints_.size());
    for (std::uint32_t i = 0; i < endpoints_.size(); ++i) grid_[i].second = i;
  }
  min_sensitivity_dbm_ = std::numeric_limits<double>::infinity();
  grid_speed_bound_mps_ = 0.0;
  // Refresh keys in the previous sorted order: when nobody moved between
  // rebuilds (the common steady state), the array stays sorted and the sort
  // below is skipped entirely.
  for (auto& [key, idx] : grid_) {
    key = cell_key(cell_of(endpoints_[idx]->position(), cell_size_m_));
    min_sensitivity_dbm_ =
        std::min(min_sensitivity_dbm_,
                 endpoints_[idx]->radio_config().sensitivity_dbm);
    grid_speed_bound_mps_ =
        std::max(grid_speed_bound_mps_, endpoints_[idx]->max_speed_mps());
  }
  if (!std::is_sorted(grid_.begin(), grid_.end())) {
    std::sort(grid_.begin(), grid_.end());
  }
  grid_time_ = now;
  grid_drift_m_ = 0.0;
  grid_valid_ = true;
}

double RadioMedium::cull_radius_m(double tx_power_dbm) const {
  // A receiver needs rssi >= its sensitivity; channel mismatch only
  // subtracts. With |shadowing| < shadowing_bound_db, anything beyond the
  // nominal range at (min sensitivity - bound) provably cannot decode. The
  // 1% slack absorbs floating-point disagreement between the pow() here and
  // the log10() in the exact per-candidate check.
  const double floor_dbm =
      min_sensitivity_dbm_ - model_.shadowing_bound_db();
  return model_.nominal_range_m(tx_power_dbm, floor_dbm) * 1.01 + 1e-6;
}

void RadioMedium::finish(std::uint64_t tx_id) {
  const Transmission* tx = find_tx(tx_id);
  if (!tx) return;  // pruned (cannot happen for live frames; be safe)
  const std::uint64_t span = tx->span;
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i]->id == tx_id) {
      in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }

  if (options_.batch && !endpoints_.empty()) {
    finish_batched(*tx);
  } else if (!options_.spatial_index || endpoints_.empty()) {
    for (RadioEndpoint* ep : endpoints_) deliver(*tx, *ep);
  } else {
    rebuild_grid();
    const double radius = cull_radius_m(tx->power_dbm);
    const double r2 = radius * radius;
    // Grid cells hold positions as of grid_time_; widen the search ring by
    // the worst-case displacement since then. The exact distance check below
    // still uses the unpadded radius against *current* positions.
    const double ring = radius + grid_drift_m_;
    const Vec2 pos = tx->sender_pos;
    scratch_candidates_.clear();
    // A degenerate radius (overflow/NaN from extreme model params) or one
    // spanning more cells than there are radios means indexing can't win:
    // scan everything (still exact, just the reference order).
    bool full_scan = !(ring < 1e7);
    CellCoord c0, c1;
    if (!full_scan) {
      c0 = cell_of({pos.x - ring, pos.y - ring}, cell_size_m_);
      c1 = cell_of({pos.x + ring, pos.y + ring}, cell_size_m_);
      const std::uint64_t span_x = static_cast<std::uint64_t>(c1.x - c0.x) + 1;
      const std::uint64_t span_y = static_cast<std::uint64_t>(c1.y - c0.y) + 1;
      full_scan = span_x * span_y >= endpoints_.size();
    }
    if (full_scan) {
      for (std::uint32_t i = 0; i < endpoints_.size(); ++i) {
        scratch_candidates_.push_back(i);
      }
    } else {
      // cell_key is monotonic in (x, y), so for each x-column the cells
      // [c0.y .. c1.y] are one contiguous key range: one binary search per
      // column instead of one per cell.
      for (std::int32_t cx = c0.x; cx <= c1.x; ++cx) {
        const std::uint64_t klo = cell_key({cx, c0.y});
        const std::uint64_t khi = cell_key({cx, c1.y});
        auto it = std::lower_bound(
            grid_.begin(), grid_.end(), klo,
            [](const auto& entry, std::uint64_t k) { return entry.first < k; });
        for (; it != grid_.end() && it->first <= khi; ++it) {
          scratch_candidates_.push_back(it->second);
        }
      }
      // Attach order == the exhaustive loop's delivery order.
      std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
    }
    for (const std::uint32_t idx : scratch_candidates_) {
      RadioEndpoint* ep = endpoints_[idx];
      const Vec2 d = ep->position() - pos;
      if (d.norm2() > r2) continue;  // provably below sensitivity
      deliver(*tx, *ep);
    }
  }

  // Frame over: the payload is no longer needed, only the transmission's
  // geometry/timing (kept for interference overlap with later frames).
  const std::uint64_t first = first_history_id();
  history_[static_cast<std::size_t>(tx_id - first)].payload.reset();
  prune_history();

  if (span != 0) {
    if (obs::SpanTracer* t = world_.spans()) t->end(span, world_.now());
  }
}

void RadioMedium::deliver(const Transmission& tx, RadioEndpoint& ep) {
  const RadioConfig& cfg = ep.radio_config();
  if (cfg.id == tx.sender_id) return;
  const double overlap = channel_overlap(tx.channel, cfg.channel);
  if (overlap <= 0.0) return;
  const double rssi =
      model_.received_dbm(tx.power_dbm, tx.sender_pos, ep.position(),
                          tx.sender_id, cfg.id) +
      10.0 * std::log10(overlap > 0.0 ? overlap : 1e-12);
  if (rssi < cfg.sensitivity_dbm) return;
  deliver_prepared(tx, ep, rssi);
}

void RadioMedium::deliver_prepared(const Transmission& tx, RadioEndpoint& ep,
                                   double rssi) {
  const RadioConfig& cfg = ep.radio_config();
  ++stats_.deliveries_attempted;
  if (m_attempted_) m_attempted_->add();

  FrameDelivery d;
  d.tx_id = tx.id;
  d.sender_radio = tx.sender_id;
  d.rssi_dbm = rssi;
  d.start = tx.start;
  d.end = tx.end;
  d.bits = tx.bits;
  d.bitrate_bps = tx.bitrate_bps;
  d.payload = tx.payload;

  // Half duplex: did this receiver transmit at any point during the frame?
  const bool rx_transmitted =
      sender_transmitted_during(cfg.id, tx.start, tx.end);

  const double noise = thermal_noise_dbm(cfg.bandwidth_hz, cfg.noise_figure_db);
  d.sinr_db = sinr_db(rssi, interference_mw(tx, ep), noise);

  if (rx_transmitted) {
    d.decodable = false;
    ++stats_.losses_half_duplex;
    if (m_loss_half_duplex_) m_loss_half_duplex_->add();
  } else if (!ep.receiver_enabled()) {
    d.decodable = false;
    ++stats_.losses_rx_off;
    if (m_loss_rx_off_) m_loss_rx_off_->add();
  } else if (d.sinr_db < required_sinr_db(tx.bitrate_bps)) {
    d.decodable = false;
    ++stats_.losses_sinr;
    if (m_loss_sinr_) m_loss_sinr_->add();
  } else {
    d.decodable = true;
    ++stats_.deliveries_decodable;
    if (m_decodable_) m_decodable_->add();
  }
  ep.on_frame(d);
}

void RadioMedium::rebuild_ep_map() const {
  const std::size_t n = endpoints_.size();
  ep_index_.clear();
  ep_index_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ep_index_[endpoints_[i]->radio_config().id] = i;
  }
  dense_n_ = (n > 0 && n <= kDenseMemoMaxEndpoints) ? n : 0;
  dense_.assign(dense_n_ * dense_n_, DenseLink{});
  sweeps_.assign(n, SenderSweep{});
  cca_cache_.assign(n, CcaEntry{});
  ep_cache_valid_ = false;
  ++ep_map_epoch_;
  ep_map_valid_ = true;
}

void RadioMedium::refresh_endpoint_cache() const {
  ensure_ep_map();
  const sim::Time now = world_.now();
  // No endpoint can move => the snapshot can never go stale; same-timestamp
  // queries see identical positions by construction. Static worlds snapshot
  // exactly once.
  if (ep_cache_valid_ &&
      (ep_cache_time_ == now || ep_speed_bound_mps_ == 0.0)) {
    return;
  }
  const std::size_t n = endpoints_.size();
  bool changed = ep_cache_.size() != n;
  ep_cache_.resize(n);
  double bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const RadioEndpoint* ep = endpoints_[i];
    const RadioConfig& cfg = ep->radio_config();
    EpSnap s;
    s.pos = ep->position();
    s.id = cfg.id;
    s.channel = cfg.channel;
    s.sensitivity_dbm = cfg.sensitivity_dbm;
    s.max_speed_mps = ep->max_speed_mps();
    bound = std::max(bound, s.max_speed_mps);
    EpSnap& dst = ep_cache_[i];
    changed = changed || dst.pos != s.pos || dst.id != s.id ||
              dst.channel != s.channel ||
              dst.sensitivity_dbm != s.sensitivity_dbm;
    dst = s;
  }
  ep_speed_bound_mps_ = bound;
  ep_cache_time_ = now;
  ep_cache_valid_ = true;
  // Per-sender sweeps stay valid across a refresh that changed nothing (a
  // re-snapshot after invalidate_positions where nobody actually moved).
  if (changed) ++ep_epoch_;
}

RadioMedium::DenseLink& RadioMedium::dense_fill(
    std::uint32_t fi, std::uint32_t oi, double tx_dbm, Vec2 from, Vec2 to,
    std::uint64_t from_id, std::uint64_t to_id) const {
  DenseLink& e =
      dense_[static_cast<std::size_t>(fi) * dense_n_ + oi];
  if (e.state != 0 && e.tx_dbm == tx_dbm && e.from == from && e.to == to) {
    ++batch_stats_.memo_hits;
  } else {
    ++batch_stats_.memo_misses;
    e.tx_dbm = tx_dbm;
    e.from = from;
    e.to = to;
    // The exact expression of PathLossModel::link_lookup's miss path, so the
    // memo returns bit-identical values to the model's own cache.
    e.rx_dbm = tx_dbm - model_.loss_db(from, to, from_id, to_id);
    e.state = 1;
  }
  if (e.state < 2) {
    e.rx_mw = dbm_to_mw(e.rx_dbm);
    e.state = 2;
  }
  return e;
}

bool RadioMedium::tx_sender_index(const Transmission& tx,
                                  std::uint32_t& idx) const {
  ensure_ep_map();
  if (tx.sender_map_epoch != ep_map_epoch_) {
    const auto it = ep_index_.find(tx.sender_id);
    tx.sender_idx = it == ep_index_.end() ? kNoEpIdx : it->second;
    tx.sender_map_epoch = ep_map_epoch_;
  }
  idx = tx.sender_idx;
  return idx != kNoEpIdx;
}

void RadioMedium::resolve_one(const LinkQuery& q, LinkResult& r) const {
  const DenseLink* e = nullptr;
  if (dense_n_ != 0) {
    const auto a = ep_index_.find(q.from_id);
    if (a != ep_index_.end()) {
      const auto b = ep_index_.find(q.to_id);
      if (b != ep_index_.end()) {
        e = &dense_fill(a->second, b->second, q.tx_power_dbm, q.from, q.to,
                        q.from_id, q.to_id);
      }
    }
  }
  if (e != nullptr) {
    r.rx_dbm = e->rx_dbm;
    r.rx_mw = e->rx_mw;
  } else {
    ++batch_stats_.fallback_queries;
    r.rx_dbm =
        model_.received_dbm(q.tx_power_dbm, q.from, q.to, q.from_id, q.to_id);
    r.rx_mw =
        model_.received_mw(q.tx_power_dbm, q.from, q.to, q.from_id, q.to_id);
  }
  r.overlap = channel_overlap(q.tx_channel, q.rx_channel);
  const int sep = q.tx_channel < q.rx_channel ? q.rx_channel - q.tx_channel
                                              : q.tx_channel - q.rx_channel;
  r.rssi_dbm = r.rx_dbm + (sep < 5 ? overlap_db_[static_cast<std::size_t>(sep)]
                                   : 10.0 * std::log10(1e-12));
}

void RadioMedium::resolve_links(std::span<const LinkQuery> queries,
                                std::span<LinkResult> results) const {
  ensure_ep_map();
  ++batch_stats_.resolve_calls;
  batch_stats_.queries += queries.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    resolve_one(queries[i], results[i]);
  }
}

void RadioMedium::finish_batched(const Transmission& tx) {
  ensure_ep_map();
  refresh_endpoint_cache();
  std::uint32_t sidx = kNoEpIdx;
  SenderSweep* sw = tx_sender_index(tx, sidx) ? &sweeps_[sidx] : nullptr;
  const bool replay = sw != nullptr && sw->valid && sw->epoch == ep_epoch_ &&
                      sw->power_dbm == tx.power_dbm &&
                      sw->channel == tx.channel && sw->pos == tx.sender_pos;
  if (replay) {
    ++batch_stats_.sweep_hits;
    scratch_passers_ = sw->passers;
  } else {
    ++batch_stats_.sweep_misses;
    // Candidate enumeration mirrors the scalar path (same grid, same cull
    // radius, same final sort into attach order); the exact distance check
    // runs against the snapshot, which refresh_endpoint_cache() guarantees
    // agrees with current positions.
    scratch_candidates_.clear();
    bool have_r2 = false;
    double r2 = 0.0;
    const Vec2 pos = tx.sender_pos;
    if (options_.spatial_index) {
      rebuild_grid();
      const double radius = cull_radius_m(tx.power_dbm);
      r2 = radius * radius;
      have_r2 = true;
      const double ring = radius + grid_drift_m_;
      bool full_scan = !(ring < 1e7);
      CellCoord c0, c1;
      if (!full_scan) {
        c0 = cell_of({pos.x - ring, pos.y - ring}, cell_size_m_);
        c1 = cell_of({pos.x + ring, pos.y + ring}, cell_size_m_);
        const std::uint64_t span_x =
            static_cast<std::uint64_t>(c1.x - c0.x) + 1;
        const std::uint64_t span_y =
            static_cast<std::uint64_t>(c1.y - c0.y) + 1;
        full_scan = span_x * span_y >= endpoints_.size();
      }
      if (full_scan) {
        for (std::uint32_t i = 0; i < endpoints_.size(); ++i) {
          scratch_candidates_.push_back(i);
        }
      } else {
        for (std::int32_t cx = c0.x; cx <= c1.x; ++cx) {
          const std::uint64_t klo = cell_key({cx, c0.y});
          const std::uint64_t khi = cell_key({cx, c1.y});
          auto it = std::lower_bound(grid_.begin(), grid_.end(), klo,
                                     [](const auto& entry, std::uint64_t k) {
                                       return entry.first < k;
                                     });
          for (; it != grid_.end() && it->first <= khi; ++it) {
            scratch_candidates_.push_back(it->second);
          }
        }
        std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
      }
    } else {
      for (std::uint32_t i = 0; i < endpoints_.size(); ++i) {
        scratch_candidates_.push_back(i);
      }
    }
    batch_queries_.clear();
    batch_idx_.clear();
    for (const std::uint32_t idx : scratch_candidates_) {
      const EpSnap& s = ep_cache_[idx];
      if (have_r2) {
        const Vec2 d = s.pos - pos;
        if (d.norm2() > r2) continue;  // provably below sensitivity
      }
      if (s.id == tx.sender_id) continue;
      // Separation >= 5 is exactly overlap == 0, the scalar early return.
      if (s.channel - tx.channel >= 5 || tx.channel - s.channel >= 5) continue;
      batch_idx_.push_back(idx);
      LinkQuery q;
      q.tx_power_dbm = tx.power_dbm;
      q.from = pos;
      q.to = s.pos;
      q.from_id = tx.sender_id;
      q.to_id = s.id;
      q.tx_channel = tx.channel;
      q.rx_channel = s.channel;
      batch_queries_.push_back(q);
    }
    batch_results_.resize(batch_idx_.size());
    resolve_links(batch_queries_, batch_results_);
    scratch_passers_.clear();
    for (std::size_t i = 0; i < batch_idx_.size(); ++i) {
      const std::uint32_t idx = batch_idx_[i];
      const double rssi = batch_results_[i].rssi_dbm;
      if (rssi < ep_cache_[idx].sensitivity_dbm) continue;
      scratch_passers_.emplace_back(idx, rssi);
    }
    if (sw != nullptr) {
      sw->epoch = ep_epoch_;
      sw->power_dbm = tx.power_dbm;
      sw->channel = tx.channel;
      sw->pos = tx.sender_pos;
      sw->passers = scratch_passers_;
      sw->valid = true;
    }
  }
  // Ascending endpoint index == attach order == the scalar delivery order,
  // so on_frame side effects and stats land in the identical sequence.
  for (std::size_t i = 0; i < scratch_passers_.size(); ++i) {
    const auto [idx, rssi] = scratch_passers_[i];
    deliver_prepared(tx, *endpoints_[idx], rssi);
  }
}

double RadioMedium::interference_mw(const Transmission& tx,
                                    const RadioEndpoint& rx) const {
  const RadioConfig& cfg = rx.radio_config();
  const double span = (tx.end - tx.start).seconds();
  double total_mw = 0.0;
  // Batch mode: resolve the receiver's dense-memo column once, then each
  // interferer reuses its memoized link budget (guards re-checked, so the
  // value is bit-identical to the model call it replaces).
  std::uint32_t oi = kNoEpIdx;
  Vec2 rx_pos;
  if (options_.batch) {
    ensure_ep_map();
    if (dense_n_ != 0) {
      const auto it = ep_index_.find(cfg.id);
      if (it != ep_index_.end()) {
        oi = it->second;
        rx_pos = rx.position();
      }
    }
  }
  const auto contribution = [&](const Transmission& other) {
    if (other.id == tx.id || other.sender_id == tx.sender_id ||
        other.sender_id == cfg.id) {
      return;
    }
    const sim::Time o_start = std::max(other.start, tx.start);
    const sim::Time o_end = std::min(other.end, tx.end);
    if (o_end <= o_start) return;
    const double overlap_frac =
        span > 0.0 ? (o_end - o_start).seconds() / span : 1.0;
    const double ch = channel_overlap(other.channel, cfg.channel);
    if (ch <= 0.0) return;
    double p_mw;
    std::uint32_t fi;
    if (oi != kNoEpIdx && tx_sender_index(other, fi)) {
      p_mw = dense_fill(fi, oi, other.power_dbm, other.sender_pos, rx_pos,
                        other.sender_id, cfg.id)
                 .rx_mw;
    } else {
      p_mw = model_.received_mw(other.power_dbm, other.sender_pos,
                                rx.position(), other.sender_id, cfg.id);
    }
    total_mw += p_mw * ch * overlap_frac;
  };
  // The pruned history only spans the interference-overlap window, so for
  // light traffic a direct scan beats assembling a candidate list. Skipped
  // transmissions contribute exactly zero milliwatts either way, so both
  // paths produce bit-identical sums (same additions, same id order).
  if (!options_.spatial_index || history_.size() <= 64) {
    for (const Transmission& other : history_) contribution(other);
  } else {
    for (const std::uint64_t id : overlapping_channel_ids(cfg.channel)) {
      if (const Transmission* other = find_tx(id)) contribution(*other);
    }
  }
  return total_mw;
}

bool RadioMedium::carrier_busy(const RadioEndpoint& ep) const {
  return carrier_busy_at(ep, ep.radio_config(), ep.position());
}

bool RadioMedium::carrier_busy_at(const RadioEndpoint& ep,
                                  const RadioConfig& cfg, Vec2 pos) const {
  if (options_.batch) {
    ensure_ep_map();
    return energy_at_batched(pos, cfg.channel, cfg.id,
                             observer_index(ep, cfg.id)) >=
           cfg.cca_threshold_dbm;
  }
  return energy_at(pos, cfg.channel, cfg.id) >= cfg.cca_threshold_dbm;
}

std::uint32_t RadioMedium::observer_index(const RadioEndpoint& ep,
                                          std::uint64_t id) const {
  if (ep.medium_ep_epoch_ == ep_map_epoch_) return ep.medium_ep_idx_;
  std::uint32_t oi = kNoEpIdx;
  const auto it = ep_index_.find(id);
  if (it != ep_index_.end()) oi = it->second;
  ep.medium_ep_idx_ = oi;
  ep.medium_ep_epoch_ = ep_map_epoch_;
  return oi;
}

double RadioMedium::energy_at_batched(Vec2 pos, int channel,
                                      std::uint64_t observer_id,
                                      std::uint32_t oi) const {
  // Batched CCA: answer from the per-observer cache when the energy can
  // not have changed since it was computed (see CcaEntry), else one pass
  // over the in-flight list — every live transmission, ascending id, the
  // same terms in the same order as the scalar scan — with link budgets
  // from the dense memo.
  const sim::Time now = world_.now();
  const std::uint64_t seq = cca_activity_seq_[channel_bucket(channel)];
  if (oi != kNoEpIdx) {
    const CcaEntry& e = cca_cache_[oi];
    if (e.seq == seq && e.id == observer_id && e.channel == channel &&
        e.pos == pos &&
        (now == e.t || (!e.exact_only && e.t < now && now < e.valid_until))) {
      ++batch_stats_.cca_hits;
      return e.value_dbm;
    }
  }
  ++batch_stats_.cca_misses;
  double total_mw = 0.0;
  sim::Time valid_until = sim::Time::max();
  bool exact_only = false;
  for (const Transmission* tx : in_flight_) {
    if (tx->sender_id == observer_id) continue;
    if (tx->end <= now) continue;  // ends this instant; finish pending
    if (tx->start >= now) {
      // Started at this exact instant: not yet sensed (the slotted-CSMA
      // vulnerable window). It will be for any later query.
      exact_only = true;
      continue;
    }
    // Overlap is exactly zero at separation >= 5; table the rest.
    const int sep = tx->channel >= channel ? tx->channel - channel
                                           : channel - tx->channel;
    if (sep >= 5) continue;
    const double ch = overlap_lin_[static_cast<std::size_t>(sep)];
    if (ch <= 0.0) continue;
    if (tx->end < valid_until) valid_until = tx->end;
    double p_mw;
    std::uint32_t fi;
    if (oi != kNoEpIdx && dense_n_ != 0 && tx_sender_index(*tx, fi)) {
      p_mw = dense_fill(fi, oi, tx->power_dbm, tx->sender_pos, pos,
                        tx->sender_id, observer_id)
                 .rx_mw;
    } else {
      p_mw = model_.received_mw(tx->power_dbm, tx->sender_pos, pos,
                                tx->sender_id, observer_id);
    }
    total_mw += p_mw * ch;
  }
  const double result = mw_to_dbm(total_mw);
  if (oi != kNoEpIdx) {
    cca_cache_[oi] = {seq,         observer_id, pos,    now,
                      valid_until, result,      channel, exact_only};
  }
  return result;
}

double RadioMedium::energy_at(Vec2 pos, int channel,
                              std::uint64_t observer_id) const {
  if (options_.batch) {
    ensure_ep_map();
    std::uint32_t oi = kNoEpIdx;
    const auto it = ep_index_.find(observer_id);
    if (it != ep_index_.end()) oi = it->second;
    return energy_at_batched(pos, channel, observer_id, oi);
  }
  const sim::Time now = world_.now();
  double total_mw = 0.0;
  const auto contribution = [&](const Transmission& tx) {
    if (tx.sender_id == observer_id) return;
    // A transmission starting at this exact instant is not yet sensed:
    // this is the slotted-CSMA vulnerable window that produces real
    // collisions when two stations' backoff counters expire together.
    if (tx.start >= now || tx.end <= now) return;
    const double ch = channel_overlap(tx.channel, channel);
    if (ch <= 0.0) return;
    total_mw += model_.received_mw(tx.power_dbm, tx.sender_pos, pos,
                                   tx.sender_id, observer_id) *
                ch;
  };
  if (!options_.spatial_index) {
    for (const Transmission& tx : history_) contribution(tx);
  } else {
    for (const std::uint64_t id : active_channel_ids(channel, now)) {
      if (const Transmission* tx = find_tx(id)) contribution(*tx);
    }
  }
  return mw_to_dbm(total_mw);
}

void RadioMedium::prune_history() {
  // Keep anything that could still overlap an in-flight frame.
  const sim::Time cutoff = world_.now() - max_duration_ - max_duration_;
  while (!history_.empty() && history_.front().end < cutoff) {
    history_.pop_front();
  }
}

bool RadioMedium::snap_quiescent(std::string* why) const {
  const sim::Time now = world_.now();
  for (const Transmission& tx : history_) {
    if (tx.end > now) {
      if (why) *why = "radio medium: transmission in flight";
      return false;
    }
  }
  return true;
}

void RadioMedium::save(snap::SectionWriter& w) const {
  w.u64(stats_.transmissions);
  w.u64(stats_.deliveries_attempted);
  w.u64(stats_.deliveries_decodable);
  w.u64(stats_.losses_sinr);
  w.u64(stats_.losses_half_duplex);
  w.u64(stats_.losses_rx_off);
  w.u64(next_tx_id_);
  w.duration(max_duration_);
}

void RadioMedium::restore(snap::SectionReader& r) {
  // Drop all finished-transmission logs and derived indices; they can never
  // affect a post-restore delivery (see header note).
  history_.clear();
  for (auto& log : by_channel_) {
    log.ids.clear();
    log.head = 0;
  }
  for (auto& ids : active_by_channel_) ids.clear();
  by_sender_.clear();
  scratch_ids_.clear();
  grid_valid_ = false;
  ep_map_valid_ = false;
  ep_cache_valid_ = false;
  in_flight_.clear();
  for (auto& s : cca_activity_seq_) ++s;

  stats_.transmissions = r.u64();
  stats_.deliveries_attempted = r.u64();
  stats_.deliveries_decodable = r.u64();
  stats_.losses_sinr = r.u64();
  stats_.losses_half_duplex = r.u64();
  stats_.losses_rx_off = r.u64();
  next_tx_id_ = r.u64();
  max_duration_ = r.duration();
}

}  // namespace aroma::env
