#include "env/radio_medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::env {

RadioMedium::RadioMedium(sim::World& world, PathLossModel model,
                         Options options)
    : world_(world), model_(model), options_(options),
      history_(sim::ArenaAllocator<Transmission>(&world.arena())) {
  // Rebind the id logs to the world's arena (they default-construct in heap
  // mode; the allocator propagation traits make move-assignment carry the
  // arena over).
  for (auto& log : by_channel_) log = IdLog(&world.arena());
  for (auto& v : active_by_channel_) {
    v = IdVector(sim::ArenaAllocator<std::uint64_t>(&world.arena()));
  }
  if (options_.cell_size_m > 0.0) cell_size_m_ = options_.cell_size_m;
  const auto layer = lpc::Layer::kEnvironment;
  m_transmissions_ = obs::counter(world_, "env.radio.transmissions", layer);
  m_attempted_ = obs::counter(world_, "env.radio.deliveries_attempted", layer);
  m_decodable_ = obs::counter(world_, "env.radio.deliveries_decodable", layer);
  m_loss_sinr_ = obs::counter(world_, "env.radio.losses_sinr", layer);
  m_loss_half_duplex_ =
      obs::counter(world_, "env.radio.losses_half_duplex", layer);
  m_loss_rx_off_ = obs::counter(world_, "env.radio.losses_rx_off", layer);
}

void RadioMedium::publish_metrics() {
  obs::MetricsRegistry* m = world_.metrics();
  if (m == nullptr) return;
  const auto layer = lpc::Layer::kEnvironment;
  const PathLossModel::CacheStats& cs = model_.cache_stats();
  m->set_counter("env.radio.path_cache.link_hits", layer, cs.link_hits);
  m->set_counter("env.radio.path_cache.link_misses", layer, cs.link_misses);
  m->set_counter("env.radio.path_cache.shadow_hits", layer, cs.shadow_hits);
  m->set_counter("env.radio.path_cache.shadow_misses", layer,
                 cs.shadow_misses);
}

void RadioMedium::attach(RadioEndpoint* endpoint) {
  endpoints_.push_back(endpoint);
  grid_valid_ = false;
}

void RadioMedium::detach(RadioEndpoint* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
  grid_valid_ = false;
}

std::uint64_t RadioMedium::transmit(RadioEndpoint& sender, std::size_t bits,
                                    double bitrate_bps, double tx_power_dbm,
                                    std::shared_ptr<const void> payload) {
  const auto duration =
      sim::Time::sec(static_cast<double>(bits) / bitrate_bps);
  Transmission tx;
  tx.id = next_tx_id_++;
  tx.sender_id = sender.radio_config().id;
  tx.sender_pos = sender.position();
  tx.channel = sender.radio_config().channel;
  tx.power_dbm = tx_power_dbm;
  tx.start = world_.now();
  tx.end = world_.now() + duration;
  tx.bits = bits;
  tx.bitrate_bps = bitrate_bps;
  tx.payload = std::move(payload);
  // The frame's airtime becomes a span parented to whatever caused the
  // transmission (typically a MAC or fault-injection span); the frame-end
  // event inherits the span as its causal context, so everything delivery
  // triggers downstream parents to this frame.
  if (obs::SpanTracer* t = world_.spans(); t != nullptr && t->enabled()) {
    tx.span = t->begin(world_.now(), "env.radio.frame",
                       lpc::Layer::kEnvironment,
                       world_.sim().trace_context());
    t->annotate(tx.span, "sender", std::to_string(tx.sender_id));
    t->annotate(tx.span, "channel", std::to_string(tx.channel));
    t->annotate(tx.span, "bits", std::to_string(tx.bits));
  }
  by_channel_[channel_bucket(tx.channel)].push(tx.id);
  active_by_channel_[channel_bucket(tx.channel)].push_back(tx.id);
  by_sender_.try_emplace(tx.sender_id, &world_.arena())
      .first->second.push(tx.id);
  history_.push_back(std::move(tx));
  max_duration_ = std::max(max_duration_, duration);
  ++stats_.transmissions;
  if (m_transmissions_) m_transmissions_->add();

  // The frame record lives in history_ until pruned; capturing just the id
  // keeps this closure inside Callback's inline buffer (no allocation).
  const std::uint64_t id = history_.back().id;
  sim::ScopedTraceContext ctx(
      world_.sim(), history_.back().span != 0 ? history_.back().span
                                              : world_.sim().trace_context());
  world_.sim().schedule_at(history_.back().end, sim::EventCategory::kRadio,
                           [this, id] { finish(id); });
  return id;
}

const RadioMedium::Transmission* RadioMedium::find_tx(std::uint64_t id) const {
  const std::uint64_t first = first_history_id();
  if (id < first || id >= first + history_.size()) return nullptr;
  return &history_[static_cast<std::size_t>(id - first)];
}

std::size_t RadioMedium::channel_bucket(int channel) {
  if (channel < 0) return 0;
  if (channel >= static_cast<int>(kChannelBuckets)) return kChannelBuckets - 1;
  return static_cast<std::size_t>(channel);
}

const std::vector<std::uint64_t>& RadioMedium::overlapping_channel_ids(
    int channel) const {
  const std::uint64_t first = first_history_id();
  const std::size_t blo = channel_bucket(channel - 4);
  const std::size_t bhi = channel_bucket(channel + 4);
  scratch_ids_.clear();
  for (std::size_t b = blo; b <= bhi; ++b) {
    IdLog& log = by_channel_[b];
    log.drop_before(first);
    scratch_ids_.insert(scratch_ids_.end(), log.ids.begin() + static_cast<std::ptrdiff_t>(log.head),
                        log.ids.end());
  }
  // Ascending id order == history scan order, so floating-point sums over
  // these candidates are bit-identical to the exhaustive reference.
  std::sort(scratch_ids_.begin(), scratch_ids_.end());
  return scratch_ids_;
}

const std::vector<std::uint64_t>& RadioMedium::active_channel_ids(
    int channel, sim::Time now) const {
  const std::size_t blo = channel_bucket(channel - 4);
  const std::size_t bhi = channel_bucket(channel + 4);
  scratch_ids_.clear();
  for (std::size_t b = blo; b <= bhi; ++b) {
    IdVector& active = active_by_channel_[b];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Transmission* tx = find_tx(active[i]);
      // Once a transmission has ended it can never be sensed again: drop it
      // from the active list for good (amortized O(1) per transmission).
      if (!tx || tx->end <= now) continue;
      active[kept++] = active[i];
      scratch_ids_.push_back(active[i]);
    }
    active.resize(kept);
  }
  std::sort(scratch_ids_.begin(), scratch_ids_.end());
  return scratch_ids_;
}

bool RadioMedium::sender_transmitted_during(std::uint64_t sender_id,
                                            sim::Time start,
                                            sim::Time end) const {
  if (!options_.spatial_index) {
    for (const Transmission& other : history_) {
      if (other.sender_id != sender_id) continue;
      if (other.start < end && other.end > start) return true;
    }
    return false;
  }
  const auto it = by_sender_.find(sender_id);
  if (it == by_sender_.end()) return false;
  IdLog& log = it->second;
  log.drop_before(first_history_id());
  for (std::size_t i = log.head; i < log.ids.size(); ++i) {
    const Transmission* other = find_tx(log.ids[i]);
    if (other && other->start < end && other->end > start) return true;
  }
  return false;
}

void RadioMedium::rebuild_grid() const {
  const sim::Time now = world_.now();
  if (grid_valid_) {
    if (grid_time_ == now) return;
    // Let the grid age while the worst-case displacement stays under one
    // cell edge: queries pad the cull radius by the drift, so the cull is
    // still exact. A world of static endpoints rebuilds exactly once.
    const double dt = (now - grid_time_).seconds();
    const double drift = dt * grid_speed_bound_mps_;  // dt > 0, so inf is ok
    if (drift >= 0.0 && drift <= cell_size_m_) {
      grid_drift_m_ = drift;
      return;
    }
  }
  const bool fresh = grid_.size() != endpoints_.size();
  if (fresh) {
    grid_.resize(endpoints_.size());
    for (std::uint32_t i = 0; i < endpoints_.size(); ++i) grid_[i].second = i;
  }
  min_sensitivity_dbm_ = std::numeric_limits<double>::infinity();
  grid_speed_bound_mps_ = 0.0;
  // Refresh keys in the previous sorted order: when nobody moved between
  // rebuilds (the common steady state), the array stays sorted and the sort
  // below is skipped entirely.
  for (auto& [key, idx] : grid_) {
    key = cell_key(cell_of(endpoints_[idx]->position(), cell_size_m_));
    min_sensitivity_dbm_ =
        std::min(min_sensitivity_dbm_,
                 endpoints_[idx]->radio_config().sensitivity_dbm);
    grid_speed_bound_mps_ =
        std::max(grid_speed_bound_mps_, endpoints_[idx]->max_speed_mps());
  }
  if (!std::is_sorted(grid_.begin(), grid_.end())) {
    std::sort(grid_.begin(), grid_.end());
  }
  grid_time_ = now;
  grid_drift_m_ = 0.0;
  grid_valid_ = true;
}

double RadioMedium::cull_radius_m(double tx_power_dbm) const {
  // A receiver needs rssi >= its sensitivity; channel mismatch only
  // subtracts. With |shadowing| < shadowing_bound_db, anything beyond the
  // nominal range at (min sensitivity - bound) provably cannot decode. The
  // 1% slack absorbs floating-point disagreement between the pow() here and
  // the log10() in the exact per-candidate check.
  const double floor_dbm =
      min_sensitivity_dbm_ - model_.shadowing_bound_db();
  return model_.nominal_range_m(tx_power_dbm, floor_dbm) * 1.01 + 1e-6;
}

void RadioMedium::finish(std::uint64_t tx_id) {
  const Transmission* tx = find_tx(tx_id);
  if (!tx) return;  // pruned (cannot happen for live frames; be safe)
  const std::uint64_t span = tx->span;

  if (!options_.spatial_index || endpoints_.empty()) {
    for (RadioEndpoint* ep : endpoints_) deliver(*tx, *ep);
  } else {
    rebuild_grid();
    const double radius = cull_radius_m(tx->power_dbm);
    const double r2 = radius * radius;
    // Grid cells hold positions as of grid_time_; widen the search ring by
    // the worst-case displacement since then. The exact distance check below
    // still uses the unpadded radius against *current* positions.
    const double ring = radius + grid_drift_m_;
    const Vec2 pos = tx->sender_pos;
    scratch_candidates_.clear();
    // A degenerate radius (overflow/NaN from extreme model params) or one
    // spanning more cells than there are radios means indexing can't win:
    // scan everything (still exact, just the reference order).
    bool full_scan = !(ring < 1e7);
    CellCoord c0, c1;
    if (!full_scan) {
      c0 = cell_of({pos.x - ring, pos.y - ring}, cell_size_m_);
      c1 = cell_of({pos.x + ring, pos.y + ring}, cell_size_m_);
      const std::uint64_t span_x = static_cast<std::uint64_t>(c1.x - c0.x) + 1;
      const std::uint64_t span_y = static_cast<std::uint64_t>(c1.y - c0.y) + 1;
      full_scan = span_x * span_y >= endpoints_.size();
    }
    if (full_scan) {
      for (std::uint32_t i = 0; i < endpoints_.size(); ++i) {
        scratch_candidates_.push_back(i);
      }
    } else {
      // cell_key is monotonic in (x, y), so for each x-column the cells
      // [c0.y .. c1.y] are one contiguous key range: one binary search per
      // column instead of one per cell.
      for (std::int32_t cx = c0.x; cx <= c1.x; ++cx) {
        const std::uint64_t klo = cell_key({cx, c0.y});
        const std::uint64_t khi = cell_key({cx, c1.y});
        auto it = std::lower_bound(
            grid_.begin(), grid_.end(), klo,
            [](const auto& entry, std::uint64_t k) { return entry.first < k; });
        for (; it != grid_.end() && it->first <= khi; ++it) {
          scratch_candidates_.push_back(it->second);
        }
      }
      // Attach order == the exhaustive loop's delivery order.
      std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
    }
    for (const std::uint32_t idx : scratch_candidates_) {
      RadioEndpoint* ep = endpoints_[idx];
      const Vec2 d = ep->position() - pos;
      if (d.norm2() > r2) continue;  // provably below sensitivity
      deliver(*tx, *ep);
    }
  }

  // Frame over: the payload is no longer needed, only the transmission's
  // geometry/timing (kept for interference overlap with later frames).
  const std::uint64_t first = first_history_id();
  history_[static_cast<std::size_t>(tx_id - first)].payload.reset();
  prune_history();

  if (span != 0) {
    if (obs::SpanTracer* t = world_.spans()) t->end(span, world_.now());
  }
}

void RadioMedium::deliver(const Transmission& tx, RadioEndpoint& ep) {
  const RadioConfig& cfg = ep.radio_config();
  if (cfg.id == tx.sender_id) return;
  const double overlap = channel_overlap(tx.channel, cfg.channel);
  if (overlap <= 0.0) return;
  const double rssi =
      model_.received_dbm(tx.power_dbm, tx.sender_pos, ep.position(),
                          tx.sender_id, cfg.id) +
      10.0 * std::log10(overlap > 0.0 ? overlap : 1e-12);
  if (rssi < cfg.sensitivity_dbm) return;
  ++stats_.deliveries_attempted;
  if (m_attempted_) m_attempted_->add();

  FrameDelivery d;
  d.tx_id = tx.id;
  d.sender_radio = tx.sender_id;
  d.rssi_dbm = rssi;
  d.start = tx.start;
  d.end = tx.end;
  d.bits = tx.bits;
  d.bitrate_bps = tx.bitrate_bps;
  d.payload = tx.payload;

  // Half duplex: did this receiver transmit at any point during the frame?
  const bool rx_transmitted =
      sender_transmitted_during(cfg.id, tx.start, tx.end);

  const double noise = thermal_noise_dbm(cfg.bandwidth_hz, cfg.noise_figure_db);
  d.sinr_db = sinr_db(rssi, interference_mw(tx, ep), noise);

  if (rx_transmitted) {
    d.decodable = false;
    ++stats_.losses_half_duplex;
    if (m_loss_half_duplex_) m_loss_half_duplex_->add();
  } else if (!ep.receiver_enabled()) {
    d.decodable = false;
    ++stats_.losses_rx_off;
    if (m_loss_rx_off_) m_loss_rx_off_->add();
  } else if (d.sinr_db < required_sinr_db(tx.bitrate_bps)) {
    d.decodable = false;
    ++stats_.losses_sinr;
    if (m_loss_sinr_) m_loss_sinr_->add();
  } else {
    d.decodable = true;
    ++stats_.deliveries_decodable;
    if (m_decodable_) m_decodable_->add();
  }
  ep.on_frame(d);
}

double RadioMedium::interference_mw(const Transmission& tx,
                                    const RadioEndpoint& rx) const {
  const RadioConfig& cfg = rx.radio_config();
  const double span = (tx.end - tx.start).seconds();
  double total_mw = 0.0;
  const auto contribution = [&](const Transmission& other) {
    if (other.id == tx.id || other.sender_id == tx.sender_id ||
        other.sender_id == cfg.id) {
      return;
    }
    const sim::Time o_start = std::max(other.start, tx.start);
    const sim::Time o_end = std::min(other.end, tx.end);
    if (o_end <= o_start) return;
    const double overlap_frac =
        span > 0.0 ? (o_end - o_start).seconds() / span : 1.0;
    const double ch = channel_overlap(other.channel, cfg.channel);
    if (ch <= 0.0) return;
    const double p_mw = model_.received_mw(
        other.power_dbm, other.sender_pos, rx.position(), other.sender_id,
        cfg.id);
    total_mw += p_mw * ch * overlap_frac;
  };
  // The pruned history only spans the interference-overlap window, so for
  // light traffic a direct scan beats assembling a candidate list. Skipped
  // transmissions contribute exactly zero milliwatts either way, so both
  // paths produce bit-identical sums (same additions, same id order).
  if (!options_.spatial_index || history_.size() <= 64) {
    for (const Transmission& other : history_) contribution(other);
  } else {
    for (const std::uint64_t id : overlapping_channel_ids(cfg.channel)) {
      if (const Transmission* other = find_tx(id)) contribution(*other);
    }
  }
  return total_mw;
}

bool RadioMedium::carrier_busy(const RadioEndpoint& ep) const {
  const RadioConfig& cfg = ep.radio_config();
  return energy_at(ep.position(), cfg.channel, cfg.id) >= cfg.cca_threshold_dbm;
}

double RadioMedium::energy_at(Vec2 pos, int channel,
                              std::uint64_t observer_id) const {
  const sim::Time now = world_.now();
  double total_mw = 0.0;
  const auto contribution = [&](const Transmission& tx) {
    if (tx.sender_id == observer_id) return;
    // A transmission starting at this exact instant is not yet sensed:
    // this is the slotted-CSMA vulnerable window that produces real
    // collisions when two stations' backoff counters expire together.
    if (tx.start >= now || tx.end <= now) return;
    const double ch = channel_overlap(tx.channel, channel);
    if (ch <= 0.0) return;
    total_mw += model_.received_mw(tx.power_dbm, tx.sender_pos, pos,
                                   tx.sender_id, observer_id) *
                ch;
  };
  if (!options_.spatial_index) {
    for (const Transmission& tx : history_) contribution(tx);
  } else {
    for (const std::uint64_t id : active_channel_ids(channel, now)) {
      if (const Transmission* tx = find_tx(id)) contribution(*tx);
    }
  }
  return mw_to_dbm(total_mw);
}

void RadioMedium::prune_history() {
  // Keep anything that could still overlap an in-flight frame.
  const sim::Time cutoff = world_.now() - max_duration_ - max_duration_;
  while (!history_.empty() && history_.front().end < cutoff) {
    history_.pop_front();
  }
}

bool RadioMedium::snap_quiescent(std::string* why) const {
  const sim::Time now = world_.now();
  for (const Transmission& tx : history_) {
    if (tx.end > now) {
      if (why) *why = "radio medium: transmission in flight";
      return false;
    }
  }
  return true;
}

void RadioMedium::save(snap::SectionWriter& w) const {
  w.u64(stats_.transmissions);
  w.u64(stats_.deliveries_attempted);
  w.u64(stats_.deliveries_decodable);
  w.u64(stats_.losses_sinr);
  w.u64(stats_.losses_half_duplex);
  w.u64(stats_.losses_rx_off);
  w.u64(next_tx_id_);
  w.duration(max_duration_);
}

void RadioMedium::restore(snap::SectionReader& r) {
  // Drop all finished-transmission logs and derived indices; they can never
  // affect a post-restore delivery (see header note).
  history_.clear();
  for (auto& log : by_channel_) {
    log.ids.clear();
    log.head = 0;
  }
  for (auto& ids : active_by_channel_) ids.clear();
  by_sender_.clear();
  scratch_ids_.clear();
  grid_valid_ = false;

  stats_.transmissions = r.u64();
  stats_.deliveries_attempted = r.u64();
  stats_.deliveries_decodable = r.u64();
  stats_.losses_sinr = r.u64();
  stats_.losses_half_duplex = r.u64();
  stats_.losses_rx_off = r.u64();
  next_tx_id_ = r.u64();
  max_duration_ = r.duration();
}

}  // namespace aroma::env
