#include "env/acoustics.hpp"

#include <algorithm>
#include <cmath>

namespace aroma::env {

std::uint64_t AcousticField::add_source(SoundSource src) {
  src.id = next_id_++;
  sources_.push_back(std::move(src));
  return sources_.back().id;
}

void AcousticField::remove_source(std::uint64_t id) {
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [&](const SoundSource& s) { return s.id == id; }),
                 sources_.end());
}

void AcousticField::set_source_active(std::uint64_t id, bool active) {
  if (auto* s = find(id)) s->active = active;
}

void AcousticField::move_source(std::uint64_t id, Vec2 pos) {
  if (auto* s = find(id)) s->position = pos;
}

const SoundSource* AcousticField::find(std::uint64_t id) const {
  for (const auto& s : sources_)
    if (s.id == id) return &s;
  return nullptr;
}

SoundSource* AcousticField::find(std::uint64_t id) {
  for (auto& s : sources_)
    if (s.id == id) return &s;
  return nullptr;
}

double AcousticField::attenuate(double spl_1m, double dist_m) {
  // Spherical spreading: -20 dB per decade of distance, referenced to 1 m.
  const double d = std::max(dist_m, 0.1);
  return spl_1m - 20.0 * std::log10(std::max(d, 1.0));
}

double AcousticField::spl_at(Vec2 pos) const {
  double energy = std::pow(10.0, ambient_db_ / 10.0);
  for (const auto& s : sources_) {
    if (!s.active) continue;
    const double level = attenuate(s.spl_at_1m_db, distance(pos, s.position));
    energy += std::pow(10.0, level / 10.0);
  }
  return 10.0 * std::log10(energy);
}

double AcousticField::noise_excluding(Vec2 pos, std::uint64_t speaker_id) const {
  double energy = std::pow(10.0, ambient_db_ / 10.0);
  for (const auto& s : sources_) {
    if (!s.active || s.id == speaker_id) continue;
    const double level = attenuate(s.spl_at_1m_db, distance(pos, s.position));
    energy += std::pow(10.0, level / 10.0);
  }
  return 10.0 * std::log10(energy);
}

double AcousticField::speech_level_at(Vec2 pos, std::uint64_t speaker_id) const {
  const SoundSource* s = find(speaker_id);
  if (s == nullptr || !s->active) return -300.0;
  return attenuate(s->spl_at_1m_db, distance(pos, s->position));
}

double AcousticField::intelligibility(Vec2 listener,
                                      std::uint64_t speaker_id) const {
  const double speech = speech_level_at(listener, speaker_id);
  if (speech <= -200.0) return 0.0;
  const double noise = noise_excluding(listener, speaker_id);
  const double snr = speech - noise;
  return std::clamp((snr + 15.0) / 30.0, 0.0, 1.0);
}

double social_appropriateness(double speech_db, double ambient_db,
                              double occupant_density) {
  // Speaking far above ambient is disruptive, more so when the space is
  // crowded. 0 dB above ambient is fine; +30 dB in a dense space is not.
  const double excess = std::max(0.0, speech_db - ambient_db);
  const double crowding = 1.0 + std::max(0.0, occupant_density);
  return std::clamp(1.0 - excess * crowding / 60.0, 0.0, 1.0);
}

}  // namespace aroma::env
