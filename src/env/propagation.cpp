#include "env/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "sim/random.hpp"

namespace aroma::env {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) {
  return mw > 0.0 ? 10.0 * std::log10(mw) : -300.0;
}

double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double channel_overlap(int tx_channel, int rx_channel) {
  const int sep = std::abs(tx_channel - rx_channel);
  if (sep >= 5) return 0.0;
  return 1.0 - static_cast<double>(sep) / 5.0;
}

double channel_center_mhz(int channel) {
  return 2412.0 + 5.0 * static_cast<double>(channel - 1);
}

double PathLossModel::shadowing_db(std::uint64_t id_a, std::uint64_t id_b) const {
  if (p_.shadowing_sigma_db <= 0.0 || (id_a == 0 && id_b == 0)) return 0.0;
  // Order-independent pairing so the link is reciprocal.
  const std::uint64_t lo = std::min(id_a, id_b);
  const std::uint64_t hi = std::max(id_a, id_b);

  if (shadow_cache_.empty()) shadow_cache_.resize(1024);
  const std::size_t mask = shadow_cache_.size() - 1;
  std::size_t slot = sim::mix_hash(lo, hi) & mask;
  while (shadow_cache_[slot].used) {
    if (shadow_cache_[slot].lo == lo && shadow_cache_[slot].hi == hi) {
      ++cache_stats_.shadow_hits;
      return shadow_cache_[slot].db;
    }
    slot = (slot + 1) & mask;
  }
  ++cache_stats_.shadow_misses;
  const double db = shadowing_db_uncached(lo, hi);
  shadow_cache_[slot] = {lo, hi, db, true};
  if (++shadow_cache_size_ * 10 > shadow_cache_.size() * 7) {
    std::vector<ShadowEntry> old;
    old.swap(shadow_cache_);
    shadow_cache_.resize(old.size() * 2);
    const std::size_t m2 = shadow_cache_.size() - 1;
    for (const ShadowEntry& e : old) {
      if (!e.used) continue;
      std::size_t s = sim::mix_hash(e.lo, e.hi) & m2;
      while (shadow_cache_[s].used) s = (s + 1) & m2;
      shadow_cache_[s] = e;
    }
  }
  return db;
}

double PathLossModel::shadowing_db_uncached(std::uint64_t lo,
                                            std::uint64_t hi) const {
  const std::uint64_t h = sim::mix_hash(sim::mix_hash(p_.seed, lo), hi);
  // Map hash to a standard normal via a 2-draw sum approximation (Irwin-Hall
  // with 4 uniforms gives a decent bell shape and is branch-free).
  double sum = 0.0;
  std::uint64_t s = h;
  for (int i = 0; i < 4; ++i) {
    sum += static_cast<double>(sim::splitmix64(s) >> 11) * 0x1.0p-53;
  }
  // Irwin-Hall(4): mean 2, variance 4/12 -> normalize.
  const double z = (sum - 2.0) / std::sqrt(4.0 / 12.0);
  return z * p_.shadowing_sigma_db;
}

double PathLossModel::loss_db(Vec2 from, Vec2 to, std::uint64_t id_a,
                              std::uint64_t id_b) const {
  const double d = std::max(distance(from, to), p_.ref_distance_m);
  const double pl = p_.ref_loss_db +
                    10.0 * p_.exponent * std::log10(d / p_.ref_distance_m);
  return pl + shadowing_db(id_a, id_b);
}

PathLossModel::LinkEntry* PathLossModel::link_lookup(
    double tx_dbm, Vec2 from, Vec2 to, std::uint64_t id_a,
    std::uint64_t id_b) const {
  if (id_a == 0 && id_b == 0) return nullptr;

  if (link_cache_.empty()) link_cache_.resize(1024);
  const std::size_t mask = link_cache_.size() - 1;
  std::size_t slot = sim::mix_hash(id_a, id_b) & mask;
  while (link_cache_[slot].used) {
    LinkEntry& e = link_cache_[slot];
    if (e.id_a == id_a && e.id_b == id_b) {
      if (e.from == from && e.to == to && e.tx_dbm == tx_dbm) {
        ++cache_stats_.link_hits;
      } else {
        // Same link, new geometry/power: recompute and refresh in place.
        ++cache_stats_.link_misses;
        e.from = from;
        e.to = to;
        e.tx_dbm = tx_dbm;
        e.rx_dbm = tx_dbm - loss_db(from, to, id_a, id_b);
        e.mw_valid = false;
      }
      return &e;
    }
    slot = (slot + 1) & mask;
  }
  ++cache_stats_.link_misses;
  const double rx = tx_dbm - loss_db(from, to, id_a, id_b);
  link_cache_[slot] = {id_a, id_b, from, to, tx_dbm, rx, 0.0, false, true};
  if (++link_cache_size_ * 10 > link_cache_.size() * 7) {
    std::vector<LinkEntry> old;
    old.swap(link_cache_);
    link_cache_.resize(old.size() * 2);
    const std::size_t m2 = link_cache_.size() - 1;
    for (const LinkEntry& e : old) {
      if (!e.used) continue;
      std::size_t s = sim::mix_hash(e.id_a, e.id_b) & m2;
      while (link_cache_[s].used) s = (s + 1) & m2;
      link_cache_[s] = e;
    }
    slot = sim::mix_hash(id_a, id_b) & m2;
    while (!(link_cache_[slot].id_a == id_a && link_cache_[slot].id_b == id_b)) {
      slot = (slot + 1) & m2;
    }
  }
  return &link_cache_[slot];
}

double PathLossModel::received_dbm(double tx_dbm, Vec2 from, Vec2 to,
                                   std::uint64_t id_a, std::uint64_t id_b) const {
  if (LinkEntry* e = link_lookup(tx_dbm, from, to, id_a, id_b)) return e->rx_dbm;
  return tx_dbm - loss_db(from, to, id_a, id_b);
}

double PathLossModel::received_mw(double tx_dbm, Vec2 from, Vec2 to,
                                  std::uint64_t id_a, std::uint64_t id_b) const {
  LinkEntry* e = link_lookup(tx_dbm, from, to, id_a, id_b);
  if (!e) return dbm_to_mw(tx_dbm - loss_db(from, to, id_a, id_b));
  if (!e->mw_valid) {
    e->rx_mw = dbm_to_mw(e->rx_dbm);
    e->mw_valid = true;
  }
  return e->rx_mw;
}

double PathLossModel::shadowing_bound_db() const {
  if (p_.shadowing_sigma_db <= 0.0) return 0.0;
  return 2.0 * std::sqrt(3.0) * p_.shadowing_sigma_db;
}

double PathLossModel::nominal_range_m(double tx_dbm,
                                      double sensitivity_dbm) const {
  const double budget = tx_dbm - sensitivity_dbm - p_.ref_loss_db;
  if (budget <= 0.0) return p_.ref_distance_m;
  return p_.ref_distance_m * std::pow(10.0, budget / (10.0 * p_.exponent));
}

double sinr_db(double signal_dbm, double interference_mw, double noise_dbm) {
  const double denom_mw = interference_mw + dbm_to_mw(noise_dbm);
  return mw_to_dbm(dbm_to_mw(signal_dbm) / denom_mw);
}

double required_sinr_db(double bitrate_bps) {
  if (bitrate_bps <= 1e6) return 4.0;
  if (bitrate_bps <= 2e6) return 7.0;
  if (bitrate_bps <= 5.5e6) return 9.0;
  if (bitrate_bps <= 11e6) return 12.0;
  // Higher-rate OFDM-style extrapolation.
  return 12.0 + 6.0 * std::log2(bitrate_bps / 11e6);
}

}  // namespace aroma::env
