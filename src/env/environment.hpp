// The Environment layer object: the paper's bottom layer, composing the
// radio medium, the acoustic field, ambient conditions, and the arena in
// which physical entities move. "The environment cannot be ignored, it must
// be factored into the conceptual model."
#pragma once

#include <memory>

#include "env/acoustics.hpp"
#include "env/geometry.hpp"
#include "env/propagation.hpp"
#include "env/radio_medium.hpp"
#include "sim/world.hpp"

namespace aroma::env {

/// Ambient conditions that are neither RF nor acoustic but still gate
/// physical compatibility (Figure 2's "must be compatible with" arrows).
struct AmbientConditions {
  double temperature_c = 21.0;
  double illuminance_lux = 400.0;   // office lighting
  double occupant_density = 0.3;    // people per 10 m^2
};

class Environment {
 public:
  struct Params {
    Rect arena{{0, 0}, {50, 50}};
    PathLossModel::Params path_loss{};
    RadioMedium::Options medium{};
    double ambient_noise_db = 35.0;
    AmbientConditions conditions{};
  };

  explicit Environment(sim::World& world) : Environment(world, Params{}) {}
  Environment(sim::World& world, Params p)
      : world_(world),
        params_(p),
        medium_(world, PathLossModel(p.path_loss), p.medium),
        acoustics_(p.ambient_noise_db) {}

  sim::World& world() { return world_; }
  const Params& params() const { return params_; }
  const Rect& arena() const { return params_.arena; }

  RadioMedium& medium() { return medium_; }
  const RadioMedium& medium() const { return medium_; }
  AcousticField& acoustics() { return acoustics_; }
  const AcousticField& acoustics() const { return acoustics_; }

  AmbientConditions& conditions() { return params_.conditions; }
  const AmbientConditions& conditions() const { return params_.conditions; }

 private:
  sim::World& world_;
  Params params_;
  RadioMedium medium_;
  AcousticField acoustics_;
};

}  // namespace aroma::env
