// 2-D geometry primitives for the simulated physical environment.
#pragma once

#include <cmath>

namespace aroma::env {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Axis-aligned rectangle, used as the arena boundary for mobility models.
struct Rect {
  Vec2 lo;
  Vec2 hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr Vec2 center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }
  Vec2 clamp(Vec2 p) const {
    return {p.x < lo.x ? lo.x : (p.x > hi.x ? hi.x : p.x),
            p.y < lo.y ? lo.y : (p.y > hi.y ? hi.y : p.y)};
  }
};

}  // namespace aroma::env
