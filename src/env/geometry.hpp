// 2-D geometry primitives for the simulated physical environment.
#pragma once

#include <cmath>
#include <cstdint>

namespace aroma::env {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Axis-aligned rectangle, used as the arena boundary for mobility models.
struct Rect {
  Vec2 lo;
  Vec2 hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr Vec2 center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }
  Vec2 clamp(Vec2 p) const {
    return {p.x < lo.x ? lo.x : (p.x > hi.x ? hi.x : p.x),
            p.y < lo.y ? lo.y : (p.y > hi.y ? hi.y : p.y)};
  }
};

/// Integer coordinate of a cell on an unbounded uniform grid. Used by the
/// radio medium's spatial index; positions anywhere in the plane map to a
/// cell, so mobility models that wander outside an arena stay indexable.
struct CellCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(CellCoord a, CellCoord b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline CellCoord cell_of(Vec2 p, double cell_size) {
  return {static_cast<std::int32_t>(std::floor(p.x / cell_size)),
          static_cast<std::int32_t>(std::floor(p.y / cell_size))};
}

/// Packs a cell coordinate into a single sortable key. XORing the sign bit
/// maps int32 order onto uint32 order, so keys are monotonic in (x, y): for
/// a fixed x, the cells y0..y1 occupy one contiguous key range — a sorted
/// key array answers a whole column of cells with a single binary search.
constexpr std::uint64_t cell_key(CellCoord c) {
  const auto ux = static_cast<std::uint32_t>(c.x) ^ 0x80000000u;
  const auto uy = static_cast<std::uint32_t>(c.y) ^ 0x80000000u;
  return (static_cast<std::uint64_t>(ux) << 32) | static_cast<std::uint64_t>(uy);
}

}  // namespace aroma::env
