// Mobility models: where a physical entity is at a given simulated time.
//
// Positions are pure functions of time (given the model's seed), so radios
// and acoustic queries can sample them lazily without per-tick updates.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "env/geometry.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aroma::env {

/// Interface: position as a function of simulated time. Implementations may
/// cache precomputed trajectory segments; queries must be monotone-safe
/// (same t -> same position) for reproducibility.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position_at(sim::Time t) const = 0;
  /// Hard upper bound on the entity's speed, in m/s: over any interval dt,
  /// |position_at(t + dt) - position_at(t)| <= max_speed_mps() * dt. The
  /// radio medium's spatial index uses this to bound how stale its grid may
  /// be while staying exact. Infinity (the default) is always safe.
  virtual double max_speed_mps() const {
    return std::numeric_limits<double>::infinity();
  }
};

/// Never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}
  Vec2 position_at(sim::Time) const override { return pos_; }
  double max_speed_mps() const override { return 0.0; }
  /// Teleports the entity. This steps outside the max_speed_mps() contract,
  /// so any RadioMedium indexing positions must be told via
  /// invalidate_positions() after calling this mid-simulation.
  void set_position(Vec2 p) { pos_ = p; }

 private:
  Vec2 pos_;
};

/// Constant-velocity line from an origin.
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(Vec2 origin, Vec2 velocity_mps)
      : origin_(origin), vel_(velocity_mps) {}
  Vec2 position_at(sim::Time t) const override {
    return origin_ + vel_ * t.seconds();
  }
  double max_speed_mps() const override { return vel_.norm(); }

 private:
  Vec2 origin_;
  Vec2 vel_;
};

/// Random waypoint within an arena: pick a target, walk there at a speed
/// drawn from [min,max], pause, repeat. Trajectory segments are generated
/// lazily and cached, so position_at is deterministic and O(log n).
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Params {
    Rect arena{{0, 0}, {50, 50}};
    double min_speed_mps = 0.5;
    double max_speed_mps = 1.5;
    sim::Time pause = sim::Time::sec(2.0);
  };

  RandomWaypointMobility(Params p, Vec2 start, std::uint64_t seed);
  Vec2 position_at(sim::Time t) const override;
  double max_speed_mps() const override { return p_.max_speed_mps; }

 private:
  struct Segment {
    sim::Time start;
    sim::Time end;       // arrival at `to`
    sim::Time pause_end; // end of the post-arrival pause
    Vec2 from;
    Vec2 to;
  };
  void extend_until(sim::Time t) const;

  Params p_;
  mutable sim::Rng rng_;
  mutable std::vector<Segment> segments_;
};

/// Bounded random walk: direction re-drawn every `step` interval, reflecting
/// off arena walls.
class RandomWalkMobility final : public MobilityModel {
 public:
  struct Params {
    Rect arena{{0, 0}, {50, 50}};
    double speed_mps = 1.0;
    sim::Time step = sim::Time::sec(1.0);
  };

  RandomWalkMobility(Params p, Vec2 start, std::uint64_t seed);
  Vec2 position_at(sim::Time t) const override;
  double max_speed_mps() const override { return p_.speed_mps; }

 private:
  void extend_until(sim::Time t) const;

  Params p_;
  mutable sim::Rng rng_;
  mutable std::vector<Vec2> waypoints_;  // position at k * step
};

}  // namespace aroma::env
