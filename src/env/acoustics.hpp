// Acoustic environment: ambient noise, speech sources, intelligibility.
//
// The paper's environment-layer analysis calls out background noise as a
// gating factor for voice-controlled pervasive devices ("background noise,
// that is currently acceptable, may become objectionable if voice
// recognition is used"). This module models sound pressure levels from
// point sources over distance plus an ambient floor, and derives a simple
// speech-intelligibility index from the speech-to-noise ratio.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/geometry.hpp"

namespace aroma::env {

/// A point sound source (a person talking, HVAC, a printer).
struct SoundSource {
  std::uint64_t id = 0;
  Vec2 position;
  double spl_at_1m_db = 60.0;  // normal speech ~60 dB SPL at 1 m
  bool active = true;
  std::string label;
};

/// Combines point sources with an ambient noise floor.
class AcousticField {
 public:
  explicit AcousticField(double ambient_db = 35.0) : ambient_db_(ambient_db) {}

  void set_ambient_db(double db) { ambient_db_ = db; }
  double ambient_db() const { return ambient_db_; }

  std::uint64_t add_source(SoundSource src);
  void remove_source(std::uint64_t id);
  void set_source_active(std::uint64_t id, bool active);
  void move_source(std::uint64_t id, Vec2 pos);
  std::size_t source_count() const { return sources_.size(); }

  /// Total sound pressure level at a point (energetic sum of all active
  /// sources attenuated by spherical spreading, plus ambient).
  double spl_at(Vec2 pos) const;

  /// Noise level at `pos` excluding source `speaker_id` (i.e. what competes
  /// with that speaker's voice).
  double noise_excluding(Vec2 pos, std::uint64_t speaker_id) const;

  /// Speech level of `speaker_id` heard at `pos`.
  double speech_level_at(Vec2 pos, std::uint64_t speaker_id) const;

  /// Simplified speech intelligibility index in [0, 1]: 0 below -15 dB
  /// speech-to-noise ratio, 1 above +15 dB, linear between (a standard
  /// articulation-index style approximation).
  double intelligibility(Vec2 listener, std::uint64_t speaker_id) const;

 private:
  static double attenuate(double spl_1m, double dist_m);
  const SoundSource* find(std::uint64_t id) const;
  SoundSource* find(std::uint64_t id);

  double ambient_db_;
  std::vector<SoundSource> sources_;
  std::uint64_t next_id_ = 1;
};

/// Social appropriateness of speaking at a given level in a space with a
/// given ambient level and occupant density (people per 10 m^2). Returns a
/// score in [0,1]; below ~0.5 the paper's "socially inappropriate in a
/// cramped office" concern applies.
double social_appropriateness(double speech_db, double ambient_db,
                              double occupant_density);

}  // namespace aroma::env
