#include "rfb/framebuffer.hpp"

#include "sim/simd.hpp"
#include "snap/format.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace aroma::rfb {

RectRegion bounding(const RectRegion& a, const RectRegion& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const int x0 = std::min(a.x, b.x);
  const int y0 = std::min(a.y, b.y);
  const int x1 = std::max(a.x + a.w, b.x + b.w);
  const int y1 = std::max(a.y + a.h, b.y + b.h);
  return {x0, y0, x1 - x0, y1 - y0};
}

Framebuffer::Framebuffer(int width, int height, Pixel fill)
    : width_(width), height_(height),
      tiles_x_((width + kTileSize - 1) / kTileSize),
      tiles_y_((height + kTileSize - 1) / kTileSize),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill),
      tile_dirty_(static_cast<std::size_t>(tiles_x_) *
                      static_cast<std::size_t>(tiles_y_),
                  0) {}

RectRegion Framebuffer::clip(RectRegion r) const {
  const int x0 = std::clamp(r.x, 0, width_);
  const int y0 = std::clamp(r.y, 0, height_);
  const int x1 = std::clamp(r.x + r.w, 0, width_);
  const int y1 = std::clamp(r.y + r.h, 0, height_);
  return {x0, y0, x1 - x0, y1 - y0};
}

void Framebuffer::set(int x, int y, Pixel p) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  if (pixels_[idx(x, y)] == p) return;
  pixels_[idx(x, y)] = p;
  add_damage({x, y, 1, 1});
}

void Framebuffer::fill_rect(RectRegion r, Pixel p) {
  r = clip(r);
  if (r.empty()) return;
  bool changed = false;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (pixels_[idx(x, y)] != p) {
        pixels_[idx(x, y)] = p;
        changed = true;
      }
    }
  }
  if (changed) add_damage(r);
}

void Framebuffer::write_block(RectRegion r, const Pixel* data) {
  const RectRegion c = clip(r);
  if (c.empty()) return;
  for (int y = c.y; y < c.y + c.h; ++y) {
    for (int x = c.x; x < c.x + c.w; ++x) {
      pixels_[idx(x, y)] =
          data[static_cast<std::size_t>(y - r.y) * static_cast<std::size_t>(r.w) +
               static_cast<std::size_t>(x - r.x)];
    }
  }
  add_damage(c);
}

void Framebuffer::mark_tiles(RectRegion r) {
  const int tx0 = r.x / kTileSize;
  const int ty0 = r.y / kTileSize;
  const int tx1 = (r.x + r.w - 1) / kTileSize;
  const int ty1 = (r.y + r.h - 1) / kTileSize;
  for (int ty = ty0; ty <= ty1; ++ty) {
    for (int tx = tx0; tx <= tx1; ++tx) {
      std::uint8_t& bit = tile_dirty_[tile_idx(tx, ty)];
      if (bit == 0) {
        bit = 1;
        ++dirty_tiles_;
      }
    }
  }
}

void Framebuffer::add_damage(RectRegion r) {
  if (r.empty()) return;
  mark_tiles(r);
  // Absorb into an intersecting rect when possible.
  for (auto& d : damage_) {
    if (d.intersects(r) || d == r) {
      d = bounding(d, r);
      return;
    }
  }
  damage_.push_back(r);
  if (damage_.size() <= kMaxDamageRects) return;
  // Over capacity. A single bounding box is the cheapest representation,
  // but only acceptable when the damage is dense -- otherwise two far-apart
  // 1-px damages would re-encode a near-full-screen rect. Dense damage
  // (bounding area within kDenseCollapseFactor of the accumulated area)
  // collapses; sparse damage merges the one pair that grows least.
  long long total = 0;
  RectRegion all{};
  for (const auto& d : damage_) {
    total += d.area();
    all = bounding(all, d);
  }
  if (static_cast<long long>(all.area()) <= kDenseCollapseFactor * total) {
    damage_.clear();
    damage_.push_back(all);
    return;
  }
  std::size_t bi = 0, bj = 1;
  long long best = std::numeric_limits<long long>::max();
  for (std::size_t i = 0; i + 1 < damage_.size(); ++i) {
    for (std::size_t j = i + 1; j < damage_.size(); ++j) {
      const long long cost =
          static_cast<long long>(bounding(damage_[i], damage_[j]).area()) -
          damage_[i].area() - damage_[j].area();
      if (cost < best) {
        best = cost;
        bi = i;
        bj = j;
      }
    }
  }
  damage_[bi] = bounding(damage_[bi], damage_[bj]);
  damage_.erase(damage_.begin() + static_cast<std::ptrdiff_t>(bj));
}

void Framebuffer::clear_damage() {
  damage_.clear();
  if (dirty_tiles_ != 0) {
    std::fill(tile_dirty_.begin(), tile_dirty_.end(), std::uint8_t{0});
    dirty_tiles_ = 0;
  }
}

void Framebuffer::collect_dirty_tiles(std::vector<TileCoord>& out) const {
  out.clear();
  if (dirty_tiles_ == 0) return;
  out.reserve(dirty_tiles_);
  for (int ty = 0; ty < tiles_y_; ++ty) {
    for (int tx = 0; tx < tiles_x_; ++tx) {
      if (tile_dirty_[tile_idx(tx, ty)] != 0) out.push_back({tx, ty});
    }
  }
}

RectRegion Framebuffer::tile_rect(int tx, int ty) const {
  const int x = tx * kTileSize;
  const int y = ty * kTileSize;
  return {x, y, std::min(kTileSize, width_ - x),
          std::min(kTileSize, height_ - y)};
}

RectRegion Framebuffer::damage_bounds() const {
  RectRegion all{};
  for (const auto& d : damage_) all = bounding(all, d);
  return all;
}

namespace {

constexpr std::uint32_t kFnv32Basis = 2166136261u;
constexpr std::uint32_t kFnv32Prime = 16777619u;

// Distinct per-lane seeds so lane contents are not interchangeable (pixel
// order across lanes affects the final value).
constexpr std::uint32_t lane_basis(unsigned j) {
  return kFnv32Basis + j * 0x9e3779b9u;
}

// Lane count: 16 gives the SIMD path four independent accumulator chains,
// enough to hide the vector-multiply latency that two chains (8 lanes)
// cannot — the multiply is the serial dependency in FNV.
constexpr unsigned kHashLanes = 16;

// Dims + lane states folded into one 64-bit value.
std::uint64_t fold_lanes(RectRegion r, const std::uint32_t lane[kHashLanes]) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.w)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.h)));
  for (unsigned j = 0; j < kHashLanes; ++j) mix(lane[j]);
  return h;
}

}  // namespace

std::uint64_t Framebuffer::hash_rect(RectRegion r) const {
  namespace simd = sim::simd;
  std::uint32_t lane[kHashLanes];
  for (unsigned j = 0; j < kHashLanes; ++j) lane[j] = lane_basis(j);
  unsigned phase = 0;  // lane the next pixel feeds; carries across rows
  for (int y = r.y; y < r.y + r.h; ++y) {
    const Pixel* p = row(y) + r.x;
    int x = 0;
    while (x < r.w && phase != 0) {
      lane[phase] = (lane[phase] ^ p[x]) * kFnv32Prime;
      phase = (phase + 1) & (kHashLanes - 1);
      ++x;
    }
    if constexpr (simd::kEnabled) {
      if (x + 16 <= r.w) {  // phase == 0 here: the prefix loop ran to it
        const simd::U32x4 prime = simd::broadcast(kFnv32Prime);
        simd::U32x4 v0 = simd::load(lane);
        simd::U32x4 v1 = simd::load(lane + 4);
        simd::U32x4 v2 = simd::load(lane + 8);
        simd::U32x4 v3 = simd::load(lane + 12);
        do {
          v0 = simd::mul4(simd::xor4(v0, simd::load(p + x)), prime);
          v1 = simd::mul4(simd::xor4(v1, simd::load(p + x + 4)), prime);
          v2 = simd::mul4(simd::xor4(v2, simd::load(p + x + 8)), prime);
          v3 = simd::mul4(simd::xor4(v3, simd::load(p + x + 12)), prime);
          x += 16;
        } while (x + 16 <= r.w);
        simd::store(lane, v0);
        simd::store(lane + 4, v1);
        simd::store(lane + 8, v2);
        simd::store(lane + 12, v3);
      }
    }
    while (x < r.w) {
      lane[phase] = (lane[phase] ^ p[x]) * kFnv32Prime;
      phase = (phase + 1) & (kHashLanes - 1);
      ++x;
    }
  }
  return fold_lanes(r, lane);
}

#if defined(__GNUC__) && !defined(__clang__)
// Keep the oracle honestly scalar: GCC happily auto-vectorizes this loop at
// -O2/-O3, which would erase the speedup rfb_bench gates on.
__attribute__((optimize("no-tree-vectorize")))
#endif
std::uint64_t Framebuffer::hash_rect_reference(RectRegion r) const {
  std::uint32_t lane[kHashLanes];
  for (unsigned j = 0; j < kHashLanes; ++j) lane[j] = lane_basis(j);
  unsigned phase = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    const Pixel* p = row(y) + r.x;
    for (int x = 0; x < r.w; ++x) {
      lane[phase] = (lane[phase] ^ p[x]) * kFnv32Prime;
      phase = (phase + 1) & (kHashLanes - 1);
    }
  }
  return fold_lanes(r, lane);
}

std::uint64_t Framebuffer::content_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Pixel p : pixels_) {
    h ^= p;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Framebuffer::same_content(const Framebuffer& other) const {
  return width_ == other.width_ && height_ == other.height_ &&
         pixels_ == other.pixels_;
}

void Framebuffer::save(snap::SectionWriter& w) const {
  w.u32(static_cast<std::uint32_t>(width_));
  w.u32(static_cast<std::uint32_t>(height_));
  w.bytes(pixels_.data(), pixels_.size() * sizeof(Pixel));
  w.u64(damage_.size());
  for (const RectRegion& r : damage_) {
    w.i64(r.x);
    w.i64(r.y);
    w.i64(r.w);
    w.i64(r.h);
  }
  w.bytes(tile_dirty_.data(), tile_dirty_.size());
  w.u64(dirty_tiles_);
}

void Framebuffer::restore(snap::SectionReader& r) {
  const int w = static_cast<int>(r.u32());
  const int h = static_cast<int>(r.u32());
  if (w != width_ || h != height_) {
    throw snap::SnapError("framebuffer restore: dimension mismatch");
  }
  const std::vector<std::uint8_t> px = r.bytes();
  if (px.size() != pixels_.size() * sizeof(Pixel)) {
    throw snap::SnapError("framebuffer restore: pixel payload size");
  }
  std::memcpy(pixels_.data(), px.data(), px.size());
  damage_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    RectRegion rect;
    rect.x = static_cast<int>(r.i64());
    rect.y = static_cast<int>(r.i64());
    rect.w = static_cast<int>(r.i64());
    rect.h = static_cast<int>(r.i64());
    damage_.push_back(rect);
  }
  const std::vector<std::uint8_t> tiles = r.bytes();
  if (tiles.size() != tile_dirty_.size()) {
    throw snap::SnapError("framebuffer restore: tile grid size");
  }
  tile_dirty_ = tiles;
  dirty_tiles_ = static_cast<std::size_t>(r.u64());
}

}  // namespace aroma::rfb
