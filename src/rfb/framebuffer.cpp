#include "rfb/framebuffer.hpp"

#include <algorithm>

namespace aroma::rfb {

RectRegion bounding(const RectRegion& a, const RectRegion& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const int x0 = std::min(a.x, b.x);
  const int y0 = std::min(a.y, b.y);
  const int x1 = std::max(a.x + a.w, b.x + b.w);
  const int y1 = std::max(a.y + a.h, b.y + b.h);
  return {x0, y0, x1 - x0, y1 - y0};
}

Framebuffer::Framebuffer(int width, int height, Pixel fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {}

RectRegion Framebuffer::clip(RectRegion r) const {
  const int x0 = std::clamp(r.x, 0, width_);
  const int y0 = std::clamp(r.y, 0, height_);
  const int x1 = std::clamp(r.x + r.w, 0, width_);
  const int y1 = std::clamp(r.y + r.h, 0, height_);
  return {x0, y0, x1 - x0, y1 - y0};
}

void Framebuffer::set(int x, int y, Pixel p) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  if (pixels_[idx(x, y)] == p) return;
  pixels_[idx(x, y)] = p;
  add_damage({x, y, 1, 1});
}

void Framebuffer::fill_rect(RectRegion r, Pixel p) {
  r = clip(r);
  if (r.empty()) return;
  bool changed = false;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (pixels_[idx(x, y)] != p) {
        pixels_[idx(x, y)] = p;
        changed = true;
      }
    }
  }
  if (changed) add_damage(r);
}

void Framebuffer::write_block(RectRegion r, const Pixel* data) {
  const RectRegion c = clip(r);
  if (c.empty()) return;
  for (int y = c.y; y < c.y + c.h; ++y) {
    for (int x = c.x; x < c.x + c.w; ++x) {
      pixels_[idx(x, y)] =
          data[static_cast<std::size_t>(y - r.y) * static_cast<std::size_t>(r.w) +
               static_cast<std::size_t>(x - r.x)];
    }
  }
  add_damage(c);
}

void Framebuffer::add_damage(RectRegion r) {
  if (r.empty()) return;
  // Absorb into an intersecting rect when possible.
  for (auto& d : damage_) {
    if (d.intersects(r) || d == r) {
      d = bounding(d, r);
      return;
    }
  }
  damage_.push_back(r);
  if (damage_.size() > kMaxDamageRects) {
    RectRegion all = damage_.front();
    for (const auto& d : damage_) all = bounding(all, d);
    damage_.clear();
    damage_.push_back(all);
  }
}

RectRegion Framebuffer::damage_bounds() const {
  RectRegion all{};
  for (const auto& d : damage_) all = bounding(all, d);
  return all;
}

std::uint64_t Framebuffer::content_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Pixel p : pixels_) {
    h ^= p;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Framebuffer::same_content(const Framebuffer& other) const {
  return width_ == other.width_ && height_ == other.height_ &&
         pixels_ == other.pixels_;
}

}  // namespace aroma::rfb
