// Synthetic screen content generators for projection experiments.
//
// Three canonical workloads: slide decks (rare whole-screen changes — the
// Smart Projector's intended use), animation (continuous motion — what the
// paper says the wireless link cannot sustain), and typing (small frequent
// damage).
#pragma once

#include <cstdint>
#include <memory>

#include "rfb/framebuffer.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::rfb {

/// Mutates the framebuffer each time step() is called; the scenario decides
/// the cadence (e.g. via a PeriodicTimer).
class ScreenWorkload {
 public:
  virtual ~ScreenWorkload() = default;
  virtual void step(Framebuffer& fb) = 0;
  virtual const char* name() const = 0;
};

/// A new "slide" every `slides_interval` steps: background fill plus a
/// title bar and a deterministic pattern of text-like bars.
class SlideDeckWorkload final : public ScreenWorkload {
 public:
  explicit SlideDeckWorkload(std::uint64_t seed) : rng_(seed) {}
  void step(Framebuffer& fb) override;
  const char* name() const override { return "slides"; }
  int slide_number() const { return slide_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  sim::Rng rng_;
  int slide_ = 0;
};

/// A bouncing filled rectangle over a static background.
class AnimationWorkload final : public ScreenWorkload {
 public:
  AnimationWorkload(std::uint64_t seed, int sprite_px = 48);
  void step(Framebuffer& fb) override;
  const char* name() const override { return "animation"; }

 private:
  sim::Rng rng_;
  int sprite_;
  double x_ = 10.0, y_ = 10.0;
  double vx_, vy_;
  bool background_drawn_ = false;
  Pixel bg_ = 0xff202028;
};

/// Small localized damage: a line of "text" grows, then wraps.
class TypingWorkload final : public ScreenWorkload {
 public:
  explicit TypingWorkload(std::uint64_t seed) : rng_(seed) {}
  void step(Framebuffer& fb) override;
  const char* name() const override { return "typing"; }

 private:
  sim::Rng rng_;
  int col_ = 0;
  int row_ = 0;
  bool background_drawn_ = false;
};

}  // namespace aroma::rfb
