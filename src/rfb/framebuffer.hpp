// Pixel framebuffer with damage tracking.
//
// The substitution for AT&T VNC's framebuffer: the laptop renders into one
// of these, the RFB server encodes damaged regions, and the projector-side
// client maintains a replica.
#pragma once

#include <cstdint>
#include <vector>

namespace aroma::rfb {

using Pixel = std::uint32_t;

struct RectRegion {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool empty() const { return w <= 0 || h <= 0; }
  int area() const { return empty() ? 0 : w * h; }
  bool intersects(const RectRegion& o) const {
    return !empty() && !o.empty() && x < o.x + o.w && o.x < x + w &&
           y < o.y + o.h && o.y < y + h;
  }
  friend bool operator==(const RectRegion&, const RectRegion&) = default;
};

/// Union bounding box of two rects.
RectRegion bounding(const RectRegion& a, const RectRegion& b);

class Framebuffer {
 public:
  Framebuffer(int width, int height, Pixel fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  RectRegion bounds() const { return {0, 0, width_, height_}; }

  Pixel at(int x, int y) const { return pixels_[idx(x, y)]; }
  void set(int x, int y, Pixel p);
  void fill_rect(RectRegion r, Pixel p);
  /// Writes a row-major block of pixels (used by decoders); clips to bounds.
  void write_block(RectRegion r, const Pixel* data);

  const std::vector<Pixel>& pixels() const { return pixels_; }

  // Damage tracking ---------------------------------------------------------
  const std::vector<RectRegion>& damage() const { return damage_; }
  bool has_damage() const { return !damage_.empty(); }
  RectRegion damage_bounds() const;
  void clear_damage() { damage_.clear(); }
  /// Marks a region damaged without changing pixels (full refresh requests).
  void mark_damaged(RectRegion r) { add_damage(clip(r)); }

  /// Content hash for replica-equality checks.
  std::uint64_t content_hash() const;
  bool same_content(const Framebuffer& other) const;

 private:
  std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  RectRegion clip(RectRegion r) const;
  void add_damage(RectRegion r);

  int width_;
  int height_;
  std::vector<Pixel> pixels_;
  std::vector<RectRegion> damage_;
  static constexpr std::size_t kMaxDamageRects = 16;
};

}  // namespace aroma::rfb
