// Pixel framebuffer with damage tracking.
//
// The substitution for AT&T VNC's framebuffer: the laptop renders into one
// of these, the RFB server encodes damaged regions, and the projector-side
// client maintains a replica.
//
// Damage is tracked at two granularities:
//  * a small list of damage rects (the classic VNC region list) for the
//    raw/RLE/tiled encoders, coalesced with a bounded-waste policy;
//  * a 16x16 tile grid of dirty bits, so the cached encoder can walk the
//    exact dirty tile set instead of re-encoding bounding boxes -- a
//    1-pixel change dirties one tile, not a slide-sized rect.
// Both are cleared together by clear_damage(). Tile marking is a handful
// of byte stores per mutation and never affects pixel content.
#pragma once

#include <cstdint>
#include <vector>

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::rfb {

using Pixel = std::uint32_t;

struct RectRegion {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool empty() const { return w <= 0 || h <= 0; }
  int area() const { return empty() ? 0 : w * h; }
  bool intersects(const RectRegion& o) const {
    return !empty() && !o.empty() && x < o.x + o.w && o.x < x + w &&
           y < o.y + o.h && o.y < y + h;
  }
  friend bool operator==(const RectRegion&, const RectRegion&) = default;
};

/// Union bounding box of two rects.
RectRegion bounding(const RectRegion& a, const RectRegion& b);

/// Tile-grid coordinate (tile (tx, ty) covers pixels starting at
/// (tx * kTileSize, ty * kTileSize)).
struct TileCoord {
  int tx = 0;
  int ty = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class Framebuffer {
 public:
  /// Tile edge for the dirty-tile grid and the tiled/cached encoders.
  static constexpr int kTileSize = 16;

  Framebuffer(int width, int height, Pixel fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  RectRegion bounds() const { return {0, 0, width_, height_}; }

  Pixel at(int x, int y) const { return pixels_[idx(x, y)]; }
  /// Contiguous row-major storage: row y spans [row(y), row(y) + width()).
  /// The zero-copy encoders iterate these spans instead of gathering.
  const Pixel* row(int y) const { return pixels_.data() + idx(0, y); }
  void set(int x, int y, Pixel p);
  void fill_rect(RectRegion r, Pixel p);
  /// Writes a row-major block of pixels (used by decoders); clips to bounds.
  void write_block(RectRegion r, const Pixel* data);

  const std::vector<Pixel>& pixels() const { return pixels_; }

  // Damage tracking ---------------------------------------------------------
  const std::vector<RectRegion>& damage() const { return damage_; }
  bool has_damage() const { return !damage_.empty(); }
  RectRegion damage_bounds() const;
  void clear_damage();
  /// Marks a region damaged without changing pixels (full refresh requests).
  void mark_damaged(RectRegion r) { add_damage(clip(r)); }

  // Tile grid ---------------------------------------------------------------
  int tiles_x() const { return tiles_x_; }
  int tiles_y() const { return tiles_y_; }
  bool tile_dirty(int tx, int ty) const {
    return tile_dirty_[tile_idx(tx, ty)] != 0;
  }
  std::size_t dirty_tile_count() const { return dirty_tiles_; }
  /// Fills `out` (cleared first) with the dirty tiles in row-major order.
  void collect_dirty_tiles(std::vector<TileCoord>& out) const;
  /// The pixel rect a tile covers, clipped to the framebuffer edge (right
  /// and bottom edge tiles may be narrower than kTileSize).
  RectRegion tile_rect(int tx, int ty) const;

  /// Content hash of an arbitrary rect: sixteen interleaved FNV-1a-32 lanes
  /// over the row-major pixel stream (pixel i feeds lane i mod 16), folded
  /// with the dims into one FNV-1a-64 value. The lane structure removes the
  /// serial multiply dependency of plain FNV so the hot path runs four
  /// 4-lane SIMD streams (see sim/simd.hpp); only equality classes matter
  /// to the callers (tile-cache keying), not the value itself. Bit-identical
  /// on every backend — hash_rect_reference is the oracle.
  std::uint64_t hash_rect(RectRegion r) const;

  /// Plain scalar rotating-lane implementation of the same hash; the
  /// property tests pin hash_rect to it bit-for-bit, and rfb_bench measures
  /// the SIMD speedup against it.
  std::uint64_t hash_rect_reference(RectRegion r) const;

  /// Content hash for replica-equality checks.
  std::uint64_t content_hash() const;
  bool same_content(const Framebuffer& other) const;

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Pixels, damage rects, and the dirty-tile grid round-trip; dimensions
  // are structural and must match (restore throws snap::SnapError
  // otherwise).
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  std::size_t tile_idx(int tx, int ty) const {
    return static_cast<std::size_t>(ty) * static_cast<std::size_t>(tiles_x_) +
           static_cast<std::size_t>(tx);
  }
  RectRegion clip(RectRegion r) const;
  void add_damage(RectRegion r);
  void mark_tiles(RectRegion r);

  int width_;
  int height_;
  int tiles_x_;
  int tiles_y_;
  std::vector<Pixel> pixels_;
  std::vector<RectRegion> damage_;
  std::vector<std::uint8_t> tile_dirty_;
  std::size_t dirty_tiles_ = 0;
  static constexpr std::size_t kMaxDamageRects = 16;
  /// A full collapse of the rect list into one bounding box is allowed only
  /// when that box covers at most this multiple of the accumulated damage
  /// area -- dense damage (a line of typed characters) still folds into one
  /// cheap rect, while far-apart clusters stay separate and coalesce by
  /// minimum added area instead.
  static constexpr int kDenseCollapseFactor = 4;
};

}  // namespace aroma::rfb
