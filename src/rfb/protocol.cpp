#include "rfb/protocol.hpp"

#include <cstring>

#include "net/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aroma::rfb {

// ---------------------------------------------------------------------------
// RfbServer

RfbServer::RfbServer(sim::World& world, Framebuffer& source,
                     std::shared_ptr<net::StreamConnection> conn)
    : RfbServer(world, source, std::move(conn), Params{}) {}

RfbServer::RfbServer(sim::World& world, Framebuffer& source,
                     std::shared_ptr<net::StreamConnection> conn,
                     Params params)
    : world_(world), source_(source), conn_(std::move(conn)), params_(params) {
  framer_.set_handler(
      [this](std::span<const std::byte> msg) { on_message(msg); });
  conn_->set_data_handler(
      [this](std::span<const std::byte> data) { framer_.on_bytes(data); });
  poller_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.damage_poll, [this] { maybe_send_update(); });
  poller_->set_category(sim::EventCategory::kRfb);
  poller_->start();
  const auto layer = lpc::Layer::kAbstract;
  m_updates_ = obs::counter(world_, "rfb.server.updates_sent", layer);
  m_rects_ = obs::counter(world_, "rfb.server.rects_sent", layer);
  m_bytes_ = obs::counter(world_, "rfb.server.bytes_sent", layer);
  m_update_bytes_ = obs::histogram(world_, "rfb.server.update_bytes", layer,
                                   0.0, 65536.0, 32);
}

RfbServer::~RfbServer() {
  // The connection may outlive us inside pending simulator events; make
  // sure late deliveries cannot call back into freed state.
  conn_->set_data_handler({});
  conn_->set_established_handler({});
}

void RfbServer::notify_changed() { maybe_send_update(); }

void RfbServer::on_message(std::span<const std::byte> msg) {
  net::ByteReader r(msg);
  const auto type = static_cast<RfbMsg>(r.u8());
  if (!r.ok()) return;
  switch (type) {
    case RfbMsg::kClientInit: {
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(RfbMsg::kServerInit));
      w.u32(static_cast<std::uint32_t>(source_.width()));
      w.u32(static_cast<std::uint32_t>(source_.height()));
      conn_->send(MessageFramer::frame(w.data()));
      return;
    }
    case RfbMsg::kUpdateRequest: {
      const bool incremental = r.u8() != 0;
      update_pending_ = true;
      if (!incremental) full_requested_ = true;
      maybe_send_update();
      return;
    }
    default:
      return;
  }
}

void RfbServer::maybe_send_update() {
  if (!update_pending_ || encoding_in_progress_) return;
  std::vector<RectRegion> rects;
  if (full_requested_) {
    rects.push_back(source_.bounds());
    full_requested_ = false;
    source_.clear_damage();
  } else if (source_.has_damage()) {
    rects = source_.damage();
    source_.clear_damage();
  } else {
    return;  // stay pending until something changes
  }
  update_pending_ = false;
  send_update(rects);
}

void RfbServer::send_update(const std::vector<RectRegion>& rects) {
  // Covers encode + the scheduled completion event (which inherits this
  // span as its causal context, so the stream send parents here too).
  obs::ScopedSpan span(world_, "rfb.update", lpc::Layer::kAbstract);
  // Encode now (content snapshot), charge simulated CPU, then transmit.
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RfbMsg::kUpdate));
  w.u8(static_cast<std::uint8_t>(params_.encoding));
  w.u16(static_cast<std::uint16_t>(rects.size()));
  std::uint64_t pixels = 0;
  for (const RectRegion& r : rects) {
    auto payload = encode_rect(source_, r, params_.encoding);
    w.u16(static_cast<std::uint16_t>(r.x));
    w.u16(static_cast<std::uint16_t>(r.y));
    w.u16(static_cast<std::uint16_t>(r.w));
    w.u16(static_cast<std::uint16_t>(r.h));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    for (std::byte b : payload) w.u8(static_cast<std::uint8_t>(b));
    pixels += static_cast<std::uint64_t>(r.area());
    ++stats_.rects_sent;
    if (m_rects_) m_rects_->add();
  }
  const double encode_s =
      static_cast<double>(pixels) * encode_cost_per_pixel(params_.encoding) /
      (params_.cpu_mips * 1e6);
  stats_.encode_seconds += encode_s;
  stats_.pixels_encoded += pixels;
  ++stats_.updates_sent;

  auto framed = MessageFramer::frame(w.data());
  stats_.bytes_sent += framed.size();
  if (m_updates_) m_updates_->add();
  if (m_bytes_) m_bytes_->add(framed.size());
  if (m_update_bytes_) m_update_bytes_->add(static_cast<double>(framed.size()));
  span.annotate("bytes", std::to_string(framed.size()));
  encoding_in_progress_ = true;
  world_.sim().schedule_in(sim::Time::sec(encode_s), sim::EventCategory::kRfb,
                           [this, framed = std::move(framed)]() mutable {
                             encoding_in_progress_ = false;
                             conn_->send(std::move(framed));
                             maybe_send_update();
                           });
}

// ---------------------------------------------------------------------------
// RfbClient

double RfbClientStats::fps(sim::Time now) const {
  if (updates_received < 2) return 0.0;
  const double span = (now - first_update).seconds();
  return span > 0.0 ? static_cast<double>(updates_received - 1) / span : 0.0;
}

RfbClient::RfbClient(sim::World& world,
                     std::shared_ptr<net::StreamConnection> conn)
    : world_(world), conn_(std::move(conn)) {
  framer_.set_handler(
      [this](std::span<const std::byte> msg) { on_message(msg); });
  conn_->set_data_handler(
      [this](std::span<const std::byte> data) { framer_.on_bytes(data); });
}

RfbClient::~RfbClient() {
  conn_->set_data_handler({});
  conn_->set_established_handler({});
}

void RfbClient::start() {
  auto hello = [this] {
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RfbMsg::kClientInit));
    conn_->send(MessageFramer::frame(w.data()));
  };
  if (conn_->established()) {
    hello();
  } else {
    conn_->set_established_handler(hello);
  }
}

void RfbClient::request_update(bool incremental) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RfbMsg::kUpdateRequest));
  w.u8(incremental ? 1 : 0);
  conn_->send(MessageFramer::frame(w.data()));
}

void RfbClient::on_message(std::span<const std::byte> msg) {
  net::ByteReader r(msg);
  const auto type = static_cast<RfbMsg>(r.u8());
  if (!r.ok()) return;
  switch (type) {
    case RfbMsg::kServerInit: {
      const int w = static_cast<int>(r.u32());
      const int h = static_cast<int>(r.u32());
      if (!r.ok()) return;
      replica_ = std::make_unique<Framebuffer>(w, h);
      request_update(/*incremental=*/false);
      return;
    }
    case RfbMsg::kUpdate: {
      if (!replica_) return;
      const auto enc = static_cast<Encoding>(r.u8());
      const std::uint16_t nrects = r.u16();
      for (std::uint16_t i = 0; i < nrects && r.ok(); ++i) {
        RectRegion rect;
        rect.x = r.u16();
        rect.y = r.u16();
        rect.w = r.u16();
        rect.h = r.u16();
        const auto payload = r.bytes();
        if (!r.ok()) break;
        if (!decode_rect(*replica_, rect, enc, payload)) {
          ++stats_.decode_errors;
        }
      }
      stats_.bytes_received += msg.size() + 4;
      const sim::Time now = world_.now();
      if (stats_.updates_received == 0) {
        stats_.first_update = now;
      } else {
        stats_.update_interval_s.add((now - stats_.last_update).seconds());
      }
      stats_.last_update = now;
      ++stats_.updates_received;
      replica_->clear_damage();
      request_update(/*incremental=*/true);
      return;
    }
    default:
      return;
  }
}

}  // namespace aroma::rfb
