#include "rfb/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "net/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::rfb {

// ---------------------------------------------------------------------------
// RfbServer

RfbServer::RfbServer(sim::World& world, Framebuffer& source,
                     std::shared_ptr<net::StreamConnection> conn)
    : RfbServer(world, source, std::move(conn), Params{}) {}

RfbServer::RfbServer(sim::World& world, Framebuffer& source,
                     std::shared_ptr<net::StreamConnection> conn,
                     Params params)
    : world_(world), source_(source), conn_(std::move(conn)), params_(params),
      scratch_(world.arena()) {
  framer_.set_handler(
      [this](std::span<const std::byte> msg) { on_message(msg); });
  conn_->set_data_handler(
      [this](std::span<const std::byte> data) { framer_.on_bytes(data); });
  poller_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.damage_poll, [this] { maybe_send_update(); });
  poller_->set_category(sim::EventCategory::kRfb);
  poller_->start();
  if (params_.encoding == Encoding::kCached) {
    last_tile_hash_.assign(static_cast<std::size_t>(source_.tiles_x()) *
                               static_cast<std::size_t>(source_.tiles_y()),
                           0);
  }
  const auto layer = lpc::Layer::kAbstract;
  m_updates_ = obs::counter(world_, "rfb.server.updates_sent", layer);
  m_rects_ = obs::counter(world_, "rfb.server.rects_sent", layer);
  m_bytes_ = obs::counter(world_, "rfb.server.bytes_sent", layer);
  m_tiles_ = obs::counter(world_, "rfb.tiles_encoded", layer);
  m_cache_hits_ = obs::counter(world_, "rfb.cache_hits", layer);
  m_update_bytes_ = obs::histogram(world_, "rfb.server.update_bytes", layer,
                                   0.0, 65536.0, 32);
}

RfbServer::~RfbServer() {
  // The connection may outlive us inside pending simulator events; make
  // sure late deliveries cannot call back into freed state.
  conn_->set_data_handler({});
  conn_->set_established_handler({});
}

void RfbServer::notify_changed() { maybe_send_update(); }

void RfbServer::on_message(std::span<const std::byte> msg) {
  net::ByteReader r(msg);
  const auto type = static_cast<RfbMsg>(r.u8());
  if (!r.ok()) return;
  switch (type) {
    case RfbMsg::kClientInit: {
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(RfbMsg::kServerInit));
      w.u32(static_cast<std::uint32_t>(source_.width()));
      w.u32(static_cast<std::uint32_t>(source_.height()));
      conn_->send(MessageFramer::frame(w.data()));
      return;
    }
    case RfbMsg::kUpdateRequest: {
      const bool incremental = r.u8() != 0;
      update_pending_ = true;
      if (!incremental) full_requested_ = true;
      maybe_send_update();
      return;
    }
    default:
      return;
  }
}

void RfbServer::maybe_send_update() {
  if (!update_pending_ || encoding_in_progress_) return;
  if (params_.encoding == Encoding::kCached) {
    maybe_send_cached();
    return;
  }
  std::vector<RectRegion> rects;
  if (full_requested_) {
    rects.push_back(source_.bounds());
    full_requested_ = false;
    source_.clear_damage();
  } else if (source_.has_damage()) {
    rects = source_.damage();
    source_.clear_damage();
  } else {
    return;  // stay pending until something changes
  }
  update_pending_ = false;
  send_update(rects);
}

void RfbServer::send_update(const std::vector<RectRegion>& rects) {
  // Covers encode + the scheduled completion event (which inherits this
  // span as its causal context, so the stream send parents here too).
  obs::ScopedSpan span(world_, "rfb.update", lpc::Layer::kAbstract);
  // Encode now (content snapshot), charge simulated CPU, then transmit.
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RfbMsg::kUpdate));
  w.u8(static_cast<std::uint8_t>(params_.encoding));
  w.u16(static_cast<std::uint16_t>(rects.size()));
  std::uint64_t pixels = 0;
  for (const RectRegion& r : rects) {
    encode_rect_into(source_, r, params_.encoding, scratch_);
    w.u16(static_cast<std::uint16_t>(r.x));
    w.u16(static_cast<std::uint16_t>(r.y));
    w.u16(static_cast<std::uint16_t>(r.w));
    w.u16(static_cast<std::uint16_t>(r.h));
    w.bytes(std::span<const std::byte>(scratch_.out.data(),
                                       scratch_.out.size()));
    pixels += static_cast<std::uint64_t>(r.area());
    ++stats_.rects_sent;
    if (m_rects_) m_rects_->add();
  }
  const double encode_s =
      static_cast<double>(pixels) * encode_cost_per_pixel(params_.encoding) /
      (params_.cpu_mips * 1e6);
  stats_.pixels_encoded += pixels;
  span.annotate("bytes", std::to_string(w.data().size() + 4));
  transmit(w, encode_s);
}

void RfbServer::maybe_send_cached() {
  if (full_requested_) {
    // A full refresh resets the per-position last-sent hashes (the viewer
    // may be new) but keeps the cache mirror: references into surviving
    // client state are still valid and exactly what makes refreshes cheap.
    std::fill(last_tile_hash_.begin(), last_tile_hash_.end(), 0);
    source_.mark_damaged(source_.bounds());
    full_requested_ = false;
  }
  if (source_.dirty_tile_count() == 0) return;  // stay pending
  source_.collect_dirty_tiles(dirty_tiles_);
  source_.clear_damage();

  obs::ScopedSpan span(world_, "rfb.update", lpc::Layer::kAbstract);
  const CachedEncodeStats cs = encode_tiles_cached(
      source_, dirty_tiles_, cache_mirror_, last_tile_hash_, scratch_);
  stats_.tiles_encoded += cs.tiles_sent;
  stats_.cache_hits += cs.cache_refs;
  stats_.tiles_skipped += cs.tiles_skipped;
  stats_.pixels_encoded += cs.pixels_hashed;
  if (m_tiles_) m_tiles_->add(cs.tiles_sent);
  if (m_cache_hits_) m_cache_hits_->add(cs.cache_refs);
  if (cs.tiles_sent + cs.cache_refs == 0) {
    // Every damaged tile already matches the replica; nothing to send.
    // update_pending_ stays set so real damage answers the request.
    return;
  }
  // One bounds rect carries the whole tile-set payload.
  const RectRegion r = source_.bounds();
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RfbMsg::kUpdate));
  w.u8(static_cast<std::uint8_t>(params_.encoding));
  w.u16(1);
  w.u16(static_cast<std::uint16_t>(r.x));
  w.u16(static_cast<std::uint16_t>(r.y));
  w.u16(static_cast<std::uint16_t>(r.w));
  w.u16(static_cast<std::uint16_t>(r.h));
  w.bytes(std::span<const std::byte>(scratch_.out.data(),
                                     scratch_.out.size()));
  ++stats_.rects_sent;
  if (m_rects_) m_rects_->add();
  const double encode_s = static_cast<double>(cs.pixels_hashed) *
                          encode_cost_per_pixel(params_.encoding) /
                          (params_.cpu_mips * 1e6);
  span.annotate("bytes", std::to_string(w.data().size() + 4));
  transmit(w, encode_s);
}

void RfbServer::transmit(net::ByteWriter& w, double encode_s) {
  stats_.encode_seconds += encode_s;
  ++stats_.updates_sent;
  update_pending_ = false;
  auto framed = MessageFramer::frame(w.data());
  stats_.bytes_sent += framed.size();
  if (m_updates_) m_updates_->add();
  if (m_bytes_) m_bytes_->add(framed.size());
  if (m_update_bytes_) m_update_bytes_->add(static_cast<double>(framed.size()));
  encoding_in_progress_ = true;
  world_.sim().schedule_in(sim::Time::sec(encode_s), sim::EventCategory::kRfb,
                           [this, framed = std::move(framed)]() mutable {
                             encoding_in_progress_ = false;
                             conn_->send(std::move(framed));
                             maybe_send_update();
                           });
}

// ---------------------------------------------------------------------------
// RfbClient

double RfbClientStats::fps(sim::Time now) const {
  if (updates_received < 2) return 0.0;
  const double span = (now - first_update).seconds();
  return span > 0.0 ? static_cast<double>(updates_received - 1) / span : 0.0;
}

RfbClient::RfbClient(sim::World& world,
                     std::shared_ptr<net::StreamConnection> conn)
    : world_(world), conn_(std::move(conn)), scratch_(world.arena()) {
  framer_.set_handler(
      [this](std::span<const std::byte> msg) { on_message(msg); });
  conn_->set_data_handler(
      [this](std::span<const std::byte> data) { framer_.on_bytes(data); });
  m_decode_errors_ =
      obs::counter(world_, "rfb.client.decode_errors", lpc::Layer::kAbstract);
  m_update_latency_ =
      obs::hdr(world_, "rfb.client.update_latency_us", lpc::Layer::kAbstract);
}

RfbClient::~RfbClient() {
  conn_->set_data_handler({});
  conn_->set_established_handler({});
}

void RfbClient::start() {
  auto hello = [this] {
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RfbMsg::kClientInit));
    conn_->send(MessageFramer::frame(w.data()));
  };
  if (conn_->established()) {
    hello();
  } else {
    conn_->set_established_handler(hello);
  }
}

void RfbClient::request_update(bool incremental) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RfbMsg::kUpdateRequest));
  w.u8(incremental ? 1 : 0);
  conn_->send(MessageFramer::frame(w.data()));
}

void RfbClient::on_message(std::span<const std::byte> msg) {
  net::ByteReader r(msg);
  const auto type = static_cast<RfbMsg>(r.u8());
  if (!r.ok()) return;
  switch (type) {
    case RfbMsg::kServerInit: {
      const int w = static_cast<int>(r.u32());
      const int h = static_cast<int>(r.u32());
      if (!r.ok()) return;
      replica_ = std::make_unique<Framebuffer>(w, h);
      cache_.clear();
      request_update(/*incremental=*/false);
      return;
    }
    case RfbMsg::kUpdate: {
      if (!replica_) return;
      const auto enc = static_cast<Encoding>(r.u8());
      const std::uint16_t nrects = r.u16();
      for (std::uint16_t i = 0; i < nrects && r.ok(); ++i) {
        RectRegion rect;
        rect.x = r.u16();
        rect.y = r.u16();
        rect.w = r.u16();
        rect.h = r.u16();
        const auto payload = r.bytes();
        if (!r.ok()) break;
        const bool ok =
            enc == Encoding::kCached
                ? decode_tiles_cached(*replica_, cache_, payload, scratch_)
                : decode_rect(*replica_, rect, enc, payload);
        if (!ok) {
          ++stats_.decode_errors;
          if (m_decode_errors_) m_decode_errors_->add();
        }
      }
      stats_.bytes_received += msg.size() + 4;
      const sim::Time now = world_.now();
      // End-to-end frame delivery latency: the server's "rfb.update" span is
      // an ancestor of the event delivering these bytes (trace contexts
      // propagate through scheduled events), so its start stamps the send.
      if (m_update_latency_ != nullptr) {
        if (const obs::SpanTracer* t = world_.spans()) {
          for (const obs::SpanRecord* rec :
               t->ancestry(world_.sim().trace_context())) {
            if (rec->name == "rfb.update") {
              m_update_latency_->record(static_cast<std::uint64_t>(
                  (now - rec->start).count() / 1000));
              break;
            }
          }
        }
      }
      if (stats_.updates_received == 0) {
        stats_.first_update = now;
      } else {
        stats_.update_interval_s.add((now - stats_.last_update).seconds());
      }
      stats_.last_update = now;
      ++stats_.updates_received;
      replica_->clear_damage();
      request_update(/*incremental=*/true);
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

bool RfbServer::snap_quiescent(std::string* why) const {
  if (encoding_in_progress_) {
    if (why) *why = "rfb server: encode in progress";
    return false;
  }
  if (framer_.buffered() != 0) {
    if (why) *why = "rfb server: partial message buffered";
    return false;
  }
  return true;
}

void RfbServer::save(snap::SectionWriter& w) const {
  w.b(update_pending_);
  w.b(full_requested_);
  w.u64(stats_.updates_sent);
  w.u64(stats_.rects_sent);
  w.u64(stats_.bytes_sent);
  w.u64(stats_.pixels_encoded);
  w.f64(stats_.encode_seconds);
  w.u64(stats_.tiles_encoded);
  w.u64(stats_.cache_hits);
  w.u64(stats_.tiles_skipped);
  poller_->save(w);
}

void RfbServer::restore(snap::SectionReader& r) {
  encoding_in_progress_ = false;
  framer_.reset();
  update_pending_ = r.b();
  full_requested_ = r.b();
  stats_.updates_sent = r.u64();
  stats_.rects_sent = r.u64();
  stats_.bytes_sent = r.u64();
  stats_.pixels_encoded = r.u64();
  stats_.encode_seconds = r.f64();
  stats_.tiles_encoded = r.u64();
  stats_.cache_hits = r.u64();
  stats_.tiles_skipped = r.u64();
  poller_->restore(r);
}

void RfbServer::save_cache(snap::SectionWriter& w) const {
  cache_mirror_.save(w);
  w.u64(last_tile_hash_.size());
  for (std::uint64_t h : last_tile_hash_) w.u64(h);
}

void RfbServer::restore_cache(snap::SectionReader& r) {
  cache_mirror_.restore(r);
  const std::uint64_t n = r.u64();
  if (n != last_tile_hash_.size()) {
    throw snap::SnapError("rfb server restore: last-sent table size");
  }
  for (std::uint64_t& h : last_tile_hash_) h = r.u64();
}

bool RfbClient::snap_quiescent(std::string* why) const {
  if (framer_.buffered() != 0) {
    if (why) *why = "rfb client: partial message buffered";
    return false;
  }
  return true;
}

void RfbClient::save(snap::SectionWriter& w) const {
  w.u64(stats_.updates_received);
  w.u64(stats_.bytes_received);
  w.u64(stats_.decode_errors);
  const sim::Accumulator& acc = stats_.update_interval_s;
  w.u64(acc.count());
  w.f64(acc.mean());
  w.f64(acc.m2());
  w.f64(acc.min());
  w.f64(acc.max());
  w.time_delta(stats_.first_update);
  w.time_delta(stats_.last_update);
}

void RfbClient::restore(snap::SectionReader& r) {
  framer_.reset();
  stats_.updates_received = r.u64();
  stats_.bytes_received = r.u64();
  stats_.decode_errors = r.u64();
  const std::uint64_t n = r.u64();
  const double mean = r.f64();
  const double m2 = r.f64();
  const double mn = r.f64();
  const double mx = r.f64();
  stats_.update_interval_s.load(n, mean, m2, mn, mx);
  stats_.first_update = r.time_delta();
  stats_.last_update = r.time_delta();
}

void RfbClient::save_cache(snap::SectionWriter& w) const {
  w.b(replica_ != nullptr);
  if (replica_) replica_->save(w);
  cache_.save(w);
}

void RfbClient::restore_cache(snap::SectionReader& r) {
  const bool has_replica = r.b();
  if (has_replica && !replica_) {
    throw snap::SnapError("rfb client restore: replica not initialized");
  }
  if (!has_replica) {
    replica_.reset();
    cache_.restore(r);
    return;
  }
  replica_->restore(r);
  cache_.restore(r);
}

}  // namespace aroma::rfb
