#include "rfb/encoding.hpp"

#include <algorithm>
#include <cstring>

#include "sim/simd.hpp"

namespace aroma::rfb {

const char* to_string(Encoding e) {
  switch (e) {
    case Encoding::kRaw: return "raw";
    case Encoding::kRle: return "rle";
    case Encoding::kTiled: return "tiled";
    case Encoding::kCached: return "cached";
  }
  return "?";
}

double encode_cost_per_pixel(Encoding e) {
  switch (e) {
    case Encoding::kRaw: return 2.0;    // copy
    case Encoding::kRle: return 6.0;    // compare + run bookkeeping
    case Encoding::kTiled: return 9.0;  // tile scan + best-of-three choice
    case Encoding::kCached: return 4.0; // hash pass; literals are the exception
  }
  return 2.0;
}

namespace {

constexpr int kTile = Framebuffer::kTileSize;

template <typename Buf>
void put_u32(Buf& out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + 4);
}

/// One (run, pixel) record in a single 8-byte append: the RLE scanner emits
/// one per run, and a single insert halves the capacity checks on content
/// where every pixel is its own run.
template <typename Buf>
void put_run(Buf& out, std::uint32_t run, std::uint32_t px) {
  const std::uint32_t v[2] = {run, px};
  const auto* b = reinterpret_cast<const std::byte*>(v);
  out.insert(out.end(), b, b + 8);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t& pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return v;
}

// --- zero-copy row-span encoders -------------------------------------------

/// Appends Raw pixels of `r`: one memcpy per row out of the framebuffer's
/// contiguous storage.
template <typename Buf>
void raw_spans(const Framebuffer& fb, RectRegion r, Buf& out) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(r.w) * sizeof(Pixel);
  const std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(r.h) * row_bytes);
  std::byte* dst = out.data() + base;
  for (int y = r.y; y < r.y + r.h; ++y) {
    std::memcpy(dst, fb.row(y) + r.x, row_bytes);
    dst += row_bytes;
  }
}

/// Appends (run_len u32, pixel u32)* for `r`, scanning row spans in place.
/// Runs continue across row boundaries exactly like the original gathered
/// row-major scan, so the output is byte-identical to it. Run extension is
/// the hot loop: simd::match_run_u32 eats 4 pixels per compare instead of
/// one, stopping exactly at the first mismatch (or the u32 cap, which the
/// original handled by emitting and restarting the same color).
template <typename Buf>
void rle_spans(const Framebuffer& fb, RectRegion r, Buf& out) {
  Pixel cur = 0;
  std::uint32_t run = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    const Pixel* p = fb.row(y) + r.x;
    int x = 0;
    while (x < r.w) {
      if (run != 0) {
        const std::size_t room = 0xffffffffu - run;
        const std::size_t avail =
            std::min(room, static_cast<std::size_t>(r.w - x));
        const std::size_t ext = sim::simd::match_run_u32(p + x, avail, cur);
        run += static_cast<std::uint32_t>(ext);
        x += static_cast<int>(ext);
        if (x >= r.w) break;  // row exhausted; run may continue next row
        put_run(out, run, cur);  // mismatch, or capped, color repeating
      }
      cur = p[x];
      run = 1;
      ++x;
    }
  }
  if (run != 0) put_run(out, run, cur);
}

/// True when every pixel of `r` equals its first pixel. One vectorized
/// leading-run check per row; bails at the first mismatching lane.
bool solid_spans(const Framebuffer& fb, RectRegion r, Pixel& color) {
  color = fb.row(r.y)[r.x];
  const auto w = static_cast<std::size_t>(r.w);
  for (int y = r.y; y < r.y + r.h; ++y) {
    if (sim::simd::match_run_u32(fb.row(y) + r.x, w, color) != w) return false;
  }
  return true;
}

}  // namespace

// Shared by encode_tiles_cached (rfb/cache.cpp): one tile record body with
// the tiled best-of-three choice (0 solid / 1 rle / 2 raw).
namespace detail {

void encode_tile_body(const Framebuffer& fb, RectRegion tile,
                      EncodeScratch& scratch) {
  Pixel color = 0;
  if (solid_spans(fb, tile, color)) {
    scratch.out.push_back(std::byte{0});
    put_u32(scratch.out, color);
    return;
  }
  scratch.tile.clear();
  rle_spans(fb, tile, scratch.tile);
  if (scratch.tile.size() < raw_size(tile)) {
    scratch.out.push_back(std::byte{1});
    put_u32(scratch.out, static_cast<std::uint32_t>(scratch.tile.size()));
    scratch.out.insert(scratch.out.end(), scratch.tile.begin(),
                       scratch.tile.end());
  } else {
    scratch.out.push_back(std::byte{2});
    raw_spans(fb, tile, scratch.out);
  }
}

bool decode_rle(std::span<const std::byte> in, std::size_t expected,
                EncodeScratch::PixelBuf& px) {
  px.clear();
  px.reserve(expected);
  std::size_t pos = 0;
  while (px.size() < expected) {
    if (pos + 8 > in.size()) return false;  // truncated record
    const std::uint32_t run = get_u32(in, pos);
    const Pixel p = get_u32(in, pos);
    // The encoder never emits zero-length runs; accepting them would let
    // arbitrary padding ride inside an otherwise-complete stream.
    if (run == 0) return false;
    if (px.size() + run > expected) return false;  // run overflows the rect
    px.insert(px.end(), run, p);
  }
  // Explicit over-long-input rejection: a complete decode must consume the
  // input exactly, trailing bytes are malformed (not silently ignored).
  return pos == in.size();
}

std::vector<std::pair<std::uint32_t, Pixel>> scan_runs_reference(
    const Framebuffer& fb, RectRegion r) {
  std::vector<std::pair<std::uint32_t, Pixel>> runs;
  scan_runs_reference_into(fb, r, runs);
  return runs;
}

void scan_runs_into(const Framebuffer& fb, RectRegion r,
                    std::vector<std::byte>& out) {
  out.clear();
  rle_spans(fb, r, out);
}

std::vector<std::pair<std::uint32_t, Pixel>> scan_runs(const Framebuffer& fb,
                                                       RectRegion r) {
  // Run the production scanner verbatim and parse its wire format, so this
  // is the path the encoders ship, not a lookalike.
  std::vector<std::byte> bytes;
  rle_spans(fb, r, bytes);
  std::vector<std::pair<std::uint32_t, Pixel>> runs;
  runs.reserve(bytes.size() / 8);
  std::size_t pos = 0;
  while (pos + 8 <= bytes.size()) {
    const std::uint32_t run = get_u32(bytes, pos);
    const Pixel p = get_u32(bytes, pos);
    runs.emplace_back(run, p);
  }
  return runs;
}

void scan_runs_reference_into(
    const Framebuffer& fb, RectRegion r,
    std::vector<std::pair<std::uint32_t, Pixel>>& runs) {
  runs.clear();
  Pixel cur = 0;
  std::uint32_t run = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    const Pixel* p = fb.row(y) + r.x;
    for (int x = 0; x < r.w; ++x) {
      if (run != 0 && p[x] == cur && run < 0xffffffffu) {
        ++run;
        continue;
      }
      if (run != 0) runs.emplace_back(run, cur);
      cur = p[x];
      run = 1;
    }
  }
  if (run != 0) runs.emplace_back(run, cur);
}

bool solid_tile(const Framebuffer& fb, RectRegion r, Pixel& color) {
  return solid_spans(fb, r, color);
}

bool solid_tile_reference(const Framebuffer& fb, RectRegion r, Pixel& color) {
  color = fb.row(r.y)[r.x];
  for (int y = r.y; y < r.y + r.h; ++y) {
    const Pixel* p = fb.row(y) + r.x;
    for (int x = 0; x < r.w; ++x) {
      if (p[x] != color) return false;
    }
  }
  return true;
}

}  // namespace detail

void encode_rect_into(const Framebuffer& fb, RectRegion rect, Encoding enc,
                      EncodeScratch& scratch) {
  scratch.out.clear();
  switch (enc) {
    case Encoding::kRaw:
      raw_spans(fb, rect, scratch.out);
      return;
    case Encoding::kRle:
      rle_spans(fb, rect, scratch.out);
      return;
    case Encoding::kTiled: {
      // Per 16x16 tile: u8 mode (0 solid, 1 rle, 2 raw) + payload.
      for (int ty = rect.y; ty < rect.y + rect.h; ty += kTile) {
        for (int tx = rect.x; tx < rect.x + rect.w; tx += kTile) {
          const RectRegion tile{tx, ty,
                                std::min(kTile, rect.x + rect.w - tx),
                                std::min(kTile, rect.y + rect.h - ty)};
          detail::encode_tile_body(fb, tile, scratch);
        }
      }
      return;
    }
    case Encoding::kCached:
      // Stateful: served by encode_tiles_cached (rfb/cache.hpp).
      return;
  }
}

std::vector<std::byte> encode_rect(const Framebuffer& fb, RectRegion rect,
                                   Encoding enc) {
  EncodeScratch scratch;
  encode_rect_into(fb, rect, enc, scratch);
  return std::vector<std::byte>(scratch.out.begin(), scratch.out.end());
}

// ---------------------------------------------------------------------------
// Reference encoder: the original gather-based implementation, byte-for-byte.

namespace {

void gather(const Framebuffer& fb, RectRegion r, std::vector<Pixel>& out) {
  out.resize(static_cast<std::size_t>(r.area()));
  std::size_t k = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      out[k++] = fb.at(x, y);
    }
  }
}

std::vector<std::byte> encode_raw_gathered(std::span<const Pixel> px) {
  std::vector<std::byte> out(px.size() * sizeof(Pixel));
  std::memcpy(out.data(), px.data(), out.size());
  return out;
}

std::vector<std::byte> encode_rle_gathered(std::span<const Pixel> px) {
  std::vector<std::byte> out;
  std::size_t i = 0;
  while (i < px.size()) {
    std::size_t j = i + 1;
    while (j < px.size() && px[j] == px[i] && j - i < 0xffffffffu) ++j;
    put_u32(out, static_cast<std::uint32_t>(j - i));
    put_u32(out, px[i]);
    i = j;
  }
  return out;
}

}  // namespace

std::vector<std::byte> encode_rect_reference(const Framebuffer& fb,
                                             RectRegion rect, Encoding enc) {
  std::vector<Pixel> px;
  switch (enc) {
    case Encoding::kRaw: {
      gather(fb, rect, px);
      return encode_raw_gathered(px);
    }
    case Encoding::kRle: {
      gather(fb, rect, px);
      return encode_rle_gathered(px);
    }
    case Encoding::kTiled: {
      std::vector<std::byte> out;
      for (int ty = rect.y; ty < rect.y + rect.h; ty += kTile) {
        for (int tx = rect.x; tx < rect.x + rect.w; tx += kTile) {
          const RectRegion tile{tx, ty,
                                std::min(kTile, rect.x + rect.w - tx),
                                std::min(kTile, rect.y + rect.h - ty)};
          gather(fb, tile, px);
          bool solid = true;
          for (Pixel p : px) solid &= (p == px[0]);
          if (solid) {
            out.push_back(std::byte{0});
            put_u32(out, px[0]);
            continue;
          }
          auto rle = encode_rle_gathered(px);
          if (rle.size() < px.size() * sizeof(Pixel)) {
            out.push_back(std::byte{1});
            put_u32(out, static_cast<std::uint32_t>(rle.size()));
            out.insert(out.end(), rle.begin(), rle.end());
          } else {
            out.push_back(std::byte{2});
            auto raw = encode_raw_gathered(px);
            out.insert(out.end(), raw.begin(), raw.end());
          }
        }
      }
      return out;
    }
    case Encoding::kCached:
      return {};
  }
  return {};
}

// ---------------------------------------------------------------------------

bool decode_rect(Framebuffer& fb, RectRegion rect, Encoding enc,
                 std::span<const std::byte> data) {
  EncodeScratch::PixelBuf px;
  switch (enc) {
    case Encoding::kRaw: {
      const std::size_t expected = raw_size(rect);
      if (data.size() != expected) return false;
      px.resize(static_cast<std::size_t>(rect.area()));
      std::memcpy(px.data(), data.data(), data.size());
      fb.write_block(rect, px.data());
      return true;
    }
    case Encoding::kRle: {
      if (!detail::decode_rle(data, static_cast<std::size_t>(rect.area()),
                              px)) {
        return false;
      }
      fb.write_block(rect, px.data());
      return true;
    }
    case Encoding::kTiled: {
      std::size_t pos = 0;
      for (int ty = rect.y; ty < rect.y + rect.h; ty += kTile) {
        for (int tx = rect.x; tx < rect.x + rect.w; tx += kTile) {
          const RectRegion tile{tx, ty,
                                std::min(kTile, rect.x + rect.w - tx),
                                std::min(kTile, rect.y + rect.h - ty)};
          const auto count = static_cast<std::size_t>(tile.area());
          if (pos >= data.size()) return false;
          const auto mode = static_cast<std::uint8_t>(data[pos++]);
          if (mode == 0) {
            if (pos + 4 > data.size()) return false;
            const Pixel p = get_u32(data, pos);
            px.assign(count, p);
          } else if (mode == 1) {
            if (pos + 4 > data.size()) return false;
            const std::uint32_t len = get_u32(data, pos);
            if (pos + len > data.size()) return false;
            if (!detail::decode_rle(data.subspan(pos, len), count, px)) {
              return false;
            }
            pos += len;
          } else if (mode == 2) {
            const std::size_t bytes = count * sizeof(Pixel);
            if (pos + bytes > data.size()) return false;
            px.resize(count);
            std::memcpy(px.data(), data.data() + pos, bytes);
            pos += bytes;
          } else {
            return false;
          }
          fb.write_block(tile, px.data());
        }
      }
      return pos == data.size();
    }
    case Encoding::kCached:
      // Stateful: served by decode_tiles_cached (rfb/cache.hpp).
      return false;
  }
  return false;
}

}  // namespace aroma::rfb
