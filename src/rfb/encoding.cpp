#include "rfb/encoding.hpp"

#include <cstring>

namespace aroma::rfb {

const char* to_string(Encoding e) {
  switch (e) {
    case Encoding::kRaw: return "raw";
    case Encoding::kRle: return "rle";
    case Encoding::kTiled: return "tiled";
  }
  return "?";
}

double encode_cost_per_pixel(Encoding e) {
  switch (e) {
    case Encoding::kRaw: return 2.0;    // copy
    case Encoding::kRle: return 6.0;    // compare + run bookkeeping
    case Encoding::kTiled: return 9.0;  // tile scan + best-of-three choice
  }
  return 2.0;
}

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + 4);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t& pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return v;
}

void gather(const Framebuffer& fb, RectRegion r, std::vector<Pixel>& out) {
  out.resize(static_cast<std::size_t>(r.area()));
  std::size_t k = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      out[k++] = fb.at(x, y);
    }
  }
}

std::vector<std::byte> encode_raw(std::span<const Pixel> px) {
  std::vector<std::byte> out(px.size() * sizeof(Pixel));
  std::memcpy(out.data(), px.data(), out.size());
  return out;
}

std::vector<std::byte> encode_rle(std::span<const Pixel> px) {
  // (run_len u32, pixel u32)* — favours the long solid runs of slides.
  std::vector<std::byte> out;
  std::size_t i = 0;
  while (i < px.size()) {
    std::size_t j = i + 1;
    while (j < px.size() && px[j] == px[i] && j - i < 0xffffffffu) ++j;
    put_u32(out, static_cast<std::uint32_t>(j - i));
    put_u32(out, px[i]);
    i = j;
  }
  return out;
}

bool decode_rle(std::span<const std::byte> in, std::size_t expected,
                std::vector<Pixel>& px) {
  px.clear();
  px.reserve(expected);
  std::size_t pos = 0;
  while (pos + 8 <= in.size() && px.size() < expected) {
    const std::uint32_t run = get_u32(in, pos);
    const Pixel p = get_u32(in, pos);
    if (px.size() + run > expected) return false;
    px.insert(px.end(), run, p);
  }
  return px.size() == expected && pos == in.size();
}

constexpr int kTile = 16;

}  // namespace

std::vector<std::byte> encode_rect(const Framebuffer& fb, RectRegion rect,
                                   Encoding enc) {
  std::vector<Pixel> px;
  switch (enc) {
    case Encoding::kRaw: {
      gather(fb, rect, px);
      return encode_raw(px);
    }
    case Encoding::kRle: {
      gather(fb, rect, px);
      return encode_rle(px);
    }
    case Encoding::kTiled: {
      // Per 16x16 tile: u8 mode (0 solid, 1 rle, 2 raw) + payload.
      std::vector<std::byte> out;
      for (int ty = rect.y; ty < rect.y + rect.h; ty += kTile) {
        for (int tx = rect.x; tx < rect.x + rect.w; tx += kTile) {
          const RectRegion tile{tx, ty,
                                std::min(kTile, rect.x + rect.w - tx),
                                std::min(kTile, rect.y + rect.h - ty)};
          gather(fb, tile, px);
          bool solid = true;
          for (Pixel p : px) solid &= (p == px[0]);
          if (solid) {
            out.push_back(std::byte{0});
            put_u32(out, px[0]);
            continue;
          }
          auto rle = encode_rle(px);
          if (rle.size() < px.size() * sizeof(Pixel)) {
            out.push_back(std::byte{1});
            put_u32(out, static_cast<std::uint32_t>(rle.size()));
            out.insert(out.end(), rle.begin(), rle.end());
          } else {
            out.push_back(std::byte{2});
            auto raw = encode_raw(px);
            out.insert(out.end(), raw.begin(), raw.end());
          }
        }
      }
      return out;
    }
  }
  return {};
}

bool decode_rect(Framebuffer& fb, RectRegion rect, Encoding enc,
                 std::span<const std::byte> data) {
  std::vector<Pixel> px;
  switch (enc) {
    case Encoding::kRaw: {
      const std::size_t expected = raw_size(rect);
      if (data.size() != expected) return false;
      px.resize(static_cast<std::size_t>(rect.area()));
      std::memcpy(px.data(), data.data(), data.size());
      fb.write_block(rect, px.data());
      return true;
    }
    case Encoding::kRle: {
      if (!decode_rle(data, static_cast<std::size_t>(rect.area()), px)) {
        return false;
      }
      fb.write_block(rect, px.data());
      return true;
    }
    case Encoding::kTiled: {
      std::size_t pos = 0;
      for (int ty = rect.y; ty < rect.y + rect.h; ty += kTile) {
        for (int tx = rect.x; tx < rect.x + rect.w; tx += kTile) {
          const RectRegion tile{tx, ty,
                                std::min(kTile, rect.x + rect.w - tx),
                                std::min(kTile, rect.y + rect.h - ty)};
          const auto count = static_cast<std::size_t>(tile.area());
          if (pos >= data.size()) return false;
          const auto mode = static_cast<std::uint8_t>(data[pos++]);
          if (mode == 0) {
            if (pos + 4 > data.size()) return false;
            const Pixel p = get_u32(data, pos);
            px.assign(count, p);
          } else if (mode == 1) {
            if (pos + 4 > data.size()) return false;
            const std::uint32_t len = get_u32(data, pos);
            if (pos + len > data.size()) return false;
            if (!decode_rle(data.subspan(pos, len), count, px)) return false;
            pos += len;
          } else if (mode == 2) {
            const std::size_t bytes = count * sizeof(Pixel);
            if (pos + bytes > data.size()) return false;
            px.resize(count);
            std::memcpy(px.data(), data.data() + pos, bytes);
            pos += bytes;
          } else {
            return false;
          }
          fb.write_block(tile, px.data());
        }
      }
      return pos == data.size();
    }
  }
  return false;
}

}  // namespace aroma::rfb
