// The remote framebuffer protocol (VNC substitute) over reliable streams.
//
// Client-pull flow as in RFB: the viewer sends an update request, the
// server replies with encoded rects for the damaged region, the viewer
// immediately requests again. This self-paces the frame rate to whatever
// the link and the encoder can sustain — which is exactly the mechanism
// behind the paper's observation that wireless bandwidth "prevents us from
// displaying rapid animation."
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/framer.hpp"
#include "net/stream.hpp"
#include "rfb/cache.hpp"
#include "rfb/encoding.hpp"
#include "rfb/framebuffer.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::net {
class ByteWriter;
}  // namespace aroma::net

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::rfb {

using MessageFramer = net::MessageFramer;

enum class RfbMsg : std::uint8_t {
  kClientInit = 1,   // viewer hello
  kServerInit,       // width, height
  kUpdateRequest,    // u8 incremental
  kUpdate,           // rect list
};

struct RfbServerStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t rects_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t pixels_encoded = 0;
  double encode_seconds = 0.0;   // simulated encoder CPU time
  // Cached-encoding breakdown (zero unless Encoding::kCached).
  std::uint64_t tiles_encoded = 0;   // literal tile records sent
  std::uint64_t cache_hits = 0;      // 8-byte reference records sent
  std::uint64_t tiles_skipped = 0;   // re-damaged but content-unchanged
};

/// Serves one viewer from a source framebuffer.
class RfbServer {
 public:
  struct Params {
    Encoding encoding = Encoding::kTiled;
    double cpu_mips = 120.0;          // encoder host CPU (Aroma adapter)
    sim::Time damage_poll = sim::Time::ms(10);
    std::size_t max_update_bytes = 512 * 1024;
  };

  RfbServer(sim::World& world, Framebuffer& source,
            std::shared_ptr<net::StreamConnection> conn);
  RfbServer(sim::World& world, Framebuffer& source,
            std::shared_ptr<net::StreamConnection> conn, Params params);
  ~RfbServer();
  RfbServer(const RfbServer&) = delete;
  RfbServer& operator=(const RfbServer&) = delete;

  /// Call after mutating the source framebuffer to wake a pending request
  /// without waiting for the poll timer.
  void notify_changed();

  const RfbServerStats& stats() const { return stats_; }
  bool viewer_connected() const { return conn_ && conn_->established(); }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // The encode-completion one-shot captures the framed update bytes, so the
  // server is only checkpointable between encodes. Control state (request
  // flags, stats, poll timer) and the bulky cached-encoder state (cache
  // mirror + per-tile last-sent hashes) serialize into separate sections:
  // the latter only churns when screen content changes, which is what makes
  // incremental checkpoints small on slide-deck workloads.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);
  void save_cache(snap::SectionWriter& w) const;
  void restore_cache(snap::SectionReader& r);

 private:
  void on_message(std::span<const std::byte> msg);
  void maybe_send_update();
  void send_update(const std::vector<RectRegion>& rects);
  void maybe_send_cached();
  void transmit(net::ByteWriter& w, double encode_s);

  sim::World& world_;
  Framebuffer& source_;
  std::shared_ptr<net::StreamConnection> conn_;
  Params params_;
  MessageFramer framer_;
  bool update_pending_ = false;     // viewer asked, nothing damaged yet
  bool full_requested_ = false;
  bool encoding_in_progress_ = false;
  RfbServerStats stats_;
  std::unique_ptr<sim::PeriodicTimer> poller_;

  // Encoder state. The scratch draws from the world arena so steady-state
  // encoding allocates nothing; the cache mirror and per-tile last-sent
  // hashes exist only for Encoding::kCached (empty otherwise).
  EncodeScratch scratch_;
  TileCache cache_mirror_;                    // hashes only, no pixels
  std::vector<std::uint64_t> last_tile_hash_; // 0 = never sent
  std::vector<TileCoord> dirty_tiles_;

  // Telemetry handles; null when the world has no registry attached.
  obs::Counter* m_updates_ = nullptr;
  obs::Counter* m_rects_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_tiles_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  sim::Histogram* m_update_bytes_ = nullptr;
};

struct RfbClientStats {
  std::uint64_t updates_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t decode_errors = 0;
  sim::Accumulator update_interval_s;
  double fps(sim::Time now) const;
  sim::Time first_update;
  sim::Time last_update;
};

/// The viewer: maintains a replica framebuffer.
class RfbClient {
 public:
  RfbClient(sim::World& world, std::shared_ptr<net::StreamConnection> conn);
  ~RfbClient();
  RfbClient(const RfbClient&) = delete;
  RfbClient& operator=(const RfbClient&) = delete;

  /// Starts the session (sends ClientInit once the stream establishes).
  void start();

  const Framebuffer& replica() const { return *replica_; }
  bool initialized() const { return replica_ != nullptr; }
  const RfbClientStats& stats() const { return stats_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);
  void save_cache(snap::SectionWriter& w) const;
  void restore_cache(snap::SectionReader& r);

 private:
  void on_message(std::span<const std::byte> msg);
  void request_update(bool incremental);

  sim::World& world_;
  std::shared_ptr<net::StreamConnection> conn_;
  MessageFramer framer_;
  std::unique_ptr<Framebuffer> replica_;
  TileCache cache_;        // cached-encoding tile store (reset per session)
  EncodeScratch scratch_;  // decode staging, capacity kept across updates
  RfbClientStats stats_;
  obs::Counter* m_decode_errors_ = nullptr;
  obs::HdrHistogram* m_update_latency_ = nullptr;  // server send -> decode, µs
};

}  // namespace aroma::rfb
