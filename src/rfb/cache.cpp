#include "rfb/cache.hpp"

#include "snap/format.hpp"

#include <cstring>

namespace aroma::rfb {

namespace {

template <typename Buf>
void put_u16(Buf& out, std::uint16_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + 2);
}

template <typename Buf>
void put_u32_at(Buf& out, std::size_t at, std::uint32_t v) {
  std::memcpy(out.data() + at, &v, 4);
}

template <typename Buf>
void put_u64(Buf& out, std::uint64_t v) {
  const auto* b = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), b, b + 8);
}

bool get_u16(std::span<const std::byte> in, std::size_t& pos,
             std::uint16_t& v) {
  if (pos + 2 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 2);
  pos += 2;
  return true;
}

bool get_u32(std::span<const std::byte> in, std::size_t& pos,
             std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return true;
}

bool get_u64(std::span<const std::byte> in, std::size_t& pos,
             std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 8);
  pos += 8;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// TileCache

bool TileCache::touch(std::uint64_t hash) {
  const auto it = index_.find(hash);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void TileCache::insert(std::uint64_t hash, int w, int h,
                       std::span<const Pixel> pixels) {
  if (touch(hash)) return;  // refresh recency; content is hash-determined
  lru_.push_front(Entry{hash, w, h,
                        std::vector<Pixel>(pixels.begin(), pixels.end())});
  index_[hash] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++evictions_;
  }
}

const TileCache::Entry* TileCache::find(std::uint64_t hash) const {
  const auto it = index_.find(hash);
  return it == index_.end() ? nullptr : &*it->second;
}

void TileCache::clear() {
  lru_.clear();
  index_.clear();
}

// ---------------------------------------------------------------------------
// Tile-set encode/decode

CachedEncodeStats encode_tiles_cached(const Framebuffer& fb,
                                      std::span<const TileCoord> tiles,
                                      TileCache& cache,
                                      std::vector<std::uint64_t>& last_sent,
                                      EncodeScratch& scratch) {
  CachedEncodeStats stats;
  scratch.out.clear();
  const std::size_t count_at = scratch.out.size();
  scratch.out.insert(scratch.out.end(), 4, std::byte{0});  // ntiles patch slot
  std::uint32_t ntiles = 0;
  for (const TileCoord& tc : tiles) {
    const RectRegion tile = fb.tile_rect(tc.tx, tc.ty);
    const std::uint64_t hash = fb.hash_rect(tile);
    stats.pixels_hashed += static_cast<std::uint64_t>(tile.area());
    const std::size_t pos =
        static_cast<std::size_t>(tc.ty) *
            static_cast<std::size_t>(fb.tiles_x()) +
        static_cast<std::size_t>(tc.tx);
    if (last_sent[pos] == hash) {
      ++stats.tiles_skipped;  // viewer already shows this content here
      continue;
    }
    put_u16(scratch.out, static_cast<std::uint16_t>(tc.tx));
    put_u16(scratch.out, static_cast<std::uint16_t>(tc.ty));
    if (cache.touch(hash)) {
      scratch.out.push_back(std::byte{3});
      put_u64(scratch.out, hash);
      ++stats.cache_refs;
    } else {
      detail::encode_tile_body(fb, tile, scratch);
      cache.insert(hash, tile.w, tile.h, {});
      ++stats.tiles_sent;
    }
    last_sent[pos] = hash;
    ++ntiles;
  }
  put_u32_at(scratch.out, count_at, ntiles);
  return stats;
}

bool decode_tiles_cached(Framebuffer& fb, TileCache& cache,
                         std::span<const std::byte> data,
                         EncodeScratch& scratch) {
  std::size_t pos = 0;
  std::uint32_t ntiles = 0;
  if (!get_u32(data, pos, ntiles)) return false;
  EncodeScratch::PixelBuf& px = scratch.px;
  for (std::uint32_t i = 0; i < ntiles; ++i) {
    std::uint16_t tx = 0, ty = 0;
    if (!get_u16(data, pos, tx) || !get_u16(data, pos, ty)) return false;
    if (tx >= fb.tiles_x() || ty >= fb.tiles_y()) return false;
    const RectRegion tile = fb.tile_rect(tx, ty);
    const auto count = static_cast<std::size_t>(tile.area());
    if (pos >= data.size()) return false;
    const auto mode = static_cast<std::uint8_t>(data[pos++]);
    if (mode == 3) {
      std::uint64_t hash = 0;
      if (!get_u64(data, pos, hash)) return false;
      const TileCache::Entry* entry = cache.find(hash);
      if (entry == nullptr || entry->w != tile.w || entry->h != tile.h) {
        return false;  // referenced a tile we never cached (or evicted)
      }
      fb.write_block(tile, entry->pixels.data());
      cache.touch(hash);
      continue;
    }
    if (mode == 0) {
      std::uint32_t p = 0;
      if (!get_u32(data, pos, p)) return false;
      px.assign(count, p);
    } else if (mode == 1) {
      std::uint32_t len = 0;
      if (!get_u32(data, pos, len)) return false;
      if (pos + len > data.size()) return false;
      if (!detail::decode_rle(data.subspan(pos, len), count, px)) {
        return false;
      }
      pos += len;
    } else if (mode == 2) {
      const std::size_t bytes = count * sizeof(Pixel);
      if (pos + bytes > data.size()) return false;
      px.resize(count);
      std::memcpy(px.data(), data.data() + pos, bytes);
      pos += bytes;
    } else {
      return false;
    }
    fb.write_block(tile, px.data());
    // Mirror the server's insert so LRU evictions stay in lockstep.
    cache.insert(fb.hash_rect(tile), tile.w, tile.h,
                 std::span<const Pixel>(px.data(), count));
  }
  return pos == data.size();
}

void TileCache::save(snap::SectionWriter& w) const {
  w.u64(evictions_);
  w.u64(lru_.size());
  for (const Entry& e : lru_) {  // front = MRU; order is the LRU state
    w.u64(e.hash);
    w.u32(static_cast<std::uint32_t>(e.w));
    w.u32(static_cast<std::uint32_t>(e.h));
    w.bytes(e.pixels.data(), e.pixels.size() * sizeof(Pixel));
  }
}

void TileCache::restore(snap::SectionReader& r) {
  clear();
  evictions_ = r.u64();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.hash = r.u64();
    e.w = static_cast<int>(r.u32());
    e.h = static_cast<int>(r.u32());
    const std::vector<std::uint8_t> px = r.bytes();
    if (px.size() % sizeof(Pixel) != 0) {
      throw snap::SnapError("tile cache restore: pixel payload size");
    }
    e.pixels.resize(px.size() / sizeof(Pixel));
    if (!px.empty()) std::memcpy(e.pixels.data(), px.data(), px.size());
    lru_.push_back(std::move(e));  // serialized front-first: push_back keeps order
    index_[lru_.back().hash] = std::prev(lru_.end());
  }
}

}  // namespace aroma::rfb
