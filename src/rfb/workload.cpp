#include "rfb/workload.hpp"

#include "snap/format.hpp"

namespace aroma::rfb {

namespace {
Pixel color_from(std::uint64_t v) {
  return 0xff000000u | static_cast<Pixel>(v & 0x00ffffffu);
}
}  // namespace

void SlideDeckWorkload::step(Framebuffer& fb) {
  ++slide_;
  const Pixel bg = color_from(rng_.next_u64() | 0x101010);
  fb.fill_rect(fb.bounds(), bg);
  // Title bar.
  const Pixel title = color_from(rng_.next_u64());
  fb.fill_rect({fb.width() / 16, fb.height() / 16, fb.width() * 7 / 8,
                fb.height() / 10},
               title);
  // Text-like bars of varying width.
  const int lines = 4 + static_cast<int>(rng_.uniform_int(0, 5));
  const int line_h = fb.height() / 24;
  for (int i = 0; i < lines; ++i) {
    const int w = static_cast<int>(
        rng_.uniform_int(fb.width() / 4, fb.width() * 3 / 4));
    fb.fill_rect({fb.width() / 10, fb.height() / 4 + i * line_h * 2,
                  w, line_h},
                 color_from(rng_.next_u64()));
  }
}

AnimationWorkload::AnimationWorkload(std::uint64_t seed, int sprite_px)
    : rng_(seed), sprite_(sprite_px) {
  vx_ = rng_.uniform(4.0, 9.0);
  vy_ = rng_.uniform(3.0, 7.0);
}

void AnimationWorkload::step(Framebuffer& fb) {
  if (!background_drawn_) {
    fb.fill_rect(fb.bounds(), bg_);
    background_drawn_ = true;
  }
  // Erase previous sprite position.
  fb.fill_rect({static_cast<int>(x_), static_cast<int>(y_), sprite_, sprite_},
               bg_);
  x_ += vx_;
  y_ += vy_;
  if (x_ < 0 || x_ + sprite_ >= fb.width()) {
    vx_ = -vx_;
    x_ += 2 * vx_;
  }
  if (y_ < 0 || y_ + sprite_ >= fb.height()) {
    vy_ = -vy_;
    y_ += 2 * vy_;
  }
  fb.fill_rect({static_cast<int>(x_), static_cast<int>(y_), sprite_, sprite_},
               0xffe0b030);
}

void TypingWorkload::step(Framebuffer& fb) {
  if (!background_drawn_) {
    fb.fill_rect(fb.bounds(), 0xfff8f8f0);
    background_drawn_ = true;
  }
  const int char_w = 7;
  const int char_h = 12;
  const int margin = 8;
  const int cols = (fb.width() - 2 * margin) / char_w;
  const int rows = (fb.height() - 2 * margin) / char_h;
  // Draw a "character": a small dark block with noise.
  fb.fill_rect({margin + col_ * char_w, margin + row_ * char_h,
                char_w - 1, char_h - 2},
               color_from(rng_.next_u64() & 0x404040));
  if (++col_ >= cols) {
    col_ = 0;
    if (++row_ >= rows) {
      row_ = 0;
      fb.fill_rect(fb.bounds(), 0xfff8f8f0);  // "scroll": clear page
    }
  }
}

void SlideDeckWorkload::save(snap::SectionWriter& w) const {
  const sim::Rng::State st = rng_.state();
  for (std::uint64_t word : st.s) w.u64(word);
  w.f64(st.cached_normal);
  w.b(st.has_cached_normal);
  w.i64(slide_);
}

void SlideDeckWorkload::restore(snap::SectionReader& r) {
  sim::Rng::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.cached_normal = r.f64();
  st.has_cached_normal = r.b();
  rng_.set_state(st);
  slide_ = static_cast<int>(r.i64());
}

}  // namespace aroma::rfb
