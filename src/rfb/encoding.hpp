// Rectangle encodings for framebuffer updates.
//
// Three encodings mirroring the classic RFB set: Raw (dense pixels),
// RLE (run-length over the row-major scan), and Tiled (16x16 tiles, each
// choosing solid / RLE / raw, like hextile). The encoding choice is the
// CS-ANIM ablation: bytes-on-air vs CPU cost over the narrow 2.4 GHz link.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rfb/framebuffer.hpp"

namespace aroma::rfb {

enum class Encoding : std::uint8_t { kRaw = 0, kRle = 1, kTiled = 2 };

const char* to_string(Encoding e);

/// Encodes the pixels of `rect` (must lie within bounds) into bytes.
std::vector<std::byte> encode_rect(const Framebuffer& fb, RectRegion rect,
                                   Encoding enc);

/// Decodes bytes produced by encode_rect into the same rect of `fb`.
/// Returns false on malformed input.
bool decode_rect(Framebuffer& fb, RectRegion rect, Encoding enc,
                 std::span<const std::byte> data);

/// Size in bytes that Raw encoding would use for a rect.
inline std::size_t raw_size(RectRegion r) {
  return static_cast<std::size_t>(r.area()) * sizeof(Pixel);
}

/// Encoder CPU cost model in instructions-per-pixel, used with a device's
/// exec_mips to charge simulated encode time (the resource-layer coupling:
/// a slow adapter CPU throttles even well-compressed updates).
double encode_cost_per_pixel(Encoding e);

}  // namespace aroma::rfb
