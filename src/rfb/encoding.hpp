// Rectangle encodings for framebuffer updates.
//
// Four encodings: Raw (dense pixels), RLE (run-length over the row-major
// scan), Tiled (16x16 tiles, each choosing solid / RLE / raw, like
// hextile), and Cached (tile records with CopyRect-style cache references;
// see rfb/cache.hpp for the stateful encode/decode entry points). The
// encoding choice is the CS-ANIM ablation: bytes-on-air vs CPU cost over
// the narrow 2.4 GHz link.
//
// The raw/RLE/tiled encoders are zero-copy: they iterate the framebuffer's
// contiguous row storage directly (no gather into a staging vector) and
// append into a caller-owned EncodeScratch whose buffers keep their
// capacity across updates, so steady-state encoding performs no heap
// allocation. encode_rect_reference() preserves the original gather-based
// implementation as a byte-equality oracle and throughput baseline for
// tests and bench/rfb_bench.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rfb/framebuffer.hpp"
#include "sim/arena.hpp"

namespace aroma::rfb {

enum class Encoding : std::uint8_t { kRaw = 0, kRle = 1, kTiled = 2, kCached = 3 };

const char* to_string(Encoding e);

/// Reusable encoder scratch. When constructed over a sim::Arena the buffers
/// draw small blocks from the owning world's arena (oversized growth falls
/// back to the heap, counted by the arena); either way the buffers are
/// meant to live as long as the server and amortize to zero allocations.
struct EncodeScratch {
  using ByteBuf = std::vector<std::byte, sim::ArenaAllocator<std::byte>>;
  using PixelBuf = std::vector<Pixel, sim::ArenaAllocator<Pixel>>;

  EncodeScratch() = default;
  explicit EncodeScratch(sim::Arena& arena)
      : out(sim::ArenaAllocator<std::byte>(&arena)),
        tile(sim::ArenaAllocator<std::byte>(&arena)),
        px(sim::ArenaAllocator<Pixel>(&arena)) {}

  ByteBuf out;   ///< encoded payload of the current rect / tile set
  ByteBuf tile;  ///< per-tile RLE staging (tiled/cached best-of-three)
  PixelBuf px;   ///< decode-side pixel staging
};

/// Encodes the pixels of `rect` (must lie within bounds) into scratch.out
/// (cleared first). Zero-copy row-span path; byte-identical output to
/// encode_rect_reference. Encoding::kCached is stateful and not served
/// here -- use rfb/cache.hpp (this function leaves scratch.out empty).
void encode_rect_into(const Framebuffer& fb, RectRegion rect, Encoding enc,
                      EncodeScratch& scratch);

/// Convenience wrapper over encode_rect_into (allocates the returned
/// vector; tests and cold paths only).
std::vector<std::byte> encode_rect(const Framebuffer& fb, RectRegion rect,
                                   Encoding enc);

/// The pre-optimization gather-into-vector encoder, kept verbatim so the
/// zero-copy path can be byte-diffed against it and its throughput delta
/// measured (bench/rfb_bench "encode_throughput" section).
std::vector<std::byte> encode_rect_reference(const Framebuffer& fb,
                                             RectRegion rect, Encoding enc);

/// Decodes bytes produced by encode_rect into the same rect of `fb`.
/// Returns false on malformed input (including trailing bytes past a
/// complete decode). Encoding::kCached is stateful -- see rfb/cache.hpp.
bool decode_rect(Framebuffer& fb, RectRegion rect, Encoding enc,
                 std::span<const std::byte> data);

/// Size in bytes that Raw encoding would use for a rect.
inline std::size_t raw_size(RectRegion r) {
  return static_cast<std::size_t>(r.area()) * sizeof(Pixel);
}

/// Encoder CPU cost model in instructions-per-pixel, used with a device's
/// exec_mips to charge simulated encode time (the resource-layer coupling:
/// a slow adapter CPU throttles even well-compressed updates). For kCached
/// the per-pixel unit is a hashed pixel of a damaged tile: most tiles cost
/// one hashing pass and at most an 8-byte reference, so the rate sits well
/// below the full tiled encode.
double encode_cost_per_pixel(Encoding e);

namespace detail {
/// RLE decode shared by the tiled and cached decoders. Rejects zero-length
/// runs, overflow past `expected`, and any input not consumed exactly.
bool decode_rle(std::span<const std::byte> in, std::size_t expected,
                EncodeScratch::PixelBuf& px);
/// Appends one tile record body (u8 mode 0 solid / 1 rle / 2 raw +
/// payload) to scratch.out; shared by the tiled and cached encoders.
void encode_tile_body(const Framebuffer& fb, RectRegion tile,
                      EncodeScratch& scratch);

// Scalar oracles for the SIMD inner loops (sim/simd.hpp). The property
// tests pin the production paths to these bit-for-bit; rfb_bench measures
// the vectorized speedup against them.

/// Row-major (run_len, pixel) list of `r`, runs continuing across rows,
/// capped at u32 max — the semantics RLE encoding serializes.
std::vector<std::pair<std::uint32_t, Pixel>> scan_runs_reference(
    const Framebuffer& fb, RectRegion r);

/// True when every pixel of `r` equals its first; per-pixel scan.
bool solid_tile_reference(const Framebuffer& fb, RectRegion r, Pixel& color);

// Production (vectorized) counterparts, exposed so the oracles above have
// a direct pin point: scan_runs parses the bytes the production RLE span
// scanner emits, solid_tile calls the production solid detector.

std::vector<std::pair<std::uint32_t, Pixel>> scan_runs(const Framebuffer& fb,
                                                       RectRegion r);
bool solid_tile(const Framebuffer& fb, RectRegion r, Pixel& color);

// Allocation-free variants for throughput measurement (rfb_bench times the
// scanners themselves, not vector growth): `out`/`runs` are cleared and
// refilled, capacity reused across calls.
void scan_runs_into(const Framebuffer& fb, RectRegion r,
                    std::vector<std::byte>& out);
void scan_runs_reference_into(
    const Framebuffer& fb, RectRegion r,
    std::vector<std::pair<std::uint32_t, Pixel>>& runs);
}  // namespace detail

}  // namespace aroma::rfb
