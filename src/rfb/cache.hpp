// CopyRect-style cached-tile encoding (Encoding::kCached).
//
// The paper's bandwidth complaint ("prevents us from displaying rapid
// animation") is dominated, in the slide-flip workload, by re-encoding
// content the viewer has already seen: flipping back to a previous slide
// re-sends every tile. The cached encoding fixes that with two mechanisms
// layered on the framebuffer's dirty-tile grid:
//
//  * skip: the server remembers the hash it last sent for every tile
//    position; a re-damaged tile whose content is unchanged emits nothing.
//  * reference: the server keeps an LRU set of recently sent tile hashes
//    that mirrors the viewer's tile cache; a tile whose content is in the
//    mirror is sent as an 8-byte hash reference instead of a re-encoded
//    payload, and the client blits the tile from its cache.
//
// Mirror determinism rests on the reliable in-order stream: both sides
// apply the identical insert/touch sequence (insert on every literal tile,
// touch on every reference), so LRU evictions never diverge and the server
// never references a hash the client has evicted. Hashes are 64-bit FNV-1a
// over tile dims + pixels; collisions are theoretically possible and
// accepted for this simulation (a collision corrupts one 16x16 tile).
//
// Wire format of one cached tile-set payload:
//   u32 ntiles, then per tile:
//     u16 tx, u16 ty, u8 mode, payload
//   with modes 0 solid / 1 rle / 2 raw exactly as in Tiled, plus
//   mode 3 = u64 cache reference.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "rfb/encoding.hpp"
#include "rfb/framebuffer.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::rfb {

/// LRU tile cache keyed by content hash. The server-side mirror stores no
/// pixels (empty entries); the client stores the tile content it decodes.
class TileCache {
 public:
  /// Default capacity shared by server mirror and client replica cache.
  /// 2048 tiles x 16x16 x 4 B = 2 MiB client-side -- enough for several
  /// full 320x240 slides of distinct content.
  static constexpr std::size_t kDefaultCapacity = 2048;

  struct Entry {
    std::uint64_t hash = 0;
    int w = 0;
    int h = 0;
    std::vector<Pixel> pixels;  // empty in the server's mirror
  };

  explicit TileCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// Marks `hash` most-recently-used. Returns false when absent.
  bool touch(std::uint64_t hash);
  /// Inserts a fresh entry (MRU), evicting from the LRU end past capacity.
  /// `pixels` may be empty (server mirror).
  void insert(std::uint64_t hash, int w, int h,
              std::span<const Pixel> pixels);
  /// Client-side lookup; null when absent.
  const Entry* find(std::uint64_t hash) const;
  void clear();

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Entries round-trip in exact LRU order (and pixel content, when stored),
  // so server-mirror/client-cache determinism survives a restore.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t evictions_ = 0;
};

/// Outcome of one cached tile-set encode.
struct CachedEncodeStats {
  std::uint32_t tiles_sent = 0;      ///< literal tile records (modes 0..2)
  std::uint32_t cache_refs = 0;      ///< 8-byte reference records (mode 3)
  std::uint32_t tiles_skipped = 0;   ///< unchanged content, nothing emitted
  std::uint64_t pixels_hashed = 0;   ///< cost-model input: pixels touched
};

/// Encodes `tiles` of `fb` for a viewer whose cache is mirrored by `cache`
/// and whose per-position last-sent hashes are `last_sent` (row-major,
/// tiles_x * tiles_y entries, 0 = never sent). Appends the tile-set payload
/// to scratch.out (cleared first) and updates both `cache` and `last_sent`.
/// When every tile is skipped the payload is an empty tile set (ntiles 0).
CachedEncodeStats encode_tiles_cached(const Framebuffer& fb,
                                      std::span<const TileCoord> tiles,
                                      TileCache& cache,
                                      std::vector<std::uint64_t>& last_sent,
                                      EncodeScratch& scratch);

/// Decodes a cached tile-set payload into `fb`, maintaining the client
/// cache. Returns false on malformed input, a reference to an unknown or
/// mismatched-dimension hash, or trailing bytes.
bool decode_tiles_cached(Framebuffer& fb, TileCache& cache,
                         std::span<const std::byte> data,
                         EncodeScratch& scratch);

}  // namespace aroma::rfb
