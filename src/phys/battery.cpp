#include "phys/battery.hpp"

#include <algorithm>

#include "snap/format.hpp"

namespace aroma::phys {

void Battery::apply_idle() {
  const sim::Time now = world_.now();
  if (now > last_update_) {
    const double dt = (now - last_update_).seconds();
    level_j_ = std::max(0.0, level_j_ - p_.idle_power_w * dt);
    last_update_ = now;
  }
  if (level_j_ <= 0.0 && !notified_) {
    notified_ = true;
    world_.tracer().log(world_.now(), sim::TraceLevel::kError, "battery",
                        "battery depleted: the device hardware lost power");
    if (on_depleted_) on_depleted_();
  }
}

double Battery::level_j() {
  apply_idle();
  return level_j_;
}

double Battery::fraction() {
  return p_.capacity_j > 0.0 ? level_j() / p_.capacity_j : 0.0;
}

bool Battery::depleted() { return level_j() <= 0.0; }

void Battery::drain(double joules) {
  apply_idle();
  level_j_ = std::max(0.0, level_j_ - joules);
  if (level_j_ <= 0.0 && !notified_) {
    notified_ = true;
    if (on_depleted_) on_depleted_();
  }
}

void Battery::save(snap::SectionWriter& w) const {
  w.f64(level_j_);
  w.time_delta(last_update_);
  w.b(notified_);
}

void Battery::restore(snap::SectionReader& r) {
  level_j_ = r.f64();
  last_update_ = r.time_delta();
  notified_ = r.b();
}

double estimate_lifetime_s(const Battery::Params& p, double tx_frac,
                           double rx_frac) {
  const double avg_w = p.idle_power_w + p.tx_power_w * tx_frac +
                       p.rx_power_w * rx_frac;
  return avg_w > 0.0 ? p.capacity_j / avg_w : 0.0;
}

}  // namespace aroma::phys
