// The physical user: "the user's body and the signals it is capable of
// sending and receiving." (Paper, Physical Layer section.)
//
// Models the physiology that gates interaction with device hardware —
// vision, hearing, speech, reach, motor precision — and the physical
// compatibility checks of Figure 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/environment.hpp"
#include "env/mobility.hpp"
#include "phys/profile.hpp"

namespace aroma::phys {

/// Physiological parameters. Defaults approximate an average adult.
struct Physiology {
  double visual_acuity = 1.0;      // 1.0 = 20/20; smaller is worse
  double hearing_threshold_db = 25.0;  // minimum audible SPL
  double speech_level_db = 60.0;       // SPL at 1 m when speaking
  double reach_m = 0.7;                // arm's reach
  double motor_precision_mm = 4.0;     // smallest reliably-hit target
  double walking_speed_mps = 1.2;
  double comfort_min_c = 16.0;
  double comfort_max_c = 28.0;
};

/// A physical human in the simulated environment.
class PhysicalUser {
 public:
  PhysicalUser(std::uint64_t id, std::string name,
               const env::MobilityModel* mobility, Physiology body = {})
      : id_(id), name_(std::move(name)), mobility_(mobility), body_(body) {}

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Physiology& body() const { return body_; }
  Physiology& body() { return body_; }

  env::Vec2 position_at(sim::Time t) const {
    return mobility_ != nullptr ? mobility_->position_at(t) : env::Vec2{};
  }

  /// Smallest glyph height (mm) this user can read at `distance_m`.
  /// A 20/20 eye resolves ~1.4 mm x-height at 1 m (5 arcmin glyphs).
  double min_readable_mm(double distance_m) const;

  /// Can the user read a display with the given glyph height at distance?
  bool can_read(double text_height_mm, double distance_m) const;

  /// Can the user reliably press a physical control of this size?
  bool can_press(double button_size_mm) const;

  /// Can the user hear a sound of `spl_db` over ambient noise `noise_db`?
  bool can_hear(double spl_db, double noise_db) const;

  /// Is the user physically comfortable in these conditions?
  bool comfortable_in(const env::AmbientConditions& c) const;

 private:
  std::uint64_t id_;
  std::string name_;
  const env::MobilityModel* mobility_;
  Physiology body_;
};

/// One finding from a physical-compatibility check (Figure 2: physical
/// entities "must be compatible with" each other and the environment).
struct PhysicalIssue {
  std::string description;
  double severity = 0.5;  // 0 cosmetic .. 1 renders the device unusable
};

/// Checks user-vs-device physical compatibility at an interaction distance.
std::vector<PhysicalIssue> check_physical_compatibility(
    const PhysicalUser& user, const DeviceProfile& device,
    double interaction_distance_m, const env::AmbientConditions& conditions);

}  // namespace aroma::phys
