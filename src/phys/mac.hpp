// CSMA/CA medium access control in the style of 802.11 DCF.
//
// Carrier sense, DIFS deference, slotted binary-exponential backoff,
// per-frame ACKs with retransmission, and duplicate suppression. Broadcast
// frames are sent once without acknowledgement. Collisions are not decided
// by the MAC: overlapping transmissions simply fail SINR at the medium and
// the resulting ACK timeouts drive the backoff, as on real hardware.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "phys/transceiver.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
class Gauge;
class HdrHistogram;
}  // namespace aroma::obs

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::phys {

using MacAddress = std::uint64_t;
inline constexpr MacAddress kBroadcast = ~0ULL;

/// Payload handed to / received from the MAC; opaque bytes-equivalent.
using MacPayload = std::shared_ptr<const void>;

/// The unit the MAC puts on the air (carried through the medium as the
/// opaque payload pointer).
struct MacFrame {
  MacAddress src = 0;
  MacAddress dst = 0;
  std::uint32_t seq = 0;
  bool is_ack = false;
  std::size_t payload_bits = 0;
  MacPayload payload;
};

struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t sent_data = 0;       // transmission attempts incl. retries
  std::uint64_t sent_acks = 0;
  std::uint64_t delivered_up = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops_retry_limit = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t acks_received = 0;
};

class CsmaMac {
 public:
  struct Params {
    sim::Time slot = sim::Time::us(20);
    sim::Time difs = sim::Time::us(50);
    sim::Time sifs = sim::Time::us(10);
    int cw_min = 16;
    int cw_max = 1024;
    int retry_limit = 7;
    std::size_t queue_limit = 64;
    std::size_t header_bits = 272;  // MAC header + FCS
    std::size_t ack_bits = 112;
  };

  /// src: sender MAC address; bits: payload size as transmitted.
  using ReceiveHandler =
      std::function<void(MacAddress src, const MacPayload& payload,
                         std::size_t payload_bits)>;
  /// Invoked once per enqueued frame: true on ACK (or broadcast sent),
  /// false when the retry limit or queue limit drops it.
  using SendCallback = std::function<void(bool delivered)>;

  CsmaMac(sim::World& world, Transceiver& radio, sim::Rng rng)
      : CsmaMac(world, radio, rng, Params{}) {}
  CsmaMac(sim::World& world, Transceiver& radio, sim::Rng rng, Params params);

  MacAddress address() const { return radio_.radio_config().id; }

  /// Enqueues a frame. Returns false (and fires cb(false)) when the
  /// transmit queue is full.
  bool send(MacAddress dst, std::size_t payload_bits, MacPayload payload,
            SendCallback cb = {});

  void set_receive_handler(ReceiveHandler h) { rx_handler_ = std::move(h); }

  const MacStats& stats() const { return stats_; }
  const Params& params() const { return params_; }
  std::size_t queue_depth() const { return queue_.size() + (active_ ? 1 : 0); }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // MAC timer events capture generation tokens and frame payloads, so they
  // are never serialized; checkpoints are only taken when the MAC is
  // quiescent (idle, empty queue, no outstanding timer events — the
  // deferral loop in snap::CheckpointManager waits for this).
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct OutFrame {
    MacAddress dst;
    std::size_t payload_bits;
    MacPayload payload;
    SendCallback cb;
    std::uint32_t seq;
    int retries = 0;
    sim::Time enqueued_at = sim::Time::zero();  // for service-time latency
  };

  enum class State { kIdle, kDifs, kBackoff, kTransmitting, kAwaitAck };

  void maybe_start();
  void enter_difs();
  void difs_elapsed(std::uint64_t gen);
  void backoff_slot(std::uint64_t gen);
  void transmit_active();
  void tx_finished(std::uint64_t gen);
  void ack_timeout(std::uint64_t gen);
  void finish_active(bool delivered);
  void on_radio_frame(const env::FrameDelivery& delivery);
  void send_ack(MacAddress dst, std::uint32_t seq);
  double bitrate() const;
  std::uint64_t bump_gen() { return ++gen_; }

  sim::World& world_;
  Transceiver& radio_;
  sim::Rng rng_;
  Params params_;
  ReceiveHandler rx_handler_;
  MacStats stats_;

  std::deque<OutFrame> queue_;
  std::unique_ptr<OutFrame> active_;
  State state_ = State::kIdle;
  std::uint64_t gen_ = 0;  // invalidates stale timer events on transitions
  int cw_ = 16;
  int backoff_slots_ = 0;
  std::uint32_t next_seq_ = 1;
  std::unordered_map<MacAddress, std::uint32_t> last_seq_from_;
  // Scheduled-but-unfired MAC events (live or stale-gen). Nonzero blocks
  // checkpointing: stale timer events cannot be re-created on restore.
  int outstanding_events_ = 0;

  // Telemetry handles (null when no registry is attached to the world).
  // Counters aggregate across every MAC in the world; the queue-depth gauge
  // tracks the worldwide peak.
  obs::Counter* m_sent_data_ = nullptr;
  obs::Counter* m_sent_acks_ = nullptr;
  obs::Counter* m_delivered_up_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_drops_retry_ = nullptr;
  obs::Counter* m_drops_queue_ = nullptr;
  obs::Gauge* m_queue_peak_ = nullptr;
  obs::HdrHistogram* m_service_ = nullptr;  // enqueue -> cb latency, µs
};

}  // namespace aroma::phys
