#include "phys/mac.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::phys {

CsmaMac::CsmaMac(sim::World& world, Transceiver& radio, sim::Rng rng,
                 Params params)
    : world_(world), radio_(radio), rng_(rng), params_(params),
      cw_(params.cw_min) {
  radio_.set_receive_handler(
      [this](const env::FrameDelivery& d) { on_radio_frame(d); });
  const auto layer = lpc::Layer::kPhysical;
  m_sent_data_ = obs::counter(world_, "phys.mac.sent_data", layer);
  m_sent_acks_ = obs::counter(world_, "phys.mac.sent_acks", layer);
  m_delivered_up_ = obs::counter(world_, "phys.mac.delivered_up", layer);
  m_retries_ = obs::counter(world_, "phys.mac.retries", layer);
  m_drops_retry_ = obs::counter(world_, "phys.mac.drops_retry_limit", layer);
  m_drops_queue_ = obs::counter(world_, "phys.mac.drops_queue_full", layer);
  m_queue_peak_ = obs::gauge(world_, "phys.mac.queue_depth_peak", layer);
  m_service_ = obs::hdr(world_, "phys.mac.service_us", layer);
}

double CsmaMac::bitrate() const { return radio_.bitrate_bps(); }

bool CsmaMac::send(MacAddress dst, std::size_t payload_bits,
                   MacPayload payload, SendCallback cb) {
  ++stats_.enqueued;
  if (queue_.size() >= params_.queue_limit) {
    ++stats_.drops_queue_full;
    if (m_drops_queue_) m_drops_queue_->add();
    if (cb) cb(false);
    return false;
  }
  OutFrame f;
  f.dst = dst;
  f.payload_bits = payload_bits;
  f.payload = std::move(payload);
  f.cb = std::move(cb);
  f.seq = next_seq_++;
  f.enqueued_at = world_.now();
  queue_.push_back(std::move(f));
  if (m_queue_peak_ != nullptr) {
    const double depth = static_cast<double>(queue_depth());
    if (depth > m_queue_peak_->value()) m_queue_peak_->set(depth);
  }
  maybe_start();
  return true;
}

void CsmaMac::maybe_start() {
  if (state_ != State::kIdle || queue_.empty()) return;
  active_ = std::make_unique<OutFrame>(std::move(queue_.front()));
  queue_.pop_front();
  backoff_slots_ = -1;  // fresh draw on first backoff entry
  enter_difs();
}

void CsmaMac::enter_difs() {
  state_ = State::kDifs;
  const auto gen = bump_gen();
  if (radio_.carrier_busy() || radio_.transmitting()) {
    // Defer: re-check after a slot.
    ++outstanding_events_;
    world_.sim().schedule_in(params_.slot, sim::EventCategory::kMac,
                             [this, gen] {
      --outstanding_events_;
      if (gen == gen_ && state_ == State::kDifs) enter_difs();
    });
    return;
  }
  ++outstanding_events_;
  world_.sim().schedule_in(params_.difs, sim::EventCategory::kMac,
                           [this, gen] {
                             --outstanding_events_;
                             difs_elapsed(gen);
                           });
}

void CsmaMac::difs_elapsed(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kDifs) return;
  if (radio_.carrier_busy() || radio_.transmitting()) {
    enter_difs();
    return;
  }
  state_ = State::kBackoff;
  if (backoff_slots_ < 0) {
    backoff_slots_ =
        static_cast<int>(rng_.uniform_int(0, std::max(cw_ - 1, 0)));
  }
  const auto g2 = bump_gen();
  ++outstanding_events_;
  world_.sim().schedule_in(params_.slot, sim::EventCategory::kMac,
                           [this, g2] {
                             --outstanding_events_;
                             backoff_slot(g2);
                           });
}

void CsmaMac::backoff_slot(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kBackoff) return;
  if (radio_.carrier_busy() || radio_.transmitting()) {
    // Freeze the counter and defer for another DIFS.
    enter_difs();
    return;
  }
  if (backoff_slots_ > 0) {
    --backoff_slots_;
    const auto g2 = bump_gen();
    ++outstanding_events_;
    world_.sim().schedule_in(params_.slot, sim::EventCategory::kMac,
                             [this, g2] {
                               --outstanding_events_;
                               backoff_slot(g2);
                             });
    return;
  }
  transmit_active();
}

void CsmaMac::transmit_active() {
  state_ = State::kTransmitting;
  ++stats_.sent_data;
  if (m_sent_data_) m_sent_data_->add();
  // Frames come from the world's arena: one recycled block per frame
  // instead of a heap malloc/free pair per transmission.
  auto frame = sim::arena_shared<MacFrame>(world_.arena());
  frame->src = address();
  frame->dst = active_->dst;
  frame->seq = active_->seq;
  frame->is_ack = false;
  frame->payload_bits = active_->payload_bits;
  frame->payload = active_->payload;

  const std::size_t bits = params_.header_bits + active_->payload_bits;
  const sim::Time air = radio_.transmit(bits, frame);
  const auto gen = bump_gen();
  ++outstanding_events_;
  world_.sim().schedule_in(air, sim::EventCategory::kMac,
                           [this, gen] {
                             --outstanding_events_;
                             tx_finished(gen);
                           });
}

void CsmaMac::tx_finished(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kTransmitting) return;
  if (active_->dst == kBroadcast) {
    finish_active(true);
    return;
  }
  state_ = State::kAwaitAck;
  const sim::Time ack_air =
      sim::Time::sec(static_cast<double>(params_.ack_bits) / bitrate());
  const sim::Time timeout = params_.sifs + ack_air + params_.slot * 4;
  const auto g2 = bump_gen();
  ++outstanding_events_;
  world_.sim().schedule_in(timeout, sim::EventCategory::kMac,
                           [this, g2] {
                             --outstanding_events_;
                             ack_timeout(g2);
                           });
}

void CsmaMac::ack_timeout(std::uint64_t gen) {
  if (gen != gen_ || state_ != State::kAwaitAck) return;
  ++stats_.retries;
  ++active_->retries;
  if (m_retries_) m_retries_->add();
  cw_ = std::min(cw_ * 2, params_.cw_max);
  if (active_->retries > params_.retry_limit) {
    ++stats_.drops_retry_limit;
    if (m_drops_retry_) m_drops_retry_->add();
    world_.tracer().log(world_.now(), sim::TraceLevel::kWarn, "mac",
                        "retry limit exceeded: persistent interference or "
                        "out-of-range peer on the wireless link");
    obs::emit_instant(world_, "phys.mac.drop_retry_limit",
                      lpc::Layer::kPhysical, sim::TraceLevel::kWarn);
    finish_active(false);
    return;
  }
  backoff_slots_ = -1;  // redraw from the widened window
  enter_difs();
}

void CsmaMac::finish_active(bool delivered) {
  cw_ = params_.cw_min;
  if (m_service_ != nullptr) {
    const sim::Time service = world_.now() - active_->enqueued_at;
    m_service_->record(static_cast<std::uint64_t>(service.count() / 1000));
  }
  auto cb = std::move(active_->cb);
  active_.reset();
  state_ = State::kIdle;
  bump_gen();
  if (cb) cb(delivered);
  maybe_start();
}

void CsmaMac::on_radio_frame(const env::FrameDelivery& delivery) {
  // Every frame end is a synchronization point: contending stations that
  // were deferring or counting down resume DIFS together, so equal backoff
  // draws genuinely collide (as in DCF).
  if (state_ == State::kDifs || state_ == State::kBackoff) {
    enter_difs();
  }
  if (!delivery.decodable) return;
  const auto* frame = static_cast<const MacFrame*>(delivery.payload.get());
  if (frame == nullptr) return;

  if (frame->is_ack) {
    if (frame->dst != address()) return;
    ++stats_.acks_received;
    if (state_ == State::kAwaitAck && active_ &&
        frame->seq == active_->seq && frame->src == active_->dst) {
      finish_active(true);
    }
    return;
  }

  if (frame->dst != address() && frame->dst != kBroadcast) return;

  if (frame->dst != kBroadcast) {
    // ACK first (ACKs bypass contention, SIFS after the data frame).
    send_ack(frame->src, frame->seq);
    auto it = last_seq_from_.find(frame->src);
    if (it != last_seq_from_.end() && it->second == frame->seq) {
      ++stats_.duplicates_dropped;
      return;
    }
    last_seq_from_[frame->src] = frame->seq;
  }
  ++stats_.delivered_up;
  if (m_delivered_up_) m_delivered_up_->add();
  if (rx_handler_) rx_handler_(frame->src, frame->payload, frame->payload_bits);
}

void CsmaMac::send_ack(MacAddress dst, std::uint32_t seq) {
  ++outstanding_events_;
  world_.sim().schedule_in(params_.sifs, sim::EventCategory::kMac,
                           [this, dst, seq] {
    --outstanding_events_;
    if (radio_.transmitting()) return;  // busy; sender will retry
    auto ack = sim::arena_shared<MacFrame>(world_.arena());
    ack->src = address();
    ack->dst = dst;
    ack->seq = seq;
    ack->is_ack = true;
    ++stats_.sent_acks;
    if (m_sent_acks_) m_sent_acks_->add();
    radio_.transmit(params_.ack_bits, ack);
  });
}

bool CsmaMac::snap_quiescent(std::string* why) const {
  if (state_ != State::kIdle || active_ || !queue_.empty() ||
      outstanding_events_ != 0) {
    if (why != nullptr) {
      *why = "mac " + std::to_string(address()) + " busy (queue " +
             std::to_string(queue_depth()) + ", outstanding " +
             std::to_string(outstanding_events_) + ")";
    }
    return false;
  }
  return true;
}

void CsmaMac::save(snap::SectionWriter& w) const {
  w.u64(stats_.enqueued);
  w.u64(stats_.sent_data);
  w.u64(stats_.sent_acks);
  w.u64(stats_.delivered_up);
  w.u64(stats_.duplicates_dropped);
  w.u64(stats_.retries);
  w.u64(stats_.drops_retry_limit);
  w.u64(stats_.drops_queue_full);
  w.u64(stats_.acks_received);
  w.u64(gen_);
  w.u32(static_cast<std::uint32_t>(cw_));
  w.u32(next_seq_);
  const sim::Rng::State rs = rng_.state();
  for (int i = 0; i < 4; ++i) w.u64(rs.s[i]);
  w.f64(rs.cached_normal);
  w.b(rs.has_cached_normal);
  // Duplicate-suppression map, sorted by sender for a canonical encoding.
  std::vector<std::pair<MacAddress, std::uint32_t>> seqs(last_seq_from_.begin(),
                                                         last_seq_from_.end());
  std::sort(seqs.begin(), seqs.end());
  w.u64(seqs.size());
  for (const auto& [src, seq] : seqs) {
    w.u64(src);
    w.u32(seq);
  }
}

void CsmaMac::restore(snap::SectionReader& r) {
  // Transient transmit state is forcibly normalized: the warmup run may
  // have been interrupted mid-frame, but the saved world was quiescent.
  queue_.clear();
  active_.reset();
  state_ = State::kIdle;
  backoff_slots_ = 0;
  outstanding_events_ = 0;
  stats_.enqueued = r.u64();
  stats_.sent_data = r.u64();
  stats_.sent_acks = r.u64();
  stats_.delivered_up = r.u64();
  stats_.duplicates_dropped = r.u64();
  stats_.retries = r.u64();
  stats_.drops_retry_limit = r.u64();
  stats_.drops_queue_full = r.u64();
  stats_.acks_received = r.u64();
  gen_ = r.u64();
  cw_ = static_cast<int>(r.u32());
  next_seq_ = r.u32();
  sim::Rng::State rs;
  for (int i = 0; i < 4; ++i) rs.s[i] = r.u64();
  rs.cached_normal = r.f64();
  rs.has_cached_normal = r.b();
  rng_.set_state(rs);
  last_seq_from_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const MacAddress src = r.u64();
    last_seq_from_[src] = r.u32();
  }
}

}  // namespace aroma::phys
