#include "phys/transceiver.hpp"

#include "snap/format.hpp"

namespace aroma::phys {

Transceiver::Transceiver(sim::World& world, env::RadioMedium& medium,
                         const env::MobilityModel* mobility, Params params)
    : world_(world), medium_(medium), mobility_(mobility), params_(params) {
  if (mobility_ == nullptr) {
    fixed_pos_valid_ = true;
  } else if (mobility_->max_speed_mps() == 0.0) {
    fixed_pos_valid_ = true;
    fixed_pos_ = mobility_->position_at(world_.now());
  }
  medium_.attach(this);
}

Transceiver::~Transceiver() { medium_.detach(this); }

bool Transceiver::receiver_enabled() const {
  return powered_ && !transmitting();
}

sim::Time Transceiver::transmit(std::size_t bits,
                                std::shared_ptr<const void> payload) {
  const auto airtime =
      sim::Time::sec(static_cast<double>(bits) / params_.bitrate_bps);
  if (!powered_ || transmitting()) return airtime;  // dropped on the floor
  tx_busy_until_ = world_.now() + airtime;
  ++frames_sent_;
  if (battery_ != nullptr) battery_->drain_tx(airtime.seconds());
  medium_.transmit(*this, bits, params_.bitrate_bps, params_.tx_power_dbm,
                   std::move(payload));
  return airtime;
}

void Transceiver::on_frame(const env::FrameDelivery& delivery) {
  if (!powered_) return;
  if (delivery.decodable) {
    ++frames_received_;
    if (battery_ != nullptr) {
      battery_->drain_rx((delivery.end - delivery.start).seconds());
    }
  }
  if (handler_) handler_(delivery);
}

void Transceiver::save(snap::SectionWriter& w) const {
  w.b(powered_);
  w.time_delta(tx_busy_until_);
  w.u64(frames_sent_);
  w.u64(frames_received_);
}

void Transceiver::restore(snap::SectionReader& r) {
  powered_ = r.b();
  tx_busy_until_ = r.time_delta();
  frames_sent_ = r.u64();
  frames_received_ = r.u64();
}

}  // namespace aroma::phys
