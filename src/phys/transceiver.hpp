// Half-duplex radio transceiver: the bridge between a device and the
// shared RadioMedium.
#pragma once

#include <functional>
#include <memory>

#include "env/mobility.hpp"
#include "env/radio_medium.hpp"
#include "phys/battery.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::phys {

/// A radio bound to a mobility model. Registers with the medium on
/// construction and detaches on destruction (RAII). Enforces half-duplex:
/// the receiver reports disabled while a transmission is in flight.
class Transceiver final : public env::RadioEndpoint {
 public:
  struct Params {
    env::RadioConfig config{};
    double tx_power_dbm = 15.0;
    double bitrate_bps = 2e6;
  };

  using ReceiveHandler = std::function<void(const env::FrameDelivery&)>;

  Transceiver(sim::World& world, env::RadioMedium& medium,
              const env::MobilityModel* mobility, Params params);
  ~Transceiver() override;
  Transceiver(const Transceiver&) = delete;
  Transceiver& operator=(const Transceiver&) = delete;

  // env::RadioEndpoint interface -------------------------------------------
  /// Immobile radios (max_speed_mps() == 0, e.g. StaticMobility) resolve
  /// to a position cached at construction: the per-backoff-slot CCA path
  /// calls this, and the mobility virtual dispatch is measurable there.
  /// A post-construction teleport (StaticMobility::set_position) is not
  /// covered — the same contract RadioMedium::invalidate_positions()
  /// documents for its own snapshot caches.
  env::Vec2 position() const override {
    return fixed_pos_valid_ ? fixed_pos_
                            : mobility_->position_at(world_.now());
  }
  const env::RadioConfig& radio_config() const override { return params_.config; }
  bool receiver_enabled() const override;
  void on_frame(const env::FrameDelivery& delivery) override;
  double max_speed_mps() const override {
    return mobility_ ? mobility_->max_speed_mps() : 0.0;
  }

  // Device-facing API -------------------------------------------------------
  /// Puts `bits` on the air at the configured bitrate; returns the airtime.
  /// Must not be called while already transmitting.
  sim::Time transmit(std::size_t bits, std::shared_ptr<const void> payload);

  double bitrate_bps() const { return params_.bitrate_bps; }

  // Inline: the CSMA MAC polls both once per backoff slot.
  bool transmitting() const { return world_.now() < tx_busy_until_; }
  bool carrier_busy() const {
    return medium_.carrier_busy_at(*this, params_.config, position());
  }

  void set_receive_handler(ReceiveHandler h) { handler_ = std::move(h); }
  void set_powered(bool on) { powered_ = on; }
  bool powered() const { return powered_; }
  void set_channel(int channel) { params_.config.channel = channel; }
  int channel() const { return params_.config.channel; }
  double tx_power_dbm() const { return params_.tx_power_dbm; }

  /// Optional battery: tx/rx airtime is drained from it.
  void set_battery(Battery* battery) { battery_ = battery; }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

  // --- checkpoint/restore ---------------------------------------------------
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  sim::World& world_;
  env::RadioMedium& medium_;
  const env::MobilityModel* mobility_;
  Params params_;
  ReceiveHandler handler_;
  Battery* battery_ = nullptr;
  bool powered_ = true;
  bool fixed_pos_valid_ = false;
  env::Vec2 fixed_pos_{};
  sim::Time tx_busy_until_ = sim::Time::zero();
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace aroma::phys
