#include "phys/physical_user.hpp"

#include <cmath>

namespace aroma::phys {

double PhysicalUser::min_readable_mm(double distance_m) const {
  const double acuity = body_.visual_acuity > 0.05 ? body_.visual_acuity : 0.05;
  // The 20/20 acuity limit is ~1.45 mm glyphs at 1 m (5 arcmin); sustained
  // comfortable reading needs about twice that. Scales linearly with
  // distance and inversely with acuity.
  return 2.9 * distance_m / acuity;
}

bool PhysicalUser::can_read(double text_height_mm, double distance_m) const {
  return text_height_mm >= min_readable_mm(distance_m);
}

bool PhysicalUser::can_press(double button_size_mm) const {
  return button_size_mm >= body_.motor_precision_mm;
}

bool PhysicalUser::can_hear(double spl_db, double noise_db) const {
  return spl_db >= body_.hearing_threshold_db && spl_db >= noise_db - 3.0;
}

bool PhysicalUser::comfortable_in(const env::AmbientConditions& c) const {
  return c.temperature_c >= body_.comfort_min_c &&
         c.temperature_c <= body_.comfort_max_c;
}

std::vector<PhysicalIssue> check_physical_compatibility(
    const PhysicalUser& user, const DeviceProfile& device,
    double interaction_distance_m, const env::AmbientConditions& conditions) {
  std::vector<PhysicalIssue> issues;

  if (device.ui.has_display &&
      !user.can_read(device.ui.text_height_mm, interaction_distance_m)) {
    issues.push_back(
        {"display text of " + std::to_string(device.ui.text_height_mm) +
             " mm is unreadable at " +
             std::to_string(interaction_distance_m) + " m for this user",
         0.8});
  }
  if (device.ui.has_buttons && !user.can_press(device.ui.button_size_mm)) {
    issues.push_back(
        {"physical controls smaller than the user's motor precision", 0.7});
  }
  if (interaction_distance_m > user.body().reach_m &&
      (device.ui.has_buttons || device.ui.has_keyboard ||
       device.ui.has_pointer)) {
    issues.push_back(
        {"device requires touch interaction beyond the user's reach; the "
         "user must stay physically co-located with it",
         0.5});
  }
  if (conditions.temperature_c < device.min_operating_c ||
      conditions.temperature_c > device.max_operating_c) {
    issues.push_back({"ambient temperature outside the device's operating "
                      "range",
                      1.0});
  }
  if (!user.comfortable_in(conditions)) {
    issues.push_back({"environment uncomfortable for the user", 0.4});
  }
  return issues;
}

}  // namespace aroma::phys
