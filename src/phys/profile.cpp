#include "phys/profile.hpp"

namespace aroma::phys::profiles {

DeviceProfile aroma_adapter() {
  DeviceProfile p;
  p.name = "aroma-adapter";
  p.mem_bytes = 32u << 20;
  p.storage_bytes = 128u << 20;
  p.exec_mips = 120.0;
  p.ui.has_display = false;
  p.net.has_radio = true;
  p.net.bitrate_bps = 2e6;
  p.net.tx_power_dbm = 15.0;
  p.net.sensitivity_dbm = -91.0;
  p.mass_kg = 0.8;
  p.idle_power_w = 6.0;
  return p;
}

DeviceProfile laptop() {
  DeviceProfile p;
  p.name = "laptop";
  p.mem_bytes = 128u << 20;
  p.storage_bytes = 4ull << 30;
  p.exec_mips = 400.0;
  p.ui.has_display = true;
  p.ui.display_width_px = 1024;
  p.ui.display_height_px = 768;
  p.ui.text_height_mm = 3.0;
  p.ui.has_keyboard = true;
  p.ui.has_pointer = true;
  p.ui.has_speaker = true;
  p.net.has_radio = true;
  p.net.bitrate_bps = 2e6;
  p.net.tx_power_dbm = 15.0;
  p.net.sensitivity_dbm = -91.0;
  p.mass_kg = 3.0;
  p.idle_power_w = 15.0;
  return p;
}

DeviceProfile digital_projector() {
  DeviceProfile p;
  p.name = "digital-projector";
  p.mem_bytes = 8u << 20;
  p.storage_bytes = 0;
  p.exec_mips = 20.0;
  p.ui.has_display = true;
  p.ui.display_width_px = 1024;
  p.ui.display_height_px = 768;
  p.ui.text_height_mm = 40.0;  // projected glyphs are large
  p.ui.has_buttons = true;
  p.ui.button_size_mm = 8.0;
  p.net.has_radio = false;
  p.mass_kg = 4.5;
  p.idle_power_w = 250.0;
  p.max_operating_c = 35.0;  // projectors run hot
  return p;
}

DeviceProfile pda() {
  DeviceProfile p;
  p.name = "pda";
  p.mem_bytes = 8u << 20;
  p.storage_bytes = 16u << 20;
  p.exec_mips = 30.0;
  p.ui.has_display = true;
  p.ui.display_width_px = 160;
  p.ui.display_height_px = 160;
  p.ui.text_height_mm = 2.0;
  p.ui.has_buttons = true;
  p.ui.button_size_mm = 5.0;
  p.ui.has_pointer = true;  // stylus
  p.net.has_radio = false;
  p.mass_kg = 0.17;
  p.idle_power_w = 0.2;
  return p;
}

DeviceProfile future_soc() {
  DeviceProfile p;
  p.name = "future-soc";
  p.mem_bytes = 4u << 20;
  p.storage_bytes = 8u << 20;
  p.exec_mips = 100.0;
  p.net.has_radio = true;
  p.net.bitrate_bps = 1e6;    // pico-cellular transceiver
  p.net.tx_power_dbm = 4.0;   // short range, low power
  p.net.sensitivity_dbm = -88.0;
  p.mass_kg = 0.01;
  p.idle_power_w = 0.05;
  return p;
}

DeviceProfile desktop_pc() {
  DeviceProfile p;
  p.name = "desktop-pc";
  p.mem_bytes = 256u << 20;
  p.storage_bytes = 20ull << 30;
  p.exec_mips = 500.0;
  p.ui.has_display = true;
  p.ui.display_width_px = 1280;
  p.ui.display_height_px = 1024;
  p.ui.has_keyboard = true;
  p.ui.has_pointer = true;
  p.net.has_wired = true;
  p.net.wired_bps = 100e6;
  p.mass_kg = 12.0;
  p.idle_power_w = 80.0;
  return p;
}

DeviceProfile desktop_pc_with_radio() {
  DeviceProfile p = desktop_pc();
  p.name = "desktop-pc-wlan";
  p.net.has_radio = true;
  p.net.bitrate_bps = 2e6;
  p.net.tx_power_dbm = 15.0;
  p.net.sensitivity_dbm = -91.0;
  return p;
}

bool by_name(const std::string& name, DeviceProfile* out) {
  if (name == "aroma_adapter") { *out = aroma_adapter(); return true; }
  if (name == "laptop") { *out = laptop(); return true; }
  if (name == "digital_projector") { *out = digital_projector(); return true; }
  if (name == "pda") { *out = pda(); return true; }
  if (name == "future_soc") { *out = future_soc(); return true; }
  if (name == "desktop_pc") { *out = desktop_pc(); return true; }
  if (name == "desktop_pc_with_radio") { *out = desktop_pc_with_radio(); return true; }
  return false;
}

}  // namespace aroma::phys::profiles
