// Device hardware profiles: the five resource boxes of Figure 1
// (Mem / Sto / Exe / UI / Net) plus the physical properties that gate
// compatibility with users and the environment.
#pragma once

#include <cstdint>
#include <string>

namespace aroma::phys {

/// User-interface hardware present on a device.
struct UiCapabilities {
  bool has_display = false;
  int display_width_px = 0;
  int display_height_px = 0;
  double text_height_mm = 3.0;   // rendered glyph height
  bool has_keyboard = false;
  bool has_pointer = false;
  bool has_buttons = false;
  double button_size_mm = 10.0;
  bool has_speaker = false;
  bool has_microphone = false;
};

/// Radio/networking hardware.
struct NetCapabilities {
  bool has_radio = false;
  double bitrate_bps = 2e6;        // 1999-era 802.11: 2 Mb/s typical
  double tx_power_dbm = 15.0;
  double sensitivity_dbm = -90.0;
  bool has_wired = false;
  double wired_bps = 10e6;
};

/// The full hardware description of a device (Figure 1 device column,
/// physical layer + what the resource layer abstracts).
struct DeviceProfile {
  std::string name;
  std::uint64_t mem_bytes = 16u << 20;
  std::uint64_t storage_bytes = 64u << 20;
  double exec_mips = 50.0;
  UiCapabilities ui{};
  NetCapabilities net{};
  double mass_kg = 0.5;
  double idle_power_w = 1.0;
  double min_operating_c = 0.0;
  double max_operating_c = 45.0;
};

/// Profile presets for the entities in the paper's Smart Projector study
/// and the Aroma project's projected $10 system-on-chip.
namespace profiles {

/// The Aroma Adapter: an embedded PC with a 2.4 GHz PCMCIA wireless card,
/// able to run a JVM and Jini ("emulating future SOCs").
DeviceProfile aroma_adapter();

/// A presenter's laptop (runs the VNC server and the two Jini clients).
DeviceProfile laptop();

/// A commercial digital projector (display only; driven by the adapter).
DeviceProfile digital_projector();

/// A late-90s PDA: small screen, stylus, no radio by default.
DeviceProfile pda();

/// The paper's five-year bet: a ~$10 system-on-chip with a pico-cellular
/// transceiver and a VM-capable runtime.
DeviceProfile future_soc();

/// A desktop PC with wired networking (the "traditional computing" foil).
DeviceProfile desktop_pc();

/// The lab's lookup-service host: a desktop PC that also carries a 2.4 GHz
/// WLAN card so it can serve the wireless cell directly.
DeviceProfile desktop_pc_with_radio();

/// Preset lookup by identifier ("laptop", "aroma_adapter", ...), the hook
/// declarative scenario descriptions resolve profile names through. Returns
/// false (and leaves `out` untouched) for an unknown name.
bool by_name(const std::string& name, DeviceProfile* out);

}  // namespace profiles

}  // namespace aroma::phys
