// A physical device: profile + placement + (optionally) a radio and MAC.
//
// Devices are the unit higher layers build on: the net stack binds to a
// device's MAC; the resource layer derives logical resources from its
// profile.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "env/environment.hpp"
#include "env/mobility.hpp"
#include "phys/battery.hpp"
#include "phys/mac.hpp"
#include "phys/profile.hpp"
#include "phys/transceiver.hpp"

namespace aroma::phys {

/// Owns the hardware stack of one device. Construction wires the radio into
/// the environment's medium when the profile has one.
class Device {
 public:
  struct Options {
    int channel = 1;
    bool battery_powered = false;
    Battery::Params battery{};
    CsmaMac::Params mac{};
  };

  Device(sim::World& world, env::Environment& environment, std::uint64_t id,
         DeviceProfile profile, std::unique_ptr<env::MobilityModel> mobility)
      : Device(world, environment, id, std::move(profile),
               std::move(mobility), Options{}) {}
  Device(sim::World& world, env::Environment& environment, std::uint64_t id,
         DeviceProfile profile, std::unique_ptr<env::MobilityModel> mobility,
         Options options);

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return profile_.name; }
  const DeviceProfile& profile() const { return profile_; }
  env::Vec2 position() const { return mobility_->position_at(world_.now()); }
  const env::MobilityModel& mobility() const { return *mobility_; }

  bool has_radio() const { return mac_ != nullptr; }
  CsmaMac& mac() { return *mac_; }
  const CsmaMac& mac() const { return *mac_; }
  Transceiver& radio() { return *radio_; }

  bool has_battery() const { return battery_.has_value(); }
  Battery& battery() { return *battery_; }

  /// Device is operational: powered (battery not dead) and within its
  /// thermal envelope for the current environment conditions.
  bool operational();

 private:
  sim::World& world_;
  env::Environment& environment_;
  std::uint64_t id_;
  DeviceProfile profile_;
  std::unique_ptr<env::MobilityModel> mobility_;
  std::optional<Battery> battery_;
  std::unique_ptr<Transceiver> radio_;
  std::unique_ptr<CsmaMac> mac_;
};

}  // namespace aroma::phys
