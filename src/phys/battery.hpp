// Energy model for battery-powered pervasive devices.
#pragma once

#include <functional>

#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::phys {

/// Tracks stored energy and drains it from idle load plus explicit events
/// (radio transmit/receive). Energy is integrated lazily: the idle drain is
/// applied whenever the battery is observed.
class Battery {
 public:
  struct Params {
    double capacity_j = 10'000.0;   // ~ a small Li-ion pack
    double idle_power_w = 0.5;
    double tx_power_w = 1.2;        // extra draw while transmitting
    double rx_power_w = 0.8;        // extra draw while receiving
  };

  Battery(sim::World& world, Params p)
      : world_(world), p_(p), level_j_(p.capacity_j),
        last_update_(world.now()) {}

  /// Remaining energy in joules (applies idle drain up to now).
  double level_j();
  /// Remaining fraction in [0, 1].
  double fraction();
  bool depleted();

  /// Drains the cost of transmitting for `duration` seconds.
  void drain_tx(double seconds) { drain(p_.tx_power_w * seconds); }
  void drain_rx(double seconds) { drain(p_.rx_power_w * seconds); }
  /// Drains an arbitrary amount (display, compute, ...).
  void drain(double joules);

  /// Invoked once when the battery first reaches empty.
  void set_depleted_callback(std::function<void()> cb) {
    on_depleted_ = std::move(cb);
  }

  const Params& params() const { return p_; }

  // --- checkpoint/restore ---------------------------------------------------
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  void apply_idle();

  sim::World& world_;
  Params p_;
  double level_j_;
  sim::Time last_update_;
  bool notified_ = false;
  std::function<void()> on_depleted_;
};

/// Estimated battery lifetime in seconds for a duty cycle: fraction of time
/// transmitting / receiving, remainder idle.
double estimate_lifetime_s(const Battery::Params& p, double tx_frac,
                           double rx_frac);

}  // namespace aroma::phys
