#include "phys/device.hpp"

namespace aroma::phys {

Device::Device(sim::World& world, env::Environment& environment,
               std::uint64_t id, DeviceProfile profile,
               std::unique_ptr<env::MobilityModel> mobility, Options options)
    : world_(world), environment_(environment), id_(id),
      profile_(std::move(profile)), mobility_(std::move(mobility)) {
  if (options.battery_powered) {
    Battery::Params bp = options.battery;
    bp.idle_power_w = profile_.idle_power_w;
    battery_.emplace(world_, bp);
  }
  if (profile_.net.has_radio) {
    Transceiver::Params tp;
    tp.config.id = id_;
    tp.config.channel = options.channel;
    tp.config.sensitivity_dbm = profile_.net.sensitivity_dbm;
    tp.config.cca_threshold_dbm = profile_.net.sensitivity_dbm + 6.0;
    tp.tx_power_dbm = profile_.net.tx_power_dbm;
    tp.bitrate_bps = profile_.net.bitrate_bps;
    radio_ = std::make_unique<Transceiver>(world_, environment_.medium(),
                                           mobility_.get(), tp);
    if (battery_) radio_->set_battery(&*battery_);
    mac_ = std::make_unique<CsmaMac>(world_, *radio_,
                                     world_.fork_rng(0x3ac0 + id_),
                                     options.mac);
  }
}

bool Device::operational() {
  if (battery_ && battery_->depleted()) return false;
  const auto& c = environment_.conditions();
  return c.temperature_c >= profile_.min_operating_c &&
         c.temperature_c <= profile_.max_operating_c;
}

}  // namespace aroma::phys
