// Internationalization: message catalogs with language negotiation.
//
// The paper's resource-layer analysis flags the prototype's implicit
// "all users speak English" assumption and lists internationalization as
// required future work. A MessageCatalog stores translations per language;
// negotiation picks the best language for a user's faculties and reports
// coverage so a device can tell how well it can actually serve them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "user/faculties.hpp"

namespace aroma::i18n {

class MessageCatalog {
 public:
  /// The language every key is required to exist in (the development
  /// language, used as the final fallback).
  explicit MessageCatalog(std::string base_language = "en")
      : base_(std::move(base_language)) {}

  void add(const std::string& language, const std::string& key,
           std::string text);

  const std::string& base_language() const { return base_; }
  std::vector<std::string> languages() const;
  std::size_t key_count() const;

  /// Fraction of base-language keys that `language` covers.
  double coverage(const std::string& language) const;

  /// Looks a key up in `language`, falling back to the base language;
  /// returns the key itself when even the base lacks it.
  const std::string& lookup(const std::string& language,
                            const std::string& key) const;

 private:
  std::string base_;
  // language -> key -> text
  std::map<std::string, std::map<std::string, std::string>> table_;
};

struct Negotiation {
  std::string language;   // what the UI will use
  bool native = false;    // it is the user's own language
  double coverage = 0.0;  // catalog coverage in the chosen language
};

/// Picks the interface language for a user: their own language when the
/// catalog covers at least `min_coverage` of it, else the base language.
Negotiation negotiate(const MessageCatalog& catalog,
                      const user::Faculties& user, double min_coverage = 0.7);

/// The effective faculty requirement after i18n: a served user no longer
/// needs the developer's language. Returns an adjusted copy of `req`.
user::FacultyRequirements localize_requirements(
    const MessageCatalog& catalog, const user::Faculties& user,
    user::FacultyRequirements req);

}  // namespace aroma::i18n
