#include "i18n/accessibility.hpp"

#include <algorithm>

namespace aroma::i18n {

AccessibilityReport AdaptationEngine::adapt(const phys::PhysicalUser& user,
                                            const phys::DeviceProfile& device,
                                            double distance_m) const {
  AccessibilityReport report;

  if (device.ui.has_display) {
    const double needed = user.min_readable_mm(distance_m);
    if (device.ui.text_height_mm < needed) {
      const double scale = needed / device.ui.text_height_mm;
      if (scale <= limits_.max_text_scale) {
        report.adaptations.push_back({"scale-text", scale});
      } else if (device.ui.has_speaker) {
        // Beyond reasonable scaling: fall back to an audio interface.
        report.adaptations.push_back({"audio-prompts", 1.0});
      } else {
        report.residual.push_back(
            "display unreadable for this user even at maximum text scale");
        report.usable = false;
      }
    }
  }

  if (device.ui.has_buttons &&
      !user.can_press(device.ui.button_size_mm)) {
    const double scale =
        user.body().motor_precision_mm / device.ui.button_size_mm;
    if (scale <= limits_.max_button_scale && device.ui.has_display) {
      // Soft buttons on screen can grow; physical ones cannot.
      report.adaptations.push_back({"enlarge-soft-buttons", scale});
    } else {
      report.residual.push_back(
          "physical controls below the user's motor precision");
      report.usable = false;
    }
  }

  if (!device.ui.has_display && !device.ui.has_speaker &&
      !device.ui.has_buttons && !device.ui.has_microphone) {
    // Headless devices are "accessible" by definition: no direct UI.
    return report;
  }
  return report;
}

phys::DeviceProfile AdaptationEngine::apply(
    const phys::DeviceProfile& device, const AccessibilityReport& report) {
  phys::DeviceProfile adapted = device;
  for (const Adaptation& a : report.adaptations) {
    if (a.what == "scale-text") {
      adapted.ui.text_height_mm *= a.parameter;
    } else if (a.what == "enlarge-soft-buttons") {
      adapted.ui.button_size_mm =
          std::max(adapted.ui.button_size_mm,
                   adapted.ui.button_size_mm * a.parameter);
    }
  }
  return adapted;
}

}  // namespace aroma::i18n
