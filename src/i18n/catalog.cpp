#include "i18n/catalog.hpp"

namespace aroma::i18n {

void MessageCatalog::add(const std::string& language, const std::string& key,
                         std::string text) {
  table_[language][key] = std::move(text);
}

std::vector<std::string> MessageCatalog::languages() const {
  std::vector<std::string> out;
  for (const auto& [lang, keys] : table_) out.push_back(lang);
  return out;
}

std::size_t MessageCatalog::key_count() const {
  auto it = table_.find(base_);
  return it != table_.end() ? it->second.size() : 0;
}

double MessageCatalog::coverage(const std::string& language) const {
  auto base_it = table_.find(base_);
  if (base_it == table_.end() || base_it->second.empty()) return 0.0;
  auto lang_it = table_.find(language);
  if (lang_it == table_.end()) return 0.0;
  std::size_t covered = 0;
  for (const auto& [key, text] : base_it->second) {
    if (lang_it->second.count(key)) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(base_it->second.size());
}

const std::string& MessageCatalog::lookup(const std::string& language,
                                          const std::string& key) const {
  auto lang_it = table_.find(language);
  if (lang_it != table_.end()) {
    auto k = lang_it->second.find(key);
    if (k != lang_it->second.end()) return k->second;
  }
  auto base_it = table_.find(base_);
  if (base_it != table_.end()) {
    auto k = base_it->second.find(key);
    if (k != base_it->second.end()) return k->second;
  }
  // Last resort: echo the key so the UI shows *something* debuggable.
  static thread_local std::string fallback;
  fallback = key;
  return fallback;
}

Negotiation negotiate(const MessageCatalog& catalog,
                      const user::Faculties& user, double min_coverage) {
  Negotiation n;
  const double cov = catalog.coverage(user.language);
  if (user.language == catalog.base_language()) {
    n.language = user.language;
    n.native = true;
    n.coverage = 1.0;
    return n;
  }
  if (cov >= min_coverage) {
    n.language = user.language;
    n.native = true;
    n.coverage = cov;
    return n;
  }
  n.language = catalog.base_language();
  n.native = false;
  n.coverage = 1.0;
  return n;
}

user::FacultyRequirements localize_requirements(
    const MessageCatalog& catalog, const user::Faculties& user,
    user::FacultyRequirements req) {
  const Negotiation n = negotiate(catalog, user);
  if (n.native) req.language = user.language;
  return req;
}

}  // namespace aroma::i18n
