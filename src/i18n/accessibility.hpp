// Accessibility adaptation: fitting the device to the user's body, not the
// other way around.
//
// The paper names "accessibility issues" as required research before the
// Smart Projector could ship. This engine inspects a user's physiology
// against a device's UI hardware and produces concrete adaptations (text
// scaling, audio prompts, interaction-distance limits) plus residual
// findings it cannot fix.
#pragma once

#include <string>
#include <vector>

#include "phys/physical_user.hpp"
#include "phys/profile.hpp"

namespace aroma::i18n {

/// A concrete adjustment a device can apply for a specific user.
struct Adaptation {
  std::string what;       // "scale-text", "audio-prompts", ...
  double parameter = 0.0; // e.g. the text scale factor
};

struct AccessibilityReport {
  std::vector<Adaptation> adaptations;     // applied fixes
  std::vector<std::string> residual;       // problems no adaptation covers
  bool usable = true;                       // after adaptation
};

class AdaptationEngine {
 public:
  struct Limits {
    double max_text_scale = 3.0;   // UI layout breaks beyond this
    double min_button_mm = 4.0;
    double max_button_scale = 2.0;
  };

  AdaptationEngine() : AdaptationEngine(Limits{}) {}
  explicit AdaptationEngine(Limits limits) : limits_(limits) {}

  /// Plans adaptations for `user` operating `device` at `distance_m`.
  AccessibilityReport adapt(const phys::PhysicalUser& user,
                            const phys::DeviceProfile& device,
                            double distance_m) const;

  /// Applies a report's scale adaptations to a copy of the device profile
  /// (what the UI would actually render).
  static phys::DeviceProfile apply(const phys::DeviceProfile& device,
                                   const AccessibilityReport& report);

 private:
  Limits limits_;
};

}  // namespace aroma::i18n
