#include "disco/lease.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aroma::disco {

LeaseTable::LeaseTable(sim::World& world) : world_(world) {
  const auto layer = lpc::Layer::kAbstract;
  m_grants_ = obs::counter(world_, "disco.lease.grants", layer);
  m_renewals_ = obs::counter(world_, "disco.lease.renewals", layer);
  m_cancellations_ = obs::counter(world_, "disco.lease.cancellations", layer);
  m_expirations_ = obs::counter(world_, "disco.lease.expirations", layer);
}

void LeaseTable::grant(std::uint64_t key, sim::Time duration,
                       std::function<void()> on_expire) {
  Lease& l = leases_[key];
  l.expiry = world_.now() + duration;
  l.gen = next_gen_++;
  l.on_expire = std::move(on_expire);
  if (m_grants_) m_grants_->add();
  schedule_check(key, l.gen, l.expiry);
}

bool LeaseTable::renew(std::uint64_t key, sim::Time duration) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return false;
  it->second.expiry = world_.now() + duration;
  it->second.gen = next_gen_++;
  if (m_renewals_) m_renewals_->add();
  schedule_check(key, it->second.gen, it->second.expiry);
  return true;
}

void LeaseTable::cancel(std::uint64_t key) {
  if (leases_.erase(key) != 0 && m_cancellations_ != nullptr) {
    m_cancellations_->add();
  }
}

bool LeaseTable::active(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() && it->second.expiry > world_.now();
}

sim::Time LeaseTable::expiry(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() ? it->second.expiry : sim::Time::zero();
}

void LeaseTable::schedule_check(std::uint64_t key, std::uint64_t gen,
                                sim::Time when) {
  world_.sim().schedule_at(when, sim::EventCategory::kLease,
                           [this, key, gen,
                            guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.gen != gen) return;  // renewed
    auto cb = std::move(it->second.on_expire);
    leases_.erase(it);
    ++expirations_;
    if (m_expirations_) m_expirations_->add();
    // The expiry parents to whatever granted/last renewed the lease (its
    // context was stamped on this check event at schedule time), and in
    // turn becomes the cause of every notification the callback sends.
    obs::ScopedSpan span(world_, "disco.lease.expire", lpc::Layer::kAbstract,
                         sim::TraceLevel::kWarn);
    if (cb) cb();
  });
}

}  // namespace aroma::disco
