#include "disco/lease.hpp"

namespace aroma::disco {

void LeaseTable::grant(std::uint64_t key, sim::Time duration,
                       std::function<void()> on_expire) {
  Lease& l = leases_[key];
  l.expiry = world_.now() + duration;
  l.gen = next_gen_++;
  l.on_expire = std::move(on_expire);
  schedule_check(key, l.gen, l.expiry);
}

bool LeaseTable::renew(std::uint64_t key, sim::Time duration) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return false;
  it->second.expiry = world_.now() + duration;
  it->second.gen = next_gen_++;
  schedule_check(key, it->second.gen, it->second.expiry);
  return true;
}

void LeaseTable::cancel(std::uint64_t key) { leases_.erase(key); }

bool LeaseTable::active(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() && it->second.expiry > world_.now();
}

sim::Time LeaseTable::expiry(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() ? it->second.expiry : sim::Time::zero();
}

void LeaseTable::schedule_check(std::uint64_t key, std::uint64_t gen,
                                sim::Time when) {
  world_.sim().schedule_at(when, [this, key, gen,
                                  guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.gen != gen) return;  // renewed
    auto cb = std::move(it->second.on_expire);
    leases_.erase(it);
    ++expirations_;
    if (cb) cb();
  });
}

}  // namespace aroma::disco
