#include "disco/lease.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::disco {

LeaseTable::LeaseTable(sim::World& world) : world_(world) {
  const auto layer = lpc::Layer::kAbstract;
  m_grants_ = obs::counter(world_, "disco.lease.grants", layer);
  m_renewals_ = obs::counter(world_, "disco.lease.renewals", layer);
  m_cancellations_ = obs::counter(world_, "disco.lease.cancellations", layer);
  m_expirations_ = obs::counter(world_, "disco.lease.expirations", layer);
}

void LeaseTable::grant(std::uint64_t key, sim::Time duration,
                       std::function<void()> on_expire) {
  Lease& l = leases_[key];
  l.expiry = world_.now() + duration;
  l.gen = next_gen_++;
  l.on_expire = std::move(on_expire);
  if (m_grants_) m_grants_->add();
  schedule_check(key, l.gen, l.expiry);
}

bool LeaseTable::renew(std::uint64_t key, sim::Time duration) {
  auto it = leases_.find(key);
  if (it == leases_.end()) return false;
  it->second.expiry = world_.now() + duration;
  it->second.gen = next_gen_++;
  if (m_renewals_) m_renewals_->add();
  schedule_check(key, it->second.gen, it->second.expiry);
  return true;
}

void LeaseTable::cancel(std::uint64_t key) {
  if (leases_.erase(key) != 0 && m_cancellations_ != nullptr) {
    m_cancellations_->add();
  }
}

bool LeaseTable::active(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() && it->second.expiry > world_.now();
}

sim::Time LeaseTable::expiry(std::uint64_t key) const {
  auto it = leases_.find(key);
  return it != leases_.end() ? it->second.expiry : sim::Time::zero();
}

void LeaseTable::schedule_check(std::uint64_t key, std::uint64_t gen,
                                sim::Time when) {
  const sim::EventHandle h = world_.sim().schedule_at(
      when, sim::EventCategory::kLease, make_check(key, gen));
  checks_[key].push_back(PendingCheck{gen, h});
}

std::function<void()> LeaseTable::make_check(std::uint64_t key,
                                             std::uint64_t gen) {
  return [this, key, gen, guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    if (const auto cit = checks_.find(key); cit != checks_.end()) {
      std::vector<PendingCheck>& list = cit->second;
      prune_visits_ += list.size();
      list.erase(std::remove_if(
                     list.begin(), list.end(),
                     [&](const PendingCheck& c) { return c.gen == gen; }),
                 list.end());
      if (list.empty()) checks_.erase(cit);
    }
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.gen != gen) return;  // renewed
    auto cb = std::move(it->second.on_expire);
    leases_.erase(it);
    ++expirations_;
    if (m_expirations_) m_expirations_->add();
    // The expiry parents to whatever granted/last renewed the lease (its
    // context was stamped on this check event at schedule time), and in
    // turn becomes the cause of every notification the callback sends.
    obs::ScopedSpan span(world_, "disco.lease.expire", lpc::Layer::kAbstract,
                         sim::TraceLevel::kWarn);
    if (cb) cb();
  };
}

void LeaseTable::save(snap::SectionWriter& w) const {
  w.u64(next_gen_);
  w.u64(expirations_);
  w.u64(prune_visits_);

  std::vector<std::pair<std::uint64_t, const Lease*>> sorted;
  sorted.reserve(leases_.size());
  for (const auto& [key, lease] : leases_) sorted.emplace_back(key, &lease);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(sorted.size());
  for (const auto& [key, lease] : sorted) {
    w.u64(key);
    w.time_delta(lease->expiry);  // duration-from-now: rebases under a gap
    w.u64(lease->gen);
  }

  // Every live check event, stale generations included, with its kernel
  // identity so restore can re-insert it verbatim.
  struct CheckRec {
    std::uint64_t key, gen, seq, id;
    sim::Time when;
  };
  std::vector<CheckRec> recs;
  recs.reserve(checks_.size());
  for (const auto& [key, list] : checks_) {
    for (const PendingCheck& c : list) {
      const auto info = world_.sim().pending_event_info(c.event);
      if (!info.valid) continue;  // fired/cancelled; entry not yet pruned
      recs.push_back(CheckRec{key, c.gen, info.seq, info.id, info.when});
    }
  }
  std::sort(recs.begin(), recs.end(),
            [](const CheckRec& a, const CheckRec& b) { return a.seq < b.seq; });
  w.u64(recs.size());
  for (const CheckRec& rec : recs) {
    w.u64(rec.key);
    w.u64(rec.gen);
    w.time_delta(rec.when);
    w.u64(rec.seq);
    w.u64(rec.id);
  }
}

void LeaseTable::restore(snap::SectionReader& r,
                         const ExpireFactory& factory) {
  leases_.clear();
  checks_.clear();
  next_gen_ = r.u64();
  expirations_ = r.u64();
  prune_visits_ = r.u64();
  const std::uint64_t n_leases = r.u64();
  for (std::uint64_t i = 0; i < n_leases; ++i) {
    const std::uint64_t key = r.u64();
    Lease& l = leases_[key];
    l.expiry = r.time_delta();
    l.gen = r.u64();
    l.on_expire = factory ? factory(key) : std::function<void()>();
  }
  const std::uint64_t n_checks = r.u64();
  for (std::uint64_t i = 0; i < n_checks; ++i) {
    const std::uint64_t key = r.u64();
    const std::uint64_t gen = r.u64();
    const sim::Time when = r.time_delta();
    const std::uint64_t seq = r.u64();
    const std::uint64_t id = r.u64();
    const sim::EventHandle h = world_.sim().restore_event(
        when, seq, id, sim::EventCategory::kLease, make_check(key, gen));
    checks_[key].push_back(PendingCheck{gen, h});
  }
}

}  // namespace aroma::disco
