// Federation plane for the service tier: query caching, admission control,
// and SLP-DA-style peer delegation between registrars.
//
// The paper's resource layer assumes the lookup infrastructure simply keeps
// up; at "millions of users" scale it only does so with mediation. Three
// cooperating pieces, each opt-in so a default-constructed registrar is
// bit-identical to the pre-federation one:
//
//  - QueryCache: read-through cache of template -> matching service ids,
//    keyed by the template's serialized content and stamped with the
//    registration epoch that produced it. Any registration/expiry bumps the
//    epoch, so stale entries die on their next probe (hit / miss /
//    negative-hit / invalidation counters tell the story).
//  - AdmissionController: a deterministic virtual queue in front of the
//    match engine. Each admitted lookup occupies `service_time` of backlog;
//    when the backlog would exceed `capacity` requests the lookup is shed
//    (the registrar answers "busy" rather than queueing unboundedly) and a
//    resource-layer lpc issue is filed on a power-of-two shed cadence —
//    through an injected hook (lpc::shed_issue_filer), since lpc sits
//    above disco in the layer graph.
//  - FederationPeer: a protocol-agnostic delegation endpoint on its own
//    port. A registrar that misses locally forwards the template to its
//    peers, which answer from their local index only (one hop, no loops);
//    a peer that died mid-delegation is covered by the reply timeout.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "disco/service.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::disco {

// ---------------------------------------------------------------------------
// QueryCache

struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t negative_hits = 0;    // subset of hits: cached empty result
  std::uint64_t invalidations = 0;    // entries dropped for a stale epoch
  std::uint64_t evictions = 0;        // entries dropped for capacity
};

/// Read-through cache of ServiceTemplate -> matched ids. Entries are valid
/// only while the index epoch they were computed against is current.
class QueryCache {
 public:
  explicit QueryCache(std::size_t capacity) : capacity_(capacity) {}

  /// Content key for a template: its serialized wire bytes.
  static std::string key_of(const ServiceTemplate& tmpl);

  /// Returns the cached ids when present and fresh at `epoch`; stale
  /// entries are erased (counted as invalidations) and read as misses.
  const std::vector<ServiceId>* lookup(const std::string& key,
                                       std::uint64_t epoch);
  void insert(const std::string& key, std::uint64_t epoch,
              std::vector<ServiceId> ids);

  std::size_t size() const { return entries_.size(); }
  const QueryCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t epoch;
    std::vector<ServiceId> ids;
  };
  std::size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<std::string> fifo_;  // insertion order, for deterministic eviction
  QueryCacheStats stats_;
};

// ---------------------------------------------------------------------------
// AdmissionController

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t max_queue = 0;      // deepest backlog seen, in requests
  std::uint64_t issues_filed = 0;
};

/// Deterministic load shedding: a virtual FIFO queue where every admitted
/// request extends the backlog by `service_time`. Arrivals that would find
/// more than `capacity` requests ahead of them are shed.
class AdmissionController {
 public:
  struct Params {
    std::uint64_t capacity = 64;                    // max queued requests
    sim::Time service_time = sim::Time::us(50);     // per-lookup cost
  };

  struct Decision {
    bool admitted;
    sim::Time delay;  // queueing delay until this request's completion
  };

  AdmissionController(sim::World& world, Params params)
      : world_(world), params_(params) {}

  /// Receives a shed-overload report: (description, severity). Invoked on
  /// the first shed and every power-of-two shed thereafter, so a sustained
  /// overload leaves a bounded paper trail. lpc::shed_issue_filer adapts
  /// this to an IssueLog (disco cannot link lpc: lpc sits above it).
  using IssueHook = std::function<void(const std::string&, double)>;
  void set_issue_hook(IssueHook hook);

  Decision decide();

  /// Requests currently in the virtual queue.
  std::uint64_t queue_depth() const;
  const AdmissionStats& stats() const { return stats_; }
  const Params& params() const { return params_; }

 private:
  sim::World& world_;
  Params params_;
  sim::Time backlog_until_ = sim::Time::zero();
  AdmissionStats stats_;
  IssueHook issue_hook_;
};

// ---------------------------------------------------------------------------
// FederationPeer

struct FederationStats {
  std::uint64_t delegated = 0;        // lookups forwarded to peers
  std::uint64_t peer_queries = 0;     // lookups answered for peers
  std::uint64_t peer_replies = 0;     // replies received from peers
  std::uint64_t timeouts = 0;         // delegations that lost >=1 peer
  std::uint64_t remote_hits = 0;      // delegations yielding >0 services
};

/// Peering endpoint registrars use to delegate missed lookups. Protocol
/// agnostic: a Jini registrar and an SLP directory agent can peer, since
/// both speak ServiceTemplate/ServiceDescription here.
class FederationPeer {
 public:
  struct Params {
    net::Port port = 4162;
    /// A peer that has not replied by then is treated as dead and the
    /// delegation completes with whatever was gathered.
    sim::Time reply_timeout = sim::Time::sec(1.0);
  };

  /// `local_match` answers a peer's query from the host registrar's own
  /// index (never re-delegated).
  using LocalMatch =
      std::function<std::vector<ServiceDescription>(const ServiceTemplate&)>;
  using DelegateResult =
      std::function<void(std::vector<ServiceDescription>)>;

  FederationPeer(sim::World& world, net::NetStack& stack, Params params,
                 LocalMatch local_match);
  ~FederationPeer();
  FederationPeer(const FederationPeer&) = delete;
  FederationPeer& operator=(const FederationPeer&) = delete;

  void set_peers(std::vector<net::NodeId> peers);
  const std::vector<net::NodeId>& peers() const { return peers_; }

  /// Forwards `tmpl` to every peer; `cb` fires once with the concatenated
  /// replies (peer order, each peer's ids ascending) when all peers have
  /// answered or the reply timeout expires. With no peers configured `cb`
  /// fires synchronously with an empty result.
  void delegate(const ServiceTemplate& tmpl, DelegateResult cb);

  const FederationStats& stats() const { return stats_; }

  /// Delegations hold result callbacks (code), so a host registrar must
  /// refuse to checkpoint while any are in flight.
  bool quiescent() const { return pending_.empty(); }

 private:
  struct Pending {
    DelegateResult cb;
    std::vector<ServiceDescription> gathered;
    std::size_t awaiting;
  };

  void on_datagram(const net::Datagram& dg);
  void finish(std::uint32_t token);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  LocalMatch local_match_;
  std::vector<net::NodeId> peers_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint32_t next_token_ = 1;
  FederationStats stats_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
