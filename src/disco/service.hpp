// Service descriptions and attribute templates (the Jini entry model).
//
// A service registers a description: a type string (e.g. "projector/display")
// plus free-form attribute key/value pairs. Clients look services up with a
// template: a type prefix and a set of attributes that must all match.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/serialize.hpp"

namespace aroma::disco {

using ServiceId = std::uint64_t;

struct ServiceDescription {
  ServiceId id = 0;
  std::string type;                         // hierarchical, '/'-separated
  net::Endpoint endpoint;                   // where the service listens
  std::map<std::string, std::string> attributes;

  void serialize(net::ByteWriter& w) const;
  static ServiceDescription deserialize(net::ByteReader& r);
};

/// A lookup template: empty type matches everything; a non-empty type
/// matches any service whose type equals it or starts with it + "/". All
/// template attributes must be present with equal values.
struct ServiceTemplate {
  std::string type;
  std::map<std::string, std::string> attributes;

  bool matches(const ServiceDescription& s) const;

  void serialize(net::ByteWriter& w) const;
  static ServiceTemplate deserialize(net::ByteReader& r);
};

}  // namespace aroma::disco
