#include "disco/ssdp.hpp"

namespace aroma::disco {

namespace {
std::uint64_t cache_key(const ServiceDescription& d) {
  return (d.endpoint.node << 16) ^ d.id;
}
}  // namespace

// ---------------------------------------------------------------------------
// SsdpAdvertiser

SsdpAdvertiser::SsdpAdvertiser(sim::World& world, net::NetStack& stack)
    : SsdpAdvertiser(world, stack, Params{}) {}

SsdpAdvertiser::SsdpAdvertiser(sim::World& world, net::NetStack& stack,
                               Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSsdpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  announcer_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.announce_interval, [this] { announce_all(); });
  announcer_->start();
}

SsdpAdvertiser::~SsdpAdvertiser() { stack_.unbind(net::kSsdpPort); }

void SsdpAdvertiser::advertise(ServiceDescription description) {
  if (description.id == 0) description.id = next_local_id_++;
  send_alive(description);
  advertised_[description.id] = std::move(description);
}

void SsdpAdvertiser::withdraw(ServiceId id, bool silent) {
  auto it = advertised_.find(id);
  if (it == advertised_.end()) return;
  if (!silent) {
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(SsdpMsg::kByeBye));
    it->second.serialize(w);
    ++messages_sent_;
    stack_.send_multicast(net::kAnnounceGroup, net::kSsdpPort, net::kSsdpPort,
                          w.take());
  }
  advertised_.erase(it);
}

void SsdpAdvertiser::announce_all() {
  for (const auto& [id, desc] : advertised_) send_alive(desc);
}

void SsdpAdvertiser::send_alive(const ServiceDescription& desc) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SsdpMsg::kAlive));
  w.u64(static_cast<std::uint64_t>(params_.max_age.count()));
  desc.serialize(w);
  ++messages_sent_;
  stack_.send_multicast(net::kAnnounceGroup, net::kSsdpPort, net::kSsdpPort,
                        w.take());
}

void SsdpAdvertiser::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SsdpMsg>(r.u8());
  if (!r.ok() || msg != SsdpMsg::kMSearch) return;
  const std::uint32_t token = r.u32();
  const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
  if (!r.ok()) return;
  for (const auto& [id, desc] : advertised_) {
    if (!tmpl.matches(desc)) continue;
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(SsdpMsg::kMSearchResponse));
    w.u32(token);
    w.u64(static_cast<std::uint64_t>(params_.max_age.count()));
    desc.serialize(w);
    ++messages_sent_;
    stack_.send(net::Endpoint{dg.src.node, net::kSsdpPort}, net::kSsdpPort,
                w.take());
  }
}

// ---------------------------------------------------------------------------
// SsdpControlPoint

SsdpControlPoint::SsdpControlPoint(sim::World& world, net::NetStack& stack)
    : SsdpControlPoint(world, stack, Params{}) {}

SsdpControlPoint::SsdpControlPoint(sim::World& world, net::NetStack& stack,
                                   Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSsdpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kAnnounceGroup);
}

SsdpControlPoint::~SsdpControlPoint() { stack_.unbind(net::kSsdpPort); }

std::vector<ServiceDescription> SsdpControlPoint::cached(
    const ServiceTemplate& tmpl) const {
  std::vector<ServiceDescription> out;
  const sim::Time now = world_.now();
  for (const auto& [key, entry] : cache_) {
    if (entry.expires > now && tmpl.matches(entry.desc)) {
      out.push_back(entry.desc);
    }
  }
  return out;
}

std::size_t SsdpControlPoint::stale_entries(
    const ServiceTemplate& tmpl,
    const std::vector<ServiceId>& truly_alive) const {
  std::size_t stale = 0;
  for (const auto& d : cached(tmpl)) {
    bool alive = false;
    for (ServiceId id : truly_alive) alive |= (id == d.id);
    if (!alive) ++stale;
  }
  return stale;
}

void SsdpControlPoint::find(const ServiceTemplate& tmpl, FindResult cb) {
  auto hits = cached(tmpl);
  if (!hits.empty()) {
    cb(std::move(hits));
    return;
  }
  const std::uint32_t token = next_token_++;
  pending_[token] = Pending{std::move(cb), {}};
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SsdpMsg::kMSearch));
  w.u32(token);
  tmpl.serialize(w);
  ++messages_sent_;
  stack_.send_multicast(net::kDiscoveryGroup, net::kSsdpPort, net::kSsdpPort,
                        w.take());
  world_.sim().schedule_in(params_.msearch_wait,
                           [this, token, guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    auto it = pending_.find(token);
    if (it == pending_.end()) return;
    auto done = std::move(it->second);
    pending_.erase(it);
    if (done.cb) done.cb(std::move(done.gathered));
  });
}

void SsdpControlPoint::insert(const ServiceDescription& desc,
                              sim::Time max_age) {
  cache_[cache_key(desc)] = CacheEntry{desc, world_.now() + max_age};
}

void SsdpControlPoint::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SsdpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SsdpMsg::kAlive: {
      const auto max_age = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      const ServiceDescription desc = ServiceDescription::deserialize(r);
      if (r.ok()) insert(desc, max_age);
      return;
    }
    case SsdpMsg::kByeBye: {
      const ServiceDescription desc = ServiceDescription::deserialize(r);
      if (r.ok()) cache_.erase(cache_key(desc));
      return;
    }
    case SsdpMsg::kMSearchResponse: {
      const std::uint32_t token = r.u32();
      const auto max_age = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      const ServiceDescription desc = ServiceDescription::deserialize(r);
      if (!r.ok()) return;
      insert(desc, max_age);
      auto it = pending_.find(token);
      if (it != pending_.end()) it->second.gathered.push_back(desc);
      return;
    }
    default:
      return;
  }
}

}  // namespace aroma::disco
