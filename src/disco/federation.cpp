#include "disco/federation.hpp"

#include <algorithm>
#include <utility>

namespace aroma::disco {

namespace {
enum class FedMsg : std::uint8_t {
  kQuery = 1,   // delegating registrar -> peer: token + template
  kReply,       // peer -> delegating registrar: token + matches
};
}  // namespace

// ---------------------------------------------------------------------------
// QueryCache

std::string QueryCache::key_of(const ServiceTemplate& tmpl) {
  net::ByteWriter w;
  tmpl.serialize(w);
  const auto& bytes = w.data();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

const std::vector<ServiceId>* QueryCache::lookup(const std::string& key,
                                                 std::uint64_t epoch) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.epoch != epoch) {
    // Computed against an older registration set: drop it so the caller
    // recomputes and re-inserts at the current epoch.
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (it->second.ids.empty()) ++stats_.negative_hits;
  return &it->second.ids;
}

void QueryCache::insert(const std::string& key, std::uint64_t epoch,
                        std::vector<ServiceId> ids) {
  if (capacity_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = Entry{epoch, std::move(ids)};
    return;
  }
  while (entries_.size() >= capacity_ && !fifo_.empty()) {
    // FIFO eviction: deterministic and cheap. Entries already erased by
    // invalidation leave a dead key in the queue; skip those.
    const std::string victim = std::move(fifo_.front());
    fifo_.pop_front();
    if (entries_.erase(victim) != 0) ++stats_.evictions;
  }
  entries_.emplace(key, Entry{epoch, std::move(ids)});
  fifo_.push_back(key);
}

// ---------------------------------------------------------------------------
// AdmissionController

void AdmissionController::set_issue_hook(IssueHook hook) {
  issue_hook_ = std::move(hook);
}

std::uint64_t AdmissionController::queue_depth() const {
  const sim::Time now = world_.now();
  if (backlog_until_ <= now) return 0;
  const std::int64_t backlog = (backlog_until_ - now).count();
  const std::int64_t per = params_.service_time.count();
  return static_cast<std::uint64_t>((backlog + per - 1) / per);
}

AdmissionController::Decision AdmissionController::decide() {
  const sim::Time now = world_.now();
  if (backlog_until_ < now) backlog_until_ = now;
  const std::uint64_t depth = queue_depth();
  if (depth >= params_.capacity) {
    ++stats_.shed;
    // Report the first shed and every power-of-two shed after it: a
    // sustained storm leaves a bounded, deterministic paper trail instead
    // of one issue per dropped request.
    if (issue_hook_ && (stats_.shed & (stats_.shed - 1)) == 0) {
      issue_hook_(
          "registrar admission queue full: lookup shed under overload (" +
              std::to_string(stats_.shed) + " shed so far)",
          0.7);
      ++stats_.issues_filed;
    }
    return Decision{false, sim::Time::zero()};
  }
  backlog_until_ += params_.service_time;
  ++stats_.admitted;
  stats_.max_queue = std::max(stats_.max_queue, depth + 1);
  return Decision{true, backlog_until_ - now};
}

// ---------------------------------------------------------------------------
// FederationPeer

FederationPeer::FederationPeer(sim::World& world, net::NetStack& stack,
                               Params params, LocalMatch local_match)
    : world_(world),
      stack_(stack),
      params_(params),
      local_match_(std::move(local_match)) {
  stack_.bind(params_.port,
              [this](const net::Datagram& dg) { on_datagram(dg); });
}

FederationPeer::~FederationPeer() { stack_.unbind(params_.port); }

void FederationPeer::set_peers(std::vector<net::NodeId> peers) {
  peers_ = std::move(peers);
}

void FederationPeer::finish(std::uint32_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;
  auto cb = std::move(it->second.cb);
  auto gathered = std::move(it->second.gathered);
  pending_.erase(it);
  if (!gathered.empty()) ++stats_.remote_hits;
  if (cb) cb(std::move(gathered));
}

void FederationPeer::delegate(const ServiceTemplate& tmpl, DelegateResult cb) {
  if (peers_.empty()) {
    if (cb) cb({});
    return;
  }
  const std::uint32_t token = next_token_++;
  Pending p;
  p.cb = std::move(cb);
  p.awaiting = peers_.size();
  pending_.emplace(token, std::move(p));
  ++stats_.delegated;

  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(FedMsg::kQuery));
  w.u32(token);
  tmpl.serialize(w);
  const std::vector<std::byte> payload = w.take();
  for (const net::NodeId peer : peers_) {
    stack_.send(net::Endpoint{peer, params_.port}, params_.port,
                std::vector<std::byte>(payload));
  }
  // A dead peer never replies; the timeout completes the delegation with
  // whatever the living peers contributed.
  world_.sim().schedule_in(
      params_.reply_timeout, sim::EventCategory::kDiscovery,
      [this, token, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        if (pending_.find(token) == pending_.end()) return;
        ++stats_.timeouts;
        finish(token);
      });
}

void FederationPeer::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<FedMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case FedMsg::kQuery: {
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      ++stats_.peer_queries;
      // Answer from the local index only: delegation is one hop deep, so
      // a cycle in the peer graph cannot loop a query forever.
      const std::vector<ServiceDescription> matches =
          local_match_ ? local_match_(tmpl) : std::vector<ServiceDescription>{};
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(FedMsg::kReply));
      w.u32(token);
      w.u32(static_cast<std::uint32_t>(matches.size()));
      for (const auto& m : matches) m.serialize(w);
      stack_.send(net::Endpoint{dg.src.node, params_.port}, params_.port,
                  w.take());
      return;
    }
    case FedMsg::kReply: {
      const std::uint32_t token = r.u32();
      const std::uint32_t n = r.u32();
      const auto it = pending_.find(token);
      if (it == pending_.end()) return;  // already timed out
      ++stats_.peer_replies;
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        it->second.gathered.push_back(ServiceDescription::deserialize(r));
      }
      if (--it->second.awaiting == 0) finish(token);
      return;
    }
    default:
      return;
  }
}

}  // namespace aroma::disco
