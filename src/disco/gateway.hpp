// Session gateway: multiplexes thousands of lease-backed sessions onto a
// handful of batched kernel wakeups.
//
// A LeaseTable schedules one expiry-check event per grant and per renewal,
// so a node running 20k churning sessions puts 20k+ events into the kernel
// heap — the per-session-wakeup pattern the gateway exists to kill. The
// gateway quantizes every deadline up to a tick boundary and keeps one
// bucket of sessions per non-empty tick, arming exactly one kernel event
// per bucket. When a tick fires it drains its bucket in one structure-of-
// arrays sweep: expired sessions fire their callbacks in insertion order,
// renewed ones are re-bucketed lazily. Ticks are aligned to absolute
// quantum boundaries (sim::align_up), so multiple gateways in one world
// wake at the same instants and the PR 6 event-train path absorbs their
// events into single heap operations.
//
// Expiry callbacks therefore fire at most one tick late — never early:
// `active()`/`renew()` always consult the exact deadline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/world.hpp"

namespace aroma::disco {

using GatewaySession = std::uint64_t;

struct GatewayStats {
  std::uint64_t opened = 0;
  std::uint64_t renewed = 0;
  std::uint64_t closed = 0;
  std::uint64_t expired = 0;
  std::uint64_t wakeups = 0;        // kernel events armed (one per bucket)
  std::uint64_t ticks = 0;          // bucket drains executed
  std::uint64_t sweep_visits = 0;   // bucket entries examined across drains
};

class SessionGateway {
 public:
  struct Params {
    /// Expiry quantum: deadlines round up to the next multiple. Smaller
    /// ticks tighten expiry latency, larger ticks batch harder.
    sim::Time tick = sim::Time::ms(10);
    sim::Time default_lease = sim::Time::sec(30.0);
  };

  explicit SessionGateway(sim::World& world) : SessionGateway(world, {}) {}
  SessionGateway(sim::World& world, Params params);
  SessionGateway(const SessionGateway&) = delete;
  SessionGateway& operator=(const SessionGateway&) = delete;

  /// Opens a session expiring after `lease` (default_lease when zero);
  /// `on_expire` fires exactly once if the session lapses unrenewed.
  GatewaySession open(std::uint64_t owner, sim::Time lease,
                      std::function<void()> on_expire);
  GatewaySession open(std::uint64_t owner, std::function<void()> on_expire) {
    return open(owner, sim::Time::zero(), std::move(on_expire));
  }

  /// Extends a live session. False for closed/expired/unknown handles.
  bool renew(GatewaySession session, sim::Time lease = sim::Time::zero());
  /// Closes without firing the expiry callback. False when already gone.
  bool close(GatewaySession session);

  /// Exact-deadline liveness (not quantized: a session one nanosecond past
  /// its deadline is inactive even if its tick has not fired yet).
  bool active(GatewaySession session) const;
  sim::Time deadline(GatewaySession session) const;
  std::uint64_t owner_of(GatewaySession session) const;

  std::size_t size() const { return live_count_; }
  const GatewayStats& stats() const { return stats_; }
  const Params& params() const { return params_; }

 private:
  struct Bucket {
    // (slot, generation) pairs; stale pairs are skipped during the drain.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  };

  static std::uint32_t slot_of(GatewaySession s) {
    return static_cast<std::uint32_t>(s & 0xffffffffu);
  }
  static std::uint32_t gen_of(GatewaySession s) {
    return static_cast<std::uint32_t>(s >> 32);
  }
  bool valid(GatewaySession s) const;
  std::int64_t bucket_index(sim::Time deadline) const;
  void enqueue(std::uint32_t slot, std::uint32_t gen, sim::Time deadline);
  void drain(std::int64_t index);

  sim::World& world_;
  Params params_;
  // Session state, struct-of-arrays so the drain touches dense vectors.
  std::vector<sim::Time> deadlines_;
  std::vector<std::uint32_t> gens_;
  std::vector<std::uint64_t> owners_;
  std::vector<std::uint8_t> live_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  // Tick index -> pending bucket; exactly one armed kernel event each.
  std::map<std::int64_t, Bucket> buckets_;
  GatewayStats stats_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
