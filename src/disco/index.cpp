#include "disco/index.hpp"

#include <algorithm>

namespace aroma::disco {

std::string ServiceIndex::attr_term(const std::string& key,
                                    const std::string& value) {
  std::string t;
  t.reserve(2 + key.size() + 1 + value.size());
  t += "a:";
  t += key;
  t += '\x1f';
  t += value;
  return t;
}

std::string ServiceIndex::type_term(const std::string& prefix) {
  return "t:" + prefix;
}

std::vector<std::string> ServiceIndex::terms_for(
    const ServiceDescription& desc) {
  std::vector<std::string> terms;
  // A template type T matches types equal to T or starting with T + "/",
  // so each registration posts under its full type and every '/'-boundary
  // prefix: "projector/display" -> "projector", "projector/display".
  for (std::size_t i = 0; i < desc.type.size(); ++i) {
    if (desc.type[i] == '/') {
      terms.push_back(type_term(desc.type.substr(0, i)));
    }
  }
  if (!desc.type.empty()) terms.push_back(type_term(desc.type));
  for (const auto& [k, v] : desc.attributes) {
    terms.push_back(attr_term(k, v));
  }
  return terms;
}

void ServiceIndex::add_postings(const ServiceDescription& desc) {
  for (const std::string& term : terms_for(desc)) {
    std::vector<ServiceId>& list = postings_[term];
    const auto it = std::lower_bound(list.begin(), list.end(), desc.id);
    if (it == list.end() || *it != desc.id) list.insert(it, desc.id);
  }
}

void ServiceIndex::remove_postings(const ServiceDescription& desc) {
  for (const std::string& term : terms_for(desc)) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    std::vector<ServiceId>& list = pit->second;
    const auto it = std::lower_bound(list.begin(), list.end(), desc.id);
    if (it != list.end() && *it == desc.id) list.erase(it);
    if (list.empty()) postings_.erase(pit);
  }
}

void ServiceIndex::insert(const ServiceDescription& desc) {
  auto it = services_.find(desc.id);
  if (it != services_.end()) {
    remove_postings(it->second);
    it->second = desc;
  } else {
    it = services_.emplace(desc.id, desc).first;
  }
  add_postings(it->second);
  ++epoch_;
}

void ServiceIndex::erase(ServiceId id) {
  auto it = services_.find(id);
  if (it == services_.end()) return;
  remove_postings(it->second);
  services_.erase(it);
  ++epoch_;
}

void ServiceIndex::clear() {
  services_.clear();
  postings_.clear();
  ++epoch_;
}

const ServiceDescription* ServiceIndex::find(ServiceId id) const {
  const auto it = services_.find(id);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<ServiceId> ServiceIndex::match_scan(
    const ServiceTemplate& tmpl) const {
  std::vector<ServiceId> out;
  for (const auto& [id, s] : services_) {
    if (tmpl.matches(s)) out.push_back(id);
  }
  return out;
}

std::vector<ServiceId> ServiceIndex::match(const ServiceTemplate& tmpl) const {
  // Gather the posting list of every template term. An absent term means
  // nothing can match.
  std::vector<const std::vector<ServiceId>*> lists;
  lists.reserve(tmpl.attributes.size() + 1);
  if (!tmpl.type.empty()) {
    const auto it = postings_.find(type_term(tmpl.type));
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  for (const auto& [k, v] : tmpl.attributes) {
    const auto it = postings_.find(attr_term(k, v));
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  if (lists.empty()) {
    // Empty template matches everything.
    std::vector<ServiceId> out;
    out.reserve(services_.size());
    for (const auto& [id, s] : services_) out.push_back(id);
    return out;
  }
  // Intersect smallest-first: seed with the shortest list, then probe each
  // remaining list with a galloping lower_bound per candidate.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<ServiceId> out = *lists.front();
  for (std::size_t i = 1; i < lists.size() && !out.empty(); ++i) {
    const std::vector<ServiceId>& next = *lists[i];
    std::vector<ServiceId> kept;
    kept.reserve(out.size());
    auto cursor = next.begin();
    for (const ServiceId id : out) {
      cursor = std::lower_bound(cursor, next.end(), id);
      if (cursor == next.end()) break;
      if (*cursor == id) kept.push_back(id);
    }
    out = std::move(kept);
  }
  return out;
}

}  // namespace aroma::disco
