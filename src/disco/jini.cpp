#include "disco/jini.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/random.hpp"
#include "snap/format.hpp"

namespace aroma::disco {

namespace {
constexpr net::Port kClientPort = 4161;  // client agent unicast/announce port
constexpr std::uint64_t kSubLeaseKeyBase = 1ULL << 32;
}  // namespace

// ---------------------------------------------------------------------------
// JiniRegistrar

JiniRegistrar::JiniRegistrar(sim::World& world, net::NetStack& stack)
    : JiniRegistrar(world, stack, Params{}) {}

JiniRegistrar::JiniRegistrar(sim::World& world, net::NetStack& stack,
                             Params params)
    : world_(world), stack_(stack), params_(params), leases_(world) {
  stack_.bind(net::kRegistrarPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  announcer_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.announce_interval, [this] { announce(); });
  announcer_->start_after(sim::Time::ms(10));
  if (params_.cache_capacity > 0) {
    cache_ = std::make_unique<QueryCache>(params_.cache_capacity);
  }
  if (params_.admission_capacity > 0) {
    admission_ = std::make_unique<AdmissionController>(
        world_, AdmissionController::Params{params_.admission_capacity,
                                            params_.admission_service_time});
  }
  if (params_.federate) {
    federation_ = std::make_unique<FederationPeer>(
        world_, stack_, params_.federation,
        [this](const ServiceTemplate& tmpl) {
          // Peers answer from the local index only (one hop, no loops).
          std::vector<ServiceDescription> out;
          for (const ServiceId id : local_match(tmpl)) {
            out.push_back(*index_.find(id));
          }
          return out;
        });
  }
}

JiniRegistrar::~JiniRegistrar() {
  stack_.unbind(net::kRegistrarPort);
}

void JiniRegistrar::publish_metrics() const {
  obs::MetricsRegistry* m = world_.metrics();
  if (m == nullptr) return;
  const auto layer = lpc::Layer::kAbstract;
  m->set_counter("disco.registrar.registrations", layer,
                 stats_.registrations);
  m->set_counter("disco.registrar.renewals", layer, stats_.renewals);
  m->set_counter("disco.registrar.lookups", layer, stats_.lookups);
  m->set_counter("disco.registrar.lease_expirations", layer,
                 stats_.lease_expirations);
  m->set_counter("disco.registrar.events_sent", layer, stats_.events_sent);
  m->set_counter("disco.registrar.discovery_responses", layer,
                 stats_.discovery_responses);
}

void JiniRegistrar::set_enabled(bool on) {
  if (enabled_ == on) return;
  enabled_ = on;
  if (on) {
    announcer_->start_after(sim::Time::ms(10));
  } else {
    announcer_->stop();
  }
}

void JiniRegistrar::announce() {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JiniMsg::kAnnounce));
  stack_.send_multicast(net::kAnnounceGroup, kClientPort, net::kRegistrarPort,
                        w.take());
}

std::vector<ServiceDescription> JiniRegistrar::snapshot(
    const ServiceTemplate& t) const {
  std::vector<ServiceDescription> out;
  for (const ServiceId id : index_.match(t)) {
    out.push_back(*index_.find(id));
  }
  return out;
}

void JiniRegistrar::set_peers(std::vector<net::NodeId> peers) {
  if (federation_) federation_->set_peers(std::move(peers));
}

void JiniRegistrar::set_issue_hook(AdmissionController::IssueHook hook) {
  if (admission_) admission_->set_issue_hook(std::move(hook));
}

void JiniRegistrar::expire_service(ServiceId id) {
  const ServiceDescription* found = index_.find(id);
  if (found == nullptr) return;
  const ServiceDescription s = *found;
  index_.erase(id);
  ++stats_.lease_expirations;
  notify(s, /*appeared=*/false);
}

std::vector<ServiceId> JiniRegistrar::local_match(const ServiceTemplate& tmpl) {
  if (!cache_) return index_.match(tmpl);
  const std::string key = QueryCache::key_of(tmpl);
  if (const std::vector<ServiceId>* ids = cache_->lookup(key, index_.epoch())) {
    return *ids;
  }
  std::vector<ServiceId> ids = index_.match(tmpl);
  cache_->insert(key, index_.epoch(), ids);
  return ids;
}

void JiniRegistrar::send_lookup_response(
    net::NodeId requester, std::uint32_t token,
    const std::vector<ServiceId>& ids,
    const std::vector<ServiceDescription>& remote) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JiniMsg::kLookupResponse));
  w.u32(token);
  w.u32(static_cast<std::uint32_t>(ids.size() + remote.size()));
  for (const ServiceId id : ids) index_.find(id)->serialize(w);
  for (const auto& m : remote) m.serialize(w);
  stack_.send(net::Endpoint{requester, kClientPort}, net::kRegistrarPort,
              w.take());
}

void JiniRegistrar::answer_lookup(net::NodeId requester, std::uint32_t token,
                                  const ServiceTemplate& tmpl) {
  const std::vector<ServiceId> ids = local_match(tmpl);
  if (ids.empty() && federation_ && !federation_->peers().empty()) {
    // Local miss: ask the peer pool before answering empty-handed.
    ++stats_.lookups_delegated;
    ++pending_replies_;
    federation_->delegate(
        tmpl, [this, requester, token](std::vector<ServiceDescription> remote) {
          --pending_replies_;
          send_lookup_response(requester, token, {}, remote);
        });
    return;
  }
  send_lookup_response(requester, token, ids, {});
}

void JiniRegistrar::notify(const ServiceDescription& s, bool appeared) {
  for (const auto& sub : subscriptions_) {
    if (!sub.tmpl.matches(s)) continue;
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(JiniMsg::kEvent));
    w.u8(appeared ? 1 : 0);
    s.serialize(w);
    ++stats_.events_sent;
    stack_.send(sub.listener, net::kRegistrarPort, w.take());
  }
}

void JiniRegistrar::on_datagram(const net::Datagram& dg) {
  if (!enabled_) return;  // crashed: requests fall on the floor
  net::ByteReader r(dg.data);
  const auto msg = static_cast<JiniMsg>(r.u8());
  if (!r.ok()) return;

  switch (msg) {
    case JiniMsg::kDiscoveryRequest: {
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(JiniMsg::kDiscoveryResponse));
      ++stats_.discovery_responses;
      stack_.send(net::Endpoint{dg.src.node, kClientPort},
                  net::kRegistrarPort, w.take());
      return;
    }
    case JiniMsg::kRegister: {
      const std::uint32_t token = r.u32();
      const auto lease_req = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      ServiceDescription desc = ServiceDescription::deserialize(r);
      if (!r.ok()) return;
      const ServiceId id = next_service_id_++;
      desc.id = id;
      index_.insert(desc);
      const sim::Time lease = std::min(lease_req, params_.max_lease);
      leases_.grant(id, lease, [this, id] { expire_service(id); });
      ++stats_.registrations;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(JiniMsg::kRegisterResponse));
      w.u32(token);
      w.u64(id);
      w.u64(static_cast<std::uint64_t>(lease.count()));
      stack_.send(net::Endpoint{dg.src.node, kClientPort},
                  net::kRegistrarPort, w.take());
      notify(desc, /*appeared=*/true);
      return;
    }
    case JiniMsg::kRenew: {
      const ServiceId id = r.u64();
      const auto lease_req = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      const sim::Time lease = std::min(lease_req, params_.max_lease);
      const bool ok = leases_.renew(id, lease);
      if (ok) ++stats_.renewals;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(JiniMsg::kRenewResponse));
      w.u64(id);
      w.u8(ok ? 1 : 0);
      stack_.send(net::Endpoint{dg.src.node, kClientPort},
                  net::kRegistrarPort, w.take());
      return;
    }
    case JiniMsg::kCancel: {
      const ServiceId id = r.u64();
      if (const ServiceDescription* found = index_.find(id)) {
        const ServiceDescription s = *found;
        index_.erase(id);
        leases_.cancel(id);
        notify(s, /*appeared=*/false);
      }
      return;
    }
    case JiniMsg::kLookup: {
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      ++stats_.lookups;
      if (admission_) {
        const auto decision = admission_->decide();
        if (!decision.admitted) {
          ++stats_.lookups_shed;
          net::ByteWriter w;
          w.u8(static_cast<std::uint8_t>(JiniMsg::kLookupBusy));
          w.u32(token);
          stack_.send(net::Endpoint{dg.src.node, kClientPort},
                      net::kRegistrarPort, w.take());
          return;
        }
        if (!decision.delay.is_zero()) {
          // Admitted behind a backlog: the reply leaves when this
          // request's slot in the virtual queue completes.
          ++pending_replies_;
          world_.sim().schedule_in(
              decision.delay, sim::EventCategory::kDiscovery,
              [this, requester = dg.src.node, token, tmpl,
               guard = std::weak_ptr<char>(alive_)] {
                if (guard.expired()) return;
                --pending_replies_;
                answer_lookup(requester, token, tmpl);
              });
          return;
        }
      }
      answer_lookup(dg.src.node, token, tmpl);
      return;
    }
    case JiniMsg::kNotifyRequest: {
      const std::uint32_t token = r.u32();
      const auto lease_req = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      Subscription sub;
      sub.id = next_subscription_id_++;
      sub.listener = net::Endpoint{dg.src.node, kClientPort};
      sub.tmpl = tmpl;
      subscriptions_.push_back(sub);
      const sim::Time lease = std::min(lease_req, params_.max_lease * 10);
      const std::uint64_t key = kSubLeaseKeyBase + sub.id;
      const std::uint64_t sid = sub.id;
      leases_.grant(key, lease, [this, sid] {
        subscriptions_.erase(
            std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                           [&](const Subscription& s) { return s.id == sid; }),
            subscriptions_.end());
      });
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(JiniMsg::kNotifyResponse));
      w.u32(token);
      w.u64(sub.id);
      stack_.send(sub.listener, net::kRegistrarPort, w.take());
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// JiniClient

JiniClient::JiniClient(sim::World& world, net::NetStack& stack)
    : JiniClient(world, stack, Params{}) {}

JiniClient::JiniClient(sim::World& world, net::NetStack& stack, Params params)
    : world_(world), stack_(stack), params_(params), port_(kClientPort) {
  stack_.bind(port_, [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kAnnounceGroup);
}

JiniClient::~JiniClient() { stack_.unbind(port_); }

std::vector<net::NodeId> JiniClient::registrars() const {
  std::vector<net::NodeId> out;
  out.reserve(registrars_.size());
  for (const auto& [node, t] : registrars_) out.push_back(node);
  return out;
}

void JiniClient::discover(RegistrarFound cb) {
  on_registrar_ = std::move(cb);
  if (!discovering_) {
    discovering_ = true;
    send_discovery(0);
  }
}

void JiniClient::send_discovery(int attempt) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JiniMsg::kDiscoveryRequest));
  ++messages_sent_;
  stack_.send_multicast(net::kDiscoveryGroup, net::kRegistrarPort, port_,
                        w.take());
  ++outstanding_timeouts_;
  world_.sim().schedule_in(params_.discovery_timeout,
                           sim::EventCategory::kDiscovery,
                           [this, attempt, guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    --outstanding_timeouts_;
    if (has_registrar()) {
      discovering_ = false;
      return;
    }
    if (attempt + 1 < params_.discovery_retries) {
      send_discovery(attempt + 1);
    } else {
      discovering_ = false;
      world_.tracer().log(world_.now(), sim::TraceLevel::kWarn, "discovery",
                          "no lookup service answered multicast discovery; "
                          "the Jini infrastructure is unreachable");
      // Fail anything still waiting: node 0 signals "no registrar".
      auto waiting = std::move(waiting_);
      waiting_.clear();
      for (auto& action : waiting) action(0);
    }
  });
}

net::NodeId JiniClient::pick_registrar() const {
  net::NodeId best = 0;
  sim::Time best_heard = sim::Time::zero();
  const sim::Time now = world_.now();
  for (const auto& [node, heard] : registrars_) {
    // Fresh knowledge only: a registrar that stopped announcing is dead to
    // us, so clients fail over to whoever is still talking.
    if (now - heard > params_.registrar_staleness) continue;
    if (best == 0 || heard > best_heard) {
      best = node;
      best_heard = heard;
    }
  }
  return best;
}

void JiniClient::with_registrar(std::function<void(net::NodeId)> action) {
  if (const net::NodeId reg = pick_registrar(); reg != 0) {
    action(reg);
    return;
  }
  waiting_.push_back(std::move(action));
  if (!discovering_) {
    discovering_ = true;
    send_discovery(0);
  }
}

void JiniClient::register_service(ServiceDescription description,
                                  RegisterResult cb) {
  const std::uint32_t token = next_token_++;
  pending_reg_[token] = PendingRegistration{description, cb, token};
  with_registrar([this, token](net::NodeId reg) {
    auto it = pending_reg_.find(token);
    if (it == pending_reg_.end()) return;
    if (reg == 0) {
      auto cb = std::move(it->second.cb);
      pending_reg_.erase(it);
      if (cb) cb(false, 0);
      return;
    }
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(JiniMsg::kRegister));
    w.u32(token);
    w.u64(static_cast<std::uint64_t>(params_.lease_request.count()));
    it->second.desc.serialize(w);
    ++messages_sent_;
    stack_.send(net::Endpoint{reg, net::kRegistrarPort}, port_, w.take());
  });
}

void JiniClient::withdraw(ServiceId id) {
  held_leases_.erase(id);
  with_registrar([this, id](net::NodeId reg) {
    if (reg == 0) return;
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(JiniMsg::kCancel));
    w.u64(id);
    ++messages_sent_;
    stack_.send(net::Endpoint{reg, net::kRegistrarPort}, port_, w.take());
  });
}

void JiniClient::lookup(const ServiceTemplate& tmpl, LookupResult cb) {
  const std::uint32_t token = next_token_++;
  // End-to-end lookup latency (request to response-or-timeout), recorded
  // whichever path eventually invokes the callback.
  if (obs::HdrHistogram* h =
          obs::hdr(world_, "disco.lookup.latency_us", lpc::Layer::kAbstract)) {
    cb = [this, h, t0 = world_.now(),
          inner = std::move(cb)](std::vector<ServiceDescription> items) {
      h->record(static_cast<std::uint64_t>((world_.now() - t0).count() / 1000));
      if (inner) inner(std::move(items));
    };
  }
  pending_lookup_[token] = PendingLookup{std::move(cb), tmpl, 0};
  // Unanswered lookups (e.g. the registrar died mid-request) fail cleanly.
  ++outstanding_timeouts_;
  world_.sim().schedule_in(params_.lookup_timeout,
                           sim::EventCategory::kDiscovery,
                           [this, token, guard = std::weak_ptr<char>(alive_)] {
                             if (guard.expired()) return;
                             --outstanding_timeouts_;
                             auto it = pending_lookup_.find(token);
                             if (it == pending_lookup_.end()) return;
                             auto cb = std::move(it->second.cb);
                             pending_lookup_.erase(it);
                             if (cb) cb({});
                           });
  send_lookup(token);
}

void JiniClient::send_lookup(std::uint32_t token) {
  with_registrar([this, token](net::NodeId reg) {
    auto it = pending_lookup_.find(token);
    if (it == pending_lookup_.end()) return;
    if (reg == 0) {
      auto cb = std::move(it->second.cb);
      pending_lookup_.erase(it);
      if (cb) cb({});
      return;
    }
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(JiniMsg::kLookup));
    w.u32(token);
    it->second.tmpl.serialize(w);
    ++messages_sent_;
    stack_.send(net::Endpoint{reg, net::kRegistrarPort}, port_, w.take());
  });
}

void JiniClient::subscribe(const ServiceTemplate& tmpl, EventCallback cb) {
  on_event_ = std::move(cb);
  with_registrar([this, tmpl](net::NodeId reg) {
    if (reg == 0) return;
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(JiniMsg::kNotifyRequest));
    w.u32(next_token_++);
    w.u64(static_cast<std::uint64_t>((params_.lease_request * 20).count()));
    tmpl.serialize(w);
    ++messages_sent_;
    stack_.send(net::Endpoint{reg, net::kRegistrarPort}, port_, w.take());
  });
}

void JiniClient::schedule_renewal(ServiceId id, sim::Time lease) {
  const sim::Time delay = sim::scale(lease, params_.renew_fraction);
  const sim::EventHandle h = world_.sim().schedule_in(
      delay, sim::EventCategory::kDiscovery, make_renewal(id, lease));
  renewal_events_[id] = RenewalEvent{lease, h};
}

std::function<void()> JiniClient::make_renewal(ServiceId id, sim::Time lease) {
  return [this, id, lease, guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    renewal_events_.erase(id);
    auto it = held_leases_.find(id);
    if (it == held_leases_.end()) return;  // withdrawn
    {
      // Scoped so the renew request (and the radio frame carrying it)
      // parents here, while the next periodic renewal does not.
      obs::ScopedSpan span(world_, "disco.renew", lpc::Layer::kAbstract);
      span.annotate("service", std::to_string(id));
      with_registrar([this, id, lease](net::NodeId reg) {
        if (reg == 0) return;
        net::ByteWriter w;
        w.u8(static_cast<std::uint8_t>(JiniMsg::kRenew));
        w.u64(id);
        w.u64(static_cast<std::uint64_t>(lease.count()));
        ++messages_sent_;
        stack_.send(net::Endpoint{reg, net::kRegistrarPort}, port_, w.take());
      });
    }
    schedule_renewal(id, lease);
  };
}

void JiniClient::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<JiniMsg>(r.u8());
  if (!r.ok()) return;

  switch (msg) {
    case JiniMsg::kDiscoveryResponse:
    case JiniMsg::kAnnounce: {
      const bool is_new = registrars_.find(dg.src.node) == registrars_.end();
      registrars_[dg.src.node] = world_.now();
      if (is_new && on_registrar_) on_registrar_(dg.src.node);
      if (!waiting_.empty()) {
        auto waiting = std::move(waiting_);
        waiting_.clear();
        for (auto& action : waiting) action(dg.src.node);
      }
      return;
    }
    case JiniMsg::kRegisterResponse: {
      const std::uint32_t token = r.u32();
      const ServiceId id = r.u64();
      const auto lease = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      auto it = pending_reg_.find(token);
      if (it == pending_reg_.end()) return;
      auto cb = std::move(it->second.cb);
      ServiceDescription desc = std::move(it->second.desc);
      pending_reg_.erase(it);
      held_leases_[id] = HeldRegistration{lease, std::move(desc)};
      schedule_renewal(id, lease);
      if (cb) cb(true, id);
      return;
    }
    case JiniMsg::kRenewResponse: {
      const ServiceId id = r.u64();
      const bool ok = r.u8() != 0;
      if (ok) return;
      // The registrar does not know this lease: it crashed/restarted or we
      // failed over to a different one. Re-register (Jini's JoinManager
      // behaviour) so the service reappears wherever clients now look.
      auto held = held_leases_.find(id);
      if (held == held_leases_.end()) return;
      ServiceDescription desc = std::move(held->second.desc);
      held_leases_.erase(held);
      register_service(std::move(desc), {});
      return;
    }
    case JiniMsg::kLookupResponse: {
      const std::uint32_t token = r.u32();
      const std::uint32_t n = r.u32();
      std::vector<ServiceDescription> services;
      services.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        services.push_back(ServiceDescription::deserialize(r));
      }
      auto it = pending_lookup_.find(token);
      if (it == pending_lookup_.end()) return;
      auto cb = std::move(it->second.cb);
      pending_lookup_.erase(it);
      if (cb) cb(std::move(services));
      return;
    }
    case JiniMsg::kLookupBusy: {
      // The registrar shed our lookup under overload. Back off and retry:
      // exponential spacing plus a deterministic per-(client, token,
      // attempt) jitter so the herd that was shed together does not
      // return together.
      const std::uint32_t token = r.u32();
      auto it = pending_lookup_.find(token);
      if (it == pending_lookup_.end()) return;
      if (it->second.busy_attempts >= params_.busy_retries) {
        auto cb = std::move(it->second.cb);
        pending_lookup_.erase(it);
        if (cb) cb({});
        return;
      }
      const int attempt = ++it->second.busy_attempts;
      sim::Time delay = params_.busy_backoff * (1LL << (attempt - 1));
      const std::uint64_t h = sim::mix_hash(
          params_.jitter_seed ^ (static_cast<std::uint64_t>(token) << 20 |
                                 static_cast<std::uint64_t>(attempt)),
          stack_.node_id());
      delay += sim::Time::ns(static_cast<std::int64_t>(
          h % static_cast<std::uint64_t>(params_.busy_backoff.count())));
      ++outstanding_timeouts_;
      world_.sim().schedule_in(
          delay, sim::EventCategory::kDiscovery,
          [this, token, guard = std::weak_ptr<char>(alive_)] {
            if (guard.expired()) return;
            --outstanding_timeouts_;
            if (pending_lookup_.find(token) == pending_lookup_.end()) return;
            send_lookup(token);
          });
      return;
    }
    case JiniMsg::kEvent: {
      const bool appeared = r.u8() != 0;
      const ServiceDescription s = ServiceDescription::deserialize(r);
      if (r.ok() && on_event_) {
        obs::ScopedSpan span(world_, "disco.event", lpc::Layer::kAbstract);
        span.annotate("appeared", appeared ? "1" : "0");
        on_event_(s, appeared);
      }
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

void JiniRegistrar::save(snap::SectionWriter& w) const {
  if (pending_replies_ != 0) {
    throw snap::SnapError(
        "registrar save: admission-delayed reply in flight (closures are "
        "code, not data; checkpoint between lookup bursts)");
  }
  if (federation_ && !federation_->quiescent()) {
    throw snap::SnapError("registrar save: federation delegation in flight");
  }
  w.u64(stats_.registrations);
  w.u64(stats_.renewals);
  w.u64(stats_.lookups);
  w.u64(stats_.lease_expirations);
  w.u64(stats_.events_sent);
  w.u64(stats_.discovery_responses);
  w.u64(next_service_id_);
  w.u64(next_subscription_id_);
  w.b(enabled_);
  w.u64(index_.services().size());
  for (const auto& [id, desc] : index_.services()) {
    w.u64(id);
    net::ByteWriter bw;
    desc.serialize(bw);
    w.bytes(bw.data().data(), bw.data().size());
  }
  w.u64(subscriptions_.size());
  for (const Subscription& sub : subscriptions_) {
    w.u64(sub.id);
    w.u64(sub.listener.node);
    w.u16(sub.listener.port);
    net::ByteWriter bw;
    sub.tmpl.serialize(bw);
    w.bytes(bw.data().data(), bw.data().size());
  }
  announcer_->save(w);
  leases_.save(w);
}

void JiniRegistrar::restore(snap::SectionReader& r) {
  stats_.registrations = r.u64();
  stats_.renewals = r.u64();
  stats_.lookups = r.u64();
  stats_.lease_expirations = r.u64();
  stats_.events_sent = r.u64();
  stats_.discovery_responses = r.u64();
  next_service_id_ = r.u64();
  next_subscription_id_ = r.u64();
  enabled_ = r.b();
  index_.clear();
  const std::uint64_t n_services = r.u64();
  for (std::uint64_t i = 0; i < n_services; ++i) {
    const ServiceId id = r.u64();
    const std::vector<std::uint8_t> blob = r.bytes();
    net::ByteReader br(std::as_bytes(std::span(blob)));
    ServiceDescription desc = ServiceDescription::deserialize(br);
    if (!br.ok()) {
      throw snap::SnapError("registrar restore: bad service description");
    }
    desc.id = id;
    index_.insert(desc);
  }
  subscriptions_.clear();
  const std::uint64_t n_subs = r.u64();
  for (std::uint64_t i = 0; i < n_subs; ++i) {
    Subscription sub;
    sub.id = r.u64();
    sub.listener.node = r.u64();
    sub.listener.port = r.u16();
    const std::vector<std::uint8_t> blob = r.bytes();
    net::ByteReader br(std::as_bytes(std::span(blob)));
    sub.tmpl = ServiceTemplate::deserialize(br);
    if (!br.ok()) {
      throw snap::SnapError("registrar restore: bad subscription template");
    }
    subscriptions_.push_back(std::move(sub));
  }
  announcer_->restore(r);
  leases_.restore(r, [this](std::uint64_t key) -> std::function<void()> {
    if (key >= kSubLeaseKeyBase) {
      const std::uint64_t sid = key - kSubLeaseKeyBase;
      return [this, sid] {
        subscriptions_.erase(
            std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                           [&](const Subscription& s) { return s.id == sid; }),
            subscriptions_.end());
      };
    }
    const ServiceId id = key;
    return [this, id] { expire_service(id); };
  });
}

bool JiniClient::snap_quiescent(std::string* why) const {
  if (!pending_reg_.empty() || !pending_lookup_.empty()) {
    if (why) *why = "jini client: registration/lookup exchange in flight";
    return false;
  }
  if (discovering_ || !waiting_.empty()) {
    if (why) *why = "jini client: discovery in progress";
    return false;
  }
  if (outstanding_timeouts_ != 0) {
    if (why) *why = "jini client: timeout event scheduled";
    return false;
  }
  return true;
}

void JiniClient::save(snap::SectionWriter& w) const {
  w.u64(registrars_.size());
  for (const auto& [node, heard] : registrars_) {
    w.u64(node);
    w.time_delta(heard);
  }
  w.u32(next_token_);
  w.u64(messages_sent_);
  w.u64(held_leases_.size());
  for (const auto& [id, held] : held_leases_) {
    w.u64(id);
    w.duration(held.lease);
    net::ByteWriter bw;
    held.desc.serialize(bw);
    w.bytes(bw.data().data(), bw.data().size());
  }
  w.u64(renewal_events_.size());
  for (const auto& [id, re] : renewal_events_) {
    const auto info = world_.sim().pending_event_info(re.event);
    if (!info.valid) {
      throw snap::SnapError("jini client save: renewal event vanished");
    }
    w.u64(id);
    w.duration(re.lease);
    w.time_delta(info.when);
    w.u64(info.seq);
    w.u64(info.id);
  }
}

void JiniClient::restore(snap::SectionReader& r) {
  pending_reg_.clear();
  pending_lookup_.clear();
  waiting_.clear();
  discovering_ = false;
  outstanding_timeouts_ = 0;
  renewal_events_.clear();

  registrars_.clear();
  const std::uint64_t n_regs = r.u64();
  for (std::uint64_t i = 0; i < n_regs; ++i) {
    const net::NodeId node = r.u64();
    registrars_[node] = r.time_delta();
  }
  next_token_ = r.u32();
  messages_sent_ = r.u64();
  held_leases_.clear();
  const std::uint64_t n_held = r.u64();
  for (std::uint64_t i = 0; i < n_held; ++i) {
    const ServiceId id = r.u64();
    HeldRegistration held;
    held.lease = r.duration();
    const std::vector<std::uint8_t> blob = r.bytes();
    net::ByteReader br(std::as_bytes(std::span(blob)));
    held.desc = ServiceDescription::deserialize(br);
    if (!br.ok()) {
      throw snap::SnapError("jini client restore: bad held description");
    }
    held_leases_[id] = std::move(held);
  }
  const std::uint64_t n_renewals = r.u64();
  for (std::uint64_t i = 0; i < n_renewals; ++i) {
    const ServiceId id = r.u64();
    const sim::Time lease = r.duration();
    const sim::Time when = r.time_delta();
    const std::uint64_t seq = r.u64();
    const std::uint64_t eid = r.u64();
    const sim::EventHandle h = world_.sim().restore_event(
        when, seq, eid, sim::EventCategory::kDiscovery,
        make_renewal(id, lease));
    renewal_events_[id] = RenewalEvent{lease, h};
  }
}

}  // namespace aroma::disco
