// Jini-style service discovery: registrar (lookup service), join protocol,
// lease renewal, lookup, and remote-event subscriptions.
//
// This reproduces the discovery substrate the Smart Projector used: a
// lookup service found via multicast, unicast join with a leased
// registration, template lookup, and event notification so clients can
// reflect availability changes (the paper's "icons on the user's desktop
// should change their appearance accordingly").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "disco/federation.hpp"
#include "disco/index.hpp"
#include "disco/lease.hpp"
#include "disco/service.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::disco {

/// Wire message types on the registrar port.
enum class JiniMsg : std::uint8_t {
  kDiscoveryRequest = 1,   // multicast: "any registrars out there?"
  kDiscoveryResponse,      // unicast: "here"
  kAnnounce,               // multicast: periodic registrar announcement
  kRegister,               // unicast SA->reg: description + lease request
  kRegisterResponse,       // unicast: service id + granted lease
  kRenew,                  // unicast: extend lease
  kRenewResponse,
  kCancel,                 // unicast: withdraw registration
  kLookup,                 // unicast UA->reg: template
  kLookupResponse,         // unicast: matching descriptions
  kNotifyRequest,          // unicast: leased event subscription
  kNotifyResponse,         // subscription id
  kEvent,                  // unicast reg->listener: service appeared/vanished
  kLookupBusy,             // unicast: lookup shed by admission control
};

struct RegistrarStats {
  std::uint64_t registrations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lease_expirations = 0;
  std::uint64_t events_sent = 0;
  std::uint64_t discovery_responses = 0;
  std::uint64_t lookups_shed = 0;       // refused with kLookupBusy
  std::uint64_t lookups_delegated = 0;  // local miss forwarded to peers
};

/// The lookup service. One per world is typical; several can coexist (the
/// client discovers all in range).
class JiniRegistrar {
 public:
  struct Params {
    sim::Time announce_interval = sim::Time::sec(10.0);
    sim::Time max_lease = sim::Time::sec(60.0);
    // --- service-tier features (all off by default: a default-constructed
    // registrar is bit-identical to the pre-federation one) ---------------
    /// Query-cache capacity in entries; 0 disables the read-through cache.
    std::size_t cache_capacity = 0;
    /// Admission queue capacity in requests; 0 disables admission control
    /// (every lookup is answered immediately, nothing is shed).
    std::uint64_t admission_capacity = 0;
    sim::Time admission_service_time = sim::Time::us(50);
    /// Enables the federation peering endpoint; peers are then installed
    /// with set_peers().
    bool federate = false;
    FederationPeer::Params federation;
  };

  JiniRegistrar(sim::World& world, net::NetStack& stack);
  JiniRegistrar(sim::World& world, net::NetStack& stack, Params params);
  ~JiniRegistrar();
  JiniRegistrar(const JiniRegistrar&) = delete;
  JiniRegistrar& operator=(const JiniRegistrar&) = delete;

  std::size_t registered_count() const { return index_.size(); }
  const RegistrarStats& stats() const { return stats_; }
  net::NodeId node() const { return stack_.node_id(); }

  /// The inverted attribute index over current registrations (read-only;
  /// exposes the scalar oracle `match_scan` for equality property tests).
  const ServiceIndex& index() const { return index_; }

  /// Installs federation peers (requires Params::federate).
  void set_peers(std::vector<net::NodeId> peers);
  /// Routes shed-overload reports out of the tier (typically into an lpc
  /// IssueLog via lpc::shed_issue_filer). No-op without admission control.
  void set_issue_hook(AdmissionController::IssueHook hook);

  /// Service-tier telemetry; null when the matching feature is disabled.
  const QueryCacheStats* cache_stats() const {
    return cache_ ? &cache_->stats() : nullptr;
  }
  const AdmissionStats* admission_stats() const {
    return admission_ ? &admission_->stats() : nullptr;
  }
  const FederationStats* federation_stats() const {
    return federation_ ? &federation_->stats() : nullptr;
  }

  /// Publishes RegistrarStats to the world's metrics registry (pull-style;
  /// call before snapshotting). No-op when telemetry is off.
  void publish_metrics() const;

  /// Crash/restore hook for fault-tolerance experiments: while disabled
  /// the registrar neither answers requests nor announces itself.
  void set_enabled(bool on);
  bool enabled() const { return enabled_; }

  /// All currently registered services matching a template (local query,
  /// used by tests and the analyzer).
  std::vector<ServiceDescription> snapshot(const ServiceTemplate& t) const;

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // A default-configured registrar is checkpointable at any instant: its
  // only scheduled events are the announcer (a PeriodicTimer, re-armed
  // verbatim) and the lease table's tracked expiry checks. With service-
  // tier features enabled, save() additionally requires quiescence: no
  // delayed (admission-queued) reply and no delegation in flight, since
  // both hold reply closures. It throws snap::SnapError otherwise.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct Subscription {
    std::uint64_t id;
    net::Endpoint listener;
    ServiceTemplate tmpl;
  };

  void on_datagram(const net::Datagram& dg);
  void announce();
  void notify(const ServiceDescription& s, bool appeared);
  void expire_service(ServiceId id);
  /// Cache-aware local match (read-through on miss), ids ascending.
  std::vector<ServiceId> local_match(const ServiceTemplate& tmpl);
  void answer_lookup(net::NodeId requester, std::uint32_t token,
                     const ServiceTemplate& tmpl);
  void send_lookup_response(net::NodeId requester, std::uint32_t token,
                            const std::vector<ServiceId>& ids,
                            const std::vector<ServiceDescription>& remote);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  LeaseTable leases_;
  ServiceIndex index_;
  std::vector<Subscription> subscriptions_;
  ServiceId next_service_id_ = 1;
  std::uint64_t next_subscription_id_ = 1;
  RegistrarStats stats_;
  std::unique_ptr<sim::PeriodicTimer> announcer_;
  std::unique_ptr<QueryCache> cache_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<FederationPeer> federation_;
  // Admission-delayed replies scheduled but not yet sent; nonzero blocks
  // checkpointing (the events hold reply closures).
  int pending_replies_ = 0;
  bool enabled_ = true;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// Client-side discovery agent: finds registrars, joins services to them
/// with automatic lease renewal, and performs lookups/subscriptions.
class JiniClient {
 public:
  struct Params {
    sim::Time discovery_timeout = sim::Time::sec(1.0);
    sim::Time lease_request = sim::Time::sec(30.0);
    double renew_fraction = 0.5;   // renew when this much lease remains
    int discovery_retries = 3;
    /// A registrar silent for this long is considered gone (a crashed
    /// lookup service stops announcing; clients fail over to another).
    sim::Time registrar_staleness = sim::Time::sec(25.0);
    /// Unanswered lookups fail with an empty result after this long.
    sim::Time lookup_timeout = sim::Time::sec(5.0);
    /// Retries after a kLookupBusy (shed) reply before giving up; each
    /// retry backs off exponentially with deterministic seed-derived
    /// jitter so a shed storm of clients does not re-converge.
    int busy_retries = 3;
    sim::Time busy_backoff = sim::Time::ms(50);
    std::uint64_t jitter_seed = 0x6a09e667f3bcc909ULL;
  };

  using RegistrarFound = std::function<void(net::NodeId registrar)>;
  using LookupResult =
      std::function<void(std::vector<ServiceDescription> services)>;
  using RegisterResult = std::function<void(bool ok, ServiceId id)>;
  using EventCallback =
      std::function<void(const ServiceDescription& s, bool appeared)>;

  JiniClient(sim::World& world, net::NetStack& stack);
  JiniClient(sim::World& world, net::NetStack& stack, Params params);
  /// Safe to destroy while the simulation keeps running: bound ports are
  /// released and in-flight timer callbacks become no-ops.
  ~JiniClient();
  JiniClient(const JiniClient&) = delete;
  JiniClient& operator=(const JiniClient&) = delete;

  /// Multicasts a discovery request; invokes `cb` for each registrar found
  /// (first response per registrar). Also learns from announcements.
  void discover(RegistrarFound cb);

  /// True once at least one live (recently heard) registrar is known.
  bool has_registrar() const { return pick_registrar() != 0; }
  std::vector<net::NodeId> registrars() const;

  /// Join: registers `description` with the first known registrar (running
  /// discovery first if needed) and keeps the lease renewed until
  /// `withdraw` is called. The description's endpoint/id fields are used
  /// as given; the registrar assigns the authoritative id via `cb`.
  void register_service(ServiceDescription description, RegisterResult cb);
  void withdraw(ServiceId id);

  /// Lookup on the first known registrar (discovering if needed).
  void lookup(const ServiceTemplate& tmpl, LookupResult cb);

  /// Leased event subscription for services matching `tmpl`.
  void subscribe(const ServiceTemplate& tmpl, EventCallback cb);

  /// Messages this client has sent (for protocol-cost experiments).
  std::uint64_t messages_sent() const { return messages_sent_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Pending discovery/lookup exchanges hold result callbacks (code), so the
  // client is only checkpointable with no exchange in flight and no
  // discovery/lookup timeout event scheduled. Lease-renewal one-shots are
  // tracked per service and re-armed verbatim on restore.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct PendingRegistration {
    ServiceDescription desc;
    RegisterResult cb;
    std::uint32_t token;
  };

  void on_datagram(const net::Datagram& dg);
  void send_discovery(int attempt);
  void send_lookup(std::uint32_t token);
  void with_registrar(std::function<void(net::NodeId)> action);
  void schedule_renewal(ServiceId id, sim::Time lease);
  std::function<void()> make_renewal(ServiceId id, sim::Time lease);
  /// Most recently heard non-stale registrar, or 0 when none qualify.
  net::NodeId pick_registrar() const;

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  net::Port port_;
  std::map<net::NodeId, sim::Time> registrars_;  // node -> last heard
  RegistrarFound on_registrar_;
  std::vector<std::function<void(net::NodeId)>> waiting_;
  struct HeldRegistration {
    sim::Time lease;
    ServiceDescription desc;  // kept for re-registration after failover
  };
  std::map<std::uint32_t, PendingRegistration> pending_reg_;
  struct PendingLookup {
    LookupResult cb;
    ServiceTemplate tmpl;   // kept for busy retries
    int busy_attempts = 0;
  };
  std::map<std::uint32_t, PendingLookup> pending_lookup_;
  std::map<ServiceId, HeldRegistration> held_leases_;
  /// The scheduled renewal one-shot per lease id. An entry may outlive its
  /// held lease (withdrawn before the event fired); it is then a no-op
  /// event that must still be re-armed on restore for bit-equality.
  struct RenewalEvent {
    sim::Time lease;
    sim::EventHandle event;
  };
  std::map<ServiceId, RenewalEvent> renewal_events_;
  EventCallback on_event_;
  std::uint32_t next_token_ = 1;
  std::uint64_t messages_sent_ = 0;
  bool discovering_ = false;
  // Scheduled-but-unfired discovery/lookup timeout one-shots; nonzero
  // blocks checkpointing.
  int outstanding_timeouts_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
