// Inverted attribute index over registered services.
//
// Registrars used to answer every lookup with a linear scan over all
// registrations — fine for a conference room, hopeless for the paper's
// "environment saturated with computing" once a site registers tens of
// thousands of services. The index keeps one sorted posting list of
// service ids per (attribute key, value) term and per '/'-boundary type
// prefix; a template lookup intersects its term postings smallest-first.
//
// The scalar scan (`match_scan`) is retained as the reference oracle:
// property tests and the disco bench require the indexed result to be
// bit-identical to it (same ids, same ascending order) on every template.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "disco/service.hpp"

namespace aroma::disco {

class ServiceIndex {
 public:
  /// Inserts (or replaces, by id) a description. `desc.id` must be set.
  void insert(const ServiceDescription& desc);
  /// Removes a registration; no-op for unknown ids.
  void erase(ServiceId id);
  void clear();

  std::size_t size() const { return services_.size(); }
  const ServiceDescription* find(ServiceId id) const;
  /// Ascending-id view of every registration (iteration order matches the
  /// pre-index registrar scan, which walked a std::map).
  const std::map<ServiceId, ServiceDescription>& services() const {
    return services_;
  }

  /// Monotonic mutation counter. Any insert/erase bumps it, which is what
  /// invalidates query-cache entries keyed to an older epoch.
  std::uint64_t epoch() const { return epoch_; }

  /// Indexed match: ids of all registrations the template matches, in
  /// ascending id order. Bit-identical to `match_scan`.
  std::vector<ServiceId> match(const ServiceTemplate& tmpl) const;

  /// Reference oracle: the original O(n) scan over the ordered map.
  std::vector<ServiceId> match_scan(const ServiceTemplate& tmpl) const;

  /// Posting-list terms for a description (exposed for tests).
  static std::vector<std::string> terms_for(const ServiceDescription& desc);

 private:
  static std::string attr_term(const std::string& key,
                               const std::string& value);
  static std::string type_term(const std::string& prefix);
  void add_postings(const ServiceDescription& desc);
  void remove_postings(const ServiceDescription& desc);

  std::map<ServiceId, ServiceDescription> services_;
  // term -> ascending service ids. Terms are "a:" key '\x1f' value for
  // attributes and "t:" prefix for every '/'-boundary type prefix.
  std::unordered_map<std::string, std::vector<ServiceId>> postings_;
  std::uint64_t epoch_ = 0;
};

}  // namespace aroma::disco
