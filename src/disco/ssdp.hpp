// SSDP/UPnP-style discovery baseline: no registrar at all.
//
// Services multicast periodic "alive" announcements with a max-age;
// control points cache them and can also actively M-SEARCH. The trade-off
// this baseline exposes in FIG3: zero infrastructure and fast cached
// lookups, at the cost of continuous multicast traffic and cache staleness
// when a service dies silently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "disco/service.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::disco {

enum class SsdpMsg : std::uint8_t {
  kAlive = 1,
  kByeBye,
  kMSearch,
  kMSearchResponse,
};

/// Advertises local services by periodic multicast.
class SsdpAdvertiser {
 public:
  struct Params {
    sim::Time announce_interval = sim::Time::sec(15.0);
    sim::Time max_age = sim::Time::sec(45.0);  // 3 missed announcements
  };

  SsdpAdvertiser(sim::World& world, net::NetStack& stack);
  SsdpAdvertiser(sim::World& world, net::NetStack& stack, Params params);
  ~SsdpAdvertiser();
  SsdpAdvertiser(const SsdpAdvertiser&) = delete;
  SsdpAdvertiser& operator=(const SsdpAdvertiser&) = delete;

  /// Begins announcing; the first alive goes out immediately.
  void advertise(ServiceDescription description);
  /// Multicasts byebye and stops announcing. `silent` simulates a crash or
  /// walk-out-of-range: announcements stop with no byebye.
  void withdraw(ServiceId id, bool silent = false);

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void on_datagram(const net::Datagram& dg);
  void announce_all();
  void send_alive(const ServiceDescription& desc);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  std::map<ServiceId, ServiceDescription> advertised_;
  ServiceId next_local_id_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::unique_ptr<sim::PeriodicTimer> announcer_;
};

/// Caches announcements and answers finds from the cache or by M-SEARCH.
class SsdpControlPoint {
 public:
  struct Params {
    sim::Time msearch_wait = sim::Time::sec(1.0);
  };

  using FindResult = std::function<void(std::vector<ServiceDescription>)>;

  SsdpControlPoint(sim::World& world, net::NetStack& stack);
  SsdpControlPoint(sim::World& world, net::NetStack& stack, Params params);
  ~SsdpControlPoint();
  SsdpControlPoint(const SsdpControlPoint&) = delete;
  SsdpControlPoint& operator=(const SsdpControlPoint&) = delete;

  /// Cache-first: if the cache has unexpired matches, the callback fires
  /// immediately (zero network cost). Otherwise multicasts an M-SEARCH and
  /// gathers responses for `msearch_wait`.
  void find(const ServiceTemplate& tmpl, FindResult cb);

  /// Current unexpired cache entries matching a template.
  std::vector<ServiceDescription> cached(const ServiceTemplate& tmpl) const;

  /// Cache entries (matching tmpl) the control point *believes* are alive;
  /// compares against `truly_alive` to measure staleness.
  std::size_t stale_entries(const ServiceTemplate& tmpl,
                            const std::vector<ServiceId>& truly_alive) const;

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  struct CacheEntry {
    ServiceDescription desc;
    sim::Time expires;
  };

  void on_datagram(const net::Datagram& dg);
  void insert(const ServiceDescription& desc, sim::Time max_age);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  std::map<std::uint64_t, CacheEntry> cache_;  // key: node<<16 ^ service id
  struct Pending {
    FindResult cb;
    std::vector<ServiceDescription> gathered;
  };
  std::map<std::uint32_t, Pending> pending_;
  std::uint32_t next_token_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
