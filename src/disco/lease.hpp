// Leases: time-bounded grants that must be renewed to stay alive.
//
// Jini's central liveness mechanism, and the paper's answer to "users who
// forget to relinquish control of the projector": every registration,
// session, and event subscription is lease-backed, so abandoned state
// self-cleans without an administrator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::disco {

class LeaseTable {
 public:
  explicit LeaseTable(sim::World& world);
  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// Grants (or replaces) a lease on `key` expiring after `duration`.
  /// `on_expire` fires exactly once if the lease lapses without renewal.
  void grant(std::uint64_t key, sim::Time duration,
             std::function<void()> on_expire);

  /// Extends an active lease. Returns false for unknown/expired keys.
  bool renew(std::uint64_t key, sim::Time duration);

  /// Cancels without firing the expiry callback.
  void cancel(std::uint64_t key);

  bool active(std::uint64_t key) const;
  sim::Time expiry(std::uint64_t key) const;
  std::size_t size() const { return leases_.size(); }

  std::uint64_t expirations() const { return expirations_; }

  /// Check-list entries examined while pruning fired expiry checks, summed
  /// over the table's lifetime. A fired check prunes only its own key's
  /// entries (the list used to be flat, making every expiry O(live
  /// leases)); the regression test asserts this stays O(1) per expiry.
  std::uint64_t prune_visits() const { return prune_visits_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Expiry deadlines are serialized as durations-from-now, so a restore
  // under a simulated-time gap rebases every lease uniformly: a lease with
  // 12 s left at checkpoint time has 12 s left after restore. Expiry
  // callbacks are code, not data — restore rebuilds each from `factory`.
  // Outstanding check events (including stale-generation ones left behind
  // by renewals) are re-armed verbatim so the restored kernel's event
  // stream is bit-identical to an uninterrupted run.
  using ExpireFactory =
      std::function<std::function<void()>(std::uint64_t key)>;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r, const ExpireFactory& factory);

 private:
  struct Lease {
    sim::Time expiry;
    std::uint64_t gen = 0;
    std::function<void()> on_expire;
  };
  /// One scheduled-but-unfired expiry check; pruned when it fires.
  struct PendingCheck {
    std::uint64_t gen;
    sim::EventHandle event;
  };
  void schedule_check(std::uint64_t key, std::uint64_t gen, sim::Time when);
  std::function<void()> make_check(std::uint64_t key, std::uint64_t gen);

  sim::World& world_;
  std::unordered_map<std::uint64_t, Lease> leases_;
  // Keyed by lease key so a fired check prunes only its own key's entries
  // (typically one; a renewal chain leaves at most a handful of stale
  // generations) instead of rescanning every live registration's check.
  std::unordered_map<std::uint64_t, std::vector<PendingCheck>> checks_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t expirations_ = 0;
  std::uint64_t prune_visits_ = 0;
  // Telemetry handles; null when the world has no registry attached.
  obs::Counter* m_grants_ = nullptr;
  obs::Counter* m_renewals_ = nullptr;
  obs::Counter* m_cancellations_ = nullptr;
  obs::Counter* m_expirations_ = nullptr;
  // Expiry events may still sit in the simulator when the table's owner is
  // destroyed mid-run; they check this token and become no-ops.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
