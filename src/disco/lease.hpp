// Leases: time-bounded grants that must be renewed to stay alive.
//
// Jini's central liveness mechanism, and the paper's answer to "users who
// forget to relinquish control of the projector": every registration,
// session, and event subscription is lease-backed, so abandoned state
// self-cleans without an administrator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::disco {

class LeaseTable {
 public:
  explicit LeaseTable(sim::World& world);
  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// Grants (or replaces) a lease on `key` expiring after `duration`.
  /// `on_expire` fires exactly once if the lease lapses without renewal.
  void grant(std::uint64_t key, sim::Time duration,
             std::function<void()> on_expire);

  /// Extends an active lease. Returns false for unknown/expired keys.
  bool renew(std::uint64_t key, sim::Time duration);

  /// Cancels without firing the expiry callback.
  void cancel(std::uint64_t key);

  bool active(std::uint64_t key) const;
  sim::Time expiry(std::uint64_t key) const;
  std::size_t size() const { return leases_.size(); }

  std::uint64_t expirations() const { return expirations_; }

 private:
  struct Lease {
    sim::Time expiry;
    std::uint64_t gen = 0;
    std::function<void()> on_expire;
  };
  void schedule_check(std::uint64_t key, std::uint64_t gen, sim::Time when);

  sim::World& world_;
  std::unordered_map<std::uint64_t, Lease> leases_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t expirations_ = 0;
  // Telemetry handles; null when the world has no registry attached.
  obs::Counter* m_grants_ = nullptr;
  obs::Counter* m_renewals_ = nullptr;
  obs::Counter* m_cancellations_ = nullptr;
  obs::Counter* m_expirations_ = nullptr;
  // Expiry events may still sit in the simulator when the table's owner is
  // destroyed mid-run; they check this token and become no-ops.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
