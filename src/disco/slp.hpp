// SLP-style service discovery baseline (Service Location Protocol, RFC 2608
// shape): an optional Directory Agent, unicast registration when a DA is
// present, and DA-less multicast convergecast when it is not.
//
// Included as a comparator for the FIG3 resource-layer experiments: the
// paper situates Jini among competing discovery technologies; SLP differs
// in degrading gracefully to a registrar-less mode.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "disco/federation.hpp"
#include "disco/index.hpp"
#include "disco/lease.hpp"
#include "disco/service.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::disco {

enum class SlpMsg : std::uint8_t {
  kDaAdvert = 1,
  kSrvReg,
  kSrvAck,
  kSrvRqst,        // unicast to DA or multicast to SAs
  kSrvRply,
};

/// Directory Agent: the registrar role.
class SlpDirectoryAgent {
 public:
  struct Params {
    sim::Time advert_interval = sim::Time::sec(10.0);
    sim::Time max_lifetime = sim::Time::sec(60.0);
    // Service-tier features, all off by default (see JiniRegistrar): a
    // shed SLP request is silently dropped — the UA's retransmit path is
    // the protocol's recovery mechanism.
    std::size_t cache_capacity = 0;
    std::uint64_t admission_capacity = 0;
    sim::Time admission_service_time = sim::Time::us(50);
    bool federate = false;
    FederationPeer::Params federation;
  };

  SlpDirectoryAgent(sim::World& world, net::NetStack& stack);
  SlpDirectoryAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpDirectoryAgent();
  SlpDirectoryAgent(const SlpDirectoryAgent&) = delete;
  SlpDirectoryAgent& operator=(const SlpDirectoryAgent&) = delete;

  std::size_t registered_count() const { return index_.size(); }
  const ServiceIndex& index() const { return index_; }

  /// Installs federation peers (requires Params::federate). The peer set
  /// may mix SLP DAs and Jini registrars: the federation wire format is
  /// protocol agnostic.
  void set_peers(std::vector<net::NodeId> peers);
  void set_issue_hook(AdmissionController::IssueHook hook);

  std::uint64_t requests_shed() const { return requests_shed_; }
  const QueryCacheStats* cache_stats() const {
    return cache_ ? &cache_->stats() : nullptr;
  }
  const AdmissionStats* admission_stats() const {
    return admission_ ? &admission_->stats() : nullptr;
  }
  const FederationStats* federation_stats() const {
    return federation_ ? &federation_->stats() : nullptr;
  }

 private:
  void on_datagram(const net::Datagram& dg);
  void advertise();
  std::vector<ServiceId> local_match(const ServiceTemplate& tmpl);
  void answer_request(net::NodeId requester, std::uint32_t token,
                      const ServiceTemplate& tmpl);
  void send_reply(net::NodeId requester, std::uint32_t token,
                  const std::vector<ServiceId>& ids,
                  const std::vector<ServiceDescription>& remote);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  LeaseTable leases_;
  ServiceIndex index_;
  ServiceId next_id_ = 1;
  std::unique_ptr<sim::PeriodicTimer> advertiser_;
  std::unique_ptr<QueryCache> cache_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<FederationPeer> federation_;
  std::uint64_t requests_shed_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// Service Agent: advertises one or more local services. Registers with a
/// DA when one is known; otherwise answers multicast requests directly.
class SlpServiceAgent {
 public:
  struct Params {
    sim::Time lifetime = sim::Time::sec(30.0);
    double reregister_fraction = 0.5;
  };

  SlpServiceAgent(sim::World& world, net::NetStack& stack);
  SlpServiceAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpServiceAgent();
  SlpServiceAgent(const SlpServiceAgent&) = delete;
  SlpServiceAgent& operator=(const SlpServiceAgent&) = delete;

  /// Starts advertising `description`; re-registers automatically.
  void advertise(ServiceDescription description);
  void withdraw_all() { advertised_.clear(); }

  bool has_da() const { return da_node_ != 0; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void on_datagram(const net::Datagram& dg);
  void register_with_da(const ServiceDescription& desc);
  void schedule_reregister(std::size_t index);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  net::NodeId da_node_ = 0;
  std::vector<ServiceDescription> advertised_;
  std::uint64_t messages_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// User Agent: issues service requests.
class SlpUserAgent {
 public:
  struct Params {
    sim::Time multicast_wait = sim::Time::sec(1.0);
    /// Retransmits per DA-less find while no reply has been gathered; 0
    /// keeps the legacy single-shot behaviour. With `jitter` the k-th gap
    /// is multicast_wait * 2^k stretched by a deterministic seed-derived
    /// factor in [1, 1.5); without it every gap is exactly multicast_wait
    /// (naive fixed spacing, kept as the comparison baseline).
    int retries = 0;
    bool jitter = true;
    std::uint64_t jitter_seed = 0xbb67ae8584caa73bULL;
  };

  using FindResult = std::function<void(std::vector<ServiceDescription>)>;

  SlpUserAgent(sim::World& world, net::NetStack& stack);
  SlpUserAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpUserAgent();
  SlpUserAgent(const SlpUserAgent&) = delete;
  SlpUserAgent& operator=(const SlpUserAgent&) = delete;

  /// Unicast to the DA when known; otherwise multicast and gather replies
  /// for `multicast_wait` before invoking the callback.
  void find(const ServiceTemplate& tmpl, FindResult cb);

  bool has_da() const { return da_node_ != 0; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void on_datagram(const net::Datagram& dg);
  void send_request(std::uint32_t token, const ServiceTemplate& tmpl);
  void arm_retry(std::uint32_t token, int attempt);
  sim::Time retry_gap(std::uint32_t token, int attempt) const;

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  net::NodeId da_node_ = 0;
  struct Pending {
    FindResult cb;
    std::vector<ServiceDescription> gathered;
    bool multicast = false;
    ServiceTemplate tmpl;  // kept for retransmits
  };
  std::map<std::uint32_t, Pending> pending_;
  std::uint32_t next_token_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
