// SLP-style service discovery baseline (Service Location Protocol, RFC 2608
// shape): an optional Directory Agent, unicast registration when a DA is
// present, and DA-less multicast convergecast when it is not.
//
// Included as a comparator for the FIG3 resource-layer experiments: the
// paper situates Jini among competing discovery technologies; SLP differs
// in degrading gracefully to a registrar-less mode.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "disco/lease.hpp"
#include "disco/service.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::disco {

enum class SlpMsg : std::uint8_t {
  kDaAdvert = 1,
  kSrvReg,
  kSrvAck,
  kSrvRqst,        // unicast to DA or multicast to SAs
  kSrvRply,
};

/// Directory Agent: the registrar role.
class SlpDirectoryAgent {
 public:
  struct Params {
    sim::Time advert_interval = sim::Time::sec(10.0);
    sim::Time max_lifetime = sim::Time::sec(60.0);
  };

  SlpDirectoryAgent(sim::World& world, net::NetStack& stack);
  SlpDirectoryAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpDirectoryAgent();
  SlpDirectoryAgent(const SlpDirectoryAgent&) = delete;
  SlpDirectoryAgent& operator=(const SlpDirectoryAgent&) = delete;

  std::size_t registered_count() const { return services_.size(); }

 private:
  void on_datagram(const net::Datagram& dg);
  void advertise();

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  LeaseTable leases_;
  std::map<ServiceId, ServiceDescription> services_;
  ServiceId next_id_ = 1;
  std::unique_ptr<sim::PeriodicTimer> advertiser_;
};

/// Service Agent: advertises one or more local services. Registers with a
/// DA when one is known; otherwise answers multicast requests directly.
class SlpServiceAgent {
 public:
  struct Params {
    sim::Time lifetime = sim::Time::sec(30.0);
    double reregister_fraction = 0.5;
  };

  SlpServiceAgent(sim::World& world, net::NetStack& stack);
  SlpServiceAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpServiceAgent();
  SlpServiceAgent(const SlpServiceAgent&) = delete;
  SlpServiceAgent& operator=(const SlpServiceAgent&) = delete;

  /// Starts advertising `description`; re-registers automatically.
  void advertise(ServiceDescription description);
  void withdraw_all() { advertised_.clear(); }

  bool has_da() const { return da_node_ != 0; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void on_datagram(const net::Datagram& dg);
  void register_with_da(const ServiceDescription& desc);
  void schedule_reregister(std::size_t index);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  net::NodeId da_node_ = 0;
  std::vector<ServiceDescription> advertised_;
  std::uint64_t messages_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// User Agent: issues service requests.
class SlpUserAgent {
 public:
  struct Params {
    sim::Time multicast_wait = sim::Time::sec(1.0);
  };

  using FindResult = std::function<void(std::vector<ServiceDescription>)>;

  SlpUserAgent(sim::World& world, net::NetStack& stack);
  SlpUserAgent(sim::World& world, net::NetStack& stack, Params params);
  ~SlpUserAgent();
  SlpUserAgent(const SlpUserAgent&) = delete;
  SlpUserAgent& operator=(const SlpUserAgent&) = delete;

  /// Unicast to the DA when known; otherwise multicast and gather replies
  /// for `multicast_wait` before invoking the callback.
  void find(const ServiceTemplate& tmpl, FindResult cb);

  bool has_da() const { return da_node_ != 0; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void on_datagram(const net::Datagram& dg);

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  net::NodeId da_node_ = 0;
  struct Pending {
    FindResult cb;
    std::vector<ServiceDescription> gathered;
    bool multicast = false;
  };
  std::map<std::uint32_t, Pending> pending_;
  std::uint32_t next_token_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::disco
