#include "disco/gateway.hpp"

#include <utility>

namespace aroma::disco {

SessionGateway::SessionGateway(sim::World& world, Params params)
    : world_(world), params_(params) {}

bool SessionGateway::valid(GatewaySession s) const {
  const std::uint32_t slot = slot_of(s);
  return slot < gens_.size() && gens_[slot] == gen_of(s) &&
         live_[slot] != 0;
}

std::int64_t SessionGateway::bucket_index(sim::Time deadline) const {
  return sim::align_up(deadline, params_.tick).count() / params_.tick.count();
}

void SessionGateway::enqueue(std::uint32_t slot, std::uint32_t gen,
                             sim::Time deadline) {
  const std::int64_t index = bucket_index(deadline);
  auto [it, inserted] = buckets_.try_emplace(index);
  it->second.entries.emplace_back(slot, gen);
  if (!inserted) return;
  // First deadline in this quantum: arm the bucket's single kernel event at
  // the absolute tick boundary. Every gateway in the world computes the
  // same boundary for the same quantum, so their wakeups coincide and the
  // kernel's same-time trains absorb them.
  ++stats_.wakeups;
  world_.sim().schedule_at(
      params_.tick * index, sim::EventCategory::kApp,
      [this, index, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        drain(index);
      });
}

GatewaySession SessionGateway::open(std::uint64_t owner, sim::Time lease,
                                    std::function<void()> on_expire) {
  if (lease.is_zero()) lease = params_.default_lease;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ++gens_[slot];
  } else {
    slot = static_cast<std::uint32_t>(deadlines_.size());
    deadlines_.push_back(sim::Time::zero());
    gens_.push_back(1);
    owners_.push_back(0);
    live_.push_back(0);
    callbacks_.emplace_back();
  }
  deadlines_[slot] = world_.now() + lease;
  owners_[slot] = owner;
  live_[slot] = 1;
  callbacks_[slot] = std::move(on_expire);
  ++live_count_;
  ++stats_.opened;
  enqueue(slot, gens_[slot], deadlines_[slot]);
  return (static_cast<std::uint64_t>(gens_[slot]) << 32) | slot;
}

bool SessionGateway::renew(GatewaySession session, sim::Time lease) {
  if (!valid(session)) return false;
  const std::uint32_t slot = slot_of(session);
  if (deadlines_[slot] <= world_.now()) return false;  // already lapsed
  if (lease.is_zero()) lease = params_.default_lease;
  deadlines_[slot] = world_.now() + lease;
  ++stats_.renewed;
  // Lazy: the session's existing bucket entry re-buckets it on drain. No
  // kernel event is armed here, which is the whole point — a renewal storm
  // costs zero heap operations.
  return true;
}

bool SessionGateway::close(GatewaySession session) {
  if (!valid(session)) return false;
  const std::uint32_t slot = slot_of(session);
  live_[slot] = 0;
  callbacks_[slot] = nullptr;
  free_slots_.push_back(slot);
  --live_count_;
  ++stats_.closed;
  return true;
}

bool SessionGateway::active(GatewaySession session) const {
  return valid(session) && deadlines_[slot_of(session)] > world_.now();
}

sim::Time SessionGateway::deadline(GatewaySession session) const {
  return valid(session) ? deadlines_[slot_of(session)] : sim::Time::zero();
}

std::uint64_t SessionGateway::owner_of(GatewaySession session) const {
  return valid(session) ? owners_[slot_of(session)] : 0;
}

void SessionGateway::drain(std::int64_t index) {
  const auto it = buckets_.find(index);
  if (it == buckets_.end()) return;
  Bucket bucket = std::move(it->second);
  buckets_.erase(it);
  ++stats_.ticks;
  const sim::Time now = world_.now();
  for (const auto& [slot, gen] : bucket.entries) {
    ++stats_.sweep_visits;
    if (gens_[slot] != gen || live_[slot] == 0) continue;  // closed/reused
    const sim::Time deadline = deadlines_[slot];
    if (deadline > now) {
      // Renewed since it was bucketed: carry it to its new quantum.
      enqueue(slot, gen, deadline);
      continue;
    }
    auto cb = std::move(callbacks_[slot]);
    callbacks_[slot] = nullptr;
    live_[slot] = 0;
    free_slots_.push_back(slot);
    --live_count_;
    ++stats_.expired;
    if (cb) cb();
  }
}

}  // namespace aroma::disco
