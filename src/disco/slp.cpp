#include "disco/slp.hpp"

#include "sim/random.hpp"

namespace aroma::disco {

// ---------------------------------------------------------------------------
// SlpDirectoryAgent

SlpDirectoryAgent::SlpDirectoryAgent(sim::World& world, net::NetStack& stack)
    : SlpDirectoryAgent(world, stack, Params{}) {}

SlpDirectoryAgent::SlpDirectoryAgent(sim::World& world, net::NetStack& stack,
                                     Params params)
    : world_(world), stack_(stack), params_(params), leases_(world) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  advertiser_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.advert_interval, [this] { advertise(); });
  advertiser_->start_after(sim::Time::ms(5));
  if (params_.cache_capacity > 0) {
    cache_ = std::make_unique<QueryCache>(params_.cache_capacity);
  }
  if (params_.admission_capacity > 0) {
    admission_ = std::make_unique<AdmissionController>(
        world_, AdmissionController::Params{params_.admission_capacity,
                                            params_.admission_service_time});
  }
  if (params_.federate) {
    federation_ = std::make_unique<FederationPeer>(
        world_, stack_, params_.federation,
        [this](const ServiceTemplate& tmpl) {
          std::vector<ServiceDescription> out;
          for (const ServiceId id : local_match(tmpl)) {
            out.push_back(*index_.find(id));
          }
          return out;
        });
  }
}

SlpDirectoryAgent::~SlpDirectoryAgent() { stack_.unbind(net::kSlpPort); }

void SlpDirectoryAgent::set_peers(std::vector<net::NodeId> peers) {
  if (federation_) federation_->set_peers(std::move(peers));
}

void SlpDirectoryAgent::set_issue_hook(AdmissionController::IssueHook hook) {
  if (admission_) admission_->set_issue_hook(std::move(hook));
}

std::vector<ServiceId> SlpDirectoryAgent::local_match(
    const ServiceTemplate& tmpl) {
  if (!cache_) return index_.match(tmpl);
  const std::string key = QueryCache::key_of(tmpl);
  if (const std::vector<ServiceId>* ids = cache_->lookup(key, index_.epoch())) {
    return *ids;
  }
  std::vector<ServiceId> ids = index_.match(tmpl);
  cache_->insert(key, index_.epoch(), ids);
  return ids;
}

void SlpDirectoryAgent::send_reply(
    net::NodeId requester, std::uint32_t token,
    const std::vector<ServiceId>& ids,
    const std::vector<ServiceDescription>& remote) {
  net::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRply));
  out.u32(token);
  out.u32(static_cast<std::uint32_t>(ids.size() + remote.size()));
  for (const ServiceId id : ids) index_.find(id)->serialize(out);
  for (const auto& m : remote) m.serialize(out);
  stack_.send(net::Endpoint{requester, net::kSlpPort}, net::kSlpPort,
              out.take());
}

void SlpDirectoryAgent::answer_request(net::NodeId requester,
                                       std::uint32_t token,
                                       const ServiceTemplate& tmpl) {
  const std::vector<ServiceId> ids = local_match(tmpl);
  if (ids.empty() && federation_ && !federation_->peers().empty()) {
    federation_->delegate(
        tmpl, [this, requester, token](std::vector<ServiceDescription> remote) {
          send_reply(requester, token, {}, remote);
        });
    return;
  }
  send_reply(requester, token, ids, {});
}

void SlpDirectoryAgent::advertise() {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kDaAdvert));
  stack_.send_multicast(net::kAnnounceGroup, net::kSlpPort, net::kSlpPort,
                        w.take());
}

void SlpDirectoryAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kSrvReg: {
      const auto lifetime = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      ServiceDescription desc = ServiceDescription::deserialize(r);
      if (!r.ok()) return;
      // Re-registration of the same endpoint+type replaces the old entry.
      ServiceId id = 0;
      for (const auto& [sid, s] : index_.services()) {
        if (s.endpoint == desc.endpoint && s.type == desc.type) {
          id = sid;
          break;
        }
      }
      if (id == 0) id = next_id_++;
      desc.id = id;
      index_.insert(desc);
      const sim::Time granted = std::min(lifetime, params_.max_lifetime);
      leases_.grant(id, granted, [this, id] { index_.erase(id); });
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvAck));
      w.u64(id);
      stack_.send(net::Endpoint{dg.src.node, net::kSlpPort}, net::kSlpPort,
                  w.take());
      return;
    }
    case SlpMsg::kSrvRqst: {
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      if (admission_) {
        const auto decision = admission_->decide();
        if (!decision.admitted) {
          // SLP has no busy reply: a shed request is dropped and the UA's
          // retransmit schedule recovers.
          ++requests_shed_;
          return;
        }
        if (!decision.delay.is_zero()) {
          world_.sim().schedule_in(
              decision.delay, sim::EventCategory::kDiscovery,
              [this, requester = dg.src.node, token, tmpl,
               guard = std::weak_ptr<char>(alive_)] {
                if (guard.expired()) return;
                answer_request(requester, token, tmpl);
              });
          return;
        }
      }
      answer_request(dg.src.node, token, tmpl);
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// SlpServiceAgent

SlpServiceAgent::SlpServiceAgent(sim::World& world, net::NetStack& stack)
    : SlpServiceAgent(world, stack, Params{}) {}

SlpServiceAgent::SlpServiceAgent(sim::World& world, net::NetStack& stack,
                                 Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  stack_.join_group(net::kAnnounceGroup);
}

SlpServiceAgent::~SlpServiceAgent() { stack_.unbind(net::kSlpPort); }

void SlpServiceAgent::advertise(ServiceDescription description) {
  advertised_.push_back(std::move(description));
  const std::size_t index = advertised_.size() - 1;
  if (has_da()) register_with_da(advertised_[index]);
  schedule_reregister(index);
}

void SlpServiceAgent::register_with_da(const ServiceDescription& desc) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvReg));
  w.u64(static_cast<std::uint64_t>(params_.lifetime.count()));
  desc.serialize(w);
  ++messages_sent_;
  stack_.send(net::Endpoint{da_node_, net::kSlpPort}, net::kSlpPort, w.take());
}

void SlpServiceAgent::schedule_reregister(std::size_t index) {
  const sim::Time delay =
      sim::scale(params_.lifetime, params_.reregister_fraction);
  world_.sim().schedule_in(delay, [this, index,
                                   guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    if (index >= advertised_.size()) return;  // withdrawn
    if (has_da()) register_with_da(advertised_[index]);
    schedule_reregister(index);
  });
}

void SlpServiceAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kDaAdvert: {
      const bool was_new = da_node_ != dg.src.node;
      da_node_ = dg.src.node;
      if (was_new) {
        for (const auto& desc : advertised_) register_with_da(desc);
      }
      return;
    }
    case SlpMsg::kSrvRqst: {
      // DA-less mode: answer multicast requests for matching services.
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      std::vector<const ServiceDescription*> matches;
      for (const auto& s : advertised_) {
        if (tmpl.matches(s)) matches.push_back(&s);
      }
      if (matches.empty()) return;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRply));
      w.u32(token);
      w.u32(static_cast<std::uint32_t>(matches.size()));
      for (const auto* m : matches) m->serialize(w);
      ++messages_sent_;
      stack_.send(net::Endpoint{dg.src.node, net::kSlpPort}, net::kSlpPort,
                  w.take());
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// SlpUserAgent

SlpUserAgent::SlpUserAgent(sim::World& world, net::NetStack& stack)
    : SlpUserAgent(world, stack, Params{}) {}

SlpUserAgent::SlpUserAgent(sim::World& world, net::NetStack& stack,
                           Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kAnnounceGroup);
}

SlpUserAgent::~SlpUserAgent() { stack_.unbind(net::kSlpPort); }

void SlpUserAgent::find(const ServiceTemplate& tmpl, FindResult cb) {
  const std::uint32_t token = next_token_++;
  Pending p;
  p.cb = std::move(cb);
  p.multicast = !has_da();
  p.tmpl = tmpl;
  pending_[token] = std::move(p);

  send_request(token, tmpl);
  if (has_da()) {
    // DA replies promptly; time out as a safety net.
    world_.sim().schedule_in(params_.multicast_wait * 3,
                             [this, token, guard = std::weak_ptr<char>(alive_)] {
      if (guard.expired()) return;
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      auto done = std::move(it->second);
      pending_.erase(it);
      if (done.cb) done.cb(std::move(done.gathered));
    });
  } else if (params_.retries <= 0) {
    // Legacy single-shot: gather replies for one multicast_wait.
    world_.sim().schedule_in(params_.multicast_wait,
                             [this, token, guard = std::weak_ptr<char>(alive_)] {
      if (guard.expired()) return;
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      auto done = std::move(it->second);
      pending_.erase(it);
      if (done.cb) done.cb(std::move(done.gathered));
    });
  } else {
    arm_retry(token, 0);
  }
}

void SlpUserAgent::send_request(std::uint32_t token,
                                const ServiceTemplate& tmpl) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRqst));
  w.u32(token);
  tmpl.serialize(w);
  ++messages_sent_;
  if (has_da()) {
    stack_.send(net::Endpoint{da_node_, net::kSlpPort}, net::kSlpPort,
                w.take());
  } else {
    stack_.send_multicast(net::kDiscoveryGroup, net::kSlpPort, net::kSlpPort,
                          w.take());
  }
}

sim::Time SlpUserAgent::retry_gap(std::uint32_t token, int attempt) const {
  if (!params_.jitter) return params_.multicast_wait;  // naive fixed spacing
  // Exponential backoff with a counter-based jitter: stateless, seeded,
  // and consuming no Rng draws, so enabling retries perturbs nothing else.
  const sim::Time base = params_.multicast_wait * (1LL << attempt);
  const std::uint64_t h = sim::mix_hash(
      params_.jitter_seed ^ stack_.node_id(),
      (static_cast<std::uint64_t>(token) << 8) |
          static_cast<std::uint64_t>(attempt));
  const double stretch = 1.0 + static_cast<double>(h % 4096) / 8192.0;
  return sim::scale(base, stretch);
}

void SlpUserAgent::arm_retry(std::uint32_t token, int attempt) {
  world_.sim().schedule_in(
      retry_gap(token, attempt), sim::EventCategory::kDiscovery,
      [this, token, attempt, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        auto it = pending_.find(token);
        if (it == pending_.end()) return;
        // Anything gathered by now answers the find; retransmit only
        // while the request has gone completely unheard.
        if (!it->second.gathered.empty() || attempt >= params_.retries) {
          auto done = std::move(it->second);
          pending_.erase(it);
          if (done.cb) done.cb(std::move(done.gathered));
          return;
        }
        send_request(token, it->second.tmpl);
        arm_retry(token, attempt + 1);
      });
}

void SlpUserAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kDaAdvert:
      da_node_ = dg.src.node;
      return;
    case SlpMsg::kSrvRply: {
      const std::uint32_t token = r.u32();
      const std::uint32_t n = r.u32();
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        it->second.gathered.push_back(ServiceDescription::deserialize(r));
      }
      if (!it->second.multicast) {
        // Unicast DA reply is authoritative: complete immediately.
        auto done = std::move(it->second);
        pending_.erase(it);
        if (done.cb) done.cb(std::move(done.gathered));
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace aroma::disco
