#include "disco/slp.hpp"

namespace aroma::disco {

// ---------------------------------------------------------------------------
// SlpDirectoryAgent

SlpDirectoryAgent::SlpDirectoryAgent(sim::World& world, net::NetStack& stack)
    : SlpDirectoryAgent(world, stack, Params{}) {}

SlpDirectoryAgent::SlpDirectoryAgent(sim::World& world, net::NetStack& stack,
                                     Params params)
    : world_(world), stack_(stack), params_(params), leases_(world) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  advertiser_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.advert_interval, [this] { advertise(); });
  advertiser_->start_after(sim::Time::ms(5));
}

SlpDirectoryAgent::~SlpDirectoryAgent() { stack_.unbind(net::kSlpPort); }

void SlpDirectoryAgent::advertise() {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kDaAdvert));
  stack_.send_multicast(net::kAnnounceGroup, net::kSlpPort, net::kSlpPort,
                        w.take());
}

void SlpDirectoryAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kSrvReg: {
      const auto lifetime = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
      ServiceDescription desc = ServiceDescription::deserialize(r);
      if (!r.ok()) return;
      // Re-registration of the same endpoint+type replaces the old entry.
      ServiceId id = 0;
      for (const auto& [sid, s] : services_) {
        if (s.endpoint == desc.endpoint && s.type == desc.type) {
          id = sid;
          break;
        }
      }
      if (id == 0) id = next_id_++;
      desc.id = id;
      services_[id] = desc;
      const sim::Time granted = std::min(lifetime, params_.max_lifetime);
      leases_.grant(id, granted, [this, id] { services_.erase(id); });
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvAck));
      w.u64(id);
      stack_.send(net::Endpoint{dg.src.node, net::kSlpPort}, net::kSlpPort,
                  w.take());
      return;
    }
    case SlpMsg::kSrvRqst: {
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      std::vector<const ServiceDescription*> matches;
      for (const auto& [id, s] : services_) {
        if (tmpl.matches(s)) matches.push_back(&s);
      }
      net::ByteWriter out;
      out.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRply));
      out.u32(token);
      out.u32(static_cast<std::uint32_t>(matches.size()));
      for (const auto* m : matches) m->serialize(out);
      stack_.send(net::Endpoint{dg.src.node, net::kSlpPort}, net::kSlpPort,
                  out.take());
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// SlpServiceAgent

SlpServiceAgent::SlpServiceAgent(sim::World& world, net::NetStack& stack)
    : SlpServiceAgent(world, stack, Params{}) {}

SlpServiceAgent::SlpServiceAgent(sim::World& world, net::NetStack& stack,
                                 Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kDiscoveryGroup);
  stack_.join_group(net::kAnnounceGroup);
}

SlpServiceAgent::~SlpServiceAgent() { stack_.unbind(net::kSlpPort); }

void SlpServiceAgent::advertise(ServiceDescription description) {
  advertised_.push_back(std::move(description));
  const std::size_t index = advertised_.size() - 1;
  if (has_da()) register_with_da(advertised_[index]);
  schedule_reregister(index);
}

void SlpServiceAgent::register_with_da(const ServiceDescription& desc) {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvReg));
  w.u64(static_cast<std::uint64_t>(params_.lifetime.count()));
  desc.serialize(w);
  ++messages_sent_;
  stack_.send(net::Endpoint{da_node_, net::kSlpPort}, net::kSlpPort, w.take());
}

void SlpServiceAgent::schedule_reregister(std::size_t index) {
  const sim::Time delay =
      sim::scale(params_.lifetime, params_.reregister_fraction);
  world_.sim().schedule_in(delay, [this, index,
                                   guard = std::weak_ptr<char>(alive_)] {
    if (guard.expired()) return;
    if (index >= advertised_.size()) return;  // withdrawn
    if (has_da()) register_with_da(advertised_[index]);
    schedule_reregister(index);
  });
}

void SlpServiceAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kDaAdvert: {
      const bool was_new = da_node_ != dg.src.node;
      da_node_ = dg.src.node;
      if (was_new) {
        for (const auto& desc : advertised_) register_with_da(desc);
      }
      return;
    }
    case SlpMsg::kSrvRqst: {
      // DA-less mode: answer multicast requests for matching services.
      const std::uint32_t token = r.u32();
      const ServiceTemplate tmpl = ServiceTemplate::deserialize(r);
      if (!r.ok()) return;
      std::vector<const ServiceDescription*> matches;
      for (const auto& s : advertised_) {
        if (tmpl.matches(s)) matches.push_back(&s);
      }
      if (matches.empty()) return;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRply));
      w.u32(token);
      w.u32(static_cast<std::uint32_t>(matches.size()));
      for (const auto* m : matches) m->serialize(w);
      ++messages_sent_;
      stack_.send(net::Endpoint{dg.src.node, net::kSlpPort}, net::kSlpPort,
                  w.take());
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// SlpUserAgent

SlpUserAgent::SlpUserAgent(sim::World& world, net::NetStack& stack)
    : SlpUserAgent(world, stack, Params{}) {}

SlpUserAgent::SlpUserAgent(sim::World& world, net::NetStack& stack,
                           Params params)
    : world_(world), stack_(stack), params_(params) {
  stack_.bind(net::kSlpPort,
              [this](const net::Datagram& dg) { on_datagram(dg); });
  stack_.join_group(net::kAnnounceGroup);
}

SlpUserAgent::~SlpUserAgent() { stack_.unbind(net::kSlpPort); }

void SlpUserAgent::find(const ServiceTemplate& tmpl, FindResult cb) {
  const std::uint32_t token = next_token_++;
  Pending p;
  p.cb = std::move(cb);
  p.multicast = !has_da();
  pending_[token] = std::move(p);

  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRqst));
  w.u32(token);
  tmpl.serialize(w);
  ++messages_sent_;
  if (has_da()) {
    stack_.send(net::Endpoint{da_node_, net::kSlpPort}, net::kSlpPort,
                w.take());
    // DA replies promptly; time out as a safety net.
    world_.sim().schedule_in(params_.multicast_wait * 3,
                             [this, token, guard = std::weak_ptr<char>(alive_)] {
      if (guard.expired()) return;
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      auto done = std::move(it->second);
      pending_.erase(it);
      if (done.cb) done.cb(std::move(done.gathered));
    });
  } else {
    stack_.send_multicast(net::kDiscoveryGroup, net::kSlpPort, net::kSlpPort,
                          w.take());
    world_.sim().schedule_in(params_.multicast_wait,
                             [this, token, guard = std::weak_ptr<char>(alive_)] {
      if (guard.expired()) return;
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      auto done = std::move(it->second);
      pending_.erase(it);
      if (done.cb) done.cb(std::move(done.gathered));
    });
  }
}

void SlpUserAgent::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<SlpMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case SlpMsg::kDaAdvert:
      da_node_ = dg.src.node;
      return;
    case SlpMsg::kSrvRply: {
      const std::uint32_t token = r.u32();
      const std::uint32_t n = r.u32();
      auto it = pending_.find(token);
      if (it == pending_.end()) return;
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        it->second.gathered.push_back(ServiceDescription::deserialize(r));
      }
      if (!it->second.multicast) {
        // Unicast DA reply is authoritative: complete immediately.
        auto done = std::move(it->second);
        pending_.erase(it);
        if (done.cb) done.cb(std::move(done.gathered));
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace aroma::disco
