#include "disco/service.hpp"

namespace aroma::disco {

void ServiceDescription::serialize(net::ByteWriter& w) const {
  w.u64(id);
  w.str(type);
  w.u64(endpoint.node);
  w.u16(endpoint.port);
  w.u32(static_cast<std::uint32_t>(attributes.size()));
  for (const auto& [k, v] : attributes) {
    w.str(k);
    w.str(v);
  }
}

ServiceDescription ServiceDescription::deserialize(net::ByteReader& r) {
  ServiceDescription s;
  s.id = r.u64();
  s.type = r.str();
  s.endpoint.node = r.u64();
  s.endpoint.port = r.u16();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string k = r.str();
    std::string v = r.str();
    s.attributes.emplace(std::move(k), std::move(v));
  }
  return s;
}

bool ServiceTemplate::matches(const ServiceDescription& s) const {
  if (!type.empty()) {
    if (s.type != type &&
        !(s.type.size() > type.size() && s.type.compare(0, type.size(), type) == 0 &&
          s.type[type.size()] == '/')) {
      return false;
    }
  }
  for (const auto& [k, v] : attributes) {
    auto it = s.attributes.find(k);
    if (it == s.attributes.end() || it->second != v) return false;
  }
  return true;
}

void ServiceTemplate::serialize(net::ByteWriter& w) const {
  w.str(type);
  w.u32(static_cast<std::uint32_t>(attributes.size()));
  for (const auto& [k, v] : attributes) {
    w.str(k);
    w.str(v);
  }
}

ServiceTemplate ServiceTemplate::deserialize(net::ByteReader& r) {
  ServiceTemplate t;
  t.type = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string k = r.str();
    std::string v = r.str();
    t.attributes.emplace(std::move(k), std::move(v));
  }
  return t;
}

}  // namespace aroma::disco
