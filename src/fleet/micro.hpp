// MicroShard — the ~1M-room scale-out unit.
//
// A snap::Room is the full Environment -> Intentional stack: CSMA radios,
// Jini discovery, sessioned services, a live RFB stream. Faithful, but at
// milliseconds of wall time per room a million of them is hours — useless
// for a scale-out sweep. The paper's scale story ("thousands of rooms,
// millions of users") is about breadth, not per-room depth, so the sweep
// needs a unit whose cost is dominated by count.
//
// A MicroShard packs thousands of micro-rooms into one checkpointable
// shard. Each micro-room is a beacon train: a splitmix-derived period and
// phase, an event accumulator folded with sim::mix_hash at every beacon,
// and a horizon shared by the shard. Rooms are mutually independent, so
// events are processed room-major — no heap, no cross-room ordering to get
// wrong — yet the shard exposes the exact contract the fleet needs:
//
//   * run_until/finish with a logical ns clock,
//   * checkpoint/restore through the standard snap container (magic,
//     version, CRC-checked MICR section, time-delta rebasing), always
//     quiescent between run_until calls,
//   * a fingerprint that folds per-room accumulators in room order — the
//     same shard-order-fold discipline as fleet_fingerprint, so restores,
//     migrations, and worker-count changes are bit-detectable.
//
// Determinism: every micro-room's trajectory is a pure function of
// (shard seed, room index). ~8 beacons per room over the horizon keeps a
// 4096-room shard around 32k events — a 256-shard fleet sweeps ~1M rooms
// in seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"
#include "snap/snapshot.hpp"

namespace aroma::fleet {

inline constexpr std::uint32_t kTagMicro = snap::tag4("MICR");

class MicroShard {
 public:
  MicroShard(std::size_t shard_id, std::uint64_t seed, std::uint32_t rooms);

  void run_until(sim::Time t);
  sim::Time now() const { return now_; }

  /// Shared meeting horizon; heterogeneous across shards like snap::Room
  /// (55 s + 10 s * (shard % 5)), so work stealing stays meaningful.
  sim::Time horizon() const { return horizon_; }

  /// Runs every beacon train to the horizon.
  void finish() { run_until(horizon_); }

  std::size_t shard_id() const { return shard_id_; }
  std::uint64_t seed() const { return seed_; }
  std::uint32_t rooms() const { return static_cast<std::uint32_t>(rooms_.size()); }
  std::uint64_t events() const { return events_; }

  snap::SnapshotRegistry& registry() { return registry_; }

  /// Full checkpoint blob at the current instant (always quiescent).
  std::vector<std::uint8_t> checkpoint() const {
    return registry_.save_all(now_);
  }
  /// Allocation-free form: serializes into recycled scratch.
  void checkpoint_into(snap::SaveScratch& scratch) const {
    registry_.save_all_into(now_, scratch);
  }

  /// Overwrites state from a checkpoint blob, resuming at capture + gap.
  void restore(std::span<const std::uint8_t> blob, sim::Time gap);

  /// Folds (accumulator, beacon count) over rooms in room order, chained
  /// from the shard seed — bit-identical however the run was sliced,
  /// checkpointed, or migrated.
  std::uint64_t fingerprint() const;

 private:
  struct Room {
    std::uint64_t acc = 0;        // event digest
    std::int64_t next_ns = 0;     // next beacon instant
    std::int64_t period_ns = 0;   // fixed per room
    std::uint32_t beacons = 0;    // fired so far
  };

  std::size_t shard_id_;
  std::uint64_t seed_;
  sim::Time now_ = sim::Time::zero();
  sim::Time horizon_;
  std::uint64_t events_ = 0;
  std::vector<Room> rooms_;
  snap::SnapshotRegistry registry_;
};

}  // namespace aroma::fleet
