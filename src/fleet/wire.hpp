// The fleet control plane's wire protocol: length-prefixed binary frames
// over a pipe/socketpair between the coordinator and its worker processes.
//
// Framing is deliberately dumb: a little-endian u32 payload length, then the
// payload — u16 message type, u16 flags, type-specific body. Every
// primitive is explicitly little-endian (the same rule src/snap uses), so a
// frame means the same thing on any host; the *handshake* is where
// incompatibilities are rejected — a worker announces its protocol version,
// its snap blob format version, and its native endianness, and the
// coordinator refuses the pairing before a single checkpoint blob is ever
// shipped (a version/endianness mismatch must fail the handshake, not
// surface later as a blob parse error mid-migration).
//
// Forward compatibility: a receiver that does not recognize a frame's type
// skips it when the kIgnorable flag is set and treats it as a protocol
// error otherwise — new optional message kinds can be added without
// breaking old peers.
//
// Channel owns reusable tx/rx scratch buffers: steady-state control-plane
// traffic (heartbeats, checkpoint streams) performs zero heap allocations
// once the buffers have warmed to their high-water capacity (asserted by
// fleet_bench's control-plane allocation gate).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "snap/format.hpp"

namespace aroma::fleet {

/// Any control-plane protocol violation: truncated frame, oversized frame,
/// unknown non-ignorable message type, handshake mismatch, or a body that
/// does not parse.
class FleetError : public std::runtime_error {
 public:
  explicit FleetError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x544c4641u;  // "AFLT"
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Frames larger than this are a protocol error, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Native byte order, as announced in the handshake. Checkpoint payloads
/// are little-endian on the wire regardless, but rejecting a mixed-order
/// pairing up front keeps "blob parsed on the wrong kind of host" out of
/// the failure model entirely.
enum class Endianness : std::uint8_t { kLittle = 1, kBig = 2 };

inline Endianness host_endianness() {
  const std::uint16_t probe = 0x0102;
  return (*reinterpret_cast<const std::uint8_t*>(&probe) == 0x02)
             ? Endianness::kLittle
             : Endianness::kBig;
}

enum class MsgType : std::uint16_t {
  kHello = 1,       // worker -> coord: version/endianness announcement
  kHelloAck = 2,    // coord -> worker: handshake accepted
  kReject = 3,      // coord -> worker: handshake refused (reason string)
  kAssign = 4,      // coord -> worker: own this shard
  kRun = 5,         // coord -> worker: start executing assigned shards
  kCheckpoint = 6,  // worker -> coord: cadenced checkpoint blob for a shard
  kResult = 7,      // worker -> coord: shard finished (fingerprint, metrics)
  kMigrateOut = 8,  // coord -> worker: quiesce shard, emit blob, release it
  kMigrated = 9,    // worker -> coord: the migration blob
  kRestore = 10,    // coord -> worker: adopt shard from blob (or fresh)
  kRestored = 11,   // worker -> coord: shard adopted and resuming
  kHeartbeat = 12,  // worker -> coord: liveness + progress
  kShutdown = 13,   // coord -> worker: finish up and exit
  kBye = 14,        // worker -> coord: clean-exit acknowledgement
  kKill = 15,       // coord -> worker: fault injection (die or hang)
  // Flow control: a worker pauses after streaming a checkpoint until the
  // coordinator acknowledges it. One blob in flight per worker bounds
  // socket buffering, and fault plans keyed on "the Nth checkpoint"
  // (migrations, kills) land deterministically — the shard cannot race
  // ahead of the decision.
  kCheckpointAck = 16,  // coord -> worker
};

/// Frame flag: receivers that do not recognize the type may skip the frame.
inline constexpr std::uint16_t kIgnorable = 1u << 0;

/// Fault-injection modes for kKill.
enum class KillMode : std::uint8_t {
  kExit = 0,  // _exit immediately: coordinator sees EOF
  kHang = 1,  // stop responding, keep the fd open: heartbeat timeout path
};

/// What a shard runs: a full checkpointable Smart Projector room, or a
/// block of micro-rooms (the ~1M-room scale-out unit; see fleet/micro.hpp).
enum class ShardKind : std::uint8_t { kRoom = 0, kMicro = 1 };

// ---------------------------------------------------------------------------
// Body encoding: little-endian primitives into a caller-owned buffer, so
// Channel can reuse one scratch vector for every outgoing frame.

class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u64(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>& out_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return le<std::uint16_t>(); }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(le<std::uint64_t>()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// Zero-copy view into the frame body; valid only until the channel's
  /// next recv call.
  std::span<const std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    need(n);
    const std::span<const std::uint8_t> b = data_.subspan(pos_, n);
    pos_ += static_cast<std::size_t>(n);
    return b;
  }
  void expect_end() const {
    if (pos_ != data_.size()) {
      throw FleetError("frame body has " + std::to_string(data_.size() - pos_) +
                       " unconsumed trailing bytes");
    }
  }

 private:
  template <typename T>
  T le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw FleetError("frame body truncated (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(data_.size() - pos_) +
                       ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Handshake messages.

struct Hello {
  std::uint32_t magic = kWireMagic;
  std::uint16_t protocol = kProtocolVersion;
  std::uint32_t snap_version = snap::kFormatVersion;
  Endianness endianness = host_endianness();
  std::uint32_t pid = 0;

  void encode(WireWriter& w) const {
    w.u32(magic);
    w.u16(protocol);
    w.u32(snap_version);
    w.u8(static_cast<std::uint8_t>(endianness));
    w.u32(pid);
  }
  static Hello decode(WireReader& r) {
    Hello h;
    h.magic = r.u32();
    h.protocol = r.u16();
    h.snap_version = r.u32();
    h.endianness = static_cast<Endianness>(r.u8());
    h.pid = r.u32();
    return h;
  }
};

/// Validates a worker's announcement against this process. Returns an empty
/// string when compatible; otherwise the rejection reason. Version and
/// endianness mismatches are refused HERE — never discovered later when a
/// migrated checkpoint blob fails to parse on the receiving worker.
std::string validate_hello(const Hello& hello);

/// CLOCK_MONOTONIC in nanoseconds. Heartbeat pacing, death detection, and
/// latency measurement only — wall time never feeds simulation state.
std::int64_t monotonic_ns();

/// One shard assignment, as carried by kAssign and kRestore.
struct ShardSpec {
  std::uint64_t shard_id = 0;
  std::uint64_t seed = 0;
  ShardKind kind = ShardKind::kRoom;
  std::uint32_t micro_rooms = 0;     // rooms per shard when kind == kMicro
  std::int64_t cadence_ns = 0;       // 0: no cadenced checkpoints
  bool telemetry = false;

  void encode(WireWriter& w) const {
    w.u64(shard_id);
    w.u64(seed);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(micro_rooms);
    w.i64(cadence_ns);
    w.u8(telemetry ? 1 : 0);
  }
  static ShardSpec decode(WireReader& r) {
    ShardSpec s;
    s.shard_id = r.u64();
    s.seed = r.u64();
    s.kind = static_cast<ShardKind>(r.u8());
    s.micro_rooms = r.u32();
    s.cadence_ns = r.i64();
    s.telemetry = r.u8() != 0;
    return s;
  }
};

// ---------------------------------------------------------------------------
// Channel: framed send/recv over one fd, with reusable scratch buffers.

/// Outcome of a recv attempt.
enum class RecvStatus : std::uint8_t {
  kFrame,    // a complete frame was decoded
  kTimeout,  // nothing arrived within the deadline
  kEof,      // peer closed; any partial frame in flight is reported via
             // partial_bytes() — a mid-frame EOF (worker died while
             // streaming a checkpoint) must never wedge the coordinator
};

struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::uint16_t flags = 0;
  std::span<const std::uint8_t> body;  // valid until the next recv call
};

class Channel {
 public:
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept;

  int fd() const { return fd_; }
  /// Closes the fd early (the destructor also closes it).
  void close();

  /// Frames and writes one message. `body` is appended after the type/flags
  /// header. Returns false when the peer is gone (EPIPE/ECONNRESET —
  /// reported, never raised as SIGPIPE); throws FleetError on any other
  /// write failure.
  bool send(MsgType type, std::uint16_t flags,
            std::span<const std::uint8_t> body);

  /// Convenience: build the body into the reusable tx scratch, then send.
  /// Usage: chan.send(type, [&](WireWriter& w) { ... });
  template <typename Fn>
    requires std::invocable<Fn&, WireWriter&>
  bool send(MsgType type, Fn&& build, std::uint16_t flags = 0) {
    body_scratch_.clear();
    WireWriter w(body_scratch_);
    build(w);
    return send(type, flags, body_scratch_);
  }

  /// Attempts to read one complete frame. timeout_ms < 0 blocks, 0 polls.
  /// Short reads are recovered transparently: partial frames accumulate in
  /// the rx buffer across calls until the length prefix is satisfied.
  RecvStatus recv(Frame& out, int timeout_ms);

  /// Bytes of an incomplete frame buffered when EOF was observed.
  std::size_t partial_bytes() const { return rx_.size() - rx_consumed_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

 private:
  /// Drops consumed bytes once they dominate the buffer, so rx_ capacity
  /// stays at the high-water frame size instead of growing forever.
  void compact();

  int fd_;
  std::vector<std::uint8_t> tx_;            // framed outgoing bytes
  std::vector<std::uint8_t> body_scratch_;  // body under construction
  std::vector<std::uint8_t> rx_;            // raw incoming bytes
  std::size_t rx_consumed_ = 0;             // bytes of rx_ already delivered
  bool eof_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace aroma::fleet
