#include "fleet/worker.hpp"

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/micro.hpp"
#include "fleet/wire.hpp"
#include "obs/telemetry.hpp"
#include "snap/checkpoint.hpp"
#include "snap/room.hpp"

namespace aroma::fleet {

namespace {

/// One shard this worker owns. Exactly one of room/micro is set.
struct Owned {
  ShardSpec spec;
  std::unique_ptr<snap::Room> room;
  std::unique_ptr<snap::CheckpointManager> mgr;
  std::unique_ptr<MicroShard> micro;
  std::uint64_t next_ckpt = 1;  // index of the next cadence point
  bool done = false;

  std::uint64_t events() const {
    return micro ? micro->events() : room->world().sim().executed();
  }
};

Owned make_shard(const ShardSpec& spec) {
  Owned o;
  o.spec = spec;
  if (spec.kind == ShardKind::kMicro) {
    o.micro = std::make_unique<MicroShard>(
        static_cast<std::size_t>(spec.shard_id), spec.seed, spec.micro_rooms);
  } else {
    snap::RoomOptions ropts;
    ropts.telemetry = spec.telemetry;
    o.room = std::make_unique<snap::Room>(
        static_cast<std::size_t>(spec.shard_id), spec.seed, ropts);
    o.room->warmup();
    snap::CheckpointManager::Options copts;
    copts.full_every = 1;  // migration and recovery need restorable blobs
    o.mgr = std::make_unique<snap::CheckpointManager>(o.room->world(),
                                                      o.room->registry(),
                                                      copts);
  }
  return o;
}

/// The next cadence point: setup + k * cadence (cadence_ns == 0: never).
sim::Time next_cadence_point(const Owned& o) {
  if (o.spec.cadence_ns <= 0) return sim::Time::ns(INT64_MAX);
  return sim::Time::ns(snap::Room::setup_time().count() +
                       o.spec.cadence_ns *
                           static_cast<std::int64_t>(o.next_ckpt));
}

sim::Time shard_horizon(const Owned& o) {
  return o.micro ? o.micro->horizon() : o.room->horizon();
}

class Worker {
 public:
  Worker(int fd, const WorkerOptions& options)
      : chan_(fd), options_(options) {}

  int run() {
    if (!handshake()) return rejected_ ? 2 : 1;
    last_hb_ns_ = monotonic_ns();
    while (!shutdown_) {
      if (!drain_messages()) return 1;
      maybe_heartbeat();
      if (running_) run_slice();
    }
    chan_.send(MsgType::kBye, [](WireWriter&) {});
    return 0;
  }

 private:
  bool handshake() {
    const bool sent = chan_.send(MsgType::kHello, [](WireWriter& w) {
      Hello h;
      h.pid = static_cast<std::uint32_t>(::getpid());
      h.encode(w);
    });
    if (!sent) return false;
    Frame f;
    while (true) {
      if (chan_.recv(f, -1) == RecvStatus::kEof) return false;
      if (f.type == MsgType::kHelloAck) return true;
      if (f.type == MsgType::kReject) {
        rejected_ = true;
        return false;
      }
      if (!(f.flags & kIgnorable)) return false;
    }
  }

  /// Drains every queued control frame. Blocks for one heartbeat interval
  /// when there is nothing to run; polls otherwise. False: channel torn.
  bool drain_messages() {
    bool work_pending = running_ && !waiting_ack_;
    if (work_pending) {
      work_pending = false;
      for (const Owned& o : shards_) work_pending |= !o.done;
    }
    int timeout = work_pending ? 0 : options_.heartbeat_interval_ms;
    Frame f;
    while (true) {
      const RecvStatus st = chan_.recv(f, timeout);
      if (st == RecvStatus::kEof) return false;
      if (st == RecvStatus::kTimeout) return true;
      if (!dispatch(f)) return false;
      if (shutdown_) return true;
      timeout = 0;  // keep draining whatever is already queued
    }
  }

  bool dispatch(const Frame& f) {
    switch (f.type) {
      case MsgType::kAssign: {
        WireReader r(f.body);
        const ShardSpec spec = ShardSpec::decode(r);
        r.expect_end();
        shards_.push_back(make_shard(spec));
        return true;
      }
      case MsgType::kRestore:
        return handle_restore(f);
      case MsgType::kRun:
        running_ = true;
        return true;
      case MsgType::kCheckpointAck:
        waiting_ack_ = false;
        return true;
      case MsgType::kMigrateOut:
        return handle_migrate_out(f);
      case MsgType::kShutdown:
        shutdown_ = true;
        return true;
      case MsgType::kKill: {
        WireReader r(f.body);
        const KillMode mode = static_cast<KillMode>(r.u8());
        if (mode == KillMode::kExit) ::_exit(3);
        // Hang: stop participating in the protocol but keep the fd open —
        // the coordinator must detect this through heartbeat silence, not
        // EOF.
        while (true) ::pause();
      }
      default:
        // Forward compatibility: unknown-but-ignorable frames are skipped;
        // an unknown required frame is a protocol error.
        return (f.flags & kIgnorable) != 0;
    }
  }

  bool handle_restore(const Frame& f) {
    WireReader r(f.body);
    const ShardSpec spec = ShardSpec::decode(r);
    const std::int64_t gap_ns = r.i64();
    const bool has_blob = r.u8() != 0;
    const std::span<const std::uint8_t> blob = r.bytes();
    r.expect_end();
    Owned o = make_shard(spec);
    if (has_blob) {
      const sim::Time gap = sim::Time::ns(gap_ns);
      if (o.micro) {
        o.micro->restore(blob, gap);
      } else {
        o.room->restore(blob, gap);
      }
      // Resume the cadence after the capture instant, not from scratch —
      // the checkpoint stream must look the same as if the shard had never
      // moved.
      const sim::Time now = o.micro ? o.micro->now() : o.room->now();
      while (next_cadence_point(o) <= now) ++o.next_ckpt;
    }
    const std::uint64_t shard_id = spec.shard_id;
    shards_.push_back(std::move(o));
    return chan_.send(MsgType::kRestored, [&](WireWriter& w) {
      w.u64(shard_id);
      w.u8(has_blob ? 0 : 1);  // 1: rebuilt fresh (no checkpoint existed)
    });
  }

  bool handle_migrate_out(const Frame& f) {
    WireReader r(f.body);
    const std::uint64_t shard_id = r.u64();
    r.expect_end();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Owned& o = shards_[i];
      if (o.spec.shard_id != shard_id || o.done) continue;
      std::int64_t captured_ns;
      if (o.micro) {
        o.micro->checkpoint_into(scratch_);
        captured_ns = o.micro->now().count();
      } else {
        const snap::Checkpoint ckpt = o.mgr->take_full();
        scratch_.blob = ckpt.blob;  // copy; Room blobs are not gated
        captured_ns = ckpt.captured_at.count();
      }
      const bool ok = chan_.send(MsgType::kMigrated, [&](WireWriter& w) {
        w.u64(shard_id);
        w.i64(captured_ns);
        w.u8(1);
        w.bytes(scratch_.blob);
      });
      shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(i));
      return ok;
    }
    // Unknown or already-finished shard: answer with an empty migration so
    // the coordinator never blocks on a blob that cannot come.
    return chan_.send(MsgType::kMigrated, [&](WireWriter& w) {
      w.u64(shard_id);
      w.i64(0);
      w.u8(0);
      w.bytes({});
    });
  }

  /// Advances one shard by one slice: to its next cadence point (then
  /// streams the checkpoint) or to completion (then reports the result).
  void run_slice() {
    if (waiting_ack_) return;  // one checkpoint in flight per worker
    for (Owned& o : shards_) {
      if (o.done) continue;
      const sim::Time cp = next_cadence_point(o);
      if (cp < shard_horizon(o)) {
        advance_and_checkpoint(o, cp);
      } else {
        finish_shard(o);
      }
      return;  // one slice per drain cycle keeps command latency bounded
    }
  }

  void advance_and_checkpoint(Owned& o, sim::Time cp) {
    std::int64_t captured_ns;
    if (o.micro) {
      o.micro->run_until(cp);
      o.micro->checkpoint_into(scratch_);
      captured_ns = o.micro->now().count();
    } else {
      o.room->run_until(cp);
      const snap::Checkpoint ckpt = o.mgr->take_full();
      scratch_.blob = ckpt.blob;
      captured_ns = ckpt.captured_at.count();
    }
    chan_.send(MsgType::kCheckpoint, [&](WireWriter& w) {
      w.u64(o.spec.shard_id);
      w.i64(captured_ns);
      w.u64(o.next_ckpt);
      w.bytes(scratch_.blob);
    });
    ++o.next_ckpt;
    waiting_ack_ = true;
  }

  void finish_shard(Owned& o) {
    std::uint64_t fp;
    if (o.micro) {
      o.micro->finish();
      fp = o.micro->fingerprint();
    } else {
      o.room->finish();
      fp = o.room->fingerprint();
    }
    const std::uint64_t events = o.events();
    const sim::Time now = o.micro ? o.micro->now() : o.room->now();
    o.done = true;
    chan_.send(MsgType::kResult, [&](WireWriter& w) {
      w.u64(o.spec.shard_id);
      w.u64(fp);
      w.u64(events);
      w.i64(now.count());
      const obs::Telemetry* tel = o.room ? o.room->telemetry() : nullptr;
      if (tel != nullptr) {
        w.u8(1);
        snap::SectionWriter mw(now);
        tel->metrics().save(mw);
        w.bytes(mw.payload());
      } else {
        w.u8(0);
        w.bytes({});
      }
    });
  }

  void maybe_heartbeat() {
    const std::int64_t now = monotonic_ns();
    if (now - last_hb_ns_ <
        static_cast<std::int64_t>(options_.heartbeat_interval_ms) * 1'000'000) {
      return;
    }
    last_hb_ns_ = now;
    std::uint64_t events = 0;
    std::uint32_t done = 0;
    for (const Owned& o : shards_) {
      events += o.events();
      done += o.done ? 1 : 0;
    }
    chan_.send(MsgType::kHeartbeat, [&](WireWriter& w) {
      w.u64(events);
      w.u32(static_cast<std::uint32_t>(shards_.size()));
      w.u32(done);
    });
  }

  Channel chan_;
  WorkerOptions options_;
  std::vector<Owned> shards_;
  snap::SaveScratch scratch_;
  bool running_ = false;
  bool waiting_ack_ = false;
  bool shutdown_ = false;
  bool rejected_ = false;
  std::int64_t last_hb_ns_ = 0;
};

}  // namespace

int worker_main(int fd, const WorkerOptions& options) {
  try {
    return Worker(fd, options).run();
  } catch (const std::exception&) {
    // A worker must never take the whole fleet down with an unwind through
    // main; the coordinator sees EOF and runs recovery.
    return 1;
  }
}

}  // namespace aroma::fleet
