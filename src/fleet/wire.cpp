#include "fleet/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aroma::fleet {

std::int64_t monotonic_ns() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::string validate_hello(const Hello& hello) {
  if (hello.magic != kWireMagic) {
    return "bad wire magic 0x" + std::to_string(hello.magic);
  }
  if (hello.protocol != kProtocolVersion) {
    return "protocol version mismatch: peer=" + std::to_string(hello.protocol) +
           " local=" + std::to_string(kProtocolVersion);
  }
  if (hello.snap_version != snap::kFormatVersion) {
    return "snap format version mismatch: peer=" +
           std::to_string(hello.snap_version) +
           " local=" + std::to_string(snap::kFormatVersion);
  }
  if (hello.endianness != host_endianness()) {
    return "endianness mismatch: checkpoint blobs are not safe to ship "
           "between mixed-order hosts";
  }
  return {};
}

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_),
      tx_(std::move(other.tx_)),
      body_scratch_(std::move(other.body_scratch_)),
      rx_(std::move(other.rx_)),
      rx_consumed_(other.rx_consumed_),
      eof_(other.eof_),
      bytes_sent_(other.bytes_sent_),
      bytes_received_(other.bytes_received_),
      frames_sent_(other.frames_sent_),
      frames_received_(other.frames_received_) {
  other.fd_ = -1;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Channel::send(MsgType type, std::uint16_t flags,
                   std::span<const std::uint8_t> body) {
  if (fd_ < 0) return false;
  const std::uint32_t payload = static_cast<std::uint32_t>(4 + body.size());
  if (payload > kMaxFrameBytes) {
    throw FleetError("outgoing frame exceeds kMaxFrameBytes");
  }
  tx_.clear();
  tx_.reserve(4 + payload);
  for (int i = 0; i < 4; ++i) {
    tx_.push_back(static_cast<std::uint8_t>(payload >> (8 * i)));
  }
  tx_.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(type)));
  tx_.push_back(
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(type) >> 8));
  tx_.push_back(static_cast<std::uint8_t>(flags));
  tx_.push_back(static_cast<std::uint8_t>(flags >> 8));
  tx_.insert(tx_.end(), body.begin(), body.end());

  std::size_t off = 0;
  while (off < tx_.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE. The fd
    // may be a pipe rather than a socket in tests, so fall back to write()
    // when send() reports ENOTSOCK (pipes only raise SIGPIPE, which the
    // spawn layer masks process-wide).
    ssize_t n = ::send(fd_, tx_.data() + off, tx_.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, tx_.data() + off, tx_.size() - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw FleetError(std::string("control-plane send failed: ") +
                       std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_sent_ += tx_.size();
  ++frames_sent_;
  return true;
}

RecvStatus Channel::recv(Frame& out, int timeout_ms) {
  while (true) {
    // Try to decode a complete frame from what is already buffered.
    const std::size_t avail = rx_.size() - rx_consumed_;
    if (avail >= 4) {
      const std::uint8_t* p = rx_.data() + rx_consumed_;
      const std::uint32_t payload = static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24;
      if (payload < 4 || payload > kMaxFrameBytes) {
        throw FleetError("corrupt frame length " + std::to_string(payload));
      }
      if (avail >= 4u + payload) {
        out.type = static_cast<MsgType>(static_cast<std::uint16_t>(p[4]) |
                                        static_cast<std::uint16_t>(p[5]) << 8);
        out.flags = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(p[6]) |
            static_cast<std::uint16_t>(p[7]) << 8);
        out.body = std::span<const std::uint8_t>(p + 8, payload - 4);
        rx_consumed_ += 4u + payload;
        ++frames_received_;
        return RecvStatus::kFrame;
      }
    }
    if (eof_) return RecvStatus::kEof;
    if (fd_ < 0) return RecvStatus::kEof;

    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int pr;
    do {
      pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr < 0) {
      throw FleetError(std::string("control-plane poll failed: ") +
                       std::strerror(errno));
    }
    if (pr == 0) return RecvStatus::kTimeout;

    compact();
    const std::size_t old = rx_.size();
    // Grow in page-ish chunks; capacity stabilizes at the largest frame ever
    // seen, so steady-state traffic stops allocating.
    rx_.resize(old + 16384);
    ssize_t n;
    do {
      n = ::read(fd_, rx_.data() + old, rx_.size() - old);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      rx_.resize(old);
      if (errno == ECONNRESET) {
        eof_ = true;
        continue;
      }
      throw FleetError(std::string("control-plane read failed: ") +
                       std::strerror(errno));
    }
    rx_.resize(old + static_cast<std::size_t>(n));
    bytes_received_ += static_cast<std::uint64_t>(n);
    if (n == 0) eof_ = true;
    // Loop: either a frame is now decodable, more data is needed, or EOF.
  }
}

void Channel::compact() {
  if (rx_consumed_ == 0) return;
  if (rx_consumed_ == rx_.size()) {
    rx_.clear();
    rx_consumed_ = 0;
    return;
  }
  // Keep partial frames in place until consumed bytes dominate; memmove is
  // cheaper than repeated front-erases.
  if (rx_consumed_ >= 4096 && rx_consumed_ * 2 >= rx_.size()) {
    std::memmove(rx_.data(), rx_.data() + rx_consumed_,
                 rx_.size() - rx_consumed_);
    rx_.resize(rx_.size() - rx_consumed_);
    rx_consumed_ = 0;
  }
}

}  // namespace aroma::fleet
