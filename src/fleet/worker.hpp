// The fleet worker: one process, one shard group, one control channel.
//
// worker_main is the whole lifecycle: announce (Hello / await ack), adopt
// shards (kAssign fresh, kRestore from a migrated or recovered blob), run
// them in slices, stream cadenced checkpoints, answer migrations, report
// results, and exit on kShutdown. It is deliberately single-threaded — a
// worker's determinism story is exactly a shard's determinism story, and
// draining control messages between slices bounds command latency by the
// slice length (one checkpoint interval).
//
// Invoked two ways: exec mode (`fleet_bench --fleet-worker <fd>`) and
// entry mode (forked child calls worker_main(fd) directly; tests and the
// in-bench coordinator default).
#pragma once

namespace aroma::fleet {

struct WorkerOptions {
  /// Wall-clock heartbeat period. Liveness only — no simulation behavior
  /// depends on it.
  int heartbeat_interval_ms = 50;
};

/// Runs the worker protocol over `fd` until kShutdown (returns 0), a
/// rejected handshake (returns 2), or a torn control channel (returns 1).
/// kKill fault injection never returns.
int worker_main(int fd, const WorkerOptions& options = {});

}  // namespace aroma::fleet
