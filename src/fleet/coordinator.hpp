// The elastic fleet coordinator: the parent side of the control plane.
//
// run() spawns N worker processes, performs the versioned handshake
// (rejecting protocol/snap-version/endianness mismatches before any blob
// moves), deals shards round-robin, and drives the run to completion while
// servicing a declarative fault plan:
//
//   * migrations — after a shard's Nth streamed checkpoint, quiesce it on
//     its owner (kMigrateOut), carry the blob to another worker (kRestore),
//     and resume; latency (kMigrateOut send -> kRestored ack) lands in the
//     fleet.migration_ns HDR.
//   * a worker kill — fault injection via kKill (clean _exit, detected as
//     EOF, or a hang, detected by the heartbeat watchdog), after which
//     every shard the dead worker owned is restored on a survivor from its
//     last cadenced checkpoint (or rebuilt fresh if none was ever taken:
//     determinism makes both paths bit-exact).
//
// The coordinator never simulates anything itself, so wall-clock use here
// (heartbeat deadlines, latency measurement) cannot perturb results: the
// fleet fingerprint is folded from per-shard fingerprints in shard order
// and is bit-identical to a single-process run whatever the worker count,
// migration schedule, or kill pattern.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/proc.hpp"
#include "fleet/wire.hpp"
#include "lpc/issue.hpp"
#include "obs/metrics.hpp"

namespace aroma::fleet {

/// Migrate `shard_id` away from its owner once its `after_checkpoints`-th
/// cadenced checkpoint has been streamed.
struct MigrationPlan {
  std::uint64_t shard_id = 0;
  std::uint64_t after_checkpoints = 1;
};

/// Kill worker index `worker` once it has streamed `after_checkpoints`
/// checkpoints (across all its shards).
struct KillPlan {
  std::size_t worker = 0;
  std::uint64_t after_checkpoints = 1;
  KillMode mode = KillMode::kExit;
};

struct FleetOptions {
  std::size_t workers = 2;
  std::size_t shards = 8;
  std::uint64_t seed = 42;
  ShardKind kind = ShardKind::kRoom;
  std::uint32_t micro_rooms = 1024;   // rooms per shard when kind == kMicro
  std::int64_t cadence_ns = 0;        // checkpoint cadence (0: none)
  bool telemetry = false;             // Room shards carry obs registries
  int heartbeat_interval_ms = 50;
  /// Silence on a worker's channel for this long is a presumed death.
  int heartbeat_timeout_ms = 2000;
  /// Worker command line (the socketpair fd is appended); empty means
  /// entry-mode fork: the child calls worker_main directly.
  std::vector<std::string> worker_argv;
  std::vector<MigrationPlan> migrations;
  std::optional<KillPlan> kill;
};

struct FleetReport {
  std::uint64_t fleet_fp = 0;
  std::uint64_t total_events = 0;
  std::size_t shards_completed = 0;
  std::size_t lost_shards = 0;        // assigned but never completed
  std::uint64_t migrations = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t checkpoints_streamed = 0;
  std::uint64_t control_bytes = 0;    // both directions, all channels
  std::uint64_t control_frames = 0;
  double recovery_ms = 0.0;           // death detection -> last kRestored
  std::vector<std::uint64_t> shard_fps;  // shard order
};

class Coordinator {
 public:
  explicit Coordinator(FleetOptions options);

  /// Executes the whole fleet run. Throws FleetError when the run cannot
  /// complete (e.g. every worker died).
  FleetReport run();

  /// fleet.migrations / fleet.worker_deaths / fleet.control_bytes counters
  /// and the fleet.migration_ns HDR, all at the resource layer.
  obs::MetricsRegistry& fleet_metrics() { return fleet_metrics_; }

  /// Per-shard obs registries folded in shard order (telemetry runs only);
  /// bit-comparable across worker counts via to_json().
  obs::MetricsRegistry& merged_shard_metrics() { return merged_; }

  /// Issues filed by the heartbeat watchdog, layer-classified through lpc.
  const lpc::IssueLog& issues() const { return issues_; }

 private:
  struct WorkerSlot;
  struct ShardState;
  struct Impl;

  FleetOptions options_;
  obs::MetricsRegistry fleet_metrics_;
  obs::MetricsRegistry merged_;
  lpc::IssueLog issues_;
};

}  // namespace aroma::fleet
