// Worker process lifecycle: spawn, watch, reap.
//
// The coordinator talks to each worker over one AF_UNIX stream socketpair
// (bidirectional, byte-ordered, EOF on peer death — everything the control
// plane needs and nothing it doesn't). Two spawn shapes:
//
//   * exec mode — fork + execv of a worker binary (fleet_bench re-invoked
//     as `--fleet-worker <fd>`): a genuinely separate address space, the
//     production shape benches and CI smokes use.
//   * entry mode — fork only; the child calls a supplied entry function on
//     its end of the socketpair and _exits with its return value. Tests use
//     this: same process image, no dependence on argv[0] being re-runnable.
//
// SIGPIPE is ignored process-wide at first spawn: a worker dying mid-write
// must surface as EPIPE on the channel (a reportable event the coordinator
// turns into recovery), never as a process-killing signal.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "fleet/wire.hpp"

namespace aroma::fleet {

/// The child-side main loop for entry-mode spawns; receives the worker's
/// end of the socketpair, returns the child's exit code.
using WorkerEntry = std::function<int(int fd)>;

class WorkerProcess {
 public:
  /// Exec mode: argv is the worker command line; the socketpair fd number
  /// is appended as the final argument.
  static WorkerProcess spawn(const std::vector<std::string>& argv);
  /// Entry mode: the forked child runs `entry(fd)` directly.
  static WorkerProcess spawn(const WorkerEntry& entry);

  /// Moved-from handles relinquish the child (their destructor must not
  /// reap a process they no longer own).
  WorkerProcess(WorkerProcess&& other) noexcept
      : pid_(other.pid_),
        channel_(std::move(other.channel_)),
        exited_(other.exited_),
        exit_status_(other.exit_status_) {
    other.pid_ = -1;
    other.exited_ = true;
  }
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  /// Reaps the child if still running (SIGKILL + waitpid) — a coordinator
  /// unwinding on error must not leak processes.
  ~WorkerProcess();

  pid_t pid() const { return pid_; }
  Channel& channel() { return channel_; }

  /// Sends `sig` (default SIGKILL) to the child.
  void kill(int sig = 9);

  /// Non-blocking reap. Returns true once the child has been waited.
  bool try_wait();
  /// Blocking reap.
  int wait();

  bool exited() const { return exited_; }
  /// waitpid status (valid once exited()).
  int exit_status() const { return exit_status_; }

 private:
  WorkerProcess(pid_t pid, int fd) : pid_(pid), channel_(fd) {}

  pid_t pid_;
  Channel channel_;
  bool exited_ = false;
  int exit_status_ = 0;
};

}  // namespace aroma::fleet
