#include "fleet/micro.hpp"

#include "sim/random.hpp"

namespace aroma::fleet {

namespace {
// Beacon periods span 200–800 ms, phases span one period: ~8 events per
// room over a 55–95 s horizon's final 50 s of activity.
constexpr std::int64_t kMinPeriodNs = 200'000'000;
constexpr std::int64_t kPeriodSpanNs = 600'000'000;
// Beacon trains start after the fleet-wide setup phase, like snap::Room.
constexpr std::int64_t kStartNs = 45'000'000'000;
}  // namespace

MicroShard::MicroShard(std::size_t shard_id, std::uint64_t seed,
                       std::uint32_t rooms)
    : shard_id_(shard_id),
      seed_(seed),
      horizon_(sim::Time::sec(55.0 + 10.0 * static_cast<double>(shard_id % 5))) {
  rooms_.resize(rooms);
  for (std::uint32_t r = 0; r < rooms; ++r) {
    Room& room = rooms_[r];
    const std::uint64_t h = sim::mix_hash(seed_, r);
    room.period_ns =
        kMinPeriodNs + static_cast<std::int64_t>(h % kPeriodSpanNs);
    room.next_ns = kStartNs + static_cast<std::int64_t>(
                                  sim::mix_hash(h, 1) %
                                  static_cast<std::uint64_t>(room.period_ns));
    room.acc = sim::mix_hash(h, 2);
  }

  registry_.add(
      kTagMicro, "micro",
      [this](snap::SectionWriter& w) {
        // Absolute capture clock first, so restore() can learn the capture
        // instant before constructing the rebased readers (same layout rule
        // as snap::Room's SIM! section).
        w.duration(now_);
        w.u64(events_);
        w.u64(rooms_.size());
        for (const Room& room : rooms_) {
          w.u64(room.acc);
          w.time_delta(sim::Time::ns(room.next_ns));
          w.duration(sim::Time::ns(room.period_ns));
          w.u32(room.beacons);
        }
      },
      [this](snap::SectionReader& r, const snap::RestoreCtx& ctx) {
        (void)r.duration();  // capture clock; already folded into ctx.now
        events_ = r.u64();
        const std::uint64_t n = r.u64();
        if (n != rooms_.size()) {
          throw snap::SnapError("micro shard room count mismatch");
        }
        for (Room& room : rooms_) {
          room.acc = r.u64();
          room.next_ns = r.time_delta().count();
          room.period_ns = r.duration().count();
          room.beacons = r.u32();
        }
        now_ = ctx.now;
      });
}

void MicroShard::run_until(sim::Time t) {
  if (t > horizon_) t = horizon_;
  if (t <= now_) return;
  const std::int64_t until = t.count();
  for (Room& room : rooms_) {
    while (room.next_ns <= until) {
      room.acc = sim::mix_hash(room.acc,
                               static_cast<std::uint64_t>(room.next_ns));
      ++room.beacons;
      ++events_;
      room.next_ns += room.period_ns;
    }
  }
  now_ = t;
}

void MicroShard::restore(std::span<const std::uint8_t> blob, sim::Time gap) {
  const snap::SnapReader reader(blob);
  const snap::Section* micro = reader.find(kTagMicro);
  if (micro == nullptr) {
    throw snap::SnapError("blob has no MICR section");
  }
  // Peek the capture instant (first field) to compute the resume clock.
  snap::SectionReader peek(micro->payload, sim::Time::zero());
  const sim::Time captured = peek.duration();
  snap::RestoreCtx ctx;
  ctx.gap = gap;
  ctx.now = captured + gap;
  registry_.restore_all(reader, ctx);
}

std::uint64_t MicroShard::fingerprint() const {
  std::uint64_t fp = sim::mix_hash(seed_, rooms_.size());
  for (const Room& room : rooms_) {
    fp = sim::mix_hash(fp, room.acc);
    fp = sim::mix_hash(fp, room.beacons);
  }
  return sim::mix_hash(fp, events_);
}

}  // namespace aroma::fleet
