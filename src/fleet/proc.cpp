#include "fleet/proc.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace aroma::fleet {

namespace {

void ignore_sigpipe_once() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

/// Makes the socketpair and forks; returns (pid, parent fd) to the parent
/// and never returns in the child (`child(fd)` must exit).
std::pair<pid_t, int> fork_with_socketpair(
    const std::function<void(int child_fd)>& child) {
  ignore_sigpipe_once();
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw FleetError(std::string("socketpair failed: ") +
                     std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw FleetError(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    child(fds[1]);      // must not return...
    ::_exit(127);       // ...but if it does, fail loudly without unwinding
  }
  ::close(fds[1]);
  return {pid, fds[0]};
}

}  // namespace

WorkerProcess WorkerProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw FleetError("exec-mode spawn needs a non-empty argv");
  }
  const auto [pid, fd] = fork_with_socketpair([&argv](int child_fd) {
    std::vector<std::string> args = argv;
    args.push_back(std::to_string(child_fd));
    std::vector<char*> cargv;
    cargv.reserve(args.size() + 1);
    for (std::string& a : args) cargv.push_back(a.data());
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    // exec failed; nothing sane to do in the forked child but die.
  });
  return WorkerProcess(pid, fd);
}

WorkerProcess WorkerProcess::spawn(const WorkerEntry& entry) {
  const auto [pid, fd] = fork_with_socketpair(
      [&entry](int child_fd) { ::_exit(entry(child_fd)); });
  return WorkerProcess(pid, fd);
}

WorkerProcess::~WorkerProcess() {
  if (pid_ > 0 && !exited_) {
    ::kill(pid_, SIGKILL);
    wait();
  }
}

void WorkerProcess::kill(int sig) {
  if (pid_ > 0 && !exited_) ::kill(pid_, sig);
}

bool WorkerProcess::try_wait() {
  if (exited_) return true;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    exited_ = true;
    exit_status_ = status;
  }
  return exited_;
}

int WorkerProcess::wait() {
  if (!exited_) {
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    exited_ = true;
    exit_status_ = status;
  }
  return exit_status_;
}

}  // namespace aroma::fleet
