#include "fleet/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <string>

#include "fleet/worker.hpp"
#include "sim/fleet.hpp"
#include "snap/format.hpp"

namespace aroma::fleet {

namespace {
constexpr int kPollMs = 20;
constexpr std::int64_t kHandshakeDeadlineNs = 30'000'000'000;  // 30 s
constexpr std::int64_t kShutdownDeadlineNs = 30'000'000'000;
}  // namespace

struct Coordinator::WorkerSlot {
  std::unique_ptr<WorkerProcess> proc;
  bool handshaken = false;
  bool alive = false;   // spawned, not yet known dead
  bool bye = false;     // clean shutdown acknowledged
  bool kill_sent = false;
  bool watchdog_fired = false;
  std::int64_t last_frame_ns = 0;
  std::uint64_t ckpts = 0;  // checkpoints streamed by this worker
  std::uint32_t pid = 0;
};

struct Coordinator::ShardState {
  ShardSpec spec;
  std::size_t owner = 0;
  bool done = false;
  std::uint64_t fp = 0;
  std::uint64_t events = 0;
  std::uint64_t ckpts = 0;  // cadenced checkpoints received
  bool has_blob = false;
  std::vector<std::uint8_t> blob;  // last full checkpoint (recovery source)
  std::int64_t captured_ns = 0;
  // In-flight migration state.
  bool migrating = false;
  std::size_t migrate_target = 0;
  std::int64_t migrate_t0_ns = 0;
  // In-flight recovery state.
  bool recovering = false;
  // Result payload.
  std::vector<std::uint8_t> metrics_payload;
  std::int64_t result_now_ns = 0;
};

Coordinator::Coordinator(FleetOptions options) : options_(std::move(options)) {}

FleetReport Coordinator::run() {
  const FleetOptions& opt = options_;
  if (opt.workers == 0) throw FleetError("fleet needs at least one worker");
  if (opt.shards == 0) throw FleetError("fleet needs at least one shard");

  FleetReport report;
  obs::Counter& c_migrations =
      fleet_metrics_.counter("fleet.migrations", lpc::Layer::kResource);
  obs::Counter& c_deaths =
      fleet_metrics_.counter("fleet.worker_deaths", lpc::Layer::kResource);
  obs::Counter& c_bytes =
      fleet_metrics_.counter("fleet.control_bytes", lpc::Layer::kResource);
  obs::Counter& c_ckpts = fleet_metrics_.counter("fleet.checkpoints_streamed",
                                                 lpc::Layer::kResource);
  obs::Counter& c_watchdog =
      fleet_metrics_.counter("fleet.watchdog_fires", lpc::Layer::kResource);
  obs::HdrHistogram& h_migration =
      fleet_metrics_.hdr("fleet.migration_ns", lpc::Layer::kResource);

  const lpc::IssueClassifier classifier;
  const auto file_issue = [&](std::string description, double severity) {
    lpc::Issue issue;
    issue.description = std::move(description);
    issue.severity = severity;
    issue.entity = "fleet coordinator";
    classifier.assign(issue);
    issues_.add(std::move(issue));
  };

  // -------------------------------------------------------------- spawn
  std::vector<WorkerSlot> workers(opt.workers);
  for (std::size_t w = 0; w < opt.workers; ++w) {
    if (opt.worker_argv.empty()) {
      WorkerOptions wo;
      wo.heartbeat_interval_ms = opt.heartbeat_interval_ms;
      workers[w].proc = std::make_unique<WorkerProcess>(WorkerProcess::spawn(
          [wo](int fd) { return worker_main(fd, wo); }));
    } else {
      workers[w].proc =
          std::make_unique<WorkerProcess>(WorkerProcess::spawn(opt.worker_argv));
    }
    workers[w].alive = true;
    workers[w].last_frame_ns = monotonic_ns();
  }

  std::size_t alive_count = opt.workers;
  const auto mark_dead = [&](std::size_t w) {
    if (!workers[w].alive) return;
    workers[w].alive = false;
    --alive_count;
    workers[w].proc->kill();
    workers[w].proc->wait();
  };

  // ---------------------------------------------------------- handshake
  // Every worker leads with Hello; incompatibility (wire protocol, snap
  // format version, endianness) is rejected here, before any shard or
  // checkpoint blob is entrusted to the peer.
  {
    const std::int64_t deadline = monotonic_ns() + kHandshakeDeadlineNs;
    std::size_t pending = opt.workers;
    while (pending > 0) {
      if (monotonic_ns() > deadline) {
        throw FleetError("worker handshake timed out");
      }
      for (std::size_t w = 0; w < opt.workers; ++w) {
        WorkerSlot& slot = workers[w];
        if (slot.handshaken || !slot.alive) continue;
        Frame f;
        const RecvStatus st = slot.proc->channel().recv(f, kPollMs);
        if (st == RecvStatus::kEof) {
          throw FleetError("worker " + std::to_string(w) +
                           " died before handshake");
        }
        if (st != RecvStatus::kFrame) continue;
        if (f.type != MsgType::kHello) {
          if (f.flags & kIgnorable) continue;
          throw FleetError("worker " + std::to_string(w) +
                           " spoke before Hello");
        }
        WireReader r(f.body);
        const Hello hello = Hello::decode(r);
        r.expect_end();
        const std::string why = validate_hello(hello);
        if (!why.empty()) {
          slot.proc->channel().send(MsgType::kReject,
                                    [&](WireWriter& w2) { w2.str(why); });
          mark_dead(w);
          throw FleetError("worker " + std::to_string(w) +
                           " handshake rejected: " + why);
        }
        slot.proc->channel().send(MsgType::kHelloAck, [](WireWriter&) {});
        slot.handshaken = true;
        slot.pid = hello.pid;
        slot.last_frame_ns = monotonic_ns();
        --pending;
      }
    }
  }

  // ------------------------------------------------------------- assign
  std::vector<ShardState> shards(opt.shards);
  for (std::size_t i = 0; i < opt.shards; ++i) {
    ShardState& s = shards[i];
    s.spec.shard_id = i;
    s.spec.seed = sim::shard_seed(opt.seed, i);
    s.spec.kind = opt.kind;
    s.spec.micro_rooms = opt.micro_rooms;
    s.spec.cadence_ns = opt.cadence_ns;
    s.spec.telemetry = opt.telemetry;
    s.owner = i % opt.workers;
    workers[s.owner].proc->channel().send(
        MsgType::kAssign, [&](WireWriter& w) { s.spec.encode(w); });
  }
  for (std::size_t w = 0; w < opt.workers; ++w) {
    workers[w].proc->channel().send(MsgType::kRun, [](WireWriter&) {});
  }

  // ---------------------------------------------------------- main loop
  std::size_t done_count = 0;
  std::size_t pending_recoveries = 0;
  std::int64_t death_detected_ns = 0;
  std::vector<MigrationPlan> migration_plans = opt.migrations;

  const auto pick_target = [&](std::size_t not_this) -> std::size_t {
    for (std::size_t step = 1; step <= opt.workers; ++step) {
      const std::size_t cand = (not_this + step) % opt.workers;
      if (workers[cand].alive && workers[cand].handshaken) return cand;
    }
    throw FleetError("no live worker available as a migration/recovery "
                     "target");
  };

  const auto send_restore = [&](ShardState& s, std::size_t target) {
    workers[target].proc->channel().send(MsgType::kRestore, [&](WireWriter& w) {
      s.spec.encode(w);
      w.i64(0);  // gap: resume exactly at the capture instant
      w.u8(s.has_blob ? 1 : 0);
      w.bytes(s.blob);
    });
    s.owner = target;
  };

  const auto handle_death = [&](std::size_t w, const std::string& how) {
    WorkerSlot& slot = workers[w];
    if (!slot.alive) return;
    mark_dead(w);
    c_deaths.add();
    ++report.worker_deaths;
    death_detected_ns = monotonic_ns();
    file_issue("fleet worker process " + std::to_string(slot.pid) + " (" +
                   std::to_string(w) + ") presumed dead: " + how +
                   "; restoring its shards from the last streamed "
                   "checkpoint on a surviving worker",
               0.9);
    for (ShardState& s : shards) {
      if (s.done) continue;
      const bool owned = s.owner == w;
      const bool inbound = s.migrating && s.migrate_target == w;
      if (!owned && !inbound) continue;
      s.migrating = false;  // any in-flight migration is void; recover
      s.recovering = true;
      ++pending_recoveries;
      send_restore(s, pick_target(w));
    }
  };

  const auto maybe_trigger_kill = [&](std::size_t w) {
    if (!opt.kill || workers[w].kill_sent) return;
    const KillPlan& plan = *opt.kill;
    if (plan.worker != w || workers[w].ckpts < plan.after_checkpoints) return;
    workers[w].kill_sent = true;
    workers[w].proc->channel().send(MsgType::kKill, [&](WireWriter& wr) {
      wr.u8(static_cast<std::uint8_t>(plan.mode));
    });
  };

  const auto maybe_trigger_migration = [&](ShardState& s) {
    if (s.migrating || s.done) return;
    for (auto it = migration_plans.begin(); it != migration_plans.end(); ++it) {
      if (it->shard_id != s.spec.shard_id || s.ckpts < it->after_checkpoints) {
        continue;
      }
      s.migrating = true;
      s.migrate_target = pick_target(s.owner);
      s.migrate_t0_ns = monotonic_ns();
      workers[s.owner].proc->channel().send(
          MsgType::kMigrateOut,
          [&](WireWriter& w) { w.u64(s.spec.shard_id); });
      migration_plans.erase(it);
      return;
    }
  };

  const auto dispatch = [&](std::size_t w, const Frame& f) {
    WorkerSlot& slot = workers[w];
    switch (f.type) {
      case MsgType::kCheckpoint: {
        WireReader r(f.body);
        const std::uint64_t shard_id = r.u64();
        const std::int64_t captured = r.i64();
        (void)r.u64();  // cadence index (informational)
        const std::span<const std::uint8_t> blob = r.bytes();
        r.expect_end();
        ShardState& s = shards[shard_id];
        s.blob.assign(blob.begin(), blob.end());
        s.has_blob = true;
        s.captured_ns = captured;
        ++s.ckpts;
        ++slot.ckpts;
        c_ckpts.add();
        ++report.checkpoints_streamed;
        maybe_trigger_migration(s);
        maybe_trigger_kill(w);
        // Ack last: any kMigrateOut/kKill injected above reaches the worker
        // before it resumes, so plans keyed on checkpoint counts are
        // deterministic.
        if (slot.alive) {
          slot.proc->channel().send(MsgType::kCheckpointAck,
                                    [&](WireWriter& wr) { wr.u64(shard_id); });
        }
        break;
      }
      case MsgType::kMigrated: {
        WireReader r(f.body);
        const std::uint64_t shard_id = r.u64();
        const std::int64_t captured = r.i64();
        const bool ok = r.u8() != 0;
        const std::span<const std::uint8_t> blob = r.bytes();
        r.expect_end();
        ShardState& s = shards[shard_id];
        if (!ok || !s.migrating) {
          s.migrating = false;
          break;
        }
        s.blob.assign(blob.begin(), blob.end());
        s.has_blob = true;
        s.captured_ns = captured;
        send_restore(s, s.migrate_target);
        break;
      }
      case MsgType::kRestored: {
        WireReader r(f.body);
        const std::uint64_t shard_id = r.u64();
        (void)r.u8();  // fresh flag
        r.expect_end();
        ShardState& s = shards[shard_id];
        if (s.migrating) {
          s.migrating = false;
          const std::uint64_t latency =
              static_cast<std::uint64_t>(monotonic_ns() - s.migrate_t0_ns);
          h_migration.record(latency);
          c_migrations.add();
          ++report.migrations;
        } else if (s.recovering) {
          s.recovering = false;
          --pending_recoveries;
          if (pending_recoveries == 0 && death_detected_ns != 0) {
            report.recovery_ms =
                static_cast<double>(monotonic_ns() - death_detected_ns) / 1e6;
          }
        }
        break;
      }
      case MsgType::kResult: {
        WireReader r(f.body);
        const std::uint64_t shard_id = r.u64();
        ShardState& s = shards[shard_id];
        s.fp = r.u64();
        s.events = r.u64();
        s.result_now_ns = r.i64();
        const bool has_metrics = r.u8() != 0;
        const std::span<const std::uint8_t> metrics = r.bytes();
        r.expect_end();
        if (has_metrics) {
          s.metrics_payload.assign(metrics.begin(), metrics.end());
        }
        if (!s.done) {
          s.done = true;
          ++done_count;
        }
        break;
      }
      case MsgType::kHeartbeat:
        break;  // the frame's arrival is the signal; body is advisory
      case MsgType::kBye:
        slot.bye = true;
        break;
      default:
        if (!(f.flags & kIgnorable)) {
          throw FleetError("coordinator received unknown frame type " +
                           std::to_string(static_cast<int>(f.type)));
        }
    }
  };

  const auto drain_worker = [&](std::size_t w) {
    WorkerSlot& slot = workers[w];
    Frame f;
    while (slot.alive) {
      const RecvStatus st = slot.proc->channel().recv(f, 0);
      if (st == RecvStatus::kTimeout) return;
      if (st == RecvStatus::kEof) {
        handle_death(w, "control channel closed (EOF)");
        return;
      }
      slot.last_frame_ns = monotonic_ns();
      dispatch(w, f);
    }
  };

  const std::int64_t hb_timeout_ns =
      static_cast<std::int64_t>(opt.heartbeat_timeout_ms) * 1'000'000;

  while (done_count < opt.shards || pending_recoveries > 0) {
    if (alive_count == 0) {
      throw FleetError("every worker died before the fleet completed");
    }
    // One poll across all live channels, then per-channel drains.
    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> pfd_worker;
    for (std::size_t w = 0; w < opt.workers; ++w) {
      if (!workers[w].alive) continue;
      struct pollfd p{};
      p.fd = workers[w].proc->channel().fd();
      p.events = POLLIN;
      pfds.push_back(p);
      pfd_worker.push_back(w);
    }
    int pr;
    do {
      pr = ::poll(pfds.data(), pfds.size(), kPollMs);
    } while (pr < 0 && errno == EINTR);
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        drain_worker(pfd_worker[i]);
      }
    }
    // Heartbeat watchdog: silence past the deadline is a presumed death.
    // This is the only path that catches a *hung* worker — the fd stays
    // open, so EOF never comes.
    const std::int64_t now = monotonic_ns();
    for (std::size_t w = 0; w < opt.workers; ++w) {
      WorkerSlot& slot = workers[w];
      if (!slot.alive || now - slot.last_frame_ns < hb_timeout_ns) continue;
      slot.watchdog_fired = true;
      c_watchdog.add();
      file_issue("fleet heartbeat watchdog: worker process " +
                     std::to_string(slot.pid) + " (" + std::to_string(w) +
                     ") silent for " +
                     std::to_string((now - slot.last_frame_ns) / 1'000'000) +
                     " ms on the control plane",
                 0.8);
      handle_death(w, "heartbeat timeout");
    }
  }

  // ----------------------------------------------------------- shutdown
  for (std::size_t w = 0; w < opt.workers; ++w) {
    if (workers[w].alive) {
      workers[w].proc->channel().send(MsgType::kShutdown, [](WireWriter&) {});
    }
  }
  const std::int64_t bye_deadline = monotonic_ns() + kShutdownDeadlineNs;
  for (std::size_t w = 0; w < opt.workers; ++w) {
    WorkerSlot& slot = workers[w];
    while (slot.alive && !slot.bye && monotonic_ns() < bye_deadline) {
      Frame f;
      const RecvStatus st = slot.proc->channel().recv(f, kPollMs);
      if (st == RecvStatus::kEof) break;
      if (st == RecvStatus::kFrame) dispatch(w, f);
    }
    if (slot.alive) {
      slot.alive = false;
      --alive_count;
      slot.proc->wait();
    }
  }

  // ----------------------------------------------------------- finalize
  std::uint64_t bytes = 0, frames = 0;
  for (WorkerSlot& slot : workers) {
    const Channel& chan = slot.proc->channel();
    bytes += chan.bytes_sent() + chan.bytes_received();
    frames += chan.frames_sent() + chan.frames_received();
  }
  c_bytes.add(bytes);
  report.control_bytes = bytes;
  report.control_frames = frames;

  report.shard_fps.reserve(opt.shards);
  for (ShardState& s : shards) {
    report.shard_fps.push_back(s.fp);
    report.total_events += s.events;
    if (!s.done) ++report.lost_shards;
    if (s.done && !s.metrics_payload.empty()) {
      snap::SectionReader r(s.metrics_payload, sim::Time::ns(s.result_now_ns));
      obs::MetricsRegistry shard_metrics;
      shard_metrics.restore(r);
      merged_.merge(shard_metrics);
    }
  }
  report.shards_completed = done_count;
  report.fleet_fp = sim::fleet_fingerprint(report.shard_fps);
  return report;
}

}  // namespace aroma::fleet
