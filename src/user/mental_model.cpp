#include "user/mental_model.hpp"

#include <algorithm>
#include <functional>

namespace aroma::user {

// ---------------------------------------------------------------------------
// Automaton

int Automaton::add_state(std::string name) {
  states_.push_back(std::move(name));
  return static_cast<int>(states_.size()) - 1;
}

int Automaton::find_state(const std::string& name) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Automaton::add_transition(int from, const std::string& action, int to) {
  table_[{from, action}] = to;
  if (std::find(actions_.begin(), actions_.end(), action) == actions_.end()) {
    actions_.push_back(action);
  }
}

int Automaton::next(int from, const std::string& action) const {
  auto it = table_.find({from, action});
  return it != table_.end() ? it->second : from;
}

bool Automaton::defined(int from, const std::string& action) const {
  return table_.find({from, action}) != table_.end();
}

std::vector<std::pair<int, std::string>> Automaton::transitions() const {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(table_.size());
  for (const auto& [key, to] : table_) out.push_back(key);
  return out;
}

// ---------------------------------------------------------------------------
// MentalModel

MentalModel::MentalModel(const Automaton& truth, Automaton prior,
                         double learning_rate)
    : truth_(truth), belief_(std::move(prior)), learning_rate_(learning_rate) {
  // The belief shares the truth's state space; an empty prior starts as
  // all-self-loops over the same states.
  while (belief_.state_count() < truth_.state_count()) {
    belief_.add_state(truth_.state_name(belief_.state_count()));
  }
}

int MentalModel::predict(int state, const std::string& action) const {
  return belief_.next(state, action);
}

bool MentalModel::observe(int state, const std::string& action, int actual,
                          sim::Rng& rng) {
  ++observations_;
  const int predicted = predict(state, action);
  const bool surprise = predicted != actual;
  if (surprise) {
    ++surprises_;
    if (rng.uniform() < learning_rate_) {
      belief_.add_transition(state, action, actual);
    }
  }
  return surprise;
}

double MentalModel::divergence() const {
  const auto pairs = truth_.transitions();
  if (pairs.empty()) return 0.0;
  std::size_t wrong = 0;
  for (const auto& [state, action] : pairs) {
    if (belief_.next(state, action) != truth_.next(state, action)) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(pairs.size());
}

// ---------------------------------------------------------------------------
// Smart Projector machines

namespace {

struct Bits {
  bool vnc;
  bool proj;   // projection session held
  bool live;   // projecting (requires vnc && proj)
  bool ctrl;   // control session held
};

bool valid(const Bits& b) { return !b.live || (b.vnc && b.proj); }

std::string state_name(const Bits& b) {
  std::string s = "v";
  s += b.vnc ? '1' : '0';
  s += 'p';
  s += b.proj ? '1' : '0';
  s += 'j';
  s += b.live ? '1' : '0';
  s += 'c';
  s += b.ctrl ? '1' : '0';
  return s;
}

/// Adds all valid states to `a`; returns index lookup by bits.
std::map<std::string, int> build_states(Automaton& a) {
  std::map<std::string, int> idx;
  for (int v = 0; v < 2; ++v) {
    for (int p = 0; p < 2; ++p) {
      for (int j = 0; j < 2; ++j) {
        for (int c = 0; c < 2; ++c) {
          const Bits b{v != 0, p != 0, j != 0, c != 0};
          if (!valid(b)) continue;
          idx[state_name(b)] = a.add_state(state_name(b));
        }
      }
    }
  }
  return idx;
}

void for_each_state(const std::function<void(const Bits&)>& fn) {
  for (int v = 0; v < 2; ++v) {
    for (int p = 0; p < 2; ++p) {
      for (int j = 0; j < 2; ++j) {
        for (int c = 0; c < 2; ++c) {
          const Bits b{v != 0, p != 0, j != 0, c != 0};
          if (valid(b)) fn(b);
        }
      }
    }
  }
}

}  // namespace

Automaton smart_projector_truth() {
  Automaton a;
  auto idx = build_states(a);
  auto at = [&](const Bits& b) { return idx.at(state_name(b)); };
  for_each_state([&](const Bits& b) {
    const int from = at(b);
    // The real machine, as the prototype behaves.
    if (!b.vnc) a.add_transition(from, "start-vnc", at({true, b.proj, b.live, b.ctrl}));
    if (b.vnc) {
      // Stopping the VNC server kills a live projection.
      a.add_transition(from, "stop-vnc", at({false, b.proj, false, b.ctrl}));
    }
    if (!b.proj) a.add_transition(from, "acquire-projection", at({b.vnc, true, false, b.ctrl}));
    if (b.proj && b.vnc && !b.live) {
      a.add_transition(from, "start-projection", at({b.vnc, true, true, b.ctrl}));
    }
    if (b.live) a.add_transition(from, "stop-projection", at({b.vnc, b.proj, false, b.ctrl}));
    if (b.proj) a.add_transition(from, "release-projection", at({b.vnc, false, false, b.ctrl}));
    if (!b.ctrl) a.add_transition(from, "acquire-control", at({b.vnc, b.proj, b.live, true}));
    if (b.ctrl) {
      a.add_transition(from, "release-control", at({b.vnc, b.proj, b.live, false}));
      a.add_transition(from, "power-on", from);   // defined: commands work
      a.add_transition(from, "power-off", from);
    }
  });
  return a;
}

Automaton smart_projector_naive_prior() {
  Automaton a;
  auto idx = build_states(a);
  auto at = [&](const Bits& b) { return idx.at(state_name(b)); };
  for_each_state([&](const Bits& b) {
    const int from = at(b);
    // What a casual user raised on single-service appliances expects:
    // one "acquire" both reserves and starts projecting, no VNC server is
    // involved, control commands just work, and stopping the projection
    // releases everything.
    if (!b.vnc) a.add_transition(from, "start-vnc", at({true, b.proj, b.live, b.ctrl}));
    if (b.vnc) {
      // Believes stopping the laptop server is harmless to the projection.
      a.add_transition(from, "stop-vnc", at({false, b.proj, b.live && false, b.ctrl}));
    }
    if (!b.proj) {
      // Believes acquire immediately projects (if it can).
      const Bits wish{b.vnc, true, b.vnc, b.ctrl};
      a.add_transition(from, "acquire-projection",
                       at(valid(wish) ? wish : Bits{b.vnc, true, false, b.ctrl}));
    }
    if (b.proj && !b.live && b.vnc) {
      a.add_transition(from, "start-projection", at({b.vnc, true, true, b.ctrl}));
    }
    if (b.live) {
      // Believes stop releases the session too.
      a.add_transition(from, "stop-projection", at({b.vnc, false, false, b.ctrl}));
    }
    // Believes power commands always work, session or not.
    a.add_transition(from, "power-on", from);
    a.add_transition(from, "power-off", from);
    if (b.ctrl) a.add_transition(from, "release-control", at({b.vnc, b.proj, b.live, false}));
    if (!b.ctrl) a.add_transition(from, "acquire-control", at({b.vnc, b.proj, b.live, true}));
  });
  return a;
}

}  // namespace aroma::user
