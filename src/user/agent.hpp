// A simulated human attempting a multi-step procedure.
//
// The agent thinks (time scaled by skill and step difficulty), acts
// (possibly choosing wrongly when its mental model diverges), observes the
// outcome, accumulates frustration on errors and waits, and abandons the
// task when frustration exceeds its tolerance — "if this burden is greater
// than what users are willing to bear in meeting their goals, then the
// system will not be used."
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/world.hpp"
#include "user/faculties.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::user {

/// One step of a procedure, from the user's point of view.
struct ProcedureStep {
  std::string name;
  /// The system-side effect; reports whether the system accepted it.
  std::function<void(std::function<void(bool)> done)> action;
  /// 0 = obvious (matches common metaphors), 1 = deeply unintuitive.
  double conceptual_difficulty = 0.3;
  /// Whether a user error here aborts the whole attempt (vs. retry).
  bool unrecoverable = false;
};

struct TaskOutcome {
  bool success = false;
  bool abandoned = false;        // frustration exceeded tolerance
  std::size_t steps_completed = 0;
  std::uint64_t errors = 0;
  double final_frustration = 0.0;
  sim::Time duration;
};

/// Behavioural parameters of the simulated human.
struct AgentParams {
  sim::Time base_think = sim::Time::sec(3.0);   // per easy step, skilled user
  sim::Time error_recovery = sim::Time::sec(8.0);
  double frustration_per_error = 0.22;
  double frustration_per_minute_waiting = 0.10;
  double frustration_decay_per_step = 0.03;     // success soothes
};

class UserAgent {
 public:
  UserAgent(sim::World& world, std::string name, Faculties faculties);
  UserAgent(sim::World& world, std::string name, Faculties faculties,
            AgentParams params);

  const std::string& name() const { return name_; }
  const Faculties& faculties() const { return faculties_; }
  double frustration() const { return frustration_; }

  /// Attempts the steps in order; `done` fires exactly once. Familiarity
  /// persists across attempts (practice lowers error rates), modelling the
  /// paper's "through training and practice [faculties] can be acquired".
  void attempt(std::vector<ProcedureStep> steps,
               std::function<void(const TaskOutcome&)> done);

  /// Probability this agent errs on a step right now.
  double error_probability(const ProcedureStep& step) const;
  /// Think time for a step right now.
  sim::Time think_time(const ProcedureStep& step) const;

  std::uint64_t total_attempts() const { return attempts_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // A procedure attempt in flight is a chain of scheduled closures holding
  // the run state and the completion callback, so the agent is only
  // checkpointable between attempts. What persists across attempts — the
  // RNG stream, frustration, per-step familiarity — round-trips exactly.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct Run {
    std::vector<ProcedureStep> steps;
    std::size_t index = 0;
    TaskOutcome outcome;
    sim::Time started;
    std::function<void(const TaskOutcome&)> done;
  };
  void run_step(std::shared_ptr<Run> run);
  void finish(std::shared_ptr<Run> run, bool success, bool abandoned);
  double familiarity(const std::string& step_name) const;

  sim::World& world_;
  std::string name_;
  Faculties faculties_;
  AgentParams params_;
  sim::Rng rng_;
  double frustration_ = 0.0;
  std::map<std::string, double> familiarity_;  // step name -> 0..1
  std::uint64_t attempts_ = 0;
  int active_runs_ = 0;  // attempts started but not finished
};

}  // namespace aroma::user
