// User faculties: "a developed skill or ability such as a user's ability to
// speak a particular language, the user's education or even the user's
// temperament (for example, the ability to tolerate frustration)."
//
// The resource layer pairs these with device resources: developers count on
// faculties being present exactly as they count on memory or networking.
#pragma once

#include <string>
#include <vector>

namespace aroma::user {

struct Faculties {
  std::string language = "en";
  double gui_skill = 0.7;              // familiarity with WIMP interfaces
  double domain_knowledge = 0.5;       // projectors and presentations
  double tech_troubleshooting = 0.3;   // "capable of fixing the wireless
                                       //  network, the Linux-based adapter,
                                       //  and the lookup service"
  double patience = 0.5;               // frustration tolerance, 0..1
  double learning_rate = 0.3;          // how fast mental models repair
  double reading_speed_wpm = 200.0;
};

/// What an application implicitly assumes of its users — the paper's
/// "erroneous assumptions about the user" that are costly to fix after a
/// device ships in ROM.
struct FacultyRequirements {
  std::string language = "en";
  double min_gui_skill = 0.3;
  double min_domain_knowledge = 0.2;
  double min_tech_troubleshooting = 0.0;
};

struct FacultyMismatch {
  std::string what;
  double severity;  // 0..1
};

/// All ways `f` falls short of `req` ("user faculties must not be
/// frustrated by the logical resources of the device").
std::vector<FacultyMismatch> check_faculty_fit(const Faculties& f,
                                               const FacultyRequirements& req);

/// Scalar fit in [0,1]: 1 = every assumption holds comfortably.
double faculty_fit(const Faculties& f, const FacultyRequirements& req);

/// Presets spanning the paper's cast: the lab's computer scientists (for
/// whom the prototype's expectations "are not unreasonable") through the
/// casual users for whom they are.
namespace personas {
Faculties computer_scientist();
Faculties office_worker();
Faculties novice();
Faculties non_english_speaker();
Faculties expert_presenter();

/// Preset lookup by identifier ("novice", "office_worker", ...), the hook
/// declarative scenario descriptions resolve persona names through. Returns
/// false (and leaves `out` untouched) for an unknown name.
bool by_name(const std::string& name, Faculties* out);
}  // namespace personas

/// The Smart Projector prototype's implicit requirements, as the paper
/// enumerates them in its resource-layer analysis.
FacultyRequirements smart_projector_prototype_requirements();
/// What a commercial-grade product could reasonably require.
FacultyRequirements commercial_product_requirements();

}  // namespace aroma::user
