#include "user/faculties.hpp"

#include <algorithm>

namespace aroma::user {

std::vector<FacultyMismatch> check_faculty_fit(const Faculties& f,
                                               const FacultyRequirements& req) {
  std::vector<FacultyMismatch> out;
  if (f.language != req.language) {
    out.push_back({"interface language '" + req.language +
                       "' not spoken by user ('" + f.language + "')",
                   0.9});
  }
  if (f.gui_skill < req.min_gui_skill) {
    out.push_back({"GUI skill below what the interface assumes",
                   std::min(1.0, (req.min_gui_skill - f.gui_skill) * 2.0)});
  }
  if (f.domain_knowledge < req.min_domain_knowledge) {
    out.push_back(
        {"missing assumed domain knowledge",
         std::min(1.0, (req.min_domain_knowledge - f.domain_knowledge) * 2.0)});
  }
  if (f.tech_troubleshooting < req.min_tech_troubleshooting) {
    out.push_back({"user expected to diagnose infrastructure failures",
                   std::min(1.0, (req.min_tech_troubleshooting -
                                  f.tech_troubleshooting) *
                                     2.0)});
  }
  return out;
}

double faculty_fit(const Faculties& f, const FacultyRequirements& req) {
  double fit = 1.0;
  for (const auto& m : check_faculty_fit(f, req)) {
    fit -= m.severity * 0.5;
  }
  return std::clamp(fit, 0.0, 1.0);
}

namespace personas {

Faculties computer_scientist() {
  Faculties f;
  f.gui_skill = 0.95;
  f.domain_knowledge = 0.8;
  f.tech_troubleshooting = 0.95;
  f.patience = 0.8;
  f.learning_rate = 0.7;
  return f;
}

Faculties office_worker() {
  Faculties f;
  f.gui_skill = 0.6;
  f.domain_knowledge = 0.5;
  f.tech_troubleshooting = 0.15;
  f.patience = 0.45;
  f.learning_rate = 0.35;
  return f;
}

Faculties novice() {
  Faculties f;
  f.gui_skill = 0.25;
  f.domain_knowledge = 0.2;
  f.tech_troubleshooting = 0.05;
  f.patience = 0.3;
  f.learning_rate = 0.2;
  f.reading_speed_wpm = 150.0;
  return f;
}

Faculties non_english_speaker() {
  Faculties f = office_worker();
  f.language = "fr";
  return f;
}

Faculties expert_presenter() {
  Faculties f;
  f.gui_skill = 0.85;
  f.domain_knowledge = 0.9;
  f.tech_troubleshooting = 0.4;
  f.patience = 0.55;
  f.learning_rate = 0.5;
  return f;
}

bool by_name(const std::string& name, Faculties* out) {
  if (name == "computer_scientist") { *out = computer_scientist(); return true; }
  if (name == "office_worker") { *out = office_worker(); return true; }
  if (name == "novice") { *out = novice(); return true; }
  if (name == "non_english_speaker") { *out = non_english_speaker(); return true; }
  if (name == "expert_presenter") { *out = expert_presenter(); return true; }
  return false;
}

}  // namespace personas

FacultyRequirements smart_projector_prototype_requirements() {
  FacultyRequirements r;
  r.language = "en";
  r.min_gui_skill = 0.5;            // "basic understanding of GUIs"
  r.min_domain_knowledge = 0.4;     // "basic understanding of projectors"
  r.min_tech_troubleshooting = 0.8; // fix the WLAN, adapter, lookup service
  return r;
}

FacultyRequirements commercial_product_requirements() {
  FacultyRequirements r;
  r.language = "en";  // still one language; i18n is listed as future work
  r.min_gui_skill = 0.2;
  r.min_domain_knowledge = 0.1;
  r.min_tech_troubleshooting = 0.0;
  return r;
}

}  // namespace aroma::user
