#include "user/agent.hpp"

#include <algorithm>
#include <memory>

#include "snap/format.hpp"

namespace aroma::user {

UserAgent::UserAgent(sim::World& world, std::string name, Faculties faculties)
    : UserAgent(world, std::move(name), std::move(faculties), AgentParams{}) {}

UserAgent::UserAgent(sim::World& world, std::string name, Faculties faculties,
                     AgentParams params)
    : world_(world), name_(std::move(name)), faculties_(std::move(faculties)),
      params_(params),
      rng_(world.fork_rng(0xa6e47 ^ std::hash<std::string>{}(name_))) {}

double UserAgent::familiarity(const std::string& step_name) const {
  auto it = familiarity_.find(step_name);
  return it != familiarity_.end() ? it->second : 0.0;
}

double UserAgent::error_probability(const ProcedureStep& step) const {
  // Difficulty raises errors; GUI skill, domain knowledge, and practice
  // lower them. A fully familiar step is nearly error-free.
  const double skill =
      0.5 * faculties_.gui_skill + 0.5 * faculties_.domain_knowledge;
  const double fam = familiarity(step.name);
  const double p =
      step.conceptual_difficulty * (1.0 - 0.7 * skill) * (1.0 - 0.8 * fam);
  return std::clamp(p, 0.005, 0.95);
}

sim::Time UserAgent::think_time(const ProcedureStep& step) const {
  const double skill =
      0.5 * faculties_.gui_skill + 0.5 * faculties_.domain_knowledge;
  const double fam = familiarity(step.name);
  const double factor = (1.0 + 2.5 * step.conceptual_difficulty) *
                        (1.6 - skill) * (1.0 - 0.6 * fam);
  return sim::scale(params_.base_think, std::max(factor, 0.15));
}

void UserAgent::attempt(std::vector<ProcedureStep> steps,
                        std::function<void(const TaskOutcome&)> done) {
  ++attempts_;
  ++active_runs_;
  auto run = std::make_shared<Run>();
  run->steps = std::move(steps);
  run->started = world_.now();
  run->done = std::move(done);
  run_step(std::move(run));
}

void UserAgent::finish(std::shared_ptr<Run> run, bool success,
                       bool abandoned) {
  run->outcome.success = success;
  run->outcome.abandoned = abandoned;
  run->outcome.duration = world_.now() - run->started;
  run->outcome.final_frustration = frustration_;
  --active_runs_;
  if (run->done) run->done(run->outcome);
}

void UserAgent::run_step(std::shared_ptr<Run> run) {
  if (run->index >= run->steps.size()) {
    finish(std::move(run), /*success=*/true, /*abandoned=*/false);
    return;
  }
  if (frustration_ > faculties_.patience) {
    finish(std::move(run), /*success=*/false, /*abandoned=*/true);
    return;
  }
  const ProcedureStep& step = run->steps[run->index];
  const sim::Time think = think_time(step);
  frustration_ += params_.frustration_per_minute_waiting *
                  (think.seconds() / 60.0);

  world_.sim().schedule_in(think, [this, run = std::move(run)]() mutable {
    ProcedureStep& step = run->steps[run->index];
    const bool user_errs = rng_.bernoulli(error_probability(step));
    if (user_errs) {
      ++run->outcome.errors;
      frustration_ += params_.frustration_per_error *
                      (1.0 + step.conceptual_difficulty);
      // Errors teach: familiarity grows through failure analysis too.
      familiarity_[step.name] = std::min(
          1.0, familiarity(step.name) + 0.5 * faculties_.learning_rate);
      if (step.unrecoverable) {
        finish(std::move(run), /*success=*/false, /*abandoned=*/false);
        return;
      }
      // Recover, then retry the same step.
      world_.sim().schedule_in(params_.error_recovery,
                               [this, run = std::move(run)]() mutable {
                                 run_step(std::move(run));
                               });
      return;
    }
    // Execute the real system action.
    auto after = [this, run = std::move(run)](bool system_ok) mutable {
      ProcedureStep& step = run->steps[run->index];
      if (!system_ok) {
        ++run->outcome.errors;
        frustration_ += params_.frustration_per_error;
        // A system refusal is confusing in proportion to difficulty; a
        // troubleshooting-capable user turns it into familiarity.
        familiarity_[step.name] =
            std::min(1.0, familiarity(step.name) +
                              0.5 * faculties_.tech_troubleshooting);
        world_.sim().schedule_in(params_.error_recovery,
                                 [this, run = std::move(run)]() mutable {
                                   run_step(std::move(run));
                                 });
        return;
      }
      familiarity_[step.name] =
          std::min(1.0, familiarity(step.name) + faculties_.learning_rate);
      frustration_ =
          std::max(0.0, frustration_ - params_.frustration_decay_per_step);
      ++run->outcome.steps_completed;
      ++run->index;
      run_step(std::move(run));
    };
    if (step.action) {
      step.action(std::move(after));
    } else {
      after(true);
    }
  });
}

bool UserAgent::snap_quiescent(std::string* why) const {
  if (active_runs_ != 0) {
    if (why) *why = "procedure attempt in flight";
    return false;
  }
  return true;
}

void UserAgent::save(snap::SectionWriter& w) const {
  const sim::Rng::State st = rng_.state();
  for (int i = 0; i < 4; ++i) w.u64(st.s[i]);
  w.f64(st.cached_normal);
  w.b(st.has_cached_normal);
  w.f64(frustration_);
  w.u64(attempts_);
  w.u64(familiarity_.size());
  for (const auto& [step, fam] : familiarity_) {
    w.str(step);
    w.f64(fam);
  }
}

void UserAgent::restore(snap::SectionReader& r) {
  sim::Rng::State st;
  for (int i = 0; i < 4; ++i) st.s[i] = r.u64();
  st.cached_normal = r.f64();
  st.has_cached_normal = r.b();
  rng_.set_state(st);
  frustration_ = r.f64();
  attempts_ = r.u64();
  familiarity_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string step = r.str();
    familiarity_[step] = r.f64();
  }
  active_runs_ = 0;
}

}  // namespace aroma::user
