// The intentional layer: user goals vs. design purpose.
//
// "We believe that the probability of success is greatly enhanced when a
// system's design is in harmony with the user's goals." Harmony here is a
// measurable overlap between what the user wants and what the design
// actually supports, and it feeds an adoption model that reproduces the
// paper's claim that technically superior products fail on low harmony.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace aroma::user {

/// One user goal with a relative importance weight.
struct Goal {
  std::string name;
  double importance = 1.0;
};

/// The designed purpose of a device: the degree (0..1) to which the design
/// supports each named goal. Unlisted goals are unsupported (0).
struct DesignPurpose {
  std::string name;
  std::map<std::string, double> supports;

  double support_for(const std::string& goal) const;
};

/// Importance-weighted harmony in [0,1] between goals and purpose.
double harmony(const std::vector<Goal>& goals, const DesignPurpose& purpose);

/// Logistic adoption model: probability a user adopts (keeps using) a
/// system given intentional harmony, normalized conceptual burden
/// (0 = trivial, 1 = overwhelming), and resource-layer faculty fit.
struct AdoptionModel {
  double slope = 6.0;
  double harmony_weight = 1.0;
  double burden_weight = 0.6;
  double fit_weight = 0.5;
  double threshold = 0.55;  // net score at which adoption odds are even

  double probability(double harmony_score, double burden, double fit) const;
};

/// The paper's Smart Projector cast: goals of a presenter, and the two
/// design purposes discussed in the intentional-layer analysis — the
/// honest research-prototype purpose and a hypothetical commercial one.
std::vector<Goal> presenter_goals();
std::vector<Goal> researcher_goals();
DesignPurpose research_prototype_purpose();
DesignPurpose commercial_product_purpose();

}  // namespace aroma::user
