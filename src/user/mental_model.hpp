// Mental models vs. software state: the abstract layer's consistency
// constraint made executable.
//
// Both the application's true behaviour and the user's belief about it are
// deterministic finite automata over named actions. The divergence between
// them predicts surprises; observations repair the belief at a rate set by
// the user's learning faculty. "The key issue that must be addressed in
// this layer is maintaining consistency between the user's reasoning and
// expectations and the logic and state of the application."
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace aroma::user {

/// Deterministic finite automaton with named states and actions. Undefined
/// (state, action) pairs are self-loops ("nothing happens").
class Automaton {
 public:
  int add_state(std::string name);
  int state_count() const { return static_cast<int>(states_.size()); }
  const std::string& state_name(int s) const { return states_[static_cast<std::size_t>(s)]; }
  int find_state(const std::string& name) const;

  void add_transition(int from, const std::string& action, int to);
  /// Next state; self-loop when undefined.
  int next(int from, const std::string& action) const;
  bool defined(int from, const std::string& action) const;

  /// All (state, action) pairs with explicit transitions.
  std::vector<std::pair<int, std::string>> transitions() const;
  const std::vector<std::string>& actions() const { return actions_; }

 private:
  std::vector<std::string> states_;
  std::vector<std::string> actions_;
  std::map<std::pair<int, std::string>, int> table_;
};

/// A user's evolving belief about a system automaton.
class MentalModel {
 public:
  /// `truth` must outlive the model. The initial belief is `prior` (what
  /// the user transfers from devices they already know); pass the truth
  /// itself for an expert, an empty automaton for a blank slate.
  MentalModel(const Automaton& truth, Automaton prior, double learning_rate);

  /// The state the user *believes* the system would reach.
  int predict(int state, const std::string& action) const;

  /// Records an observed transition; with probability `learning_rate` the
  /// belief entry is corrected. Returns true when the observation was a
  /// surprise (prediction != actual).
  bool observe(int state, const std::string& action, int actual,
               sim::Rng& rng);

  /// Fraction of the truth's explicit transitions the belief gets wrong.
  double divergence() const;

  /// Read-only view of the current belief automaton (what planning and
  /// prediction run against).
  const Automaton& belief_view() const { return belief_; }

  std::uint64_t surprises() const { return surprises_; }
  std::uint64_t observations() const { return observations_; }

 private:
  const Automaton& truth_;
  Automaton belief_;
  double learning_rate_;
  std::uint64_t surprises_ = 0;
  std::uint64_t observations_ = 0;
};

/// Builds the true automaton of the two-service Smart Projector prototype:
/// states track (vnc server running, projection session, projecting,
/// control session); actions are the user-visible operations. This is the
/// machine the paper's walkthrough describes in prose.
Automaton smart_projector_truth();

/// A plausible naive prior: the user believes one "connect" suffices and
/// that closing the laptop lid releases everything — i.e. the single-
/// service mental model the paper warns the prototype violates.
Automaton smart_projector_naive_prior();

}  // namespace aroma::user
