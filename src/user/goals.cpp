#include "user/goals.hpp"

#include <algorithm>
#include <cmath>

namespace aroma::user {

double DesignPurpose::support_for(const std::string& goal) const {
  auto it = supports.find(goal);
  return it != supports.end() ? it->second : 0.0;
}

double harmony(const std::vector<Goal>& goals, const DesignPurpose& purpose) {
  double total = 0.0;
  double weighted = 0.0;
  for (const auto& g : goals) {
    total += g.importance;
    weighted += g.importance * std::clamp(purpose.support_for(g.name), 0.0, 1.0);
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double AdoptionModel::probability(double harmony_score, double burden,
                                  double fit) const {
  const double net = harmony_weight * harmony_score - burden_weight * burden +
                     fit_weight * fit;
  return 1.0 / (1.0 + std::exp(-slope * (net - threshold)));
}

std::vector<Goal> presenter_goals() {
  return {
      {"present-slides", 1.0},
      {"no-configuration", 0.7},  // "does not necessarily want to perform
                                  //  unnecessary system interconnection"
      {"move-freely", 0.3},
      {"quick-start", 0.6},
  };
}

std::vector<Goal> researcher_goals() {
  return {
      {"measure-discovery", 1.0},
      {"demonstrate-infrastructure", 0.9},
      {"present-slides", 0.4},
  };
}

DesignPurpose research_prototype_purpose() {
  DesignPurpose p;
  p.name = "smart-projector-prototype";
  p.supports = {
      {"measure-discovery", 0.95},
      {"demonstrate-infrastructure", 0.9},
      {"present-slides", 0.6},
      {"no-configuration", 0.2},   // two clients, VNC server, lookup service
      {"quick-start", 0.25},
      {"move-freely", 0.1},        // tied to the laptop
  };
  return p;
}

DesignPurpose commercial_product_purpose() {
  DesignPurpose p;
  p.name = "smart-projector-commercial";
  p.supports = {
      {"present-slides", 0.95},
      {"no-configuration", 0.85},
      {"quick-start", 0.9},
      {"move-freely", 0.5},
      {"measure-discovery", 0.05},
      {"demonstrate-infrastructure", 0.05},
  };
  return p;
}

}  // namespace aroma::user
