// Goal-directed behaviour driven by a (possibly wrong) mental model.
//
// The user plans a path to their goal over the automaton they *believe*
// the system to be, executes the first step against the machine the system
// *actually* is, observes, repairs the belief, and replans on surprises.
// With an accurate model this collapses to shortest-path execution; with
// the naive prior it reproduces the paper's observation that "for too many
// users, using software becomes a mental exercise similar to debugging."
#pragma once

#include <string>
#include <vector>

#include "sim/random.hpp"
#include "user/mental_model.hpp"

namespace aroma::user {

/// Shortest action sequence from `from` to `goal` in `model`, using only
/// the model's explicitly defined transitions (a user does not plan with
/// "maybe nothing happens"). Empty when the goal seems unreachable —
/// which, for a belief, may simply be wrong.
std::vector<std::string> plan(const Automaton& model, int from, int goal);

struct PlanExecutionOutcome {
  bool reached = false;
  int actions_taken = 0;
  int surprises = 0;       // observed next-state differed from prediction
  int replans = 0;         // plans abandoned mid-way
  bool gave_up_no_plan = false;  // belief claimed the goal unreachable
};

/// Runs the plan-act-observe-repair loop against the true machine.
///
/// `belief` is updated in place (its learning rate governs repair).
/// Exploration: when the belief offers no plan, the agent tries
/// `exploration_budget` random defined-in-truth actions hoping to stumble
/// onto new knowledge, as users do, before giving up.
PlanExecutionOutcome execute_towards(const Automaton& truth,
                                     MentalModel& belief, int start,
                                     int goal, sim::Rng& rng,
                                     int max_actions = 60,
                                     int exploration_budget = 6);

}  // namespace aroma::user
