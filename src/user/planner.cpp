#include "user/planner.hpp"

#include <deque>
#include <map>

namespace aroma::user {

std::vector<std::string> plan(const Automaton& model, int from, int goal) {
  if (from == goal) return {};
  // BFS over defined transitions.
  std::map<int, std::pair<int, std::string>> parent;  // state -> (prev, act)
  std::deque<int> frontier{from};
  parent[from] = {from, ""};
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    for (const std::string& action : model.actions()) {
      if (!model.defined(s, action)) continue;
      const int next = model.next(s, action);
      if (parent.count(next)) continue;
      parent[next] = {s, action};
      if (next == goal) {
        std::vector<std::string> path;
        for (int cur = goal; cur != from;) {
          const auto& [prev, act] = parent[cur];
          path.push_back(act);
          cur = prev;
        }
        return {path.rbegin(), path.rend()};
      }
      frontier.push_back(next);
    }
  }
  return {};
}

PlanExecutionOutcome execute_towards(const Automaton& truth,
                                     MentalModel& belief, int start,
                                     int goal, sim::Rng& rng,
                                     int max_actions,
                                     int exploration_budget) {
  PlanExecutionOutcome out;
  int state = start;
  int explored = 0;
  std::vector<std::string> current_plan =
      plan(belief.belief_view(), state, goal);
  std::size_t step = 0;

  while (out.actions_taken < max_actions) {
    if (state == goal) {
      out.reached = true;
      return out;
    }
    std::string action;
    if (step < current_plan.size()) {
      action = current_plan[step];
    } else {
      // The plan ran dry without reaching the goal (or none existed):
      // replan from where we actually are.
      auto fresh = plan(belief.belief_view(), state, goal);
      if (!fresh.empty()) {
        current_plan = std::move(fresh);
        step = 0;
        ++out.replans;
        continue;
      }
      // Belief says unreachable: poke at the system like a confused user.
      if (explored >= exploration_budget) {
        out.gave_up_no_plan = true;
        return out;
      }
      ++explored;
      const auto& actions = truth.actions();
      action = actions[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(actions.size()) - 1))];
    }

    const int predicted = belief.predict(state, action);
    const int actual = truth.next(state, action);
    const bool surprise = belief.observe(state, action, actual, rng);
    ++out.actions_taken;
    ++step;
    state = actual;
    if (surprise) {
      ++out.surprises;
      (void)predicted;
      // Reality disagreed: the rest of the plan rests on a false premise.
      current_plan = plan(belief.belief_view(), state, goal);
      step = 0;
      ++out.replans;
    }
  }
  out.reached = state == goal;
  return out;
}

}  // namespace aroma::user
