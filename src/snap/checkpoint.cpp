#include "snap/checkpoint.hpp"

#include <string>
#include <utility>

#include "lpc/layers.hpp"
#include "obs/metrics.hpp"

namespace aroma::snap {
namespace {

void bump(sim::World& world, std::string_view name, std::uint64_t delta) {
  if (obs::Counter* c = obs::counter(world, name, lpc::Layer::kPhysical)) {
    c->add(delta);
  }
}

}  // namespace

CheckpointManager::CheckpointManager(sim::World& world,
                                     SnapshotRegistry& registry,
                                     Options options)
    : world_(world), registry_(registry), options_(options) {}

void CheckpointManager::wait_for_quiescence() {
  const sim::Time start = world_.now();
  const sim::Time give_up = start + options_.max_defer;
  std::string why;
  while (!registry_.quiescent(&why)) {
    if (world_.now() >= give_up) {
      throw SnapError("quiescence not reached within max_defer: " + why);
    }
    world_.sim().run_until(world_.now() + options_.defer_step);
    ++stats_.deferral_steps;
  }
  stats_.deferral_time = stats_.deferral_time + (world_.now() - start);
}

Checkpoint CheckpointManager::take() {
  const bool full = last_id_ == 0 || options_.full_every <= 1 ||
                    (next_id_ - 1) % options_.full_every == 0;
  return full ? take_full() : take_incremental();
}

Checkpoint CheckpointManager::take_full() {
  wait_for_quiescence();
  std::vector<Section> sections = registry_.save_sections(world_.now());

  Checkpoint cp;
  cp.id = next_id_++;
  cp.base = 0;
  cp.captured_at = world_.now();

  SnapWriter w;
  last_payloads_.clear();
  for (Section& s : sections) {
    last_payloads_[s.tag] = s.payload;
    w.add(s.tag, s.flags, std::move(s.payload));
  }
  cp.blob = w.finish();

  ++stats_.full_taken;
  stats_.bytes_written += cp.blob.size();
  stats_.full_bytes += cp.blob.size();
  last_id_ = cp.id;
  bump(world_, "snap.checkpoints.full", 1);
  bump(world_, "snap.bytes_written", cp.blob.size());
  return cp;
}

Checkpoint CheckpointManager::take_incremental() {
  wait_for_quiescence();
  std::vector<Section> sections = registry_.save_sections(world_.now());

  Checkpoint cp;
  cp.id = next_id_++;
  cp.base = last_id_;
  cp.captured_at = world_.now();

  SnapWriter w;
  for (Section& s : sections) {
    auto it = last_payloads_.find(s.tag);
    const bool changed = it == last_payloads_.end() || it->second != s.payload;
    last_payloads_[s.tag] = s.payload;
    if (changed) w.add(s.tag, s.flags, std::move(s.payload));
  }
  cp.blob = w.finish();

  ++stats_.incremental_taken;
  stats_.bytes_written += cp.blob.size();
  stats_.incremental_bytes += cp.blob.size();
  last_id_ = cp.id;
  bump(world_, "snap.checkpoints.incremental", 1);
  bump(world_, "snap.bytes_written", cp.blob.size());
  return cp;
}

std::vector<std::uint8_t> CheckpointManager::materialize(
    std::span<const std::uint8_t> base,
    std::span<const std::uint8_t> incremental) {
  const SnapReader base_r(base);
  const SnapReader incr_r(incremental);
  SnapWriter w;
  for (const Section& s : base_r.sections()) {
    const Section* updated = incr_r.find(s.tag);
    const Section& pick = updated ? *updated : s;
    w.add(pick.tag, pick.flags, pick.payload);
  }
  // A section absent from the base can only appear if the registry grew
  // between the two captures; preserve it so restore still sees it.
  for (const Section& s : incr_r.sections()) {
    if (base_r.find(s.tag) == nullptr) w.add(s.tag, s.flags, s.payload);
  }
  return w.finish();
}

}  // namespace aroma::snap
