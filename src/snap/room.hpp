// snap::Room — the checkpointable Smart Projector room.
//
// This is the fleet's unit of work (bench/fleet_bench.cpp's run_room) grown
// into a durable object: the same heterogeneous shard — CSMA radios under
// contention, Jini discovery, both sessioned projector services, a live RFB
// stream, and a presenter running the documented procedure — but with every
// stateful core registered in a SnapshotRegistry so the whole world can be
// checkpointed at a quiescent instant and restored bit-exactly later, on a
// different worker, under a different worker count.
//
// The restore contract is structural-rebuild + logical-overwrite:
//   1. construct a Room with the same (shard_id, seed),
//   2. warmup() — replays the setup phase to the meeting start, rebuilding
//      every handler, binding, and stream connection the checkpointed run
//      had (this is what makes C++ closures serializable-by-proxy),
//   3. restore(blob, gap) — drops the warmup's pending events, overwrites
//      all logical state from the blob's sections, and re-arms the saved
//      pending events with their original (when, seq, id) identities.
// A zero gap resumes the captured run bit-for-bit (same fingerprint, same
// executed-event stream); a positive gap shifts every deadline uniformly
// (the lease-rebasing rule).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "app/projector.hpp"
#include "disco/jini.hpp"
#include "env/environment.hpp"
#include "net/stack.hpp"
#include "phys/device.hpp"
#include "rfb/workload.hpp"
#include "sim/world.hpp"
#include "snap/snapshot.hpp"
#include "user/agent.hpp"

namespace aroma::obs {
class Telemetry;
}  // namespace aroma::obs

namespace aroma::snap {

/// Section tags, in registration (= restore) order.
inline constexpr std::uint32_t kTagSim = tag4("SIM!");
inline constexpr std::uint32_t kTagRoom = tag4("ROOM");
inline constexpr std::uint32_t kTagMedium = tag4("MEDM");
inline constexpr std::uint32_t kTagPhys = tag4("PHYS");
inline constexpr std::uint32_t kTagNet = tag4("NETS");
inline constexpr std::uint32_t kTagStream = tag4("STRM");
inline constexpr std::uint32_t kTagDisco = tag4("DISC");
inline constexpr std::uint32_t kTagSession = tag4("SESS");
inline constexpr std::uint32_t kTagRfb = tag4("RFBC");
inline constexpr std::uint32_t kTagPixels = tag4("PIXL");
inline constexpr std::uint32_t kTagUser = tag4("USER");
inline constexpr std::uint32_t kTagMetrics = tag4("OBSM");
inline constexpr std::uint32_t kTagSpans = tag4("OBSS");

struct RoomOptions {
  bool use_arena = true;
  /// Attach a MetricsRegistry + SpanTracer to the world (checkpointed into
  /// the optional OBSM/OBSS sections).
  bool telemetry = false;
};

class Room {
 public:
  Room(std::size_t shard_id, std::uint64_t seed, RoomOptions options = {});
  ~Room();
  Room(const Room&) = delete;
  Room& operator=(const Room&) = delete;

  /// Replays the setup phase: component construction in fleet_bench's exact
  /// order, service export, the presenter's four-step procedure, then the
  /// meeting timers (slide flips + contention pingers). Leaves the clock at
  /// the first quiescent instant at or after the meeting start
  /// (setup_time()) — the structural settle point; every checkpoint is
  /// taken at a quiescent instant no earlier than this, so all structure a
  /// blob references exists after warmup. Must be called exactly once,
  /// before run_until/checkpoint/restore.
  void warmup();

  void run_until(sim::Time t);
  sim::Time now() const;

  /// The meeting start (end of the setup phase): 45 s, matching
  /// bench/fleet_bench.cpp.
  static sim::Time setup_time() { return sim::Time::sec(45.0); }
  /// Meeting end for this shard (heterogeneous: longer with more extras).
  sim::Time horizon() const;
  /// Horizon plus the drain tail; running to here reproduces run_room.
  sim::Time end_time() const;

  /// Runs the meeting to its horizon, stops the meeting timers, and drains
  /// the 2 s tail — the exact shutdown sequence of fleet_bench's run_room,
  /// so fingerprints are comparable whether or not a restore happened
  /// in between.
  void finish();

  std::size_t shard_id() const { return shard_id_; }
  std::uint64_t seed() const { return seed_; }

  SnapshotRegistry& registry() { return registry_; }
  sim::World& world() { return *world_; }
  obs::Telemetry* telemetry() { return telemetry_.get(); }
  /// The room's radio environment (fault injection targets the medium).
  env::Environment& environment() { return *env_; }

  /// True when every registered core is at a quiescent point (no in-flight
  /// frames, no RTO pending, no encode in progress, no exchange awaiting a
  /// reply, no procedure attempt mid-step).
  bool quiescent(std::string* why = nullptr) const {
    return registry_.quiescent(why);
  }

  /// Serializes the full checkpoint blob at the current instant. Throws
  /// SnapError when not quiescent — use snap::CheckpointManager to defer to
  /// a quiescent point deterministically.
  std::vector<std::uint8_t> checkpoint();

  /// Overwrites this (warmed-up) room's state from a full checkpoint blob,
  /// resuming at capture-instant + gap. Throws SnapError on any structural
  /// problem (and counts it in snap.restore_errors when telemetry is on);
  /// the room must be considered poisoned after a failed restore.
  void restore(std::span<const std::uint8_t> blob, sim::Time gap);

  /// The run's behavioral digest — the identical mix_hash chain
  /// bench/fleet_bench.cpp computes, so fleet-level fingerprints from
  /// checkpointed rooms compare directly against uninterrupted ones.
  std::uint64_t fingerprint() const;

  /// Restores performed on this room (diagnostics).
  std::uint64_t restores() const { return restores_; }

 private:
  void register_sections();

  std::size_t shard_id_;
  std::uint64_t seed_;
  RoomOptions options_;
  // world_ before telemetry_: Telemetry detaches from the world in its
  // destructor, so it must be torn down while the world is still alive
  // (members destroy in reverse declaration order).
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<env::Environment> env_;

  std::vector<std::unique_ptr<phys::Device>> devices_;
  std::vector<std::unique_ptr<net::NetStack>> stacks_;
  std::size_t reg_ = 0, adapter_ = 0, laptop_ = 0;
  std::vector<std::size_t> extra_nodes_;
  std::uint64_t pings_ = 0;

  std::unique_ptr<disco::JiniRegistrar> registrar_;
  std::unique_ptr<app::SmartProjector> projector_;
  std::unique_ptr<disco::JiniClient> adapter_jini_;
  std::unique_ptr<disco::JiniClient> laptop_jini_;
  std::unique_ptr<app::PresenterDisplay> display_;
  std::unique_ptr<app::ProjectorClient> proj_client_;
  std::unique_ptr<rfb::SlideDeckWorkload> deck_;
  std::unique_ptr<user::UserAgent> presenter_;
  user::TaskOutcome outcome_;

  std::vector<std::unique_ptr<sim::PeriodicTimer>> pingers_;
  std::unique_ptr<sim::PeriodicTimer> slides_;

  SnapshotRegistry registry_;
  bool warmed_up_ = false;
  std::uint64_t restores_ = 0;
};

}  // namespace aroma::snap
