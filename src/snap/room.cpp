#include "snap/room.hpp"

#include <functional>
#include <utility>

#include "disco/service.hpp"
#include "env/mobility.hpp"
#include "lpc/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "phys/profile.hpp"
#include "sim/fleet.hpp"
#include "sim/random.hpp"
#include "user/faculties.hpp"

namespace aroma::snap {

namespace {
constexpr net::Port kPingPort = 7777;
}  // namespace

Room::Room(std::size_t shard_id, std::uint64_t seed, RoomOptions options)
    : shard_id_(shard_id), seed_(seed), options_(options) {
  world_ = std::make_unique<sim::World>(seed_);
  world_->arena().set_enabled(options_.use_arena);
  if (options_.telemetry) {
    telemetry_ = std::make_unique<obs::Telemetry>(*world_);
  }
  env::Environment::Params eparams;
  eparams.path_loss.seed = seed_;
  env_ = std::make_unique<env::Environment>(*world_, eparams);
}

Room::~Room() = default;

sim::Time Room::horizon() const {
  const std::size_t extras = shard_id_ % 5;
  return sim::Time::sec(55.0 + 10.0 * static_cast<double>(extras));
}

sim::Time Room::end_time() const { return horizon() + sim::Time::sec(2.0); }

sim::Time Room::now() const { return world_->now(); }

void Room::run_until(sim::Time t) { world_->sim().run_until(t); }

void Room::warmup() {
  if (warmed_up_) throw SnapError("Room::warmup called twice");
  warmed_up_ = true;

  // Component construction in fleet_bench::run_room's exact order — the
  // sequence of RNG forks, port binds, and scheduled events during setup is
  // part of the deterministic contract a restore relies on.
  auto add = [&](phys::DeviceProfile profile, env::Vec2 pos) {
    const std::uint64_t id = devices_.size() + 1;
    phys::Device::Options opt;
    opt.channel = 6;
    devices_.push_back(std::make_unique<phys::Device>(
        *world_, *env_, id, std::move(profile),
        std::make_unique<env::StaticMobility>(pos), opt));
    stacks_.push_back(
        std::make_unique<net::NetStack>(*world_, devices_.back()->mac()));
    return stacks_.size() - 1;
  };

  reg_ = add(phys::profiles::desktop_pc_with_radio(), {0, 12});
  adapter_ = add(phys::profiles::aroma_adapter(), {0, 0});
  laptop_ = add(phys::profiles::laptop(), {8, 0});
  const std::size_t extras = shard_id_ % 5;
  for (std::size_t i = 0; i < extras; ++i) {
    extra_nodes_.push_back(
        add(phys::profiles::laptop(), {3.0 + 2.5 * static_cast<double>(i), 6.0}));
  }

  stacks_[reg_]->bind(kPingPort, [this](const net::Datagram&) { ++pings_; });

  registrar_ = std::make_unique<disco::JiniRegistrar>(*world_, *stacks_[reg_]);
  projector_ = std::make_unique<app::SmartProjector>(*world_, *stacks_[adapter_]);
  adapter_jini_ = std::make_unique<disco::JiniClient>(*world_, *stacks_[adapter_]);
  laptop_jini_ = std::make_unique<disco::JiniClient>(*world_, *stacks_[laptop_]);
  display_ = std::make_unique<app::PresenterDisplay>(*world_, *stacks_[laptop_],
                                                     64, 48);
  projector_->export_services(*adapter_jini_, {});
  world_->sim().run_until(sim::Time::sec(3.0));

  proj_client_ = std::make_unique<app::ProjectorClient>(
      *world_, *stacks_[laptop_], stacks_[adapter_]->node_id(),
      app::kProjectionPort);
  deck_ = std::make_unique<rfb::SlideDeckWorkload>(3);
  presenter_ = std::make_unique<user::UserAgent>(
      *world_, "presenter", user::personas::computer_scientist());

  std::vector<user::ProcedureStep> procedure;
  procedure.push_back({"start-vnc-server",
                       [this](std::function<void(bool)> done) {
                         display_->start_server();
                         deck_->step(display_->screen());
                         done(true);
                       },
                       0.4, false});
  procedure.push_back({"discover-service",
                       [this](std::function<void(bool)> done) {
                         laptop_jini_->lookup(
                             disco::ServiceTemplate{app::kProjectionType, {}},
                             [done](std::vector<disco::ServiceDescription> s) {
                               done(!s.empty());
                             });
                       },
                       0.5, false});
  procedure.push_back({"acquire-projection",
                       [this](std::function<void(bool)> done) {
                         proj_client_->acquire(std::move(done));
                       },
                       0.5, false});
  procedure.push_back({"start-projection",
                       [this](std::function<void(bool)> done) {
                         proj_client_->start_projection(
                             stacks_[laptop_]->node_id(), std::move(done));
                       },
                       0.6, false});
  presenter_->attempt(std::move(procedure),
                      [this](const user::TaskOutcome& o) { outcome_ = o; });
  world_->sim().run_until(setup_time());

  for (std::size_t i = 0; i < extra_nodes_.size(); ++i) {
    net::NetStack* s = stacks_[extra_nodes_[i]].get();
    pingers_.push_back(std::make_unique<sim::PeriodicTimer>(
        world_->sim(), sim::Time::sec(0.4 + 0.1 * static_cast<double>(i)),
        [s, hub = stacks_[reg_]->node_id()] {
          s->send({hub, kPingPort}, kPingPort,
                  std::vector<std::byte>(24, std::byte{0x5a}), {});
        }));
    pingers_.back()->start();
  }
  slides_ = std::make_unique<sim::PeriodicTimer>(
      world_->sim(), sim::Time::sec(4.0), [this] { display_->apply(*deck_); });
  slides_->start();

  register_sections();

  // Structural settle: advance to the first quiescent instant. Checkpoints
  // are only taken at quiescent points, and the workload creates structure
  // (the RFB stream, viewer, server) up until the presenter's procedure
  // completes — which slow seeds finish after setup_time(). Stopping at the
  // first quiescent instant guarantees every handler, connection, and timer
  // the checkpointed run could have had at its capture point exists here
  // too, so restore only ever overwrites logical state. Deterministic: the
  // settle point is a pure function of the seed.
  std::string why;
  while (!registry_.quiescent(&why)) {
    if (world_->now() >= end_time()) {
      throw SnapError("warmup never reached a quiescent point: " + why);
    }
    world_->sim().run_until(world_->now() + sim::Time::ms(1));
  }
}

void Room::finish() {
  run_until(horizon());
  slides_->stop();
  for (auto& p : pingers_) p->stop();
  run_until(end_time());
}

void Room::register_sections() {
  // SIM! — kernel clock + identity counters + the root RNG. The absolute
  // capture clock is the section's FIRST field so Room::restore can learn
  // the capture instant before constructing the rebased readers.
  registry_.add(
      kTagSim, "sim",
      [this](SectionWriter& w) {
        const sim::Simulator& s = world_->sim();
        w.duration(s.now());  // absolute, deliberately not rebased
        w.u64(s.next_seq());
        w.u64(s.next_id());
        w.u64(s.executed());
        w.u64(s.cancelled());
        w.u64(s.stale_handle_rejects());
        w.u64(s.peak_pending());
        const sim::Rng::State st = world_->rng().state();
        for (int i = 0; i < 4; ++i) w.u64(st.s[i]);
        w.f64(st.cached_normal);
        w.b(st.has_cached_normal);
      },
      [this](SectionReader& r, const RestoreCtx& ctx) {
        (void)r.duration();  // capture clock; already folded into ctx.now
        const std::uint64_t next_seq = r.u64();
        const std::uint64_t next_id = r.u64();
        const std::uint64_t executed = r.u64();
        const std::uint64_t cancelled = r.u64();
        const std::uint64_t stale = r.u64();
        const auto peak = static_cast<std::size_t>(r.u64());
        world_->sim().restore_state(ctx.now, next_seq, next_id, executed,
                                    cancelled, stale, peak);
        sim::Rng::State st;
        for (int i = 0; i < 4; ++i) st.s[i] = r.u64();
        st.cached_normal = r.f64();
        st.has_cached_normal = r.b();
        world_->rng().set_state(st);
      });

  // ROOM — shard-level scenario state: ping tally, the presenter's outcome,
  // the slide deck generator, and the meeting timers' event identities.
  registry_.add(
      kTagRoom, "room",
      [this](SectionWriter& w) {
        w.u64(pings_);
        w.b(outcome_.success);
        w.b(outcome_.abandoned);
        w.u64(outcome_.steps_completed);
        w.u64(outcome_.errors);
        w.f64(outcome_.final_frustration);
        w.duration(outcome_.duration);
        deck_->save(w);
        slides_->save(w);
        w.u64(pingers_.size());
        for (const auto& p : pingers_) p->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        pings_ = r.u64();
        outcome_.success = r.b();
        outcome_.abandoned = r.b();
        outcome_.steps_completed = static_cast<std::size_t>(r.u64());
        outcome_.errors = r.u64();
        outcome_.final_frustration = r.f64();
        outcome_.duration = r.duration();
        deck_->restore(r);
        slides_->restore(r);
        const std::uint64_t n = r.u64();
        if (n != pingers_.size()) {
          throw SnapError("pinger count mismatch: structural rebuild diverged");
        }
        for (auto& p : pingers_) p->restore(r);
      });

  registry_.add(
      kTagMedium, "medium",
      [this](SectionWriter& w) { env_->medium().save(w); },
      [this](SectionReader& r, const RestoreCtx&) {
        env_->medium().restore(r);
      });

  // PHYS — per device, construction order: battery, transceiver, MAC.
  registry_.add(
      kTagPhys, "phys",
      [this](SectionWriter& w) {
        w.u64(devices_.size());
        for (const auto& d : devices_) {
          w.b(d->has_battery());
          if (d->has_battery()) d->battery().save(w);
          w.b(d->has_radio());
          if (d->has_radio()) {
            d->radio().save(w);
            d->mac().save(w);
          }
        }
      },
      [this](SectionReader& r, const RestoreCtx&) {
        if (r.u64() != devices_.size()) {
          throw SnapError("device count mismatch: structural rebuild diverged");
        }
        for (auto& d : devices_) {
          if (r.b() != d->has_battery()) {
            throw SnapError("battery presence mismatch");
          }
          if (d->has_battery()) d->battery().restore(r);
          if (r.b() != d->has_radio()) {
            throw SnapError("radio presence mismatch");
          }
          if (d->has_radio()) {
            d->radio().restore(r);
            d->mac().restore(r);
          }
        }
      });

  registry_.add(
      kTagNet, "net",
      [this](SectionWriter& w) {
        w.u64(stacks_.size());
        for (const auto& s : stacks_) s->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        if (r.u64() != stacks_.size()) {
          throw SnapError("stack count mismatch: structural rebuild diverged");
        }
        for (auto& s : stacks_) s->restore(r);
      });

  // STRM — both stream managers (laptop RFB server side, adapter viewer
  // side). Connection identity is structural; StreamManager::restore
  // matches serialized connections 1:1 against the warmed-up set by key.
  registry_.add(
      kTagStream, "stream",
      [this](SectionWriter& w) {
        net::StreamManager* a = display_->stream_manager();
        w.b(a != nullptr);
        if (a != nullptr) a->save(w);
        net::StreamManager* b = projector_->stream_manager();
        w.b(b != nullptr);
        if (b != nullptr) b->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        net::StreamManager* a = display_->stream_manager();
        if (r.b() != (a != nullptr)) {
          throw SnapError("display stream manager presence mismatch");
        }
        if (a != nullptr) a->restore(r);
        net::StreamManager* b = projector_->stream_manager();
        if (r.b() != (b != nullptr)) {
          throw SnapError("projector stream manager presence mismatch");
        }
        if (b != nullptr) b->restore(r);
      });

  registry_.add(
      kTagDisco, "disco",
      [this](SectionWriter& w) {
        registrar_->save(w);
        adapter_jini_->save(w);
        laptop_jini_->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        registrar_->restore(r);
        adapter_jini_->restore(r);
        laptop_jini_->restore(r);
      });

  registry_.add(
      kTagSession, "session",
      [this](SectionWriter& w) {
        projector_->save(w);
        proj_client_->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        projector_->restore(r);
        proj_client_->restore(r);
      });

  // RFBC — protocol control state (request flags, stats, poll timer). Kept
  // separate from PIXL so steady-state incremental checkpoints stay small:
  // control churns every poll, pixels only churn on slide flips.
  registry_.add(
      kTagRfb, "rfb",
      [this](SectionWriter& w) {
        rfb::RfbServer* srv = display_->server_mutable();
        w.b(srv != nullptr);
        if (srv != nullptr) srv->save(w);
        rfb::RfbClient* viewer = projector_->viewer_client();
        w.b(viewer != nullptr);
        if (viewer != nullptr) viewer->save(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        rfb::RfbServer* srv = display_->server_mutable();
        if (r.b() != (srv != nullptr)) {
          throw SnapError("rfb server presence mismatch");
        }
        if (srv != nullptr) srv->restore(r);
        rfb::RfbClient* viewer = projector_->viewer_client();
        if (r.b() != (viewer != nullptr)) {
          throw SnapError("rfb viewer presence mismatch");
        }
        if (viewer != nullptr) viewer->restore(r);
      });

  // PIXL — the bulky, slow-churn payload: the laptop screen, the server's
  // cached-encoding state, and the viewer's replica + tile cache.
  registry_.add(
      kTagPixels, "pixels",
      [this](SectionWriter& w) {
        display_->screen().save(w);
        display_->save(w);
        rfb::RfbServer* srv = display_->server_mutable();
        w.b(srv != nullptr);
        if (srv != nullptr) srv->save_cache(w);
        rfb::RfbClient* viewer = projector_->viewer_client();
        w.b(viewer != nullptr);
        if (viewer != nullptr) viewer->save_cache(w);
      },
      [this](SectionReader& r, const RestoreCtx&) {
        display_->screen().restore(r);
        display_->restore(r);
        rfb::RfbServer* srv = display_->server_mutable();
        if (r.b() != (srv != nullptr)) {
          throw SnapError("rfb server cache presence mismatch");
        }
        if (srv != nullptr) srv->restore_cache(r);
        rfb::RfbClient* viewer = projector_->viewer_client();
        if (r.b() != (viewer != nullptr)) {
          throw SnapError("rfb viewer cache presence mismatch");
        }
        if (viewer != nullptr) viewer->restore_cache(r);
      });

  registry_.add(
      kTagUser, "user",
      [this](SectionWriter& w) { presenter_->save(w); },
      [this](SectionReader& r, const RestoreCtx&) { presenter_->restore(r); });

  // Telemetry sections are optional both ways: a telemetry-off reader skips
  // them in a telemetry-on blob, and vice versa.
  if (telemetry_ != nullptr) {
    registry_.add(
        kTagMetrics, "metrics",
        [this](SectionWriter& w) { telemetry_->metrics().save(w); },
        [this](SectionReader& r, const RestoreCtx&) {
          telemetry_->metrics().restore(r);
        },
        kSectionOptional);
    registry_.add(
        kTagSpans, "spans",
        [this](SectionWriter& w) { telemetry_->spans().save(w); },
        [this](SectionReader& r, const RestoreCtx&) {
          telemetry_->spans().restore(r);
        },
        kSectionOptional);
  }

  // Quiescence predicates: every core that can hold an un-reconstructible
  // in-flight closure vetoes checkpointing until it drains.
  registry_.add_quiescence(
      [this](std::string* why) { return env_->medium().snap_quiescent(why); });
  registry_.add_quiescence([this](std::string* why) {
    for (const auto& d : devices_) {
      if (d->has_radio() && !d->mac().snap_quiescent(why)) return false;
    }
    return true;
  });
  registry_.add_quiescence([this](std::string* why) {
    net::StreamManager* a = display_->stream_manager();
    if (a != nullptr && !a->snap_quiescent(why)) return false;
    net::StreamManager* b = projector_->stream_manager();
    return b == nullptr || b->snap_quiescent(why);
  });
  registry_.add_quiescence([this](std::string* why) {
    return adapter_jini_->snap_quiescent(why) &&
           laptop_jini_->snap_quiescent(why);
  });
  registry_.add_quiescence([this](std::string* why) {
    rfb::RfbServer* srv = display_->server_mutable();
    if (srv != nullptr && !srv->snap_quiescent(why)) return false;
    rfb::RfbClient* viewer = projector_->viewer_client();
    return viewer == nullptr || viewer->snap_quiescent(why);
  });
  registry_.add_quiescence(
      [this](std::string* why) { return proj_client_->snap_quiescent(why); });
  registry_.add_quiescence(
      [this](std::string* why) { return presenter_->snap_quiescent(why); });
}

std::vector<std::uint8_t> Room::checkpoint() {
  if (!warmed_up_) throw SnapError("Room::checkpoint before warmup");
  std::string why;
  if (!registry_.quiescent(&why)) {
    throw SnapError("checkpoint at non-quiescent point: " + why);
  }
  return registry_.save_all(world_->now());
}

void Room::restore(std::span<const std::uint8_t> blob, sim::Time gap) {
  if (!warmed_up_) throw SnapError("Room::restore before warmup");
  obs::Counter* errors =
      obs::counter(*world_, "snap.restore_errors", lpc::Layer::kPhysical);
  try {
    const SnapReader reader(blob);
    const Section* simsec = reader.find(kTagSim);
    if (simsec == nullptr) {
      throw SnapError("blob is missing the SIM section");
    }
    SectionReader peek(simsec->payload, sim::Time::zero());
    const sim::Time captured = peek.duration();
    RestoreCtx ctx;
    ctx.gap = gap;
    ctx.now = captured + gap;
    if (ctx.now < world_->now()) {
      throw SnapError("restore would move the clock backwards past warmup");
    }
    // Drop the warmup's pending events; each section re-arms the saved set
    // with original (when, seq, id) identities.
    world_->sim().clear_pending();
    registry_.restore_all(reader, ctx);
  } catch (const SnapError&) {
    if (errors != nullptr) errors->add();
    throw;
  }
  ++restores_;
  if (obs::Counter* c =
          obs::counter(*world_, "snap.restores", lpc::Layer::kPhysical)) {
    c->add();
  }
}

std::uint64_t Room::fingerprint() const {
  const env::MediumStats& m = env_->medium().stats();
  std::uint64_t fp = sim::mix_hash(seed_, world_->sim().executed());
  fp = sim::mix_hash(fp, m.transmissions);
  fp = sim::mix_hash(fp, m.deliveries_attempted);
  fp = sim::mix_hash(fp, m.deliveries_decodable);
  fp = sim::mix_hash(fp, m.losses_sinr);
  fp = sim::mix_hash(fp, m.losses_half_duplex);
  fp = sim::mix_hash(fp, pings_);
  fp = sim::mix_hash(fp, registrar_->registered_count());
  fp = sim::mix_hash(fp, outcome_.success ? 1 : 0);
  fp = sim::mix_hash(fp, outcome_.steps_completed);
  fp = sim::mix_hash(fp, outcome_.errors);
  fp = sim::mix_hash(
      fp, projector_->viewer() ? projector_->viewer()->stats().updates_received
                               : 0);
  return fp;
}

}  // namespace aroma::snap
