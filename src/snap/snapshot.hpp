// The Snapshottable registry: the glue between the wire format and the
// stateful cores.
//
// A world that wants to be checkpointable builds a SnapshotRegistry and
// registers one entry per section, in a fixed order (the restore order).
// Each entry supplies:
//   * save    — serialize the component's logical state into a SectionWriter,
//   * restore — overwrite the component's state from a SectionReader (the
//               component re-arms its own pending events with their original
//               (when, seq, id) via Simulator::restore_event),
//   * quiesce — optional: report whether the component is at a quiescent
//               point (no in-flight frames, no un-rearmable pending events).
//
// Checkpoints are only taken at quiescent instants (CheckpointManager
// defers deterministically until one is reached), which is what makes C++
// closures a non-problem: the only events pending at quiescence are the
// re-armed classes (periodic timers, lease checks, lease renewals), each of
// which its owner knows how to rebuild verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "snap/format.hpp"
#include "sim/time.hpp"

namespace aroma::snap {

/// Carried through every restore call. `now` is the instant the restored
/// world resumes at: the capture instant plus `gap`. A zero gap reproduces
/// the captured run bit-for-bit; a positive gap shifts every pending event,
/// lease deadline, and timestamp forward by the same amount.
struct RestoreCtx {
  sim::Time now = sim::Time::zero();
  sim::Time gap = sim::Time::zero();
};

/// Recycled buffers for SnapshotRegistry::save_all_into. Capacity warms to
/// the largest section payload and blob ever produced, after which repeated
/// saves are allocation-free.
struct SaveScratch {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> blob;
};

class SnapshotRegistry {
 public:
  using SaveFn = std::function<void(SectionWriter&)>;
  using RestoreFn = std::function<void(SectionReader&, const RestoreCtx&)>;
  /// Returns false and fills `why` (if non-null) when not quiescent.
  using QuiesceFn = std::function<bool(std::string*)>;

  void add(std::uint32_t tag, std::string name, SaveFn save, RestoreFn restore,
           std::uint32_t flags = 0) {
    entries_.push_back(
        Entry{tag, flags, std::move(name), std::move(save), std::move(restore)});
  }

  void add_quiescence(QuiesceFn fn) { quiesce_.push_back(std::move(fn)); }

  /// True when every registered quiescence predicate holds.
  bool quiescent(std::string* why = nullptr) const {
    for (const QuiesceFn& q : quiesce_) {
      if (!q(why)) return false;
    }
    return true;
  }

  /// Serializes every section against capture instant `now`, in
  /// registration order. Returns (tag, flags, payload) triples — the
  /// CheckpointManager diffs these for incremental checkpoints.
  std::vector<Section> save_sections(sim::Time now) const {
    std::vector<Section> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      SectionWriter w(now);
      e.save(w);
      out.push_back(Section{e.tag, e.flags, w.take()});
    }
    return out;
  }

  /// Serializes a complete blob.
  std::vector<std::uint8_t> save_all(sim::Time now) const {
    SnapWriter w;
    for (Section& s : save_sections(now)) {
      w.add(s.tag, s.flags, std::move(s.payload));
    }
    return w.finish();
  }

  /// Serializes a complete blob into recycled buffers. Identical output to
  /// save_all(), but once the scratch has warmed to its high-water
  /// capacity the serialization performs zero heap allocations — this is
  /// the path the fleet control plane streams live-migration checkpoints
  /// through (fleet_bench gates on an operator-new counter around it).
  void save_all_into(sim::Time now, SaveScratch& scratch) const {
    std::vector<std::uint8_t>& blob = scratch.blob;
    blob.clear();
    for (const char c : kMagic) {
      blob.push_back(static_cast<std::uint8_t>(c));
    }
    append32(blob, kFormatVersion);
    append32(blob, static_cast<std::uint32_t>(entries_.size()));
    for (const Entry& e : entries_) {
      SectionWriter w(now, std::move(scratch.payload));
      e.save(w);
      scratch.payload = w.take();
      const std::vector<std::uint8_t>& p = scratch.payload;
      append32(blob, e.tag);
      append32(blob, e.flags);
      append64(blob, p.size());
      append32(blob, crc32(p.data(), p.size()));
      blob.insert(blob.end(), p.begin(), p.end());
    }
  }

  /// Restores every registered section from a parsed blob, in registration
  /// order. Unknown sections in the blob are skipped when flagged optional
  /// and rejected otherwise; a registered section missing from the blob is
  /// an error unless it was registered with kSectionOptional.
  void restore_all(const SnapReader& r, const RestoreCtx& ctx) const {
    for (const Section& s : r.sections()) {
      if (known(s.tag)) continue;
      if (s.flags & kSectionOptional) continue;  // forward-skippable
      throw SnapError("unknown required section " + tag_name(s.tag));
    }
    for (const Entry& e : entries_) {
      const Section* s = r.find(e.tag);
      if (s == nullptr) {
        if (e.flags & kSectionOptional) continue;
        throw SnapError("blob is missing required section " + e.name);
      }
      SectionReader sr(s->payload, ctx.now);
      e.restore(sr, ctx);
      sr.expect_end();
    }
  }

  std::size_t section_count() const { return entries_.size(); }

  /// Registered (tag, name) pairs, for reporting.
  std::vector<std::pair<std::uint32_t, std::string>> table() const {
    std::vector<std::pair<std::uint32_t, std::string>> t;
    t.reserve(entries_.size());
    for (const Entry& e : entries_) t.emplace_back(e.tag, e.name);
    return t;
  }

 private:
  static void append32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  static void append64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  struct Entry {
    std::uint32_t tag;
    std::uint32_t flags;
    std::string name;
    SaveFn save;
    RestoreFn restore;
  };

  bool known(std::uint32_t tag) const {
    for (const Entry& e : entries_) {
      if (e.tag == tag) return true;
    }
    return false;
  }

  std::vector<Entry> entries_;
  std::vector<QuiesceFn> quiesce_;
};

}  // namespace aroma::snap
