#include "snap/replay.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace aroma::snap {
namespace {

constexpr std::uint64_t kStreamHashBase = 0x9a3c47b2d15e6f01ULL;

std::uint64_t fold(std::uint64_t h, const EventId& e) {
  h = sim::mix_hash(h, static_cast<std::uint64_t>(e.when.count()));
  h = sim::mix_hash(h, e.id);
  return sim::mix_hash(h, e.seq);
}

}  // namespace

void ReplayHarness::attach(sim::Simulator& sim) {
  sim.set_event_observer(
      [this](sim::Time when, std::uint64_t id, std::uint64_t seq) {
        record(when, id, seq);
      });
}

void ReplayHarness::detach(sim::Simulator& sim) {
  sim.set_event_observer(nullptr);
}

void ReplayHarness::clear() {
  events_.clear();
  prefix_hashes_.clear();
}

void ReplayHarness::record(sim::Time when, std::uint64_t id,
                           std::uint64_t seq) {
  const EventId e{when, id, seq};
  const std::uint64_t prev =
      prefix_hashes_.empty() ? kStreamHashBase : prefix_hashes_.back();
  events_.push_back(e);
  prefix_hashes_.push_back(fold(prev, e));
}

std::uint64_t ReplayHarness::stream_hash() const {
  return prefix_hashes_.empty() ? kStreamHashBase : prefix_hashes_.back();
}

std::uint64_t ReplayHarness::prefix_hash(std::size_t n) const {
  if (n == 0) return kStreamHashBase;
  if (n > prefix_hashes_.size()) n = prefix_hashes_.size();
  return prefix_hashes_[n - 1];
}

Divergence ReplayHarness::first_divergence(const ReplayHarness& expected,
                                           const ReplayHarness& actual) {
  Divergence d;
  const std::size_t common = std::min(expected.size(), actual.size());

  // Invariant: prefixes of length <= lo match, prefixes of length > hi
  // differ (within the common range). Finds the longest matching prefix.
  std::size_t lo = 0, hi = common;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (expected.prefix_hash(mid) == actual.prefix_hash(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }

  if (lo == common) {
    if (expected.size() == actual.size()) return d;  // identical streams
    d.diverged = true;
    d.index = common;
    d.length_mismatch = true;
    if (d.index < expected.size()) d.expected = expected.events()[d.index];
    if (d.index < actual.size()) d.actual = actual.events()[d.index];
    return d;
  }

  d.diverged = true;
  d.index = lo;  // first differing event
  d.expected = expected.events()[d.index];
  d.actual = actual.events()[d.index];
  return d;
}

}  // namespace aroma::snap
