// The snapshot wire format: a versioned, sectioned, CRC-checked container.
//
// A checkpoint is a flat byte blob:
//
//   [8]  magic "AROMSNAP"
//   [4]  format version (little-endian u32, currently 1)
//   [4]  section count
//   then per section:
//   [4]  tag (a four-character code, e.g. 'SIM!')
//   [4]  flags (bit 0 = optional: readers may skip an unknown optional
//        section; an unknown *required* section is a hard error)
//   [8]  payload length
//   [4]  CRC32 of the payload
//   [n]  payload
//
// All primitives are little-endian regardless of host order, so blobs are
// portable across the fleet. Every sim::Time field inside a payload is
// written as a signed delta against the capture instant (`SectionWriter::
// now`) and read back against the restore instant (`SectionReader::now`);
// restoring with a later `now` therefore shifts every deadline, timestamp,
// and pending-event time forward by the same gap — the rebasing rule that
// keeps leases from mass-expiring after a pause (see DESIGN.md).
//
// This header is deliberately header-only and dependency-free (sim/time.hpp
// only), so any layer — sim included — can implement save()/restore()
// without linking against the snap library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace aroma::snap {

/// Any structural problem with a snapshot blob: truncation, bad magic,
/// unsupported version, CRC mismatch, unknown required section, or a
/// payload that does not parse. Restores must be all-or-nothing, so this
/// is thrown (never swallowed) and callers count it in snap.restore_errors.
class SnapError : public std::runtime_error {
 public:
  explicit SnapError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr char kMagic[8] = {'A', 'R', 'O', 'M', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section flag: readers that do not recognize the tag may skip it.
inline constexpr std::uint32_t kSectionOptional = 1u << 0;

/// Four-character section tag, e.g. tag4("SIM!").
constexpr std::uint32_t tag4(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

inline std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    s[static_cast<std::size_t>(i)] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return s;
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
inline std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xff];
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Section payload encoding.

/// Appends little-endian primitives to one section's payload. `now` is the
/// capture instant every Time field is rebased against.
class SectionWriter {
 public:
  explicit SectionWriter(sim::Time now) : now_(now) {}

  /// Buffer-reuse form: adopts `buf`'s capacity (contents are discarded).
  /// Serializing into a warmed buffer performs zero heap allocations — the
  /// fleet control plane streams checkpoints through recycled scratch this
  /// way. Recover the buffer afterwards with take().
  SectionWriter(sim::Time now, std::vector<std::uint8_t>&& buf)
      : now_(now), out_(std::move(buf)) {
    out_.clear();
  }

  sim::Time now() const { return now_; }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    le(bits);
  }
  /// A Time as a signed delta against the capture instant (rebasing rule).
  void time_delta(sim::Time t) { i64((t - now_).count()); }
  /// A Time span/duration, written verbatim (never rebased).
  void duration(sim::Time d) { i64(d.count()); }
  void str(const std::string& s) {
    u64(s.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }
  void bytes(const void* p, std::size_t n) {
    u64(n);
    const auto* q = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), q, q + n);
  }

  const std::vector<std::uint8_t>& payload() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  sim::Time now_;
  std::vector<std::uint8_t> out_;
};

/// Reads one section's payload; underflow throws SnapError. `now` is the
/// restore instant Time deltas are rebased onto.
class SectionReader {
 public:
  SectionReader(std::span<const std::uint8_t> data, sim::Time now)
      : data_(data), now_(now) {}

  sim::Time now() const { return now_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return take_byte(); }
  bool b() { return u8() != 0; }
  std::uint16_t u16() { return le<std::uint16_t>(); }
  std::uint32_t u32() { return le<std::uint32_t>(); }
  std::uint64_t u64() { return le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(le<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  sim::Time time_delta() { return now_ + sim::Time::ns(i64()); }
  sim::Time duration() { return sim::Time::ns(i64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  /// Restores must consume their section exactly; trailing garbage means
  /// the payload and the reader disagree about the schema.
  void expect_end() const {
    if (pos_ != data_.size()) {
      throw SnapError("section payload has " +
                      std::to_string(data_.size() - pos_) +
                      " unconsumed trailing bytes");
    }
  }

 private:
  std::uint8_t take_byte() {
    need(1);
    return data_[pos_++];
  }
  template <typename T>
  T le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw SnapError("section payload truncated (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(data_.size() - pos_) +
                      ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  sim::Time now_;
};

// ---------------------------------------------------------------------------
// Container assembly and parsing.

struct Section {
  std::uint32_t tag = 0;
  std::uint32_t flags = 0;
  std::vector<std::uint8_t> payload;
};

/// Assembles a checkpoint blob from sections.
class SnapWriter {
 public:
  void add(std::uint32_t tag, std::uint32_t flags,
           std::vector<std::uint8_t> payload) {
    sections_.push_back(Section{tag, flags, std::move(payload)});
  }

  std::vector<std::uint8_t> finish() const { return finish(kMagic, kFormatVersion); }

  /// Container assembly under a foreign identity: the same section table,
  /// CRC, and flag discipline, but a caller-chosen magic and version. Other
  /// sectioned formats (the scn scenario blob) reuse the container this way
  /// without pretending to be checkpoints.
  std::vector<std::uint8_t> finish(const char (&magic)[8],
                                   std::uint32_t version) const {
    std::vector<std::uint8_t> out;
    out.insert(out.end(), magic, magic + 8);
    put32(out, version);
    put32(out, static_cast<std::uint32_t>(sections_.size()));
    for (const Section& s : sections_) {
      put32(out, s.tag);
      put32(out, s.flags);
      put64(out, s.payload.size());
      put32(out, crc32(s.payload.data(), s.payload.size()));
      out.insert(out.end(), s.payload.begin(), s.payload.end());
    }
    return out;
  }

  const std::vector<Section>& sections() const { return sections_; }

 private:
  static void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  static void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<Section> sections_;
};

/// Parses and validates a checkpoint blob: magic, version, section table,
/// and every section's CRC. Throws SnapError on any structural problem.
class SnapReader {
 public:
  explicit SnapReader(std::span<const std::uint8_t> blob)
      : SnapReader(blob, kMagic, kFormatVersion) {}

  /// Parses a container carrying a foreign identity (see SnapWriter::finish
  /// overload). Magic and version mismatches are hard errors either way.
  SnapReader(std::span<const std::uint8_t> blob, const char (&magic)[8],
             std::uint32_t expected_version) {
    std::size_t pos = 0;
    const auto get32 = [&]() -> std::uint32_t {
      if (blob.size() - pos < 4) throw SnapError("blob truncated in header");
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(blob[pos + static_cast<std::size_t>(i)]) << (8 * i);
      pos += 4;
      return v;
    };
    const auto get64 = [&]() -> std::uint64_t {
      if (blob.size() - pos < 8) throw SnapError("blob truncated in header");
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(blob[pos + static_cast<std::size_t>(i)]) << (8 * i);
      pos += 8;
      return v;
    };

    if (blob.size() < 8 || std::memcmp(blob.data(), magic, 8) != 0) {
      throw SnapError("bad magic: not a " + std::string(magic, magic + 8) +
                      " blob");
    }
    pos = 8;
    const std::uint32_t version = get32();
    if (version != expected_version) {
      throw SnapError("unsupported format version " + std::to_string(version) +
                      " (expected " + std::to_string(expected_version) + ")");
    }
    const std::uint32_t count = get32();
    sections_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Section s;
      s.tag = get32();
      s.flags = get32();
      const std::uint64_t len = get64();
      const std::uint32_t want_crc = get32();
      if (len > blob.size() - pos) {
        throw SnapError("section " + tag_name(s.tag) + " truncated (" +
                        std::to_string(len) + " bytes declared, " +
                        std::to_string(blob.size() - pos) + " remain)");
      }
      s.payload.assign(blob.begin() + static_cast<std::ptrdiff_t>(pos),
                       blob.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += static_cast<std::size_t>(len);
      const std::uint32_t got_crc = crc32(s.payload.data(), s.payload.size());
      if (got_crc != want_crc) {
        throw SnapError("section " + tag_name(s.tag) + " CRC mismatch");
      }
      sections_.push_back(std::move(s));
    }
    if (pos != blob.size()) {
      throw SnapError("blob has trailing bytes after the last section");
    }
  }

  const std::vector<Section>& sections() const { return sections_; }

  const Section* find(std::uint32_t tag) const {
    for (const Section& s : sections_) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  }

 private:
  std::vector<Section> sections_;
};

}  // namespace aroma::snap
