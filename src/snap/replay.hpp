// ReplayHarness — records the post-checkpoint executed-event stream and
// binary-searches the first diverging event between two runs.
//
// Determinism debugging needs more than "the fingerprints differ": it needs
// the exact event where two supposedly-identical runs first disagree. The
// harness attaches to the kernel's observation-only event hook and records
// each executed event's identity (when, id, seq) together with a running
// prefix hash. Because the hash chain is cumulative, prefix i of two
// recordings matches iff their hashes at i match — so the first divergence
// is found with a binary search over the prefix hashes, O(log n) hash
// compares instead of an O(n) element scan, and the recordings themselves
// pinpoint the offending event.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace aroma::snap {

/// The identity of one executed event. (when, seq) is the kernel's total
/// order; id ties the event back to its schedule call.
struct EventId {
  sim::Time when;
  std::uint64_t id = 0;
  std::uint64_t seq = 0;

  bool operator==(const EventId&) const = default;
};

/// The verdict of first_divergence().
struct Divergence {
  bool diverged = false;
  /// Index of the first differing event; == min(length) when one recording
  /// is a strict prefix of the other.
  std::size_t index = 0;
  /// True when the streams agree on their common prefix but have different
  /// lengths (a missing/extra tail, not a reordering).
  bool length_mismatch = false;
  std::optional<EventId> expected;  // event at `index` in the reference
  std::optional<EventId> actual;    // event at `index` in the candidate
};

class ReplayHarness {
 public:
  /// Starts recording every event `sim` executes. Replaces any previously
  /// attached observer; only one harness per simulator at a time.
  void attach(sim::Simulator& sim);
  /// Stops recording (clears the simulator's observer). The recording is
  /// kept for comparison.
  void detach(sim::Simulator& sim);

  void clear();

  const std::vector<EventId>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Hash of the whole recorded stream (equal streams => equal hashes).
  std::uint64_t stream_hash() const;
  /// Hash of the first `n` events.
  std::uint64_t prefix_hash(std::size_t n) const;

  /// Locates the first event where `actual` departs from `expected`, by
  /// binary search over the cumulative prefix hashes.
  static Divergence first_divergence(const ReplayHarness& expected,
                                     const ReplayHarness& actual);

 private:
  void record(sim::Time when, std::uint64_t id, std::uint64_t seq);

  std::vector<EventId> events_;
  // prefix_hashes_[i] = hash of events_[0..i]; one entry per event.
  std::vector<std::uint64_t> prefix_hashes_;
};

}  // namespace aroma::snap
