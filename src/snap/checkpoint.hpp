// CheckpointManager — cadenced full + incremental checkpoints with
// deterministic quiescence deferral.
//
// Checkpoints are only valid at quiescent instants (see snapshot.hpp). The
// manager never skips a cycle because the world happens to be mid-frame:
// it advances the simulation in small fixed steps until the quiescence
// predicates hold, so the capture instant is a deterministic function of
// the seed and the cadence — two runs with the same schedule checkpoint at
// identical instants and produce identical blobs.
//
// Incremental checkpoints serialize every section, then keep only the
// sections whose payload changed since the previous checkpoint. On the
// steady-state projector workload this is a large win: the pixel section
// (screen + caches + replica) only churns when a slide flips (every 4 s),
// while the control sections churn every damage-poll — a sub-second cadence
// captures mostly-identical pixel payloads that the delta drops entirely.
// An incremental blob alone is not restorable (sections are missing, which
// restore_all rejects); materialize() overlays it onto its base to rebuild
// the byte-identical full blob.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "sim/world.hpp"
#include "snap/snapshot.hpp"

namespace aroma::snap {

/// One taken checkpoint. `base` is 0 for a full checkpoint; for an
/// incremental one it is the id of the checkpoint it deltas against.
struct Checkpoint {
  std::uint64_t id = 0;
  std::uint64_t base = 0;
  sim::Time captured_at;
  std::vector<std::uint8_t> blob;
  bool full() const { return base == 0; }
};

struct CheckpointStats {
  std::uint64_t full_taken = 0;
  std::uint64_t incremental_taken = 0;
  std::uint64_t bytes_written = 0;       // sum of emitted blob sizes
  std::uint64_t full_bytes = 0;          // sum over full blobs
  std::uint64_t incremental_bytes = 0;   // sum over incremental blobs
  std::uint64_t deferral_steps = 0;      // quiescence wait iterations
  sim::Time deferral_time;               // simulated time spent waiting
};

class CheckpointManager {
 public:
  struct Options {
    /// Step size of the quiescence deferral loop.
    sim::Time defer_step = sim::Time::ms(1);
    /// Give up (SnapError) when quiescence is not reached within this.
    sim::Time max_defer = sim::Time::sec(10.0);
    /// Take incrementals between fulls; every full_every-th checkpoint is
    /// full (1 = always full).
    std::uint64_t full_every = 16;
  };

  CheckpointManager(sim::World& world, SnapshotRegistry& registry)
      : CheckpointManager(world, registry, Options{}) {}
  CheckpointManager(sim::World& world, SnapshotRegistry& registry,
                    Options options);

  /// Advances the simulation (in defer_step increments) until the registry
  /// is quiescent, then captures. Returns a full checkpoint on the first
  /// call and every full_every-th call, an incremental otherwise.
  Checkpoint take();

  /// Like take(), but always emits a full checkpoint.
  Checkpoint take_full();

  /// Like take(), but always emits an incremental (delta vs the previous
  /// checkpoint; acts as a full when none exists yet).
  Checkpoint take_incremental();

  /// Rebuilds the full blob an incremental checkpoint stands for:
  /// `base` section payloads, overlaid (in place) with the sections present
  /// in `incremental`. The result is byte-identical to the full checkpoint
  /// that would have been taken at the incremental's capture instant.
  static std::vector<std::uint8_t> materialize(
      std::span<const std::uint8_t> base,
      std::span<const std::uint8_t> incremental);

  const CheckpointStats& stats() const { return stats_; }

 private:
  void wait_for_quiescence();

  sim::World& world_;
  SnapshotRegistry& registry_;
  Options options_;
  CheckpointStats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_id_ = 0;
  std::map<std::uint32_t, std::vector<std::uint8_t>> last_payloads_;
};

}  // namespace aroma::snap
