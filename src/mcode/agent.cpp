#include "mcode/agent.hpp"

#include <algorithm>

namespace aroma::mcode {

void AgentState::serialize(net::ByteWriter& w) const {
  package.serialize(w);
  w.bytes(data);
  w.u32(static_cast<std::uint32_t>(itinerary.size()));
  for (net::NodeId n : itinerary) w.u64(n);
  w.u32(next_index);
  w.u64(origin);
  w.u32(hops);
  w.u32(refusals);
}

AgentState AgentState::deserialize(net::ByteReader& r) {
  AgentState a;
  a.package = CodePackage::deserialize(r);
  a.data = r.bytes();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    a.itinerary.push_back(r.u64());
  }
  a.next_index = r.u32();
  a.origin = r.u64();
  a.hops = r.u32();
  a.refusals = r.u32();
  return a;
}

AgentHost::AgentHost(sim::World& world, net::NetStack& stack,
                     phys::DeviceProfile device, HostRuntime runtime)
    : world_(world), stack_(stack), device_(std::move(device)),
      runtime_(std::move(runtime)), streams_(world, stack, kAgentPort) {
  streams_.listen([this](const std::shared_ptr<net::StreamConnection>& c) {
    on_connection(c);
  });
}

AgentHost::~AgentHost() {
  for (auto& s : sessions_) {
    s->conn->set_data_handler({});
    s->conn->set_closed_handler({});
    s->framer.set_handler({});
  }
}

void AgentHost::on_connection(
    const std::shared_ptr<net::StreamConnection>& conn) {
  auto session = std::make_shared<Session>();
  session->conn = conn;
  sessions_.push_back(session);
  session->framer.set_handler([this](std::span<const std::byte> msg) {
    net::ByteReader r(msg);
    AgentState agent = AgentState::deserialize(r);
    if (r.ok()) handle_arrival(std::move(agent));
  });
  // Weak capture: the session owns the connection, so a strong capture here
  // would form a cycle that outlives the closed handler's erase below.
  conn->set_data_handler(
      [weak = std::weak_ptr<Session>(session)](std::span<const std::byte> d) {
        if (auto session = weak.lock()) session->framer.on_bytes(d);
      });
  conn->set_closed_handler([this, raw = session.get()] {
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [&](const std::shared_ptr<Session>& s) {
                                     return s.get() == raw;
                                   }),
                    sessions_.end());
  });
}

sim::Time AgentHost::execution_time(const AgentState& agent) const {
  const double instructions =
      1e6 + 10.0 * static_cast<double>(agent.data.size());
  return sim::Time::sec(instructions / (device_.exec_mips * 1e6));
}

void AgentHost::launch(AgentState agent, CompletionHandler done) {
  agent.origin = stack_.node_id();
  agent.next_index = 0;
  pending_.push_back(std::move(done));
  if (agent.itinerary.empty()) {
    world_.sim().schedule_in(sim::Time::zero(),
                             [this, agent = std::move(agent),
                              guard = std::weak_ptr<char>(alive_)] {
                               if (guard.expired()) return;
                               handle_arrival(agent);
                             });
    return;
  }
  const net::NodeId first = agent.itinerary[0];
  forward(std::move(agent), first);
}

void AgentHost::handle_arrival(AgentState agent) {
  // Returned home?
  if (agent.origin == stack_.node_id() &&
      agent.next_index >= agent.itinerary.size()) {
    if (!pending_.empty()) {
      auto done = std::move(pending_.front());
      pending_.erase(pending_.begin());
      if (done) done(agent);
    }
    return;
  }
  // Visiting this host.
  const auto issues = check_capabilities(agent.package, device_, runtime_);
  if (!issues.empty()) {
    ++agents_refused_;
    ++agent.refusals;
    ++agent.next_index;
    const net::NodeId to = agent.next_index < agent.itinerary.size()
                               ? agent.itinerary[agent.next_index]
                               : agent.origin;
    forward(std::move(agent), to);
    return;
  }
  ++agents_hosted_;
  const sim::Time exec = execution_time(agent);
  world_.sim().schedule_in(
      exec, [this, agent = std::move(agent),
             guard = std::weak_ptr<char>(alive_)]() mutable {
        if (guard.expired()) return;
        auto it = behaviours_.find(agent.package.name);
        if (it != behaviours_.end() && it->second) it->second(agent);
        ++agent.hops;
        ++agent.next_index;
        const net::NodeId to = agent.next_index < agent.itinerary.size()
                                   ? agent.itinerary[agent.next_index]
                                   : agent.origin;
        forward(std::move(agent), to);
      });
}

void AgentHost::forward(AgentState agent, net::NodeId to) {
  if (to == stack_.node_id()) {
    // Local delivery (origin == this host, or a self-visit).
    handle_arrival(std::move(agent));
    return;
  }
  auto session = std::make_shared<Session>();
  session->conn = streams_.connect(to);
  sessions_.push_back(session);
  net::ByteWriter w;
  agent.serialize(w);
  session->conn->send(net::MessageFramer::frame(w.data()));
  session->conn->close();
  session->conn->set_closed_handler([this, raw = session.get()] {
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [&](const std::shared_ptr<Session>& s) {
                                     return s.get() == raw;
                                   }),
                    sessions_.end());
  });
}

}  // namespace aroma::mcode
