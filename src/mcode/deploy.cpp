#include "mcode/deploy.hpp"

#include <algorithm>

namespace aroma::mcode {

// ---------------------------------------------------------------------------
// CodeRepository

CodeRepository::CodeRepository(sim::World& world, net::NetStack& stack)
    : world_(world), stack_(stack),
      streams_(world, stack, kCodeStreamPort) {
  streams_.listen([this](const std::shared_ptr<net::StreamConnection>& conn) {
    on_connection(conn);
  });
}

CodeRepository::~CodeRepository() {
  for (auto& s : sessions_) {
    s->conn->set_data_handler({});
    s->conn->set_closed_handler({});
    s->framer.set_handler({});
  }
}

void CodeRepository::publish(CodePackage pkg) {
  auto it = packages_.find(pkg.name);
  if (it != packages_.end() && it->second.version >= pkg.version) return;
  packages_[pkg.name] = pkg;
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(CodeMsg::kUpdateAnnounce));
  w.str(pkg.name);
  w.u32(pkg.version);
  stack_.send_multicast(kCodeUpdateGroup, kCodeAnnouncePort,
                        kCodeAnnouncePort, w.take());
}

const CodePackage* CodeRepository::find(const std::string& name) const {
  auto it = packages_.find(name);
  return it != packages_.end() ? &it->second : nullptr;
}

void CodeRepository::on_connection(
    const std::shared_ptr<net::StreamConnection>& conn) {
  auto session = std::make_shared<Session>();
  session->conn = conn;
  sessions_.push_back(session);
  // Handlers capture the session weakly: the session owns the connection and
  // the framer, so a strong capture would form a reference cycle that keeps
  // the whole chain (and its buffers) alive after the closed handler erases
  // it from sessions_. The lock also pins the session for the duration of a
  // callback that erases it mid-invocation.
  session->framer.set_handler([this, weak = std::weak_ptr<Session>(session)](
                                  std::span<const std::byte> msg) {
    auto session = weak.lock();
    if (!session) return;
    net::ByteReader r(msg);
    if (static_cast<CodeMsg>(r.u8()) != CodeMsg::kFetch || !r.ok()) return;
    const std::string name = r.str();
    const std::uint32_t min_version = r.u32();
    if (!r.ok()) return;

    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(CodeMsg::kFetchResponse));
    const CodePackage* pkg = find(name);
    const bool found = pkg != nullptr && pkg->version >= min_version;
    w.u8(found ? 1 : 0);
    if (found) {
      pkg->serialize(w);
      // The code itself: a blob of the declared size rides the stream so
      // deployment latency is a function of real link conditions.
      w.bytes(std::vector<std::byte>(pkg->code_bytes));
      ++fetches_served_;
      bytes_served_ += pkg->code_bytes;
    }
    session->conn->send(net::MessageFramer::frame(w.data()));
    session->conn->close();
  });
  conn->set_data_handler(
      [weak = std::weak_ptr<Session>(session)](std::span<const std::byte> d) {
        if (auto session = weak.lock()) session->framer.on_bytes(d);
      });
  conn->set_closed_handler([this, raw = session.get()] {
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [&](const std::shared_ptr<Session>& s) {
                                     return s.get() == raw;
                                   }),
                    sessions_.end());
  });
}

// ---------------------------------------------------------------------------
// CodeLoader

CodeLoader::CodeLoader(sim::World& world, net::NetStack& stack,
                       phys::DeviceProfile device)
    : CodeLoader(world, stack, std::move(device), Params{}) {}

CodeLoader::CodeLoader(sim::World& world, net::NetStack& stack,
                       phys::DeviceProfile device, Params params)
    : world_(world), stack_(stack), device_(std::move(device)),
      params_(params), streams_(world, stack, kCodeStreamPort) {
  stack_.bind(kCodeAnnouncePort,
              [this](const net::Datagram& dg) { on_announce(dg); });
  stack_.join_group(kCodeUpdateGroup);
}

CodeLoader::~CodeLoader() {
  stack_.unbind(kCodeAnnouncePort);
  for (auto& t : transfers_) {
    t->conn->set_data_handler({});
    t->conn->set_closed_handler({});
    t->framer.set_handler({});
  }
}

bool CodeLoader::installed(const std::string& name) const {
  return installed_.count(name) != 0;
}

std::uint32_t CodeLoader::installed_version(const std::string& name) const {
  auto it = installed_.find(name);
  return it != installed_.end() ? it->second.version : 0;
}

std::uint64_t CodeLoader::used_storage() const {
  std::uint64_t total = 0;
  for (const auto& [name, p] : installed_) total += p.code_bytes;
  return total;
}

std::uint64_t CodeLoader::used_mem() const {
  std::uint64_t total = 0;
  for (const auto& [name, p] : installed_) total += p.mem_bytes;
  return total;
}

double CodeLoader::used_mips() const {
  double total = 0;
  for (const auto& [name, p] : installed_) total += p.mips_required;
  return total;
}

void CodeLoader::on_announce(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  if (static_cast<CodeMsg>(r.u8()) != CodeMsg::kUpdateAnnounce || !r.ok()) {
    return;
  }
  const std::string name = r.str();
  const std::uint32_t version = r.u32();
  if (!r.ok() || !params_.auto_update) return;
  if (installed(name) && version > installed_version(name)) {
    fetch(dg.src.node, name, version, [](const FetchResult&) {});
  }
}

void CodeLoader::fetch(net::NodeId repository, const std::string& name,
                       std::uint32_t min_version, FetchCallback cb) {
  const sim::Time requested_at = world_.now();
  auto transfer = std::make_shared<Transfer>();
  transfer->conn = streams_.connect(repository);
  transfers_.push_back(transfer);
  auto fired = std::make_shared<bool>(false);

  auto finish = [this, raw = transfer.get()] {
    transfers_.erase(std::remove_if(transfers_.begin(), transfers_.end(),
                                    [&](const std::shared_ptr<Transfer>& t) {
                                      return t.get() == raw;
                                    }),
                     transfers_.end());
  };

  transfer->framer.set_handler(
      [this, cb, requested_at, fired](std::span<const std::byte> msg) {
        if (*fired) return;
        net::ByteReader r(msg);
        if (static_cast<CodeMsg>(r.u8()) != CodeMsg::kFetchResponse) return;
        const bool found = r.u8() != 0;
        if (!found || !r.ok()) {
          *fired = true;
          FetchResult res;
          res.latency = world_.now() - requested_at;
          if (cb) cb(res);
          return;
        }
        CodePackage pkg = CodePackage::deserialize(r);
        (void)r.bytes();  // the code blob; its size shaped the latency
        if (!r.ok()) return;
        *fired = true;
        install(std::move(pkg), requested_at, /*transferred=*/true, cb);
      });
  // Weak captures: the transfer owns the connection, so strong captures in
  // the connection's handlers would cycle and leak once finish() erases the
  // transfer from transfers_.
  transfer->conn->set_data_handler(
      [weak = std::weak_ptr<Transfer>(transfer)](std::span<const std::byte> d) {
        if (auto transfer = weak.lock()) transfer->framer.on_bytes(d);
      });
  transfer->conn->set_closed_handler(
      [cb, fired, requested_at, this, finish] {
        finish();
        if (*fired) return;
        *fired = true;
        FetchResult res;  // connection died before the response
        res.latency = world_.now() - requested_at;
        if (cb) cb(res);
      });

  auto send_request = [this, weak = std::weak_ptr<Transfer>(transfer), name,
                       min_version] {
    auto transfer = weak.lock();
    if (!transfer) return;
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(CodeMsg::kFetch));
    w.str(name);
    w.u32(min_version);
    transfer->conn->send(net::MessageFramer::frame(w.data()));
  };
  if (transfer->conn->established()) {
    send_request();
  } else {
    transfer->conn->set_established_handler(send_request);
  }
}

void CodeLoader::install(CodePackage pkg, sim::Time requested_at,
                         bool transferred, FetchCallback cb) {
  // Account existing installs, excluding any older version of this package
  // (an upgrade replaces it).
  std::uint64_t storage = 0, mem = 0;
  double mips = 0.0;
  for (const auto& [name, p] : installed_) {
    if (name == pkg.name) continue;
    storage += p.code_bytes;
    mem += p.mem_bytes;
    mips += p.mips_required;
  }
  FetchResult res;
  res.package = pkg;
  res.transferred = transferred;
  res.issues =
      check_capabilities(pkg, device_, params_.host, storage, mem, mips);
  if (!res.issues.empty()) {
    res.latency = world_.now() - requested_at;
    if (cb) cb(res);
    return;
  }
  const double install_s =
      params_.install_instr_per_byte * static_cast<double>(pkg.code_bytes) /
      (device_.exec_mips * 1e6);
  world_.sim().schedule_in(
      sim::Time::sec(install_s),
      [this, pkg = std::move(pkg), requested_at, res = std::move(res), cb,
       guard = std::weak_ptr<char>(alive_)]() mutable {
        if (guard.expired()) return;
        installed_[pkg.name] = pkg;
        res.ok = true;
        res.latency = world_.now() - requested_at;
        if (on_installed_) on_installed_(pkg);
        if (cb) cb(res);
      });
}

}  // namespace aroma::mcode
