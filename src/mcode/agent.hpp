// Mobile agents: code + state that hops between hosts.
//
// The complement to code deployment in the paper's "mobile code and data"
// focus area: an itinerant agent visits a list of hosts, each host applies
// its registered behaviour for the agent's type (mutating the agent's
// carried data — the "data" genuinely migrates over the simulated network),
// and the agent finally returns to its origin. Hosts validate the agent's
// package against their capabilities and may refuse it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mcode/package.hpp"
#include "net/framer.hpp"
#include "net/stack.hpp"
#include "net/stream.hpp"
#include "sim/world.hpp"

namespace aroma::mcode {

inline constexpr net::Port kAgentPort = 7003;

/// The serializable agent: its code manifest, carried data, and itinerary.
struct AgentState {
  CodePackage package;
  std::vector<std::byte> data;
  std::vector<net::NodeId> itinerary;
  std::uint32_t next_index = 0;
  net::NodeId origin = 0;
  std::uint32_t hops = 0;
  std::uint32_t refusals = 0;  // hosts that could not run it

  void serialize(net::ByteWriter& w) const;
  static AgentState deserialize(net::ByteReader& r);
};

/// One per participating node: receives agents, runs the registered
/// behaviour, forwards them along the itinerary; completed agents are
/// delivered back to the origin's completion callback.
class AgentHost {
 public:
  /// Behaviour a host offers for agents whose package name matches.
  /// Mutates the agent's carried data in place.
  using VisitHandler = std::function<void(AgentState&)>;
  using CompletionHandler = std::function<void(const AgentState&)>;

  AgentHost(sim::World& world, net::NetStack& stack,
            phys::DeviceProfile device, HostRuntime runtime = {});
  ~AgentHost();
  AgentHost(const AgentHost&) = delete;
  AgentHost& operator=(const AgentHost&) = delete;

  void register_behaviour(const std::string& package_name, VisitHandler h) {
    behaviours_[package_name] = std::move(h);
  }

  /// Launches an agent from this node; `done` fires when it returns.
  void launch(AgentState agent, CompletionHandler done);

  std::uint64_t agents_hosted() const { return agents_hosted_; }
  std::uint64_t agents_refused() const { return agents_refused_; }

 private:
  void on_connection(const std::shared_ptr<net::StreamConnection>& conn);
  void handle_arrival(AgentState agent);
  void forward(AgentState agent, net::NodeId to);
  sim::Time execution_time(const AgentState& agent) const;

  sim::World& world_;
  net::NetStack& stack_;
  phys::DeviceProfile device_;
  HostRuntime runtime_;
  net::StreamManager streams_;
  std::map<std::string, VisitHandler> behaviours_;
  std::vector<CompletionHandler> pending_;  // launches awaiting return
  std::uint64_t agents_hosted_ = 0;
  std::uint64_t agents_refused_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  struct Session {
    std::shared_ptr<net::StreamConnection> conn;
    net::MessageFramer framer;
  };
  std::vector<std::shared_ptr<Session>> sessions_;
};

}  // namespace aroma::mcode
