// Mobile code packages: the Aroma project's "Mobile code and data" focus
// area made concrete.
//
// Jini's defining trick was shipping service proxy code to clients; the
// paper's projected $10 system-on-chip was to carry "a sufficiently rich
// run-time environment capable of running sophisticated virtual machines".
// A CodePackage models such downloadable code: a named, versioned blob
// with declared runtime and resource demands that a host must satisfy
// before loading it. It also answers the paper's ROM problem — "in an
// information appliance that has its operating software burned into ROM,
// faulty assumptions are costly" — by making software updatable in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/serialize.hpp"
#include "phys/profile.hpp"

namespace aroma::mcode {

struct CodePackage {
  std::string name;               // e.g. "projection-proxy"
  std::uint32_t version = 1;
  std::uint64_t code_bytes = 64 * 1024;   // transfer + storage size
  std::uint64_t mem_bytes = 256 * 1024;   // runtime footprint
  double mips_required = 5.0;             // sustained execution demand
  std::string runtime = "jvm";            // required execution environment

  void serialize(net::ByteWriter& w) const;
  static CodePackage deserialize(net::ByteReader& r);
};

/// A reason the package cannot run on a host.
struct CapabilityIssue {
  std::string what;
};

/// Execution environment a host offers to mobile code.
struct HostRuntime {
  std::vector<std::string> runtimes{"jvm"};  // VMs present
  double mips_budget_fraction = 0.5;  // share of CPU packages may use
  double storage_budget_fraction = 0.5;
  double mem_budget_fraction = 0.5;
};

/// Checks package demands against a device's hardware and host runtime.
/// `already_used_*` lets a loader account for everything else installed.
std::vector<CapabilityIssue> check_capabilities(
    const CodePackage& pkg, const phys::DeviceProfile& device,
    const HostRuntime& host, std::uint64_t already_used_storage = 0,
    std::uint64_t already_used_mem = 0, double already_used_mips = 0.0);

}  // namespace aroma::mcode
