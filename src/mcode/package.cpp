#include "mcode/package.hpp"

#include <algorithm>

namespace aroma::mcode {

void CodePackage::serialize(net::ByteWriter& w) const {
  w.str(name);
  w.u32(version);
  w.u64(code_bytes);
  w.u64(mem_bytes);
  w.f64(mips_required);
  w.str(runtime);
}

CodePackage CodePackage::deserialize(net::ByteReader& r) {
  CodePackage p;
  p.name = r.str();
  p.version = r.u32();
  p.code_bytes = r.u64();
  p.mem_bytes = r.u64();
  p.mips_required = r.f64();
  p.runtime = r.str();
  return p;
}

std::vector<CapabilityIssue> check_capabilities(
    const CodePackage& pkg, const phys::DeviceProfile& device,
    const HostRuntime& host, std::uint64_t already_used_storage,
    std::uint64_t already_used_mem, double already_used_mips) {
  std::vector<CapabilityIssue> issues;
  if (std::find(host.runtimes.begin(), host.runtimes.end(), pkg.runtime) ==
      host.runtimes.end()) {
    issues.push_back({"host lacks the '" + pkg.runtime + "' runtime"});
  }
  const auto storage_budget = static_cast<std::uint64_t>(
      static_cast<double>(device.storage_bytes) *
      host.storage_budget_fraction);
  if (already_used_storage + pkg.code_bytes > storage_budget) {
    issues.push_back({"insufficient storage for the package code"});
  }
  const auto mem_budget = static_cast<std::uint64_t>(
      static_cast<double>(device.mem_bytes) * host.mem_budget_fraction);
  if (already_used_mem + pkg.mem_bytes > mem_budget) {
    issues.push_back({"insufficient memory for the package working set"});
  }
  const double mips_budget = device.exec_mips * host.mips_budget_fraction;
  if (already_used_mips + pkg.mips_required > mips_budget) {
    issues.push_back({"execution engine too slow for the package"});
  }
  return issues;
}

}  // namespace aroma::mcode
