// Code deployment: a repository service plus per-device loaders.
//
// The repository publishes versioned packages and announces updates over
// multicast; loaders fetch code over reliable streams, validate host
// capabilities, charge realistic install time on the device CPU, and can
// auto-upgrade when a newer version is announced — software updates for
// appliances whose 1999 counterparts were "burned into ROM".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mcode/package.hpp"
#include "net/framer.hpp"
#include "net/stack.hpp"
#include "net/stream.hpp"
#include "sim/world.hpp"

namespace aroma::mcode {

inline constexpr net::Port kCodeStreamPort = 7001;
inline constexpr net::Port kCodeAnnouncePort = 7002;
inline constexpr net::GroupId kCodeUpdateGroup = 7;

enum class CodeMsg : std::uint8_t {
  kFetch = 1,        // name, min_version
  kFetchResponse,    // found u8, package meta, code blob
  kUpdateAnnounce,   // datagram: name, version (repository node = source)
};

/// Holds published packages and serves fetches.
class CodeRepository {
 public:
  CodeRepository(sim::World& world, net::NetStack& stack);
  ~CodeRepository();
  CodeRepository(const CodeRepository&) = delete;
  CodeRepository& operator=(const CodeRepository&) = delete;

  /// Publishes (or upgrades) a package and multicasts the announcement.
  void publish(CodePackage pkg);

  const CodePackage* find(const std::string& name) const;
  std::uint64_t fetches_served() const { return fetches_served_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  void on_connection(const std::shared_ptr<net::StreamConnection>& conn);

  sim::World& world_;
  net::NetStack& stack_;
  net::StreamManager streams_;
  std::map<std::string, CodePackage> packages_;
  std::uint64_t fetches_served_ = 0;
  std::uint64_t bytes_served_ = 0;
  // Each live connection keeps its framer alive until closed.
  struct Session {
    std::shared_ptr<net::StreamConnection> conn;
    net::MessageFramer framer;
  };
  std::vector<std::shared_ptr<Session>> sessions_;
};

struct FetchResult {
  bool ok = false;
  std::vector<CapabilityIssue> issues;  // nonempty when rejected locally
  CodePackage package;
  sim::Time latency;     // request to installed
  bool transferred = false;  // code actually crossed the network
};

/// Per-device loader/execution host for mobile code.
class CodeLoader {
 public:
  struct Params {
    HostRuntime host{};
    /// Install cost: instructions charged per code byte (unpack+verify+link).
    double install_instr_per_byte = 20.0;
    bool auto_update = true;
  };

  CodeLoader(sim::World& world, net::NetStack& stack,
             phys::DeviceProfile device);
  CodeLoader(sim::World& world, net::NetStack& stack,
             phys::DeviceProfile device, Params params);
  ~CodeLoader();
  CodeLoader(const CodeLoader&) = delete;
  CodeLoader& operator=(const CodeLoader&) = delete;

  using FetchCallback = std::function<void(const FetchResult&)>;

  /// Fetches and installs `name` (>= min_version) from the repository node.
  void fetch(net::NodeId repository, const std::string& name,
             std::uint32_t min_version, FetchCallback cb);

  bool installed(const std::string& name) const;
  std::uint32_t installed_version(const std::string& name) const;
  std::size_t installed_count() const { return installed_.size(); }

  /// Fires after each successful install/upgrade.
  void set_installed_callback(std::function<void(const CodePackage&)> cb) {
    on_installed_ = std::move(cb);
  }

  std::uint64_t used_storage() const;
  std::uint64_t used_mem() const;
  double used_mips() const;

 private:
  void on_announce(const net::Datagram& dg);
  void install(CodePackage pkg, sim::Time requested_at, bool transferred,
               FetchCallback cb);

  sim::World& world_;
  net::NetStack& stack_;
  phys::DeviceProfile device_;
  Params params_;
  net::StreamManager streams_;
  std::map<std::string, CodePackage> installed_;
  std::function<void(const CodePackage&)> on_installed_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  struct Transfer {
    std::shared_ptr<net::StreamConnection> conn;
    net::MessageFramer framer;
  };
  std::vector<std::shared_ptr<Transfer>> transfers_;
};

}  // namespace aroma::mcode
