#include "scn/blob.hpp"

#include <functional>
#include <utility>

#include "scn/passes.hpp"
#include "sim/time.hpp"

namespace aroma::scn {

namespace {

// --- expression streams ----------------------------------------------------

std::uint32_t node_count(const Expr& e) {
  std::uint32_t n = 1;
  if (e.lhs != nullptr) n += node_count(*e.lhs);
  if (e.rhs != nullptr) n += node_count(*e.rhs);
  return n;
}

void write_expr_post(const Expr& e, snap::SectionWriter& w) {
  if (e.lhs != nullptr) write_expr_post(*e.lhs, w);
  if (e.rhs != nullptr) write_expr_post(*e.rhs, w);
  w.u8(static_cast<std::uint8_t>(e.op));
  if (e.op == ExprOp::kNum) w.f64(e.value);
}

void write_expr(const Expr& e, snap::SectionWriter& w) {
  w.u32(node_count(e));
  write_expr_post(e, w);
}

std::unique_ptr<Expr> read_expr(snap::SectionReader& r) {
  const std::uint32_t ops = r.u32();
  if (ops == 0 || ops > 4096) {
    throw ScnError("malformed expression stream (" + std::to_string(ops) +
                   " opcodes)");
  }
  std::vector<std::unique_ptr<Expr>> stack;
  for (std::uint32_t k = 0; k < ops; ++k) {
    const auto op = static_cast<ExprOp>(r.u8());
    auto node = std::make_unique<Expr>();
    node->op = op;
    switch (op) {
      case ExprOp::kNum:
        node->value = r.f64();
        break;
      case ExprOp::kShard:
      case ExprOp::kIndex:
        break;
      case ExprOp::kNeg:
        if (stack.empty()) throw ScnError("expression stack underflow");
        node->lhs = std::move(stack.back());
        stack.pop_back();
        break;
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kDiv:
      case ExprOp::kMod:
        if (stack.size() < 2) throw ScnError("expression stack underflow");
        node->rhs = std::move(stack.back());
        stack.pop_back();
        node->lhs = std::move(stack.back());
        stack.pop_back();
        break;
      default:
        throw ScnError("unknown expression opcode " +
                       std::to_string(static_cast<int>(op)));
    }
    stack.push_back(std::move(node));
  }
  if (stack.size() != 1) {
    throw ScnError("expression stream leaves " + std::to_string(stack.size()) +
                   " values on the stack");
  }
  return std::move(stack.front());
}

EntityRef read_ref(snap::SectionReader& r, std::size_t entity_count,
                   const Scenario& s) {
  const std::uint32_t index = r.u32();
  if (index >= entity_count) {
    throw ScnError("entity index " + std::to_string(index) +
                   " out of range (" + std::to_string(entity_count) +
                   " entities)");
  }
  EntityRef ref;
  ref.index = static_cast<int>(index);
  ref.name = s.entities[index].name;
  return ref;
}

}  // namespace

std::vector<std::uint8_t> encode(const Scenario& s) {
  const sim::Time t0 = sim::Time::zero();
  snap::SnapWriter out;

  {
    snap::SectionWriter w(t0);
    w.str(s.name);
    w.f64(s.topo_w);
    w.f64(s.topo_h);
    w.u32(s.pass_mask);
    w.u32(s.folds);
    w.u32(s.trains_lowered);
    out.add(kTagHeader, 0, w.take());
  }
  {
    snap::SectionWriter w(t0);
    w.u64(s.entities.size());
    for (const EntityDecl& e : s.entities) {
      w.str(e.name);
      w.str(e.profile);
      w.b(e.is_group);
      write_expr(*e.count, w);
      write_expr(*e.pos_x, w);
      write_expr(*e.pos_y, w);
      write_expr(*e.channel, w);
    }
    out.add(kTagEntities, 0, w.take());
  }
  {
    snap::SectionWriter w(t0);
    w.u64(s.registrars.size());
    for (const RegistrarDecl& r : s.registrars) {
      w.u32(static_cast<std::uint32_t>(r.on.index));
    }
    w.u64(s.projectors.size());
    for (const ProjectorDecl& p : s.projectors) {
      w.u32(static_cast<std::uint32_t>(p.on.index));
    }
    w.u64(s.displays.size());
    for (const DisplayDecl& d : s.displays) {
      w.u32(static_cast<std::uint32_t>(d.on.index));
      write_expr(*d.width, w);
      write_expr(*d.height, w);
      write_expr(*d.deck_seed, w);
    }
    w.u64(s.goals.size());
    for (const GoalDecl& g : s.goals) {
      w.u8(static_cast<std::uint8_t>(g.kind));
      w.u32(static_cast<std::uint32_t>(g.actor.index));
      w.str(g.persona);
    }
    out.add(kTagBuild, 0, w.take());
  }
  {
    snap::SectionWriter w(t0);
    w.u64(s.traffic.size());
    for (const TrafficDecl& t : s.traffic) {
      w.u8(static_cast<std::uint8_t>(t.kind));
      w.u32(static_cast<std::uint32_t>(t.from.index));
      if (t.kind == TrafficKind::kPing) {
        w.u32(static_cast<std::uint32_t>(t.to.index));
        write_expr(*t.period, w);
        write_expr(*t.payload, w);
        w.b(t.train_lowered);
      } else {
        write_expr(*t.period, w);
      }
    }
    out.add(kTagTraffic, 0, w.take());
  }
  {
    snap::SectionWriter w(t0);
    write_expr(*s.phases.settle, w);
    write_expr(*s.phases.meeting, w);
    write_expr(*s.phases.horizon, w);
    write_expr(*s.phases.drain, w);
    out.add(kTagPhases, 0, w.take());
  }
  if ((s.pass_mask & kPassStrategy) != 0) {
    snap::SectionWriter w(t0);
    w.b(s.strategy.kernel_trains);
    w.u32(s.strategy.class_modulus);
    w.u64(s.strategy.class_cost.size());
    for (const double c : s.strategy.class_cost) w.f64(c);
    out.add(kTagStrategy, snap::kSectionOptional, w.take());
  }

  return out.finish(kScnMagic, kScnVersion);
}

Scenario decode(std::span<const std::uint8_t> blob) {
  // Container-level structure (magic, version, CRC, truncation) reuses
  // snap's reader; its failures surface as ScnError.
  std::unique_ptr<snap::SnapReader> reader;
  try {
    reader = std::make_unique<snap::SnapReader>(blob, kScnMagic, kScnVersion);
  } catch (const snap::SnapError& e) {
    throw ScnError(std::string("scenario blob rejected: ") + e.what());
  }

  const sim::Time t0 = sim::Time::zero();
  Scenario s;
  const snap::Section* sections[5] = {};
  constexpr std::uint32_t required[5] = {kTagHeader, kTagEntities, kTagBuild,
                                         kTagTraffic, kTagPhases};
  const snap::Section* strategy_section = nullptr;
  for (const snap::Section& sec : reader->sections()) {
    bool known = false;
    for (int k = 0; k < 5; ++k) {
      if (sec.tag == required[k]) {
        sections[k] = &sec;
        known = true;
      }
    }
    if (sec.tag == kTagStrategy) {
      strategy_section = &sec;
      known = true;
    }
    if (!known && (sec.flags & snap::kSectionOptional) == 0) {
      throw ScnError("scenario blob carries unknown required section " +
                     snap::tag_name(sec.tag));
    }
    // Unknown optional sections are forward-compat: skip them.
  }
  for (int k = 0; k < 5; ++k) {
    if (sections[k] == nullptr) {
      throw ScnError("scenario blob is missing required section " +
                     snap::tag_name(required[k]));
    }
  }

  try {
    {
      snap::SectionReader r(sections[0]->payload, t0);
      s.name = r.str();
      s.topo_w = r.f64();
      s.topo_h = r.f64();
      s.pass_mask = r.u32();
      s.folds = r.u32();
      s.trains_lowered = r.u32();
      r.expect_end();
    }
    {
      snap::SectionReader r(sections[1]->payload, t0);
      const std::uint64_t n = r.u64();
      if (n > 4096) throw ScnError("implausible entity count");
      for (std::uint64_t k = 0; k < n; ++k) {
        EntityDecl e;
        e.name = r.str();
        e.profile = r.str();
        e.is_group = r.b();
        e.count = read_expr(r);
        e.pos_x = read_expr(r);
        e.pos_y = read_expr(r);
        e.channel = read_expr(r);
        s.entities.push_back(std::move(e));
      }
      r.expect_end();
    }
    {
      snap::SectionReader r(sections[2]->payload, t0);
      const std::uint64_t nreg = r.u64();
      for (std::uint64_t k = 0; k < nreg; ++k) {
        s.registrars.push_back(RegistrarDecl{read_ref(r, s.entities.size(), s)});
      }
      const std::uint64_t nproj = r.u64();
      for (std::uint64_t k = 0; k < nproj; ++k) {
        s.projectors.push_back(ProjectorDecl{read_ref(r, s.entities.size(), s)});
      }
      const std::uint64_t ndisp = r.u64();
      for (std::uint64_t k = 0; k < ndisp; ++k) {
        DisplayDecl d;
        d.on = read_ref(r, s.entities.size(), s);
        d.width = read_expr(r);
        d.height = read_expr(r);
        d.deck_seed = read_expr(r);
        s.displays.push_back(std::move(d));
      }
      const std::uint64_t ngoal = r.u64();
      for (std::uint64_t k = 0; k < ngoal; ++k) {
        GoalDecl g;
        g.kind = static_cast<GoalKind>(r.u8());
        if (g.kind != GoalKind::kPresent && g.kind != GoalKind::kDiscover) {
          throw ScnError("unknown goal kind in blob");
        }
        g.actor = read_ref(r, s.entities.size(), s);
        g.persona = r.str();
        s.goals.push_back(std::move(g));
      }
      r.expect_end();
    }
    {
      snap::SectionReader r(sections[3]->payload, t0);
      const std::uint64_t n = r.u64();
      if (n > 4096) throw ScnError("implausible traffic count");
      for (std::uint64_t k = 0; k < n; ++k) {
        TrafficDecl t;
        t.kind = static_cast<TrafficKind>(r.u8());
        if (t.kind != TrafficKind::kPing && t.kind != TrafficKind::kSlides) {
          throw ScnError("unknown traffic kind in blob");
        }
        t.from = read_ref(r, s.entities.size(), s);
        if (t.kind == TrafficKind::kPing) {
          t.to = read_ref(r, s.entities.size(), s);
          t.period = read_expr(r);
          t.payload = read_expr(r);
          t.train_lowered = r.b();
        } else {
          t.period = read_expr(r);
        }
        s.traffic.push_back(std::move(t));
      }
      r.expect_end();
    }
    {
      snap::SectionReader r(sections[4]->payload, t0);
      s.phases.settle = read_expr(r);
      s.phases.meeting = read_expr(r);
      s.phases.horizon = read_expr(r);
      s.phases.drain = read_expr(r);
      r.expect_end();
    }
    if (strategy_section != nullptr) {
      snap::SectionReader r(strategy_section->payload, t0);
      s.strategy.kernel_trains = r.b();
      s.strategy.class_modulus = r.u32();
      const std::uint64_t n = r.u64();
      if (s.strategy.class_modulus == 0 || s.strategy.class_modulus > 64 ||
          n != s.strategy.class_modulus) {
        throw ScnError("malformed strategy section");
      }
      for (std::uint64_t k = 0; k < n; ++k) {
        s.strategy.class_cost.push_back(r.f64());
      }
      r.expect_end();
    } else {
      s.strategy = Strategy{};
      s.strategy.class_cost = {0.0};
    }
  } catch (const snap::SnapError& e) {
    throw ScnError(std::string("scenario blob rejected: ") + e.what());
  }
  return s;
}

}  // namespace aroma::scn
