// Scenario DSL abstract syntax / intermediate representation.
//
// A `.scn` file is a declarative description of one pervasive-computing
// cell: entities placed on a 2-D topology, service roles bound to them,
// user goals, traffic, and the phase timeline. The parser lowers the text
// into the Scenario IR below; the pass pipeline (scn/passes.hpp) rewrites
// it; the blob encoder (scn/blob.hpp) serializes it; and the runtime
// (scn/runtime.hpp) instantiates a world from it — the same world, in the
// same construction order, as the hand-written rooms it replaces.
//
// Expressions are tiny arithmetic trees over two free variables:
//   shard — the shard index of the instantiating fleet task,
//   i     — the member index within a `group` (0 for singleton entities).
// This is what lets one scenario text describe a heterogeneous fleet
// (`horizon 55 + 10 * (shard % 5)`) and staggered group traffic
// (`period 0.4 + 0.1 * i`) while staying fully deterministic: every value
// is a pure function of (scenario, shard, i).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace aroma::scn {

/// Any scenario-compiler failure: a parse error (with position), a
/// validation diagnostic, a malformed blob, or a runtime resolution
/// failure. Diagnostics render as "name.scn:LINE:COL: message".
class ScnError : public std::runtime_error {
 public:
  ScnError(std::string message, int line, int col)
      : std::runtime_error(std::move(message)), line_(line), col_(col) {}
  explicit ScnError(std::string message)
      : std::runtime_error(std::move(message)) {}

  /// 1-based source position; 0 when the error is not anchored to text.
  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_ = 0;
  int col_ = 0;
};

// ---------------------------------------------------------------------------
// Expressions.

enum class ExprOp : std::uint8_t {
  kNum = 0,    // literal (value)
  kShard = 1,  // free variable: shard index
  kIndex = 2,  // free variable: group member index
  kAdd = 3,
  kSub = 4,
  kMul = 5,
  kDiv = 6,
  kMod = 7,  // integer modulo: (int64)l % (int64)r
  kNeg = 8,
};

struct Expr {
  ExprOp op = ExprOp::kNum;
  double value = 0.0;  // kNum only
  std::unique_ptr<Expr> lhs, rhs;  // kNeg uses lhs only
  int line = 0, col = 0;

  static std::unique_ptr<Expr> num(double v, int line = 0, int col = 0) {
    auto e = std::make_unique<Expr>();
    e->value = v;
    e->line = line;
    e->col = col;
    return e;
  }
};

struct EvalContext {
  std::uint64_t shard = 0;
  std::uint64_t index = 0;  // group member index `i`
};

/// Evaluates `e` under `ctx`. Division or modulo by zero throws ScnError
/// anchored at the operator (the validate pass rejects the constant cases
/// at compile time; this guards shard-dependent ones at instantiation).
double eval(const Expr& e, const EvalContext& ctx);

/// True when the expression references the given free variable anywhere.
bool uses_shard(const Expr& e);
bool uses_index(const Expr& e);

std::unique_ptr<Expr> clone(const Expr& e);

// ---------------------------------------------------------------------------
// Statements. Declaration order is semantic: the runtime constructs
// components in this order, and the sequence of RNG forks during setup is
// part of the deterministic contract (see scn/runtime.hpp).

/// A source-position-carrying entity reference, resolved to an index into
/// Scenario::entities by the validate pass (-1 until then).
struct EntityRef {
  std::string name;
  int line = 0, col = 0;
  int index = -1;
};

/// `entity NAME profile IDENT at (X, Y) [channel C];` or
/// `group NAME profile IDENT count N at (X, Y) [channel C];`
/// A group instantiates eval(count) devices; X/Y/C may use `i`.
struct EntityDecl {
  std::string name;
  std::string profile;
  bool is_group = false;
  std::unique_ptr<Expr> count;  // 1 for singletons
  std::unique_ptr<Expr> pos_x, pos_y;
  std::unique_ptr<Expr> channel;  // default 6
  int line = 0, col = 0;
};

/// `registrar on ENT;` — a Jini lookup service on that entity.
struct RegistrarDecl {
  EntityRef on;
};

/// `projector on ENT;` — a SmartProjector (plus its export-side Jini
/// client) on that entity.
struct ProjectorDecl {
  EntityRef on;
};

/// `display on ENT size W x H deck N;` — a PresenterDisplay framebuffer
/// with a SlideDeckWorkload seeded with N.
struct DisplayDecl {
  EntityRef on;
  std::unique_ptr<Expr> width, height, deck_seed;
};

enum class GoalKind : std::uint8_t { kPresent = 0, kDiscover = 1 };

/// `goal present actor ENT persona IDENT;` — the documented Smart
/// Projector procedure, or `goal discover ...` — a lone service lookup.
struct GoalDecl {
  GoalKind kind = GoalKind::kPresent;
  EntityRef actor;
  std::string persona;
  int line = 0, col = 0;
};

enum class TrafficKind : std::uint8_t { kPing = 0, kSlides = 1 };

/// `traffic ping from ENT to ENT period P [payload N];` — each member of
/// the source entity sends N bytes to the destination every P seconds
/// (P may use `i` to stagger members). `traffic slides on ENT period P;`
/// flips the slide deck of the display on ENT.
struct TrafficDecl {
  TrafficKind kind = TrafficKind::kPing;
  EntityRef from;  // ping: source; slides: display host
  EntityRef to;    // ping only
  std::unique_ptr<Expr> period;
  std::unique_ptr<Expr> payload;  // ping only; default 24
  /// Set by the trains pass: lowered to a pre-scheduled event train
  /// (one generator per tick parks every member's send at the same
  /// timestamp, which the kernel's train batching absorbs).
  bool train_lowered = false;
};

/// The phase timeline, all absolute simulated seconds:
///   settle  — infrastructure quiesces (service export, registrations),
///   meeting — goal procedures have run; background traffic starts,
///   horizon — traffic stops,
///   drain   — tail run past the horizon so in-flight frames land.
struct Phases {
  std::unique_ptr<Expr> settle;   // default 3
  std::unique_ptr<Expr> meeting;  // default 45
  std::unique_ptr<Expr> horizon;  // required
  std::unique_ptr<Expr> drain;    // default 2
};

/// Per-shard-class placement weights plus kernel knobs, computed by the
/// strategy pass from the cost model (scn/cost.hpp). `classes` maps
/// shard % class_modulus to an estimated event cost; the fleet runner
/// launches heavier classes first (safe: fleet fingerprints fold in shard
/// order, never completion order).
struct Strategy {
  bool kernel_trains = false;  // enable same-time train batching
  std::uint32_t class_modulus = 1;
  std::vector<double> class_cost;  // size == class_modulus
};

struct Scenario {
  std::string name;
  double topo_w = 0, topo_h = 0;
  std::vector<EntityDecl> entities;
  std::vector<RegistrarDecl> registrars;
  std::vector<ProjectorDecl> projectors;
  std::vector<DisplayDecl> displays;
  std::vector<GoalDecl> goals;
  std::vector<TrafficDecl> traffic;
  Phases phases;

  // Pass artifacts (not parsed; recomputed on every compile).
  Strategy strategy;
  std::uint32_t pass_mask = 0;    // bit per pass that ran (see passes.hpp)
  std::uint32_t folds = 0;        // subtrees folded to constants
  std::uint32_t trains_lowered = 0;  // traffic decls lowered to trains
};

}  // namespace aroma::scn
