#include "scn/passes.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <optional>
#include <set>
#include <string>

#include "phys/profile.hpp"
#include "user/faculties.hpp"

namespace aroma::scn {

namespace {

/// The value of an expression with no free variables; nullopt otherwise.
std::optional<double> const_value(const Expr& e) {
  if (uses_shard(e) || uses_index(e)) return std::nullopt;
  return eval(e, EvalContext{});
}

[[noreturn]] void fail(const std::string& msg, int line, int col) {
  throw ScnError("line " + std::to_string(line) + ":" + std::to_string(col) +
                     ": " + msg,
                 line, col);
}

// ---------------------------------------------------------------------------
// validate

void check_zero_denominators(const Expr& e) {
  if (e.lhs != nullptr) check_zero_denominators(*e.lhs);
  if (e.rhs != nullptr) check_zero_denominators(*e.rhs);
  if (e.op == ExprOp::kDiv || e.op == ExprOp::kMod) {
    const auto d = const_value(*e.rhs);
    if (d.has_value() &&
        (e.op == ExprOp::kDiv ? *d == 0.0
                              : static_cast<std::int64_t>(*d) == 0)) {
      fail(e.op == ExprOp::kDiv ? "division by constant zero"
                                : "modulo by constant zero",
           e.line, e.col);
    }
  }
}

void resolve(const Scenario& s, EntityRef& ref) {
  for (std::size_t k = 0; k < s.entities.size(); ++k) {
    if (s.entities[k].name == ref.name) {
      ref.index = static_cast<int>(k);
      return;
    }
  }
  fail("unknown entity '" + ref.name + "'", ref.line, ref.col);
}

void validate(Scenario& s) {
  if (s.topo_w <= 0 || s.topo_h <= 0) {
    throw ScnError("scenario '" + s.name +
                   "' must declare a positive topology");
  }
  if (s.entities.empty()) {
    throw ScnError("scenario '" + s.name + "' declares no entities");
  }
  if (s.phases.horizon == nullptr) {
    throw ScnError("scenario '" + s.name + "' must declare a horizon");
  }
  if (s.phases.settle == nullptr) s.phases.settle = Expr::num(3.0);
  if (s.phases.meeting == nullptr) s.phases.meeting = Expr::num(45.0);
  if (s.phases.drain == nullptr) s.phases.drain = Expr::num(2.0);

  std::set<std::string> names;
  for (const EntityDecl& e : s.entities) {
    if (!names.insert(e.name).second) {
      fail("duplicate entity name '" + e.name + "'", e.line, e.col);
    }
    phys::DeviceProfile profile;
    if (!phys::profiles::by_name(e.profile, &profile)) {
      fail("unknown device profile '" + e.profile + "'", e.line, e.col);
    }
    if (!profile.net.has_radio) {
      fail("profile '" + e.profile +
               "' has no radio; scenario entities must be reachable",
           e.line, e.col);
    }
    if (uses_index(*e.count)) {
      fail("group count cannot reference the member index 'i'", e.line, e.col);
    }
    const auto n = const_value(*e.count);
    if (n.has_value() && (*n < 0 || *n > 4096)) {
      fail("group count out of range [0, 4096]", e.line, e.col);
    }
    // Constant positions must land on the topology; shard/member-dependent
    // ones are checked at instantiation.
    const auto px = const_value(*e.pos_x);
    const auto py = const_value(*e.pos_y);
    if ((px.has_value() && (*px < 0 || *px > s.topo_w)) ||
        (py.has_value() && (*py < 0 || *py > s.topo_h))) {
      fail("entity '" + e.name + "' placed outside the topology", e.line,
           e.col);
    }
    check_zero_denominators(*e.count);
    check_zero_denominators(*e.pos_x);
    check_zero_denominators(*e.pos_y);
    check_zero_denominators(*e.channel);
  }

  for (RegistrarDecl& r : s.registrars) resolve(s, r.on);
  for (ProjectorDecl& p : s.projectors) resolve(s, p.on);
  for (DisplayDecl& d : s.displays) {
    resolve(s, d.on);
    check_zero_denominators(*d.width);
    check_zero_denominators(*d.height);
    check_zero_denominators(*d.deck_seed);
  }

  auto has_display_on = [&s](int entity) {
    return std::any_of(s.displays.begin(), s.displays.end(),
                       [entity](const DisplayDecl& d) {
                         return d.on.index == entity;
                       });
  };

  for (GoalDecl& g : s.goals) {
    resolve(s, g.actor);
    user::Faculties persona;
    if (!user::personas::by_name(g.persona, &persona)) {
      fail("unknown persona '" + g.persona + "'", g.line, g.col);
    }
    if (s.registrars.empty()) {
      fail("goal needs a registrar to discover services through", g.line,
           g.col);
    }
    if (g.kind == GoalKind::kPresent) {
      if (s.projectors.empty()) {
        fail("present goal needs a projector", g.line, g.col);
      }
      if (!has_display_on(g.actor.index)) {
        fail("present goal actor '" + g.actor.name +
                 "' has no display to project from",
             g.line, g.col);
      }
    }
  }

  for (TrafficDecl& t : s.traffic) {
    resolve(s, t.from);
    check_zero_denominators(*t.period);
    const auto period = const_value(*t.period);
    if (period.has_value() && *period <= 0) {
      fail("traffic period must be positive", t.from.line, t.from.col);
    }
    if (t.kind == TrafficKind::kPing) {
      resolve(s, t.to);
      if (s.entities[static_cast<std::size_t>(t.to.index)].is_group) {
        fail("ping destination '" + t.to.name +
                 "' must be a singleton entity, not a group",
             t.to.line, t.to.col);
      }
      check_zero_denominators(*t.payload);
      const auto payload = const_value(*t.payload);
      if (payload.has_value() && (*payload < 1 || *payload > 1400)) {
        fail("ping payload out of range [1, 1400] bytes", t.from.line,
             t.from.col);
      }
    } else {
      if (!has_display_on(t.from.index)) {
        fail("slides traffic on '" + t.from.name + "' needs a display there",
             t.from.line, t.from.col);
      }
    }
  }

  check_zero_denominators(*s.phases.settle);
  check_zero_denominators(*s.phases.meeting);
  check_zero_denominators(*s.phases.horizon);
  check_zero_denominators(*s.phases.drain);
  const auto settle = const_value(*s.phases.settle);
  const auto meeting = const_value(*s.phases.meeting);
  if (settle.has_value() && meeting.has_value() && *settle > *meeting) {
    throw ScnError("scenario '" + s.name + "': settle phase (" +
                   std::to_string(*settle) + "s) ends after the meeting (" +
                   std::to_string(*meeting) + "s)");
  }
  s.pass_mask |= kPassValidate;
}

// ---------------------------------------------------------------------------
// fold

std::uint32_t op_nodes(const Expr& e) {
  std::uint32_t n = e.op == ExprOp::kNum || e.op == ExprOp::kShard ||
                            e.op == ExprOp::kIndex
                        ? 0
                        : 1;
  if (e.lhs != nullptr) n += op_nodes(*e.lhs);
  if (e.rhs != nullptr) n += op_nodes(*e.rhs);
  return n;
}

void fold_expr(std::unique_ptr<Expr>& e, std::uint32_t& folds) {
  if (e->lhs != nullptr) fold_expr(e->lhs, folds);
  if (e->rhs != nullptr) fold_expr(e->rhs, folds);
  if (e->op == ExprOp::kNum || e->op == ExprOp::kShard ||
      e->op == ExprOp::kIndex) {
    return;
  }
  if (uses_shard(*e) || uses_index(*e)) return;
  const std::uint32_t eliminated = op_nodes(*e);
  auto folded = Expr::num(eval(*e, EvalContext{}), e->line, e->col);
  e = std::move(folded);
  folds += eliminated;
}

void fold(Scenario& s) {
  auto run = [&s](std::unique_ptr<Expr>& e) { fold_expr(e, s.folds); };
  for (EntityDecl& e : s.entities) {
    run(e.count);
    run(e.pos_x);
    run(e.pos_y);
    run(e.channel);
  }
  for (DisplayDecl& d : s.displays) {
    run(d.width);
    run(d.height);
    run(d.deck_seed);
  }
  for (TrafficDecl& t : s.traffic) {
    run(t.period);
    if (t.payload != nullptr) run(t.payload);
  }
  run(s.phases.settle);
  run(s.phases.meeting);
  run(s.phases.horizon);
  run(s.phases.drain);
  s.pass_mask |= kPassFold;
}

// ---------------------------------------------------------------------------
// trains

void trains(Scenario& s) {
  for (TrafficDecl& t : s.traffic) {
    if (t.kind != TrafficKind::kPing) continue;
    const EntityDecl& src = s.entities[static_cast<std::size_t>(t.from.index)];
    const auto period = const_value(*t.period);
    const auto members = const_value(*src.count);
    const auto payload = const_value(*t.payload);
    if (period.has_value() && payload.has_value() && members.has_value() &&
        *members > 1) {
      t.train_lowered = true;
      ++s.trains_lowered;
    }
  }
  s.pass_mask |= kPassTrains;
}

// ---------------------------------------------------------------------------
// strategy

std::uint32_t lcm_u32(std::uint32_t a, std::uint32_t b) {
  return a / std::gcd(a, b) * b;
}

void collect_moduli(const Expr& e, std::uint32_t* modulus) {
  if (e.lhs != nullptr) collect_moduli(*e.lhs, modulus);
  if (e.rhs != nullptr) collect_moduli(*e.rhs, modulus);
  if (e.op == ExprOp::kMod && e.rhs->op == ExprOp::kNum &&
      uses_shard(*e.lhs)) {
    const auto c = static_cast<std::int64_t>(e.rhs->value);
    if (c > 1 && c <= 64) {
      *modulus = std::min<std::uint32_t>(
          64, lcm_u32(*modulus, static_cast<std::uint32_t>(c)));
    }
  }
}

void for_each_expr(const Scenario& s,
                   const std::function<void(const Expr&)>& fn) {
  for (const EntityDecl& e : s.entities) {
    fn(*e.count);
    fn(*e.pos_x);
    fn(*e.pos_y);
    fn(*e.channel);
  }
  for (const DisplayDecl& d : s.displays) {
    fn(*d.width);
    fn(*d.height);
    fn(*d.deck_seed);
  }
  for (const TrafficDecl& t : s.traffic) {
    fn(*t.period);
    if (t.payload != nullptr) fn(*t.payload);
  }
  fn(*s.phases.settle);
  fn(*s.phases.meeting);
  fn(*s.phases.horizon);
  fn(*s.phases.drain);
}

/// Estimated event cost (ns) of one shard of class `c`: infrastructure
/// setup plus every traffic generator's tick stream priced by category.
double estimate_class_cost(const Scenario& s, const CostModel& cost,
                           std::uint64_t c) {
  const EvalContext shard_ctx{c, 0};
  const double meeting = eval(*s.phases.meeting, shard_ctx);
  const double horizon = eval(*s.phases.horizon, shard_ctx);
  const double window = std::max(0.0, horizon - meeting);

  // Setup: discovery exchanges plus per-device MAC warmup.
  double total = 400.0 * cost.weight("discovery");
  for (const EntityDecl& e : s.entities) {
    total += eval(*e.count, shard_ctx) * 80.0 * cost.weight("mac");
  }
  for (const GoalDecl& g : s.goals) {
    total += (g.kind == GoalKind::kPresent ? 2000.0 : 400.0) *
             cost.weight("app");
  }

  for (const TrafficDecl& t : s.traffic) {
    if (t.kind == TrafficKind::kPing) {
      const EntityDecl& src =
          s.entities[static_cast<std::size_t>(t.from.index)];
      const auto members =
          static_cast<std::uint64_t>(eval(*src.count, shard_ctx));
      for (std::uint64_t i = 0; i < members; ++i) {
        const double period = eval(*t.period, EvalContext{c, i});
        if (period <= 0) continue;
        const double ticks = window / period;
        // One timer tick, a MAC contention round, one radio delivery.
        total += ticks * (cost.weight("timer") + 3.0 * cost.weight("mac") +
                          cost.weight("radio"));
      }
    } else {
      const double period = eval(*t.period, shard_ctx);
      if (period <= 0) continue;
      const double ticks = window / period;
      total += ticks * (cost.weight("timer") + cost.weight("rfb") +
                        cost.weight("stream"));
    }
  }
  return total;
}

void strategy(Scenario& s, const CostModel& cost) {
  std::uint32_t modulus = 1;
  for_each_expr(s, [&modulus](const Expr& e) { collect_moduli(e, &modulus); });
  s.strategy.class_modulus = modulus;
  s.strategy.kernel_trains = s.trains_lowered > 0;
  s.strategy.class_cost.clear();
  s.strategy.class_cost.reserve(modulus);
  for (std::uint32_t c = 0; c < modulus; ++c) {
    s.strategy.class_cost.push_back(estimate_class_cost(s, cost, c));
  }
  s.pass_mask |= kPassStrategy;
}

}  // namespace

void run_passes(Scenario& s, const PassOptions& options) {
  validate(s);
  if (options.fold) fold(s);
  if (options.trains) trains(s);
  if (options.strategy) strategy(s, options.cost);
}

}  // namespace aroma::scn
