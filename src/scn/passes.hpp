// The scenario compiler's pass pipeline.
//
// compile() (scn/compiler.hpp) runs these over the parsed IR in order:
//
//   1. validate  — always on. Resolves every entity reference (line/col
//      diagnostics on unknown names), checks profiles and personas against
//      the phys/user preset tables, enforces structural requirements
//      (present goals need a registrar, a projector, and a display on the
//      actor; slides traffic needs a display; ping destinations must be
//      singletons), bounds-checks constant positions against the topology,
//      and rejects constant division/modulo by zero.
//
//   2. fold      — constant-folds every sub-expression with no free
//      variables (`55 + 10 * 2` but not `10 * shard`), counting eliminated
//      operator nodes. Idempotent: folding a folded tree is a no-op.
//
//   3. trains    — lowers eligible group ping traffic (constant period,
//      constant member count > 1, constant payload) to pre-scheduled event
//      trains: at run time one generator per tick parks every member's
//      send at the same timestamp, which the kernel's same-time train
//      batching absorbs (sim/event_queue.hpp "Trains"). Staggered traffic
//      (a period using `i`) is left as per-member periodic timers — its
//      members never share timestamps, so there is nothing to absorb.
//
//   4. strategy  — per-shard-class placement selection from the cost
//      model (scn/cost.hpp). Shard classes are derived from the `shard %
//      C` constants appearing in the scenario's expressions; each class
//      gets an estimated event cost so the fleet runner can launch
//      heavier classes first. Also decides the kernel train-batching knob
//      (on exactly when the trains pass lowered something).
//
// Passes 2-4 can be disabled (PassOptions) to produce a reference compile
// — the passes-off blob the bench measures absorption against.
#pragma once

#include <cstdint>

#include "scn/ast.hpp"
#include "scn/cost.hpp"

namespace aroma::scn {

/// Scenario::pass_mask bits, recorded in the blob header.
inline constexpr std::uint32_t kPassValidate = 1u << 0;
inline constexpr std::uint32_t kPassFold = 1u << 1;
inline constexpr std::uint32_t kPassTrains = 1u << 2;
inline constexpr std::uint32_t kPassStrategy = 1u << 3;

struct PassOptions {
  bool fold = true;
  bool trains = true;
  bool strategy = true;
  CostModel cost = CostModel::defaults();
};

/// Runs the pipeline in place. Throws ScnError (with source position where
/// available) on the first validation failure.
void run_passes(Scenario& s, const PassOptions& options = {});

}  // namespace aroma::scn
