#include "scn/compiler.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "scn/blob.hpp"
#include "scn/parser.hpp"

namespace aroma::scn {

namespace {

/// Round-trip-exact number rendering: integers as digits, everything else
/// with 17 significant digits (enough to reproduce any double bit-exactly
/// on reparse).
std::string canonical_num(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string render(const Expr& e) {
  switch (e.op) {
    case ExprOp::kNum:
      return canonical_num(e.value);
    case ExprOp::kShard:
      return "shard";
    case ExprOp::kIndex:
      return "i";
    case ExprOp::kAdd:
      return "(" + render(*e.lhs) + " + " + render(*e.rhs) + ")";
    case ExprOp::kSub:
      return "(" + render(*e.lhs) + " - " + render(*e.rhs) + ")";
    case ExprOp::kMul:
      return "(" + render(*e.lhs) + " * " + render(*e.rhs) + ")";
    case ExprOp::kDiv:
      return "(" + render(*e.lhs) + " / " + render(*e.rhs) + ")";
    case ExprOp::kMod:
      return "(" + render(*e.lhs) + " % " + render(*e.rhs) + ")";
    case ExprOp::kNeg:
      return "(-" + render(*e.lhs) + ")";
  }
  throw ScnError("corrupt expression opcode in dump");
}

}  // namespace

std::vector<std::uint8_t> compile(std::string_view source,
                                  const std::string& filename,
                                  const CompileOptions& options) {
  Scenario s = parse(source, filename);
  PassOptions passes;
  passes.fold = options.fold;
  passes.trains = options.trains;
  passes.strategy = options.strategy;
  passes.cost = options.cost;
  run_passes(s, passes);
  return encode(s);
}

std::vector<std::uint8_t> compile_file(const std::string& path,
                                       const CompileOptions& options) {
  Scenario s = parse_file(path);
  PassOptions passes;
  passes.fold = options.fold;
  passes.trains = options.trains;
  passes.strategy = options.strategy;
  passes.cost = options.cost;
  run_passes(s, passes);
  return encode(s);
}

std::string dump(const Scenario& s) {
  std::ostringstream out;
  out << "scenario " << s.name << " {\n";
  out << "  topology " << canonical_num(s.topo_w) << " x "
      << canonical_num(s.topo_h) << ";\n";
  for (const EntityDecl& e : s.entities) {
    if (e.is_group) {
      out << "  group " << e.name << " profile " << e.profile << " count "
          << render(*e.count);
    } else {
      out << "  entity " << e.name << " profile " << e.profile;
    }
    out << " at (" << render(*e.pos_x) << ", " << render(*e.pos_y)
        << ") channel " << render(*e.channel) << ";\n";
  }
  for (const RegistrarDecl& r : s.registrars) {
    out << "  registrar on " << r.on.name << ";\n";
  }
  for (const ProjectorDecl& p : s.projectors) {
    out << "  projector on " << p.on.name << ";\n";
  }
  for (const DisplayDecl& d : s.displays) {
    out << "  display on " << d.on.name << " size " << render(*d.width)
        << " x " << render(*d.height) << " deck " << render(*d.deck_seed)
        << ";\n";
  }
  for (const GoalDecl& g : s.goals) {
    out << "  goal " << (g.kind == GoalKind::kPresent ? "present" : "discover")
        << " actor " << g.actor.name << " persona " << g.persona << ";\n";
  }
  for (const TrafficDecl& t : s.traffic) {
    if (t.kind == TrafficKind::kPing) {
      out << "  traffic ping from " << t.from.name << " to " << t.to.name
          << " period " << render(*t.period) << " payload "
          << render(*t.payload) << ";\n";
    } else {
      out << "  traffic slides on " << t.from.name << " period "
          << render(*t.period) << ";\n";
    }
  }
  out << "  phase settle " << render(*s.phases.settle) << ";\n";
  out << "  phase meeting " << render(*s.phases.meeting) << ";\n";
  out << "  horizon " << render(*s.phases.horizon) << ";\n";
  out << "  drain " << render(*s.phases.drain) << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace aroma::scn
