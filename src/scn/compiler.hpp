// Scenario compiler entry points: text -> (parse -> passes -> encode) ->
// blob, plus the canonical dump renderer.
//
// Determinism contract:
//   * compile(source) twice yields byte-identical blobs (no timestamps,
//     no source hashes, no host state in the artifact),
//   * dump(decode(blob)) renders canonical scenario text that reparses to
//     the same IR, so dump -> compile -> dump is a fixpoint: one
//     dump/recompile round converges and further rounds are byte-stable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scn/ast.hpp"
#include "scn/passes.hpp"

namespace aroma::scn {

struct CompileOptions {
  /// Optimizing passes (validation always runs). The all-off configuration
  /// is the reference compile benches measure train absorption against.
  bool fold = true;
  bool trains = true;
  bool strategy = true;
  /// Cost model for the strategy pass. defaults() keeps blobs identical
  /// across machines; seed from BENCH_kernel.json for measured placement.
  CostModel cost = CostModel::defaults();
};

/// Compiles scenario text to an executable blob. Throws ScnError with
/// line/col diagnostics on parse or validation failure.
std::vector<std::uint8_t> compile(std::string_view source,
                                  const std::string& filename = "<scn>",
                                  const CompileOptions& options = {});

/// Compiles a `.scn` file.
std::vector<std::uint8_t> compile_file(const std::string& path,
                                       const CompileOptions& options = {});

/// Renders a scenario as canonical DSL text (defaults made explicit,
/// expressions fully parenthesized, round-trip-exact number formatting).
std::string dump(const Scenario& s);

}  // namespace aroma::scn
