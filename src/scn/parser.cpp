#include "scn/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace aroma::scn {

namespace {

enum class Tok { kIdent, kNumber, kPunct, kEnd };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;     // ident text or punct character
  double number = 0.0;  // kNumber only
  int line = 1, col = 1;
};

class Lexer {
 public:
  Lexer(std::string_view src, std::string file)
      : src_(src), file_(std::move(file)) {
    next();
  }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    next();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg, const Token& at) const {
    throw ScnError(file_ + ":" + std::to_string(at.line) + ":" +
                       std::to_string(at.col) + ": " + msg,
                   at.line, at.col);
  }

 private:
  void next() {
    skip_ws();
    tok_ = Token{};
    tok_.line = line_;
    tok_.col = col_;
    if (pos_ >= src_.size()) {
      tok_.kind = Tok::kEnd;
      tok_.text = "<end of file>";
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tok_.kind = Tok::kIdent;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        tok_.text.push_back(src_[pos_]);
        advance();
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      tok_.kind = Tok::kNumber;
      std::string digits;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && !digits.empty() &&
               (digits.back() == 'e' || digits.back() == 'E')))) {
        digits.push_back(src_[pos_]);
        advance();
      }
      char* end = nullptr;
      tok_.number = std::strtod(digits.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        fail("malformed number '" + digits + "'", tok_);
      }
      tok_.text = digits;
      return;
    }
    tok_.kind = Tok::kPunct;
    tok_.text.push_back(c);
    advance();
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else {
        break;
      }
    }
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string_view src_;
  std::string file_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
  Token tok_;
};

class Parser {
 public:
  Parser(std::string_view src, std::string file) : lex_(src, std::move(file)) {}

  Scenario run() {
    Scenario s;
    expect_ident("scenario");
    s.name = take_ident("scenario name");
    expect_punct("{");
    while (!at_punct("}")) {
      item(s);
    }
    expect_punct("}");
    if (lex_.peek().kind != Tok::kEnd) {
      lex_.fail("trailing input after scenario body", lex_.peek());
    }
    return s;
  }

 private:
  void item(Scenario& s) {
    const Token head = lex_.peek();
    if (head.kind != Tok::kIdent) {
      lex_.fail("expected a scenario item, got '" + head.text + "'", head);
    }
    if (head.text == "topology") {
      lex_.take();
      s.topo_w = take_number("topology width");
      expect_ident("x");
      s.topo_h = take_number("topology height");
    } else if (head.text == "entity" || head.text == "group") {
      EntityDecl e;
      e.is_group = head.text == "group";
      e.line = head.line;
      e.col = head.col;
      lex_.take();
      e.name = take_ident("entity name");
      expect_ident("profile");
      e.profile = take_ident("profile name");
      if (e.is_group) {
        expect_ident("count");
        e.count = expr();
      } else {
        e.count = Expr::num(1.0, head.line, head.col);
      }
      expect_ident("at");
      expect_punct("(");
      e.pos_x = expr();
      expect_punct(",");
      e.pos_y = expr();
      expect_punct(")");
      if (at_ident("channel")) {
        lex_.take();
        e.channel = expr();
      } else {
        e.channel = Expr::num(6.0, head.line, head.col);
      }
      s.entities.push_back(std::move(e));
    } else if (head.text == "registrar") {
      lex_.take();
      expect_ident("on");
      s.registrars.push_back(RegistrarDecl{ref()});
    } else if (head.text == "projector") {
      lex_.take();
      expect_ident("on");
      s.projectors.push_back(ProjectorDecl{ref()});
    } else if (head.text == "display") {
      lex_.take();
      DisplayDecl d;
      expect_ident("on");
      d.on = ref();
      expect_ident("size");
      d.width = expr();
      expect_ident("x");
      d.height = expr();
      expect_ident("deck");
      d.deck_seed = expr();
      s.displays.push_back(std::move(d));
    } else if (head.text == "goal") {
      lex_.take();
      GoalDecl g;
      g.line = head.line;
      g.col = head.col;
      const Token kind = lex_.take();
      if (kind.kind != Tok::kIdent ||
          (kind.text != "present" && kind.text != "discover")) {
        lex_.fail("expected goal kind 'present' or 'discover', got '" +
                      kind.text + "'",
                  kind);
      }
      g.kind = kind.text == "present" ? GoalKind::kPresent : GoalKind::kDiscover;
      expect_ident("actor");
      g.actor = ref();
      expect_ident("persona");
      g.persona = take_ident("persona name");
      s.goals.push_back(std::move(g));
    } else if (head.text == "traffic") {
      lex_.take();
      TrafficDecl t;
      const Token kind = lex_.take();
      if (kind.kind == Tok::kIdent && kind.text == "ping") {
        t.kind = TrafficKind::kPing;
        expect_ident("from");
        t.from = ref();
        expect_ident("to");
        t.to = ref();
        expect_ident("period");
        t.period = expr();
        if (at_ident("payload")) {
          lex_.take();
          t.payload = expr();
        } else {
          t.payload = Expr::num(24.0, kind.line, kind.col);
        }
      } else if (kind.kind == Tok::kIdent && kind.text == "slides") {
        t.kind = TrafficKind::kSlides;
        expect_ident("on");
        t.from = ref();
        expect_ident("period");
        t.period = expr();
      } else {
        lex_.fail("expected traffic kind 'ping' or 'slides', got '" +
                      kind.text + "'",
                  kind);
      }
      s.traffic.push_back(std::move(t));
    } else if (head.text == "phase") {
      lex_.take();
      const Token which = lex_.take();
      if (which.kind == Tok::kIdent && which.text == "settle") {
        s.phases.settle = expr();
      } else if (which.kind == Tok::kIdent && which.text == "meeting") {
        s.phases.meeting = expr();
      } else {
        lex_.fail("expected phase 'settle' or 'meeting', got '" + which.text +
                      "'",
                  which);
      }
    } else if (head.text == "horizon") {
      lex_.take();
      s.phases.horizon = expr();
    } else if (head.text == "drain") {
      lex_.take();
      s.phases.drain = expr();
    } else {
      lex_.fail("unknown scenario item '" + head.text + "'", head);
    }
    expect_punct(";");
  }

  EntityRef ref() {
    const Token t = lex_.peek();
    EntityRef r;
    r.name = take_ident("entity reference");
    r.line = t.line;
    r.col = t.col;
    return r;
  }

  // expr := term (('+' | '-') term)*
  std::unique_ptr<Expr> expr() {
    auto lhs = term();
    while (at_punct("+") || at_punct("-")) {
      const Token op = lex_.take();
      auto node = std::make_unique<Expr>();
      node->op = op.text == "+" ? ExprOp::kAdd : ExprOp::kSub;
      node->line = op.line;
      node->col = op.col;
      node->lhs = std::move(lhs);
      node->rhs = term();
      lhs = std::move(node);
    }
    return lhs;
  }

  // term := factor (('*' | '/' | '%') factor)*
  std::unique_ptr<Expr> term() {
    auto lhs = factor();
    while (at_punct("*") || at_punct("/") || at_punct("%")) {
      const Token op = lex_.take();
      auto node = std::make_unique<Expr>();
      node->op = op.text == "*"   ? ExprOp::kMul
                 : op.text == "/" ? ExprOp::kDiv
                                  : ExprOp::kMod;
      node->line = op.line;
      node->col = op.col;
      node->lhs = std::move(lhs);
      node->rhs = factor();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> factor() {
    const Token t = lex_.peek();
    if (t.kind == Tok::kNumber) {
      lex_.take();
      return Expr::num(t.number, t.line, t.col);
    }
    if (t.kind == Tok::kIdent && (t.text == "shard" || t.text == "i")) {
      lex_.take();
      auto e = std::make_unique<Expr>();
      e->op = t.text == "shard" ? ExprOp::kShard : ExprOp::kIndex;
      e->line = t.line;
      e->col = t.col;
      return e;
    }
    if (t.kind == Tok::kPunct && t.text == "(") {
      lex_.take();
      auto e = expr();
      expect_punct(")");
      return e;
    }
    if (t.kind == Tok::kPunct && t.text == "-") {
      lex_.take();
      auto e = std::make_unique<Expr>();
      e->op = ExprOp::kNeg;
      e->line = t.line;
      e->col = t.col;
      e->lhs = factor();
      return e;
    }
    lex_.fail("expected a number, 'shard', 'i', '(' or unary '-', got '" +
                  t.text + "'",
              t);
  }

  bool at_punct(const char* p) const {
    return lex_.peek().kind == Tok::kPunct && lex_.peek().text == p;
  }
  bool at_ident(const char* id) const {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == id;
  }
  void expect_punct(const char* p) {
    if (!at_punct(p)) {
      lex_.fail("expected '" + std::string(p) + "', got '" + lex_.peek().text +
                    "'",
                lex_.peek());
    }
    lex_.take();
  }
  void expect_ident(const char* id) {
    if (!at_ident(id)) {
      lex_.fail("expected '" + std::string(id) + "', got '" + lex_.peek().text +
                    "'",
                lex_.peek());
    }
    lex_.take();
  }
  std::string take_ident(const char* what) {
    if (lex_.peek().kind != Tok::kIdent) {
      lex_.fail("expected " + std::string(what) + ", got '" + lex_.peek().text +
                    "'",
                lex_.peek());
    }
    return lex_.take().text;
  }
  double take_number(const char* what) {
    if (lex_.peek().kind != Tok::kNumber) {
      lex_.fail("expected " + std::string(what) + ", got '" + lex_.peek().text +
                    "'",
                lex_.peek());
    }
    return lex_.take().number;
  }

  Lexer lex_;
};

}  // namespace

Scenario parse(std::string_view source, const std::string& filename) {
  return Parser(source, filename).run();
}

Scenario parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScnError("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), path);
}

}  // namespace aroma::scn
