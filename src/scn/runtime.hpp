// Scenario runtime: instantiates and drives a world from compiled IR.
//
// The canonical construction program generalizes bench/fleet_bench.cpp's
// run_room — and for the smart_projector scenario it reproduces it EXACTLY.
// That is a load-bearing contract: sim::Rng::fork mutates the parent RNG,
// so the sequence of component constructions during setup determines every
// downstream random draw. The program, in order:
//
//   1. World(seed), arena mode, train batching per the blob's strategy.
//   2. Environment with path_loss.seed = seed.
//   3. Devices in entity declaration order (groups expand member-major);
//      node ids are assigned 1, 2, 3, ... as devices are constructed.
//   4. Ping sinks: port 7777 bound on each distinct ping destination, in
//      traffic declaration order (bound even when a source group is empty
//      for this shard — run_room binds its hub unconditionally).
//   5. Registrars, then projectors (each SmartProjector followed by its
//      export-side JiniClient), then one JiniClient per goal actor, then
//      displays (each PresenterDisplay plus its SlideDeckWorkload — the
//      workload ctor is world-free, so it costs no RNG draws), then
//      service export. run_until(settle).
//   6. Per goal, in declaration order: the goal's ProjectorClient (present
//      only) and UserAgent, then the procedure attempt. The present
//      procedure is the documented four-step Smart Projector sequence with
//      run_room's exact difficulties. run_until(meeting).
//   7. Traffic, in declaration order: train-lowered ping traffic arms a
//      pre-scheduling generator (each tick parks every member's send at
//      one timestamp — the kernel's train batching absorbs the burst);
//      everything else arms per-member PeriodicTimers. run_until(horizon).
//   8. Traffic stops in REVERSE declaration order (run_room: slides, then
//      pingers), then the drain tail runs to horizon + drain.
//
// fingerprint() computes the identical mix_hash chain as run_room /
// snap::Room::fingerprint, so compiled-vs-handwritten equality is
// bit-testable at the fleet level.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/projector.hpp"
#include "disco/jini.hpp"
#include "env/environment.hpp"
#include "net/stack.hpp"
#include "phys/device.hpp"
#include "rfb/workload.hpp"
#include "scn/ast.hpp"
#include "sim/world.hpp"
#include "user/agent.hpp"

namespace aroma::scn {

struct RunOptions {
  bool use_arena = true;
};

class ScenarioInstance {
 public:
  /// Builds the world and runs the setup phase construction (step 1-4
  /// above). The scenario must outlive the instance.
  ScenarioInstance(const Scenario& scenario, std::size_t shard_id,
                   std::uint64_t seed, RunOptions options = {});
  ~ScenarioInstance();
  ScenarioInstance(const ScenarioInstance&) = delete;
  ScenarioInstance& operator=(const ScenarioInstance&) = delete;

  /// Executes the full timeline (steps 5-8). Call exactly once.
  void run();

  /// run_room's behavioral digest: seed, executed events, medium stats,
  /// pings, registrations, the first goal's outcome, viewer updates.
  std::uint64_t fingerprint() const;

  std::uint64_t events() const;
  std::uint64_t absorbed() const;
  std::uint64_t pings() const;
  /// Outcome of the first goal ({} when the scenario declares none).
  const user::TaskOutcome& outcome() const { return first_outcome_; }
  sim::World& world() { return *world_; }

 private:
  struct ProjectorRuntime {
    std::unique_ptr<app::SmartProjector> projector;
    std::unique_ptr<disco::JiniClient> jini;  // export side
  };
  struct DisplayRuntime {
    int entity = -1;
    std::unique_ptr<app::PresenterDisplay> display;
    std::unique_ptr<rfb::SlideDeckWorkload> deck;
  };
  struct GoalRuntime {
    std::unique_ptr<app::ProjectorClient> client;  // present goals only
    std::unique_ptr<user::UserAgent> agent;
    user::TaskOutcome outcome;
  };
  struct TrafficRuntime {
    std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
    sim::EventHandle train_next;  // pre-scheduling generator (trains only)
  };

  void build_devices();
  void bind_ping_sinks();
  void build_services();
  void start_goals();
  void start_traffic();
  void stop_traffic();
  void arm_train(std::size_t traffic_index, sim::Time when, sim::Time period);
  void send_ping(std::size_t traffic_index, std::size_t member);
  net::NetStack& stack_of(int entity, std::size_t member = 0);
  std::size_t member_count(int entity) const;
  DisplayRuntime* display_on(int entity);

  const Scenario& scn_;
  std::size_t shard_id_;
  std::uint64_t seed_;
  RunOptions options_;

  std::unique_ptr<sim::World> world_;
  std::unique_ptr<env::Environment> env_;
  std::vector<std::unique_ptr<phys::Device>> devices_;
  std::vector<std::unique_ptr<net::NetStack>> stacks_;
  /// Per entity: (first stack index, member count) for this shard.
  std::vector<std::pair<std::size_t, std::size_t>> entity_stacks_;

  std::uint64_t pings_ = 0;
  std::vector<std::unique_ptr<disco::JiniRegistrar>> registrars_;
  std::vector<ProjectorRuntime> projectors_;
  std::vector<std::unique_ptr<disco::JiniClient>> actor_jinis_;  // per goal
  std::vector<DisplayRuntime> displays_;
  std::vector<GoalRuntime> goals_;
  std::vector<TrafficRuntime> traffic_;
  user::TaskOutcome first_outcome_;
  bool ran_ = false;
};

/// Fleet-level execution of a compiled scenario: `shards` instances over a
/// work-stealing pool, seeded with sim::shard_seed(seed, k). When the blob
/// carries a strategy section, shards are launched heaviest-class-first
/// (the cost-model placement); results always fold in shard order, so the
/// fingerprint is independent of both the launch order and worker count.
struct FleetResult {
  std::vector<std::uint64_t> shard_fps;
  std::uint64_t fleet_fp = 0;
  std::uint64_t events = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t pings = 0;
  std::uint64_t goals_succeeded = 0;
};

FleetResult run_fleet(const Scenario& scenario, std::size_t shards,
                      std::uint64_t seed, std::size_t workers,
                      RunOptions options = {});

}  // namespace aroma::scn
