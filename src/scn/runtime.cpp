#include "scn/runtime.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "disco/service.hpp"
#include "env/mobility.hpp"
#include "phys/profile.hpp"
#include "sim/fleet.hpp"
#include "sim/random.hpp"
#include "user/faculties.hpp"

namespace aroma::scn {

namespace {
constexpr net::Port kPingPort = 7777;

/// Agent names are part of the RNG contract: UserAgent forks the world RNG
/// with a tag that hashes the name, so the present-goal agent must be
/// "presenter" — the name run_room uses.
const char* agent_name(GoalKind kind) {
  return kind == GoalKind::kPresent ? "presenter" : "explorer";
}
}  // namespace

ScenarioInstance::ScenarioInstance(const Scenario& scenario,
                                   std::size_t shard_id, std::uint64_t seed,
                                   RunOptions options)
    : scn_(scenario), shard_id_(shard_id), seed_(seed), options_(options) {
  world_ = std::make_unique<sim::World>(seed_);
  world_->arena().set_enabled(options_.use_arena);
  world_->sim().set_train_batching(scn_.strategy.kernel_trains);
  env::Environment::Params eparams;
  eparams.arena = env::Rect{{0, 0}, {scn_.topo_w, scn_.topo_h}};
  eparams.path_loss.seed = seed_;
  env_ = std::make_unique<env::Environment>(*world_, eparams);
  build_devices();
  bind_ping_sinks();
  traffic_.resize(scn_.traffic.size());
  goals_.reserve(scn_.goals.size());
}

ScenarioInstance::~ScenarioInstance() = default;

void ScenarioInstance::build_devices() {
  const EvalContext shard_ctx{shard_id_, 0};
  for (const EntityDecl& e : scn_.entities) {
    const auto count = static_cast<std::size_t>(
        std::max(0.0, eval(*e.count, shard_ctx)));
    entity_stacks_.emplace_back(stacks_.size(), count);
    phys::DeviceProfile profile;
    if (!phys::profiles::by_name(e.profile, &profile)) {
      throw ScnError("unknown device profile '" + e.profile + "'");
    }
    for (std::size_t i = 0; i < count; ++i) {
      const EvalContext ctx{shard_id_, i};
      const env::Vec2 pos{eval(*e.pos_x, ctx), eval(*e.pos_y, ctx)};
      phys::Device::Options opt;
      opt.channel = static_cast<int>(eval(*e.channel, ctx));
      const std::uint64_t id = devices_.size() + 1;
      devices_.push_back(std::make_unique<phys::Device>(
          *world_, *env_, id, profile,
          std::make_unique<env::StaticMobility>(pos), opt));
      stacks_.push_back(
          std::make_unique<net::NetStack>(*world_, devices_.back()->mac()));
    }
  }
}

void ScenarioInstance::bind_ping_sinks() {
  std::set<int> bound;
  for (const TrafficDecl& t : scn_.traffic) {
    if (t.kind != TrafficKind::kPing) continue;
    if (!bound.insert(t.to.index).second) continue;
    stack_of(t.to.index)
        .bind(kPingPort, [this](const net::Datagram&) { ++pings_; });
  }
}

void ScenarioInstance::build_services() {
  for (const RegistrarDecl& r : scn_.registrars) {
    registrars_.push_back(
        std::make_unique<disco::JiniRegistrar>(*world_, stack_of(r.on.index)));
  }
  for (const ProjectorDecl& p : scn_.projectors) {
    ProjectorRuntime rt;
    rt.projector =
        std::make_unique<app::SmartProjector>(*world_, stack_of(p.on.index));
    rt.jini =
        std::make_unique<disco::JiniClient>(*world_, stack_of(p.on.index));
    projectors_.push_back(std::move(rt));
  }
  for (const GoalDecl& g : scn_.goals) {
    actor_jinis_.push_back(
        std::make_unique<disco::JiniClient>(*world_, stack_of(g.actor.index)));
  }
  for (const DisplayDecl& d : scn_.displays) {
    const EvalContext ctx{shard_id_, 0};
    DisplayRuntime rt;
    rt.entity = d.on.index;
    rt.display = std::make_unique<app::PresenterDisplay>(
        *world_, stack_of(d.on.index),
        static_cast<int>(eval(*d.width, ctx)),
        static_cast<int>(eval(*d.height, ctx)));
    // World-free construction: the deck costs no RNG draws, so owning it
    // next to its display cannot perturb the canonical fork sequence.
    rt.deck = std::make_unique<rfb::SlideDeckWorkload>(
        static_cast<std::uint64_t>(eval(*d.deck_seed, ctx)));
    displays_.push_back(std::move(rt));
  }
  for (ProjectorRuntime& p : projectors_) {
    p.projector->export_services(*p.jini, {});
  }
}

void ScenarioInstance::start_goals() {
  for (std::size_t g = 0; g < scn_.goals.size(); ++g) {
    const GoalDecl& decl = scn_.goals[g];
    goals_.emplace_back();
    GoalRuntime& rt = goals_.back();

    user::Faculties persona;
    if (!user::personas::by_name(decl.persona, &persona)) {
      throw ScnError("unknown persona '" + decl.persona + "'");
    }

    std::vector<user::ProcedureStep> procedure;
    if (decl.kind == GoalKind::kPresent) {
      rt.client = std::make_unique<app::ProjectorClient>(
          *world_, stack_of(decl.actor.index),
          stack_of(scn_.projectors.front().on.index).node_id(),
          app::kProjectionPort);
      DisplayRuntime* disp = display_on(decl.actor.index);
      if (disp == nullptr) {
        throw ScnError("present goal actor has no display");
      }
      rt.agent = std::make_unique<user::UserAgent>(
          *world_, agent_name(decl.kind), persona);

      app::PresenterDisplay* display = disp->display.get();
      rfb::SlideDeckWorkload* deck = disp->deck.get();
      disco::JiniClient* jini = actor_jinis_[g].get();
      app::ProjectorClient* client = rt.client.get();
      const net::NodeId actor_node = stack_of(decl.actor.index).node_id();
      procedure.push_back({"start-vnc-server",
                           [display, deck](std::function<void(bool)> done) {
                             display->start_server();
                             deck->step(display->screen());
                             done(true);
                           },
                           0.4, false});
      procedure.push_back(
          {"discover-service",
           [jini](std::function<void(bool)> done) {
             jini->lookup(disco::ServiceTemplate{app::kProjectionType, {}},
                          [done](std::vector<disco::ServiceDescription> s) {
                            done(!s.empty());
                          });
           },
           0.5, false});
      procedure.push_back({"acquire-projection",
                           [client](std::function<void(bool)> done) {
                             client->acquire(std::move(done));
                           },
                           0.5, false});
      procedure.push_back({"start-projection",
                           [client, actor_node](std::function<void(bool)> done) {
                             client->start_projection(actor_node,
                                                      std::move(done));
                           },
                           0.6, false});
    } else {
      rt.agent = std::make_unique<user::UserAgent>(
          *world_, agent_name(decl.kind), persona);
      disco::JiniClient* jini = actor_jinis_[g].get();
      procedure.push_back(
          {"discover-service",
           [jini](std::function<void(bool)> done) {
             jini->lookup(disco::ServiceTemplate{app::kProjectionType, {}},
                          [done](std::vector<disco::ServiceDescription> s) {
                            done(!s.empty());
                          });
           },
           0.5, false});
    }

    rt.agent->attempt(std::move(procedure),
                      [this, g](const user::TaskOutcome& o) {
                        goals_[g].outcome = o;
                        if (g == 0) first_outcome_ = o;
                      });
  }
}

void ScenarioInstance::arm_train(std::size_t traffic_index, sim::Time when,
                                 sim::Time period) {
  traffic_[traffic_index].train_next = world_->sim().schedule_at(
      when, sim::EventCategory::kTimer, [this, traffic_index, when, period] {
        const TrafficDecl& t = scn_.traffic[traffic_index];
        const std::size_t members = member_count(t.from.index);
        // Pre-schedule the whole tick as one same-time burst: every
        // member's send parks at `when`, and the kernel's train batching
        // absorbs the burst instead of heap-pushing each event.
        for (std::size_t m = 0; m < members; ++m) {
          world_->sim().schedule_at(
              when, sim::EventCategory::kTimer,
              [this, traffic_index, m] { send_ping(traffic_index, m); });
        }
        arm_train(traffic_index, when + period, period);
      });
}

void ScenarioInstance::send_ping(std::size_t traffic_index,
                                 std::size_t member) {
  const TrafficDecl& t = scn_.traffic[traffic_index];
  const auto payload = static_cast<std::size_t>(
      eval(*t.payload, EvalContext{shard_id_, member}));
  stack_of(t.from.index, member)
      .send({stack_of(t.to.index).node_id(), kPingPort}, kPingPort,
            std::vector<std::byte>(payload, std::byte{0x5a}), {});
}

void ScenarioInstance::start_traffic() {
  for (std::size_t ti = 0; ti < scn_.traffic.size(); ++ti) {
    const TrafficDecl& t = scn_.traffic[ti];
    if (t.kind == TrafficKind::kPing) {
      const std::size_t members = member_count(t.from.index);
      if (members == 0) continue;
      if (t.train_lowered) {
        const sim::Time period =
            sim::Time::sec(eval(*t.period, EvalContext{shard_id_, 0}));
        arm_train(ti, world_->now() + period, period);
      } else {
        for (std::size_t m = 0; m < members; ++m) {
          const double period = eval(*t.period, EvalContext{shard_id_, m});
          traffic_[ti].timers.push_back(std::make_unique<sim::PeriodicTimer>(
              world_->sim(), sim::Time::sec(period),
              [this, ti, m] { send_ping(ti, m); }));
          traffic_[ti].timers.back()->start();
        }
      }
    } else {
      DisplayRuntime* disp = display_on(t.from.index);
      if (disp == nullptr) throw ScnError("slides traffic without a display");
      app::PresenterDisplay* display = disp->display.get();
      rfb::SlideDeckWorkload* deck = disp->deck.get();
      traffic_[ti].timers.push_back(std::make_unique<sim::PeriodicTimer>(
          world_->sim(),
          sim::Time::sec(eval(*t.period, EvalContext{shard_id_, 0})),
          [display, deck] { display->apply(*deck); }));
      traffic_[ti].timers.back()->start();
    }
  }
}

void ScenarioInstance::stop_traffic() {
  // Reverse declaration order — run_room stops its slides timer before its
  // pingers, and cancel order feeds the cancelled-event counter the
  // fingerprint chain observes via executed().
  for (std::size_t k = scn_.traffic.size(); k-- > 0;) {
    if (traffic_[k].train_next.valid()) {
      world_->sim().cancel(traffic_[k].train_next);
      traffic_[k].train_next = sim::EventHandle{};
    }
    for (auto& timer : traffic_[k].timers) timer->stop();
  }
}

void ScenarioInstance::run() {
  if (ran_) throw ScnError("ScenarioInstance::run called twice");
  ran_ = true;
  const EvalContext ctx{shard_id_, 0};
  const auto settle = sim::Time::sec(eval(*scn_.phases.settle, ctx));
  const auto meeting = sim::Time::sec(eval(*scn_.phases.meeting, ctx));
  const auto horizon = sim::Time::sec(eval(*scn_.phases.horizon, ctx));
  const auto drain = sim::Time::sec(eval(*scn_.phases.drain, ctx));

  build_services();
  world_->sim().run_until(settle);
  start_goals();
  world_->sim().run_until(meeting);
  start_traffic();
  world_->sim().run_until(horizon);
  stop_traffic();
  world_->sim().run_until(horizon + drain);
}

std::uint64_t ScenarioInstance::fingerprint() const {
  const env::MediumStats& m = env_->medium().stats();
  std::uint64_t fp = sim::mix_hash(seed_, world_->sim().executed());
  fp = sim::mix_hash(fp, m.transmissions);
  fp = sim::mix_hash(fp, m.deliveries_attempted);
  fp = sim::mix_hash(fp, m.deliveries_decodable);
  fp = sim::mix_hash(fp, m.losses_sinr);
  fp = sim::mix_hash(fp, m.losses_half_duplex);
  fp = sim::mix_hash(fp, pings_);
  std::uint64_t registered = 0;
  for (const auto& r : registrars_) registered += r->registered_count();
  fp = sim::mix_hash(fp, registered);
  fp = sim::mix_hash(fp, first_outcome_.success ? 1 : 0);
  fp = sim::mix_hash(fp, first_outcome_.steps_completed);
  fp = sim::mix_hash(fp, first_outcome_.errors);
  std::uint64_t updates = 0;
  for (const ProjectorRuntime& p : projectors_) {
    if (p.projector->viewer() != nullptr) {
      updates += p.projector->viewer()->stats().updates_received;
    }
  }
  fp = sim::mix_hash(fp, updates);
  return fp;
}

std::uint64_t ScenarioInstance::events() const {
  return world_->sim().executed();
}
std::uint64_t ScenarioInstance::absorbed() const {
  return world_->sim().absorbed();
}
std::uint64_t ScenarioInstance::pings() const { return pings_; }

net::NetStack& ScenarioInstance::stack_of(int entity, std::size_t member) {
  const auto& [base, count] = entity_stacks_[static_cast<std::size_t>(entity)];
  if (member >= count) {
    throw ScnError("entity '" +
                   scn_.entities[static_cast<std::size_t>(entity)].name +
                   "' has no member " + std::to_string(member) +
                   " on shard " + std::to_string(shard_id_));
  }
  return *stacks_[base + member];
}

std::size_t ScenarioInstance::member_count(int entity) const {
  return entity_stacks_[static_cast<std::size_t>(entity)].second;
}

ScenarioInstance::DisplayRuntime* ScenarioInstance::display_on(int entity) {
  for (DisplayRuntime& d : displays_) {
    if (d.entity == entity) return &d;
  }
  return nullptr;
}

FleetResult run_fleet(const Scenario& scenario, std::size_t shards,
                      std::uint64_t seed, std::size_t workers,
                      RunOptions options) {
  // Cost-model placement: launch heavier shard classes first so stragglers
  // start early and the work-stealing tail stays short. A permutation of
  // launch order only — results fold in shard order, so the fingerprint
  // cannot depend on it (or on the worker count).
  std::vector<std::size_t> order(shards);
  std::iota(order.begin(), order.end(), 0);
  const Strategy& strat = scenario.strategy;
  if (strat.class_modulus > 1 &&
      strat.class_cost.size() == strat.class_modulus) {
    std::stable_sort(order.begin(), order.end(),
                     [&strat](std::size_t a, std::size_t b) {
                       return strat.class_cost[a % strat.class_modulus] >
                              strat.class_cost[b % strat.class_modulus];
                     });
  }

  struct ShardResult {
    std::uint64_t fp = 0, events = 0, absorbed = 0, pings = 0;
    bool succeeded = false;
  };
  std::vector<ShardResult> results(shards);
  sim::WorkStealingPool::run(
      workers, shards, [&](std::size_t index, std::size_t) {
        const std::size_t shard = order[index];
        ScenarioInstance inst(scenario, shard, sim::shard_seed(seed, shard),
                              options);
        inst.run();
        ShardResult r;
        r.fp = inst.fingerprint();
        r.events = inst.events();
        r.absorbed = inst.absorbed();
        r.pings = inst.pings();
        r.succeeded = inst.outcome().success;
        results[shard] = r;
      });

  FleetResult out;
  out.shard_fps.reserve(shards);
  for (const ShardResult& r : results) {
    out.shard_fps.push_back(r.fp);
    out.events += r.events;
    out.absorbed += r.absorbed;
    out.pings += r.pings;
    out.goals_succeeded += r.succeeded ? 1 : 0;
  }
  out.fleet_fp = sim::fleet_fingerprint(out.shard_fps);
  return out;
}

}  // namespace aroma::scn
