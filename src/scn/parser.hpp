// Scenario DSL parser: text -> Scenario IR.
//
// Grammar (a `#` comment runs to end of line; declaration order is kept):
//
//   file      := 'scenario' IDENT '{' item* '}'
//   item      := 'topology' NUMBER 'x' NUMBER ';'
//              | 'entity' IDENT 'profile' IDENT 'at' '(' expr ',' expr ')'
//                    ['channel' expr] ';'
//              | 'group' IDENT 'profile' IDENT 'count' expr
//                    'at' '(' expr ',' expr ')' ['channel' expr] ';'
//              | 'registrar' 'on' IDENT ';'
//              | 'projector' 'on' IDENT ';'
//              | 'display' 'on' IDENT 'size' expr 'x' expr 'deck' expr ';'
//              | 'goal' ('present' | 'discover') 'actor' IDENT
//                    'persona' IDENT ';'
//              | 'traffic' 'ping' 'from' IDENT 'to' IDENT 'period' expr
//                    ['payload' expr] ';'
//              | 'traffic' 'slides' 'on' IDENT 'period' expr ';'
//              | 'phase' ('settle' | 'meeting') expr ';'
//              | 'horizon' expr ';'
//              | 'drain' expr ';'
//   expr      := term (('+' | '-') term)*
//   term      := factor (('*' | '/' | '%') factor)*
//   factor    := NUMBER | 'shard' | 'i' | '(' expr ')' | '-' factor
//
// Every parse error throws ScnError carrying the 1-based line and column
// of the offending token, rendered as "<file>:<line>:<col>: <message>".
#pragma once

#include <string>
#include <string_view>

#include "scn/ast.hpp"

namespace aroma::scn {

/// Parses a scenario source. `filename` only decorates diagnostics.
Scenario parse(std::string_view source, const std::string& filename = "<scn>");

/// Reads and parses a `.scn` file; throws ScnError when unreadable.
Scenario parse_file(const std::string& path);

}  // namespace aroma::scn
