#include "scn/cost.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "scn/ast.hpp"

namespace aroma::scn {

namespace {

// A just-enough JSON scanner: walks the token stream looking for objects
// that carry "category" (string), "executed" (number), and "wall_sec"
// (number) members, accumulating (wall, executed) per category. This
// deliberately avoids building a DOM — the bench artifact is a few hundred
// KB and only a dozen records matter.
class CategoryScan {
 public:
  explicit CategoryScan(std::string_view text) : text_(text) {}

  struct Acc {
    double wall = 0.0;
    double executed = 0.0;
  };

  std::map<std::string, Acc> run() {
    value();
    skip_ws();
    if (pos_ != text_.size()) throw ScnError("trailing bytes after JSON value");
    return acc_;
  }

 private:
  void value() {
    skip_ws();
    if (pos_ >= text_.size()) throw ScnError("truncated JSON");
    const char c = text_[pos_];
    if (c == '{') {
      object();
    } else if (c == '[') {
      array();
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }

  void object() {
    ++pos_;  // '{'
    std::string category;
    bool has_executed = false, has_wall = false;
    double executed = 0.0, wall = 0.0;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "category" && pos_ < text_.size() && text_[pos_] == '"') {
        category = string();
      } else if (key == "executed" && is_number_start()) {
        executed = number();
        has_executed = true;
      } else if (key == "wall_sec" && is_number_start()) {
        wall = number();
        has_wall = true;
      } else {
        value();
      }
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    if (!category.empty() && has_executed && has_wall && executed > 0) {
      acc_[category].wall += wall;
      acc_[category].executed += executed;
    }
  }

  void array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return;
    }
    while (true) {
      value();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            // Bench artifacts are ASCII; skip the 4 hex digits.
            pos_ += 4 <= text_.size() - pos_ ? 4 : text_.size() - pos_;
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw ScnError("malformed JSON number");
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw ScnError("malformed JSON literal");
      }
      ++pos_;
    }
  }

  bool is_number_start() const {
    return pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-');
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw ScnError(std::string("expected '") + c + "' in JSON at offset " +
                     std::to_string(pos_));
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, Acc> acc_;
};

}  // namespace

double CostModel::weight(const std::string& category) const {
  const auto it = weight_ns.find(category);
  if (it != weight_ns.end()) return it->second;
  const auto other = weight_ns.find("other");
  return other != weight_ns.end() ? other->second : 100.0;
}

CostModel CostModel::defaults() {
  CostModel m;
  m.weight_ns = {
      {"timer", 60.0},  {"mac", 160.0},    {"radio", 220.0},
      {"stream", 120.0}, {"lease", 90.0},  {"discovery", 110.0},
      {"rfb", 180.0},    {"app", 100.0},   {"diag", 50.0},
      {"other", 100.0},
  };
  return m;
}

CostModel CostModel::from_bench_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScnError("cannot open cost artifact: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  CostModel m = defaults();
  for (const auto& [category, acc] : CategoryScan(text).run()) {
    if (acc.executed > 0) {
      m.weight_ns[category] = acc.wall / acc.executed * 1e9;
      m.measured = true;
    }
  }
  return m;
}

}  // namespace aroma::scn
