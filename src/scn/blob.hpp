// The compiled scenario blob: a compact, versioned, CRC-checked binary
// artifact the fleet loads and executes directly — no recompile per
// scenario.
//
// The container is snap's sectioned framing (src/snap/format.hpp) under
// its own identity:
//
//   magic "AROMSCEN", version 1, then the standard section table:
//     SCNH  (required)  name, topology, pass mask, pass statistics
//     ENTS  (required)  entity declarations (profiles by name, exprs)
//     BULD  (required)  registrars / projectors / displays / goals
//     TRAF  (required)  traffic declarations + train-lowering marks
//     PHAS  (required)  the phase timeline
//     STRA  (optional)  strategy: kernel knobs + per-class cost weights
//
// Expressions serialize as postfix opcode streams (source positions are
// deliberately dropped — a blob carries no provenance, which is what makes
// compile-twice and dump-recompile byte-identical). Readers skip unknown
// sections flagged kSectionOptional and hard-fail on unknown required
// ones, mirroring snap's forward-compat discipline; truncation, CRC
// damage, and version mismatches all throw before any world state exists.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "scn/ast.hpp"
#include "snap/format.hpp"

namespace aroma::scn {

inline constexpr char kScnMagic[8] = {'A', 'R', 'O', 'M', 'S', 'C', 'E', 'N'};
inline constexpr std::uint32_t kScnVersion = 1;

inline constexpr std::uint32_t kTagHeader = snap::tag4("SCNH");
inline constexpr std::uint32_t kTagEntities = snap::tag4("ENTS");
inline constexpr std::uint32_t kTagBuild = snap::tag4("BULD");
inline constexpr std::uint32_t kTagTraffic = snap::tag4("TRAF");
inline constexpr std::uint32_t kTagPhases = snap::tag4("PHAS");
inline constexpr std::uint32_t kTagStrategy = snap::tag4("STRA");

/// Serializes a validated scenario. Deterministic: identical IR yields
/// identical bytes.
std::vector<std::uint8_t> encode(const Scenario& s);

/// Parses and fully validates a blob into IR without touching any world
/// state (rejection is always side-effect free). Throws ScnError on
/// truncation, bad magic, version mismatch, CRC damage, a missing or
/// unknown required section, or a malformed payload.
Scenario decode(std::span<const std::uint8_t> blob);

}  // namespace aroma::scn
