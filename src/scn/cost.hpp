// Cost model for the strategy pass: ns-per-event weights by kernel
// category.
//
// The compiler's placement decisions should reflect what events actually
// cost on this codebase, not guesses — and the repo already measures that:
// BENCH_kernel.json's per-scenario `batching.per_category` records carry
// (executed, wall_sec) pairs per EventCategory. from_bench_json() folds
// them into weight_ns[category] = sum(wall) / sum(executed) * 1e9.
//
// When no artifact is supplied the model falls back to baked-in defaults,
// which keeps compiled blobs byte-identical across machines — the bench
// gates compile against defaults() and report the measured model
// separately.
#pragma once

#include <map>
#include <string>

namespace aroma::scn {

struct CostModel {
  /// ns of wall time per executed event, keyed by the kernel's category
  /// names ("timer", "mac", "radio", "stream", "lease", "discovery",
  /// "rfb", "app", ...).
  std::map<std::string, double> weight_ns;
  /// True when seeded from a measured artifact rather than defaults().
  bool measured = false;

  /// Weight for `category`, falling back to the "other" weight.
  double weight(const std::string& category) const;

  /// Baked-in weights: deterministic everywhere, roughly proportioned to
  /// the measured artifact (radio/mac events dominate timer ticks).
  static CostModel defaults();

  /// Seeds the model from a BENCH_kernel.json artifact; any category with
  /// at least one (executed, wall_sec) record gets a measured weight,
  /// the rest keep defaults. Throws ScnError when the file is unreadable
  /// or not JSON.
  static CostModel from_bench_json(const std::string& path);
};

}  // namespace aroma::scn
