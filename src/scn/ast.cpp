#include "scn/ast.hpp"

#include <cmath>

namespace aroma::scn {

double eval(const Expr& e, const EvalContext& ctx) {
  switch (e.op) {
    case ExprOp::kNum:
      return e.value;
    case ExprOp::kShard:
      return static_cast<double>(ctx.shard);
    case ExprOp::kIndex:
      return static_cast<double>(ctx.index);
    case ExprOp::kAdd:
      return eval(*e.lhs, ctx) + eval(*e.rhs, ctx);
    case ExprOp::kSub:
      return eval(*e.lhs, ctx) - eval(*e.rhs, ctx);
    case ExprOp::kMul:
      return eval(*e.lhs, ctx) * eval(*e.rhs, ctx);
    case ExprOp::kDiv: {
      const double r = eval(*e.rhs, ctx);
      if (r == 0.0) throw ScnError("division by zero", e.line, e.col);
      return eval(*e.lhs, ctx) / r;
    }
    case ExprOp::kMod: {
      const auto l = static_cast<std::int64_t>(eval(*e.lhs, ctx));
      const auto r = static_cast<std::int64_t>(eval(*e.rhs, ctx));
      if (r == 0) throw ScnError("modulo by zero", e.line, e.col);
      return static_cast<double>(l % r);
    }
    case ExprOp::kNeg:
      return -eval(*e.lhs, ctx);
  }
  throw ScnError("corrupt expression opcode");
}

namespace {
bool uses(const Expr& e, ExprOp var) {
  if (e.op == var) return true;
  if (e.lhs != nullptr && uses(*e.lhs, var)) return true;
  return e.rhs != nullptr && uses(*e.rhs, var);
}
}  // namespace

bool uses_shard(const Expr& e) { return uses(e, ExprOp::kShard); }
bool uses_index(const Expr& e) { return uses(e, ExprOp::kIndex); }

std::unique_ptr<Expr> clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->op = e.op;
  out->value = e.value;
  out->line = e.line;
  out->col = e.col;
  if (e.lhs != nullptr) out->lhs = clone(*e.lhs);
  if (e.rhs != nullptr) out->rhs = clone(*e.rhs);
  return out;
}

}  // namespace aroma::scn
