// Per-node datagram network stack over the CSMA MAC.
//
// Offers a UDP-like service: bind a port, send datagrams to a node or a
// multicast group. Multicast rides MAC broadcast and is filtered by group
// membership at the receiver — which gives it exactly the semantics the
// paper's service-discovery protocols rely on: only nodes in radio range
// hear a multicast request.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/link.hpp"
#include "phys/mac.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::net {

/// The unit carried as the link-layer payload.
struct Datagram {
  Endpoint src;
  Endpoint dst;          // dst.node == 0 for multicast
  GroupId group = 0;     // nonzero for multicast datagrams
  std::uint8_t hops_left = 8;  // decremented by forwarders (loop guard)
  std::vector<std::byte> data;
};

/// LinkLayer adapter over the wireless CSMA/CA MAC.
class WirelessLink final : public LinkLayer {
 public:
  explicit WirelessLink(phys::CsmaMac& mac) : mac_(mac) {}
  NodeId address() const override { return mac_.address(); }
  void send(NodeId dst, std::size_t payload_bits, Payload payload,
            SendCallback cb) override {
    mac_.send(dst == kLinkBroadcast ? phys::kBroadcast : dst, payload_bits,
              std::move(payload), std::move(cb));
  }
  void set_receive_handler(ReceiveHandler handler) override {
    mac_.set_receive_handler(
        [handler = std::move(handler)](phys::MacAddress src,
                                       const phys::MacPayload& p,
                                       std::size_t bits) {
          handler(src, p, bits);
        });
  }

 private:
  phys::CsmaMac& mac_;
};

struct StackStats {
  std::uint64_t sent_unicast = 0;
  std::uint64_t sent_multicast = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_listener = 0;
  std::uint64_t dropped_not_member = 0;
  std::uint64_t send_failures = 0;   // MAC gave up (retry limit)
  std::uint64_t bytes_sent = 0;
};

class NetStack {
 public:
  /// Handler receives the datagram it was bound for.
  using Handler = std::function<void(const Datagram&)>;
  /// Optional per-datagram delivery callback (unicast only; best effort).
  using SendCallback = std::function<void(bool delivered)>;

  /// Stack over the wireless MAC (the common case).
  NetStack(sim::World& world, phys::CsmaMac& mac);
  /// Stack over any link layer (wired ports, test doubles).
  NetStack(sim::World& world, LinkLayer& link);

  NodeId node_id() const { return link_->address(); }

  /// Off-link routing: maps a destination node to the link-local next hop
  /// (identity by default). Point off-subnet destinations at a bridge:
  ///   stack.set_next_hop([](NodeId d) { return d >= 100 ? kApNode : d; });
  void set_next_hop(std::function<NodeId(NodeId)> fn) {
    next_hop_ = std::move(fn);
  }

  /// Binds `port`; replaces any previous handler on that port.
  void bind(Port port, Handler handler);
  void unbind(Port port);

  void join_group(GroupId group) { groups_.insert(group); }
  void leave_group(GroupId group) { groups_.erase(group); }
  bool in_group(GroupId group) const { return groups_.count(group) != 0; }

  /// Unicast datagram. `cb` fires with the MAC-level outcome.
  void send(Endpoint dst, Port src_port, std::vector<std::byte> data,
            SendCallback cb = {});

  /// Multicast datagram to all in-range members of `group`.
  void send_multicast(GroupId group, Port port, Port src_port,
                      std::vector<std::byte> data);

  const StackStats& stats() const { return stats_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Bindings and the next-hop function are structural (rebuilt by the owning
  // components); only counters and group membership are serialized.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  void on_link_receive(NodeId src, const LinkLayer::Payload& payload,
                       std::size_t bits);
  void resolve_metrics();

  sim::World& world_;
  std::unique_ptr<WirelessLink> owned_link_;  // when built from a MAC
  LinkLayer* link_;
  std::function<NodeId(NodeId)> next_hop_;
  std::unordered_map<Port, Handler> bindings_;
  std::set<GroupId> groups_;
  StackStats stats_;

  // Telemetry handles; null when the world has no registry attached.
  obs::Counter* m_sent_unicast_ = nullptr;
  obs::Counter* m_sent_multicast_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_send_failures_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
};

}  // namespace aroma::net
