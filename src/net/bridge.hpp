// A two-port bridge / access point: splices a wireless cell onto a wired
// backbone. Unicast datagrams addressed (at the network layer) to nodes
// beyond a link are forwarded to the other link; multicast datagrams are
// flooded across, so discovery protocols span both segments — a portable
// wireless device can find a lookup service living on the traditional
// network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/link.hpp"
#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::net {

struct BridgeStats {
  std::uint64_t forwarded_unicast = 0;
  std::uint64_t forwarded_multicast = 0;
  std::uint64_t dropped_hop_limit = 0;
  std::uint64_t dropped_not_datagram = 0;
};

class Bridge {
 public:
  /// `next_hop_a`/`next_hop_b` map a final destination to the link-local
  /// hop on that side (identity by default: the destination is assumed to
  /// sit directly on the segment).
  Bridge(sim::World& world, LinkLayer& side_a, LinkLayer& side_b);
  ~Bridge();
  Bridge(const Bridge&) = delete;
  Bridge& operator=(const Bridge&) = delete;

  void set_next_hop_a(std::function<NodeId(NodeId)> fn) {
    next_hop_a_ = std::move(fn);
  }
  void set_next_hop_b(std::function<NodeId(NodeId)> fn) {
    next_hop_b_ = std::move(fn);
  }

  const BridgeStats& stats() const { return stats_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  void forward(const LinkLayer::Payload& payload, LinkLayer& out,
               const std::function<NodeId(NodeId)>& next_hop);

  sim::World& world_;
  LinkLayer& a_;
  LinkLayer& b_;
  std::function<NodeId(NodeId)> next_hop_a_;  // used when sending out on A
  std::function<NodeId(NodeId)> next_hop_b_;
  BridgeStats stats_;
};

}  // namespace aroma::net
