// Reliable, in-order byte streams over the datagram stack (TCP-lite).
//
// Sliding-window ARQ with cumulative ACKs, adaptive retransmission timeout
// (SRTT/RTTVAR), AIMD congestion control, and fast retransmit on triple
// duplicate ACKs. The VNC-style remote framebuffer protocol runs on top of
// this, as the real Smart Projector ran VNC over TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/stack.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::net {

struct StreamStats {
  std::uint64_t bytes_sent = 0;        // first transmissions only
  std::uint64_t bytes_retransmitted = 0;
  std::uint64_t bytes_delivered = 0;   // handed to the application, in order
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  double srtt_s = 0.0;
  double cwnd_segments = 1.0;
};

class StreamManager;

/// One endpoint of an established (or establishing) connection.
class StreamConnection : public std::enable_shared_from_this<StreamConnection> {
 public:
  using DataHandler = std::function<void(std::span<const std::byte>)>;
  using EventHandler = std::function<void()>;

  /// Queues bytes for in-order delivery to the peer.
  void send(std::vector<std::byte> data);

  void set_data_handler(DataHandler h) { on_data_ = std::move(h); }
  void set_established_handler(EventHandler h) { on_established_ = std::move(h); }
  void set_closed_handler(EventHandler h) { on_closed_ = std::move(h); }

  /// Graceful close: flushes queued data, then sends FIN.
  void close();

  bool established() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  NodeId peer() const { return peer_; }

  /// Bytes accepted by send() but not yet acknowledged — the backlog an
  /// adaptive sender (e.g. the RFB server) uses for pacing.
  std::size_t unacked_bytes() const;

  const StreamStats& stats() const { return stats_; }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // RTO closures capture shared_from_this + a generation token and cannot be
  // serialized; a connection is only checkpointable once established with
  // nothing in flight and no scheduled (even stale-gen) RTO event.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  friend class StreamManager;
  enum class State : std::uint8_t {
    kSynSent, kSynReceived, kEstablished, kFinSent, kClosed
  };

  StreamConnection(StreamManager& mgr, NodeId peer, std::uint64_t key,
                   bool initiator);

  void handle_segment(std::uint8_t type, std::uint64_t seq, std::uint64_t ack,
                      std::span<const std::byte> payload);
  void pump();                  // move bytes from buffer into flight
  void send_segment(std::uint8_t type, std::uint64_t seq,
                    std::span<const std::byte> payload);
  void send_ack();
  void arm_rto();
  void on_rto(std::uint64_t gen);
  void on_ack(std::uint64_t ack);
  void deliver_in_order();
  void update_rtt(double sample_s);
  void become_closed();

  StreamManager& mgr_;
  NodeId peer_;
  std::uint64_t key_;
  bool initiator_;
  State state_ = State::kSynSent;

  // Send side.
  std::deque<std::byte> send_buffer_;
  struct Unacked {
    std::uint64_t seq;
    std::vector<std::byte> data;
    sim::Time first_sent;
    sim::Time last_sent;
    int retx = 0;
    bool fin = false;
  };
  std::deque<Unacked> inflight_;
  std::uint64_t snd_next_ = 0;   // next new byte sequence to send
  double cwnd_ = 2.0;            // segments
  double ssthresh_ = 32.0;
  int dup_acks_ = 0;
  std::uint64_t last_ack_seen_ = 0;
  bool fin_queued_ = false;

  // Receive side.
  std::uint64_t rcv_next_ = 0;
  std::map<std::uint64_t, std::vector<std::byte>> reorder_;
  bool peer_fin_ = false;
  std::uint64_t peer_fin_seq_ = 0;

  // RTO state.
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_s_ = 0.2;
  std::uint64_t rto_gen_ = 0;
  bool rto_armed_ = false;
  int handshake_retx_ = 0;
  // Scheduled-but-unfired RTO events (live or stale-gen); nonzero blocks
  // checkpointing.
  int outstanding_rto_ = 0;

  DataHandler on_data_;
  EventHandler on_established_;
  EventHandler on_closed_;
  StreamStats stats_;
};

/// Owns a port on a NetStack and multiplexes stream connections over it.
class StreamManager {
 public:
  struct Params {
    std::size_t mss_bytes = 1200;
    std::size_t max_window_segments = 32;
    double min_rto_s = 0.05;
    double max_rto_s = 2.0;
    int max_retx = 12;   // give up and close after this many RTOs
  };

  using AcceptHandler =
      std::function<void(const std::shared_ptr<StreamConnection>&)>;

  StreamManager(sim::World& world, NetStack& stack, Port port);
  StreamManager(sim::World& world, NetStack& stack, Port port, Params params);
  ~StreamManager() { stack_.unbind(port_); }
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  /// Server side: accept incoming connections.
  void listen(AcceptHandler on_accept) { on_accept_ = std::move(on_accept); }

  /// Client side: open a connection to `remote` (same port on both ends).
  std::shared_ptr<StreamConnection> connect(NodeId remote);

  sim::World& world() { return world_; }
  NetStack& stack() { return stack_; }
  Port port() const { return port_; }
  const Params& params() const { return params_; }

  const std::map<std::uint64_t, std::shared_ptr<StreamConnection>>&
  connections() const {
    return connections_;
  }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Connection *identity* (keys, handlers) is structural: restore matches
  // the serialized connections one-to-one against the already-rebuilt set by
  // key and overwrites their transport state. A key mismatch means the
  // structural warmup diverged from the checkpointed run and is an error.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  friend class StreamConnection;
  void on_datagram(const Datagram& dg);

  sim::World& world_;
  NetStack& stack_;
  Port port_;
  Params params_;
  AcceptHandler on_accept_;
  std::map<std::uint64_t, std::shared_ptr<StreamConnection>> connections_;
  std::uint32_t next_conn_ = 1;
};

}  // namespace aroma::net
