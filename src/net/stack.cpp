#include "net/stack.hpp"

namespace aroma::net {

namespace {
constexpr std::size_t kDatagramHeaderBytes = 28;  // src/dst/group/hops/len
}

NetStack::NetStack(sim::World& world, phys::CsmaMac& mac)
    : world_(world), owned_link_(std::make_unique<WirelessLink>(mac)),
      link_(owned_link_.get()) {
  link_->set_receive_handler(
      [this](NodeId src, const LinkLayer::Payload& payload,
             std::size_t bits) { on_link_receive(src, payload, bits); });
}

NetStack::NetStack(sim::World& world, LinkLayer& link)
    : world_(world), link_(&link) {
  link_->set_receive_handler(
      [this](NodeId src, const LinkLayer::Payload& payload,
             std::size_t bits) { on_link_receive(src, payload, bits); });
}

void NetStack::bind(Port port, Handler handler) {
  bindings_[port] = std::move(handler);
}

void NetStack::unbind(Port port) { bindings_.erase(port); }

void NetStack::send(Endpoint dst, Port src_port, std::vector<std::byte> data,
                    SendCallback cb) {
  auto dg = std::make_shared<Datagram>();
  dg->src = Endpoint{node_id(), src_port};
  dg->dst = dst;
  dg->data = std::move(data);
  const std::size_t bits = (dg->data.size() + kDatagramHeaderBytes) * 8;
  ++stats_.sent_unicast;
  stats_.bytes_sent += dg->data.size() + kDatagramHeaderBytes;
  const NodeId hop = next_hop_ ? next_hop_(dst.node) : dst.node;
  link_->send(hop, bits, dg, [this, cb = std::move(cb)](bool delivered) {
    if (!delivered) ++stats_.send_failures;
    if (cb) cb(delivered);
  });
}

void NetStack::send_multicast(GroupId group, Port port, Port src_port,
                              std::vector<std::byte> data) {
  auto dg = std::make_shared<Datagram>();
  dg->src = Endpoint{node_id(), src_port};
  dg->dst = Endpoint{0, port};
  dg->group = group;
  dg->data = std::move(data);
  const std::size_t bits = (dg->data.size() + kDatagramHeaderBytes) * 8;
  ++stats_.sent_multicast;
  stats_.bytes_sent += dg->data.size() + kDatagramHeaderBytes;
  link_->send(kLinkBroadcast, bits, dg, {});
}

void NetStack::on_link_receive(NodeId /*src*/,
                               const LinkLayer::Payload& payload,
                               std::size_t /*bits*/) {
  const auto* dg = static_cast<const Datagram*>(payload.get());
  if (dg == nullptr) return;
  if (dg->group != 0) {
    if (!in_group(dg->group)) {
      ++stats_.dropped_not_member;
      return;
    }
  } else if (dg->dst.node != node_id()) {
    return;
  }
  auto it = bindings_.find(dg->dst.port);
  if (it == bindings_.end()) {
    ++stats_.dropped_no_listener;
    return;
  }
  ++stats_.delivered;
  it->second(*dg);
}

}  // namespace aroma::net
