#include "net/stack.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "snap/format.hpp"

namespace aroma::net {

namespace {
constexpr std::size_t kDatagramHeaderBytes = 28;  // src/dst/group/hops/len
}

NetStack::NetStack(sim::World& world, phys::CsmaMac& mac)
    : world_(world), owned_link_(std::make_unique<WirelessLink>(mac)),
      link_(owned_link_.get()) {
  link_->set_receive_handler(
      [this](NodeId src, const LinkLayer::Payload& payload,
             std::size_t bits) { on_link_receive(src, payload, bits); });
  resolve_metrics();
}

NetStack::NetStack(sim::World& world, LinkLayer& link)
    : world_(world), link_(&link) {
  link_->set_receive_handler(
      [this](NodeId src, const LinkLayer::Payload& payload,
             std::size_t bits) { on_link_receive(src, payload, bits); });
  resolve_metrics();
}

void NetStack::resolve_metrics() {
  // The network service is a resource-layer box in the LPC model ("Net").
  const auto layer = lpc::Layer::kResource;
  m_sent_unicast_ = obs::counter(world_, "net.stack.sent_unicast", layer);
  m_sent_multicast_ = obs::counter(world_, "net.stack.sent_multicast", layer);
  m_delivered_ = obs::counter(world_, "net.stack.delivered", layer);
  m_send_failures_ = obs::counter(world_, "net.stack.send_failures", layer);
  m_bytes_sent_ = obs::counter(world_, "net.stack.bytes_sent", layer);
}

void NetStack::bind(Port port, Handler handler) {
  bindings_[port] = std::move(handler);
}

void NetStack::unbind(Port port) { bindings_.erase(port); }

void NetStack::send(Endpoint dst, Port src_port, std::vector<std::byte> data,
                    SendCallback cb) {
  // Datagrams are per-event hot-path objects; draw them from the world's
  // arena so a busy stack recycles a handful of blocks instead of hitting
  // the heap once per send.
  auto dg = sim::arena_shared<Datagram>(world_.arena());
  dg->src = Endpoint{node_id(), src_port};
  dg->dst = dst;
  dg->data = std::move(data);
  const std::size_t bits = (dg->data.size() + kDatagramHeaderBytes) * 8;
  ++stats_.sent_unicast;
  stats_.bytes_sent += dg->data.size() + kDatagramHeaderBytes;
  if (m_sent_unicast_) m_sent_unicast_->add();
  if (m_bytes_sent_) m_bytes_sent_->add(dg->data.size() + kDatagramHeaderBytes);
  const NodeId hop = next_hop_ ? next_hop_(dst.node) : dst.node;
  link_->send(hop, bits, dg, [this, cb = std::move(cb)](bool delivered) {
    if (!delivered) {
      ++stats_.send_failures;
      if (m_send_failures_) m_send_failures_->add();
    }
    if (cb) cb(delivered);
  });
}

void NetStack::send_multicast(GroupId group, Port port, Port src_port,
                              std::vector<std::byte> data) {
  auto dg = sim::arena_shared<Datagram>(world_.arena());
  dg->src = Endpoint{node_id(), src_port};
  dg->dst = Endpoint{0, port};
  dg->group = group;
  dg->data = std::move(data);
  const std::size_t bits = (dg->data.size() + kDatagramHeaderBytes) * 8;
  ++stats_.sent_multicast;
  stats_.bytes_sent += dg->data.size() + kDatagramHeaderBytes;
  if (m_sent_multicast_) m_sent_multicast_->add();
  if (m_bytes_sent_) m_bytes_sent_->add(dg->data.size() + kDatagramHeaderBytes);
  link_->send(kLinkBroadcast, bits, dg, {});
}

void NetStack::on_link_receive(NodeId /*src*/,
                               const LinkLayer::Payload& payload,
                               std::size_t /*bits*/) {
  const auto* dg = static_cast<const Datagram*>(payload.get());
  if (dg == nullptr) return;
  if (dg->group != 0) {
    if (!in_group(dg->group)) {
      ++stats_.dropped_not_member;
      return;
    }
  } else if (dg->dst.node != node_id()) {
    return;
  }
  auto it = bindings_.find(dg->dst.port);
  if (it == bindings_.end()) {
    ++stats_.dropped_no_listener;
    return;
  }
  ++stats_.delivered;
  if (m_delivered_) m_delivered_->add();
  // The dispatch span parents to the frame that carried the datagram (the
  // kernel restores the radio frame's span as the causal context while the
  // frame-end event delivers), linking env -> net in every trace.
  obs::ScopedSpan span(world_, "net.rx", lpc::Layer::kResource);
  span.annotate("port", std::to_string(dg->dst.port));
  it->second(*dg);
}

void NetStack::save(snap::SectionWriter& w) const {
  w.u64(stats_.sent_unicast);
  w.u64(stats_.sent_multicast);
  w.u64(stats_.delivered);
  w.u64(stats_.dropped_no_listener);
  w.u64(stats_.dropped_not_member);
  w.u64(stats_.send_failures);
  w.u64(stats_.bytes_sent);
  w.u64(groups_.size());
  for (GroupId g : groups_) w.u64(g);
}

void NetStack::restore(snap::SectionReader& r) {
  stats_.sent_unicast = r.u64();
  stats_.sent_multicast = r.u64();
  stats_.delivered = r.u64();
  stats_.dropped_no_listener = r.u64();
  stats_.dropped_not_member = r.u64();
  stats_.send_failures = r.u64();
  stats_.bytes_sent = r.u64();
  groups_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) groups_.insert(r.u64());
}

}  // namespace aroma::net
