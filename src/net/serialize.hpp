// Byte-level serialization so protocol messages have realistic wire sizes.
//
// Little-endian fixed-width integers, length-prefixed strings/blobs. The
// reader is bounds-checked and reports truncation instead of throwing.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aroma::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { std::uint8_t v = 0; raw(&v, 1); return v; }
  std::uint16_t u16() { std::uint16_t v = 0; raw(&v, 2); return v; }
  std::uint32_t u32() { std::uint32_t v = 0; raw(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v = 0; raw(&v, 8); return v; }
  double f64() { double v = 0; raw(&v, 8); return v; }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) { ok_ = false; return {}; }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::byte> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) { ok_ = false; return {}; }
    std::vector<std::byte> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

 private:
  void raw(void* p, std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace aroma::net
