#include "net/bridge.hpp"

#include "snap/format.hpp"

namespace aroma::net {

namespace {
constexpr std::size_t kDatagramHeaderBytes = 28;
}

Bridge::Bridge(sim::World& world, LinkLayer& side_a, LinkLayer& side_b)
    : world_(world), a_(side_a), b_(side_b) {
  a_.set_receive_handler([this](NodeId, const LinkLayer::Payload& p,
                                std::size_t) {
    forward(p, b_, next_hop_b_);
  });
  b_.set_receive_handler([this](NodeId, const LinkLayer::Payload& p,
                                std::size_t) {
    forward(p, a_, next_hop_a_);
  });
}

Bridge::~Bridge() {
  // Detach: frames arriving after destruction must not call into us.
  a_.set_receive_handler({});
  b_.set_receive_handler({});
}

void Bridge::forward(const LinkLayer::Payload& payload, LinkLayer& out,
                     const std::function<NodeId(NodeId)>& next_hop) {
  const auto* dg = static_cast<const Datagram*>(payload.get());
  if (dg == nullptr) {
    ++stats_.dropped_not_datagram;
    return;
  }
  if (dg->hops_left == 0) {
    ++stats_.dropped_hop_limit;
    return;
  }
  auto copy = sim::arena_shared<Datagram>(world_.arena(), *dg);
  --copy->hops_left;
  const std::size_t bits = (copy->data.size() + kDatagramHeaderBytes) * 8;
  if (copy->group != 0) {
    ++stats_.forwarded_multicast;
    out.send(kLinkBroadcast, bits, std::move(copy), {});
    return;
  }
  // Unicast: the sender addressed the bridge at the link layer because the
  // destination lives beyond it; pass it along on the other side.
  const NodeId dst = copy->dst.node;
  if (dst == a_.address() || dst == b_.address()) return;  // for the AP itself
  ++stats_.forwarded_unicast;
  out.send(next_hop ? next_hop(dst) : dst, bits, std::move(copy), {});
}

void Bridge::save(snap::SectionWriter& w) const {
  w.u64(stats_.forwarded_unicast);
  w.u64(stats_.forwarded_multicast);
  w.u64(stats_.dropped_hop_limit);
  w.u64(stats_.dropped_not_datagram);
}

void Bridge::restore(snap::SectionReader& r) {
  stats_.forwarded_unicast = r.u64();
  stats_.forwarded_multicast = r.u64();
  stats_.dropped_hop_limit = r.u64();
  stats_.dropped_not_datagram = r.u64();
}

}  // namespace aroma::net
