// A wired LAN segment: the "traditional network" side of the bridge.
//
// Modelled as a switched full-duplex segment: each port serializes its own
// transmissions at the segment bandwidth, delivery adds a fixed latency,
// and frames are never lost — the reliability contrast with the 2.4 GHz
// side is the point.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "net/link.hpp"
#include "sim/world.hpp"

namespace aroma::net {

class WiredBus {
 public:
  struct Params {
    double bandwidth_bps = 100e6;   // switched fast ethernet
    sim::Time latency = sim::Time::us(50);
    std::size_t header_bits = 304;  // ethernet header + FCS
  };

  WiredBus(sim::World& world);
  WiredBus(sim::World& world, Params params);
  WiredBus(const WiredBus&) = delete;
  WiredBus& operator=(const WiredBus&) = delete;

  /// Creates (and owns) a port with the given link address. The returned
  /// reference stays valid for the bus's lifetime.
  LinkLayer& create_port(NodeId id);

  std::size_t port_count() const { return ports_.size(); }
  std::uint64_t frames_delivered() const { return frames_delivered_; }

 private:
  class Port final : public LinkLayer {
   public:
    Port(WiredBus& bus, NodeId id) : bus_(bus), id_(id) {}
    NodeId address() const override { return id_; }
    void send(NodeId dst, std::size_t payload_bits, Payload payload,
              SendCallback cb) override {
      bus_.transmit(id_, dst, payload_bits, std::move(payload),
                    std::move(cb));
    }
    void set_receive_handler(ReceiveHandler handler) override {
      handler_ = std::move(handler);
    }

    ReceiveHandler handler_;

   private:
    WiredBus& bus_;
    NodeId id_;
  };

  void transmit(NodeId src, NodeId dst, std::size_t payload_bits,
                LinkLayer::Payload payload, LinkLayer::SendCallback cb);

  sim::World& world_;
  Params params_;
  std::map<NodeId, std::unique_ptr<Port>> ports_;
  std::map<NodeId, sim::Time> port_busy_until_;  // per-port serialization
  std::uint64_t frames_delivered_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::net
