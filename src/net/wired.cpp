#include "net/wired.hpp"

#include <algorithm>

namespace aroma::net {

WiredBus::WiredBus(sim::World& world) : WiredBus(world, Params{}) {}

WiredBus::WiredBus(sim::World& world, Params params)
    : world_(world), params_(params) {}

LinkLayer& WiredBus::create_port(NodeId id) {
  auto [it, inserted] = ports_.emplace(id, std::make_unique<Port>(*this, id));
  return *it->second;
}

void WiredBus::transmit(NodeId src, NodeId dst, std::size_t payload_bits,
                        LinkLayer::Payload payload,
                        LinkLayer::SendCallback cb) {
  // Serialize on the sender's port, then deliver after the wire latency.
  const auto serialization = sim::Time::sec(
      static_cast<double>(payload_bits + params_.header_bits) /
      params_.bandwidth_bps);
  sim::Time& busy = port_busy_until_[src];
  const sim::Time start = std::max(busy, world_.now());
  busy = start + serialization;
  const sim::Time deliver_at = busy + params_.latency;

  world_.sim().schedule_at(
      deliver_at,
      [this, src, dst, payload_bits, payload = std::move(payload),
       cb = std::move(cb), guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        for (auto& [id, port] : ports_) {
          if (id == src) continue;
          if (dst != kLinkBroadcast && id != dst) continue;
          ++frames_delivered_;
          if (port->handler_) port->handler_(src, payload, payload_bits);
        }
        if (cb) cb(true);  // wired segments do not lose frames
      });
}

}  // namespace aroma::net
