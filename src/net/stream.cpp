#include "net/stream.hpp"

#include <algorithm>
#include <cmath>

#include "net/serialize.hpp"
#include "obs/metrics.hpp"
#include "snap/format.hpp"

namespace aroma::net {

namespace {
enum SegType : std::uint8_t { kSyn = 1, kSynAck = 2, kData = 3, kAck = 4,
                              kFin = 5 };
}  // namespace

// ---------------------------------------------------------------------------
// StreamManager

StreamManager::StreamManager(sim::World& world, NetStack& stack, Port port)
    : StreamManager(world, stack, port, Params{}) {}

StreamManager::StreamManager(sim::World& world, NetStack& stack, Port port,
                             Params params)
    : world_(world), stack_(stack), port_(port), params_(params) {
  stack_.bind(port_, [this](const Datagram& dg) { on_datagram(dg); });
}

std::shared_ptr<StreamConnection> StreamManager::connect(NodeId remote) {
  const std::uint64_t key =
      (stack_.node_id() << 20) ^ (next_conn_++);
  auto conn = std::shared_ptr<StreamConnection>(
      new StreamConnection(*this, remote, key, /*initiator=*/true));
  connections_[key] = conn;
  conn->send_segment(kSyn, 0, {});
  conn->arm_rto();
  return conn;
}

void StreamManager::on_datagram(const Datagram& dg) {
  ByteReader r(dg.data);
  const std::uint8_t type = r.u8();
  const std::uint64_t key = r.u64();
  const std::uint64_t seq = r.u64();
  const std::uint64_t ack = r.u64();
  const auto payload = r.bytes();
  if (!r.ok()) return;

  auto it = connections_.find(key);
  std::shared_ptr<StreamConnection> conn;
  if (it != connections_.end()) {
    conn = it->second;
  } else if (type == kSyn && on_accept_) {
    conn = std::shared_ptr<StreamConnection>(
        new StreamConnection(*this, dg.src.node, key, /*initiator=*/false));
    connections_[key] = conn;
    on_accept_(conn);
  } else {
    return;  // segment for an unknown (likely closed) connection
  }
  conn->handle_segment(type, seq, ack, payload);
  if (conn->closed()) connections_.erase(key);
}

// ---------------------------------------------------------------------------
// StreamConnection

StreamConnection::StreamConnection(StreamManager& mgr, NodeId peer,
                                   std::uint64_t key, bool initiator)
    : mgr_(mgr), peer_(peer), key_(key), initiator_(initiator),
      state_(initiator ? State::kSynSent : State::kSynReceived) {}

std::size_t StreamConnection::unacked_bytes() const {
  std::size_t n = send_buffer_.size();
  for (const auto& u : inflight_) n += u.data.size();
  return n;
}

void StreamConnection::send(std::vector<std::byte> data) {
  if (state_ == State::kClosed || fin_queued_) return;
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished) pump();
}

void StreamConnection::close() {
  if (state_ == State::kClosed || fin_queued_) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished) pump();
}

void StreamConnection::send_segment(std::uint8_t type, std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  ByteWriter w;
  w.u8(type);
  w.u64(key_);
  w.u64(seq);
  w.u64(type == kAck ? rcv_next_ : 0);
  w.bytes(payload);
  mgr_.stack().send(Endpoint{peer_, mgr_.port()}, mgr_.port(), w.take());
}

void StreamConnection::send_ack() { send_segment(kAck, 0, {}); }

void StreamConnection::pump() {
  const auto window = static_cast<std::size_t>(
      std::min<double>(std::floor(cwnd_),
                       static_cast<double>(mgr_.params().max_window_segments)));
  while (inflight_.size() < std::max<std::size_t>(window, 1)) {
    if (!send_buffer_.empty()) {
      const std::size_t n =
          std::min(send_buffer_.size(), mgr_.params().mss_bytes);
      Unacked u;
      u.seq = snd_next_;
      u.data.assign(send_buffer_.begin(),
                    send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
      send_buffer_.erase(send_buffer_.begin(),
                         send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
      u.first_sent = u.last_sent = mgr_.world().now();
      snd_next_ += n;
      stats_.bytes_sent += n;
      ++stats_.segments_sent;
      send_segment(kData, u.seq, u.data);
      inflight_.push_back(std::move(u));
      arm_rto();
    } else if (fin_queued_) {
      // FIN consumes one sequence number; send it once.
      bool fin_inflight = false;
      for (const auto& u : inflight_) fin_inflight |= u.fin;
      if (!fin_inflight && state_ != State::kFinSent) {
        Unacked u;
        u.seq = snd_next_;
        u.fin = true;
        u.first_sent = u.last_sent = mgr_.world().now();
        snd_next_ += 1;
        send_segment(kFin, u.seq, {});
        inflight_.push_back(std::move(u));
        state_ = State::kFinSent;
        arm_rto();
      }
      return;
    } else {
      return;
    }
  }
}

void StreamConnection::arm_rto() {
  const auto gen = ++rto_gen_;
  rto_armed_ = true;
  const double rto = std::clamp(rto_s_, mgr_.params().min_rto_s,
                                mgr_.params().max_rto_s);
  ++outstanding_rto_;
  mgr_.world().sim().schedule_in(sim::Time::sec(rto),
                                 [self = shared_from_this(), gen] {
                                   self->on_rto(gen);
                                 });
}

void StreamConnection::on_rto(std::uint64_t gen) {
  --outstanding_rto_;
  if (gen != rto_gen_ || !rto_armed_ || state_ == State::kClosed) return;
  // Handshake retransmission.
  if (state_ == State::kSynSent) {
    send_segment(kSyn, 0, {});
    rto_s_ = std::min(rto_s_ * 2.0, mgr_.params().max_rto_s);
    if (++handshake_retx_ > mgr_.params().max_retx) {
      become_closed();
      return;
    }
    arm_rto();
    return;
  }
  if (inflight_.empty()) {
    rto_armed_ = false;
    return;
  }
  Unacked& u = inflight_.front();
  if (++u.retx > mgr_.params().max_retx) {
    become_closed();
    return;
  }
  u.last_sent = mgr_.world().now();
  ++stats_.retransmissions;
  stats_.bytes_retransmitted += u.data.size();
  send_segment(u.fin ? kFin : kData, u.seq, u.data);
  // Multiplicative decrease on loss.
  ssthresh_ = std::max(cwnd_ / 2.0, 1.0);
  cwnd_ = 1.0;
  rto_s_ = std::min(rto_s_ * 2.0, mgr_.params().max_rto_s);
  arm_rto();
}

void StreamConnection::update_rtt(double sample_s) {
  if (srtt_ == 0.0) {
    srtt_ = sample_s;
    rttvar_ = sample_s / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample_s);
    srtt_ = 0.875 * srtt_ + 0.125 * sample_s;
  }
  rto_s_ = srtt_ + 4.0 * rttvar_;
  stats_.srtt_s = srtt_;
}

void StreamConnection::on_ack(std::uint64_t ack) {
  bool advanced = false;
  while (!inflight_.empty()) {
    const Unacked& u = inflight_.front();
    const std::uint64_t end = u.seq + (u.fin ? 1 : u.data.size());
    if (end > ack) break;
    if (u.retx == 0) {
      const sim::Time rtt = mgr_.world().now() - u.first_sent;
      update_rtt(rtt.seconds());
      if (obs::HdrHistogram* h = obs::hdr(mgr_.world(), "net.stream.rtt_us",
                                          lpc::Layer::kResource)) {
        h->record(static_cast<std::uint64_t>(rtt.count() / 1000));
      }
    }
    // AIMD growth: slow start below ssthresh, congestion avoidance above.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      cwnd_ += 1.0 / cwnd_;
    }
    stats_.cwnd_segments = cwnd_;
    const bool was_fin = u.fin;
    inflight_.pop_front();
    advanced = true;
    if (was_fin && state_ == State::kFinSent) {
      become_closed();
      return;
    }
  }
  if (advanced) {
    dup_acks_ = 0;
    last_ack_seen_ = ack;
    if (!inflight_.empty()) arm_rto();
    else rto_armed_ = false;
    pump();
    return;
  }
  // Duplicate ACK.
  if (ack == last_ack_seen_ && !inflight_.empty()) {
    if (++dup_acks_ == 3) {
      Unacked& u = inflight_.front();
      ++u.retx;
      u.last_sent = mgr_.world().now();
      ++stats_.fast_retransmits;
      stats_.bytes_retransmitted += u.data.size();
      send_segment(u.fin ? kFin : kData, u.seq, u.data);
      ssthresh_ = std::max(cwnd_ / 2.0, 1.0);
      cwnd_ = ssthresh_;
      dup_acks_ = 0;
      arm_rto();
    }
  }
}

void StreamConnection::deliver_in_order() {
  for (;;) {
    auto it = reorder_.find(rcv_next_);
    if (it == reorder_.end()) break;
    std::vector<std::byte> data = std::move(it->second);
    reorder_.erase(it);
    rcv_next_ += data.size();
    stats_.bytes_delivered += data.size();
    if (on_data_) on_data_(data);
  }
  if (peer_fin_ && peer_fin_seq_ == rcv_next_) {
    rcv_next_ += 1;
    send_ack();
    become_closed();
  }
}

void StreamConnection::handle_segment(std::uint8_t type, std::uint64_t seq,
                                      std::uint64_t ack,
                                      std::span<const std::byte> payload) {
  if (state_ == State::kClosed) return;
  switch (type) {
    case kSyn:
      // (Re)send SYNACK; duplicate SYNs mean our SYNACK was lost.
      if (!initiator_) send_segment(kSynAck, 0, {});
      return;
    case kSynAck:
      if (state_ == State::kSynSent) {
        state_ = State::kEstablished;
        rto_armed_ = false;
        send_ack();
        if (on_established_) on_established_();
        pump();
      }
      return;
    case kAck:
      if (state_ == State::kSynReceived) {
        state_ = State::kEstablished;
        if (on_established_) on_established_();
      }
      on_ack(ack);
      return;
    case kData:
    case kFin:
      if (state_ == State::kSynReceived) {
        state_ = State::kEstablished;
        if (on_established_) on_established_();
      }
      if (type == kFin) {
        peer_fin_ = true;
        peer_fin_seq_ = seq;
      } else if (seq >= rcv_next_ && !payload.empty()) {
        reorder_.emplace(seq,
                         std::vector<std::byte>(payload.begin(), payload.end()));
      }
      deliver_in_order();
      if (state_ != State::kClosed) send_ack();
      return;
    default:
      return;
  }
}

bool StreamConnection::snap_quiescent(std::string* why) const {
  if (state_ != State::kEstablished) {
    if (why) *why = "stream: connection not established";
    return false;
  }
  if (!inflight_.empty() || !send_buffer_.empty() || !reorder_.empty() ||
      fin_queued_ || peer_fin_) {
    if (why) *why = "stream: bytes in flight";
    return false;
  }
  if (outstanding_rto_ != 0) {
    if (why) *why = "stream: RTO event scheduled";
    return false;
  }
  return true;
}

void StreamConnection::save(snap::SectionWriter& w) const {
  w.u64(snd_next_);
  w.f64(cwnd_);
  w.f64(ssthresh_);
  w.u32(static_cast<std::uint32_t>(dup_acks_));
  w.u64(last_ack_seen_);
  w.u64(rcv_next_);
  w.f64(srtt_);
  w.f64(rttvar_);
  w.f64(rto_s_);
  w.u64(rto_gen_);
  w.u32(static_cast<std::uint32_t>(handshake_retx_));
  w.u64(stats_.bytes_sent);
  w.u64(stats_.bytes_retransmitted);
  w.u64(stats_.bytes_delivered);
  w.u64(stats_.segments_sent);
  w.u64(stats_.retransmissions);
  w.u64(stats_.fast_retransmits);
  w.f64(stats_.srtt_s);
  w.f64(stats_.cwnd_segments);
}

void StreamConnection::restore(snap::SectionReader& r) {
  // The warmed-up connection may hold in-flight transport state; the
  // checkpoint was quiescent, so normalize to that.
  send_buffer_.clear();
  inflight_.clear();
  reorder_.clear();
  state_ = State::kEstablished;
  dup_acks_ = 0;
  fin_queued_ = false;
  peer_fin_ = false;
  peer_fin_seq_ = 0;
  rto_armed_ = false;
  outstanding_rto_ = 0;

  snd_next_ = r.u64();
  cwnd_ = r.f64();
  ssthresh_ = r.f64();
  dup_acks_ = static_cast<int>(r.u32());
  last_ack_seen_ = r.u64();
  rcv_next_ = r.u64();
  srtt_ = r.f64();
  rttvar_ = r.f64();
  rto_s_ = r.f64();
  rto_gen_ = r.u64();
  handshake_retx_ = static_cast<int>(r.u32());
  stats_.bytes_sent = r.u64();
  stats_.bytes_retransmitted = r.u64();
  stats_.bytes_delivered = r.u64();
  stats_.segments_sent = r.u64();
  stats_.retransmissions = r.u64();
  stats_.fast_retransmits = r.u64();
  stats_.srtt_s = r.f64();
  stats_.cwnd_segments = r.f64();
}

// Closed connections are invisible to checkpointing. They linger in the
// map only until a stray late segment garbage-collects them (see
// on_datagram), they hold no transport state, and a segment addressed to
// one is a no-op whether the entry exists or not — so skipping them in
// save/quiescence and purging them at restore cannot change behavior,
// while serializing them would make the blob depend on GC timing.
bool StreamManager::snap_quiescent(std::string* why) const {
  for (const auto& [key, conn] : connections_) {
    if (conn->closed()) continue;
    if (!conn->snap_quiescent(why)) return false;
  }
  return true;
}

void StreamManager::save(snap::SectionWriter& w) const {
  w.u32(next_conn_);
  std::uint64_t live = 0;
  for (const auto& [key, conn] : connections_) {
    if (!conn->closed()) ++live;
  }
  w.u64(live);
  for (const auto& [key, conn] : connections_) {
    if (conn->closed()) continue;
    w.u64(key);
    conn->save(w);
  }
}

void StreamManager::restore(snap::SectionReader& r) {
  std::erase_if(connections_,
                [](const auto& e) { return e.second->closed(); });
  next_conn_ = r.u32();
  const std::uint64_t count = r.u64();
  if (count != connections_.size()) {
    throw snap::SnapError(
        "stream restore: connection count mismatch (blob " +
        std::to_string(count) + ", rebuilt " +
        std::to_string(connections_.size()) + ")");
  }
  for (auto& [key, conn] : connections_) {
    if (r.u64() != key) {
      throw snap::SnapError("stream restore: connection key mismatch");
    }
    conn->restore(r);
  }
}

void StreamConnection::become_closed() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  rto_armed_ = false;
  if (on_closed_) on_closed_();
}

}  // namespace aroma::net
