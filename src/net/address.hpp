// Addressing for the Aroma network substrate.
//
// Nodes are addressed by their radio/MAC id; multicast groups are a separate
// small id space. Ports multiplex services on a node, as in UDP.
#pragma once

#include <cstdint>
#include <functional>

namespace aroma::net {

using NodeId = std::uint64_t;
using GroupId = std::uint32_t;
using Port = std::uint16_t;

/// Well-known groups/ports used by the stock protocols.
inline constexpr GroupId kDiscoveryGroup = 1;   // Jini-style multicast request
inline constexpr GroupId kAnnounceGroup = 2;    // registrar/SSDP announcements
inline constexpr Port kRegistrarPort = 4160;    // Jini registrar unicast port
inline constexpr Port kSlpPort = 427;
inline constexpr Port kSsdpPort = 1900;

struct Endpoint {
  NodeId node = 0;
  Port port = 0;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<std::uint64_t>{}(e.node * 0x10001ULL + e.port);
  }
};

}  // namespace aroma::net
