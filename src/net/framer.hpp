// Length-prefixed message framing over a byte stream. Used by every
// stream-based protocol in the stack (RFB display updates, mobile-code
// transfer).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

namespace aroma::net {

class MessageFramer {
 public:
  using MessageHandler = std::function<void(std::span<const std::byte>)>;

  void set_handler(MessageHandler h) { handler_ = std::move(h); }

  /// Feeds raw stream bytes; fires the handler once per complete message.
  void on_bytes(std::span<const std::byte> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    for (;;) {
      if (buffer_.size() < 4) return;
      std::uint32_t len = 0;
      std::memcpy(&len, buffer_.data(), 4);
      if (buffer_.size() < 4 + len) return;
      if (handler_) {
        handler_(std::span<const std::byte>(buffer_.data() + 4, len));
      }
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(4 + len));
    }
  }

  /// Bytes received but not yet delivered as a complete message. Zero at
  /// every checkpoint (quiescence implies drained streams), so the framer
  /// itself carries no serialized state.
  std::size_t buffered() const { return buffer_.size(); }

  /// Drops partially-received bytes (restore normalization).
  void reset() { buffer_.clear(); }

  /// Wraps a payload with its length prefix.
  static std::vector<std::byte> frame(std::span<const std::byte> payload) {
    std::vector<std::byte> out(4 + payload.size());
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::memcpy(out.data(), &len, 4);
    std::memcpy(out.data() + 4, payload.data(), payload.size());
    return out;
  }

 private:
  std::vector<std::byte> buffer_;
  MessageHandler handler_;
};

}  // namespace aroma::net
