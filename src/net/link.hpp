// Link-layer abstraction: what a network stack needs from "the thing that
// moves frames" — so the same stack runs over the CSMA/CA wireless MAC or
// a wired segment, and a bridge can splice the two together (the Aroma
// project's first focus area: "connecting portable wireless devices to
// traditional networks").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/address.hpp"

namespace aroma::net {

inline constexpr NodeId kLinkBroadcast = ~0ULL;

/// A frame-delivery service with link-local addressing.
class LinkLayer {
 public:
  virtual ~LinkLayer() = default;

  using Payload = std::shared_ptr<const void>;
  using ReceiveHandler =
      std::function<void(NodeId src, const Payload& payload,
                         std::size_t payload_bits)>;
  using SendCallback = std::function<void(bool delivered)>;

  /// This interface's link-local address.
  virtual NodeId address() const = 0;

  /// Sends a frame to `dst` (or kLinkBroadcast). Best-effort semantics are
  /// link-specific: the wireless MAC retries and reports the outcome; a
  /// wired segment always delivers.
  virtual void send(NodeId dst, std::size_t payload_bits, Payload payload,
                    SendCallback cb) = 0;

  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

}  // namespace aroma::net
