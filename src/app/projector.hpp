// The Smart Projector: the paper's challenge application.
//
// Two separately-sessioned services exported through Jini discovery, as in
// the prototype:
//   * projection — the presenter's laptop display is mirrored to the
//     projector (the adapter runs an RFB viewer against the laptop's
//     RFB server, then drives the projector panel with the replica);
//   * control — power / input / brightness commands.
//
// The deliberate conceptual burden of the prototype is preserved: a
// presenter must (1) run the RFB server on the laptop, (2) acquire and
// start the projection client, and (3) acquire the control client — and
// must stop/release both when done. FIG4 measures what this burden does to
// real users.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "app/session.hpp"
#include "disco/jini.hpp"
#include "net/stack.hpp"
#include "net/stream.hpp"
#include "rfb/protocol.hpp"
#include "rfb/workload.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::app {

inline constexpr net::Port kProjectionPort = 5800;
inline constexpr net::Port kControlPort = 5801;
inline constexpr net::Port kVncPort = 5900;

/// Service type strings used in discovery.
inline constexpr const char* kProjectionType = "projector/display";
inline constexpr const char* kControlType = "projector/control";

enum class ProjMsg : std::uint8_t {
  kAcquire = 1,     // u32 reply-token
  kAcquireResp,     // u32 reply-token, u8 ok, u64 session
  kStart,           // u64 session, u64 rfb-server node  (projection only)
  kStartResp,       // u8 ok
  kStop,            // u64 session
  kRelease,         // u64 session
  kRenew,           // u64 session
  kCommand,         // u64 session, u8 cmd, i32 arg     (control only)
  kCommandResp,     // u8 ok, u8 cmd
};

enum class ProjectorCommand : std::uint8_t {
  kPowerOn = 1, kPowerOff, kSelectInput, kBrightness
};

/// Observable state of the projector hardware.
struct ProjectorState {
  bool powered = false;
  int input = 0;
  int brightness = 70;
  bool projecting = false;   // a projection stream is live
};

struct ProjectorServiceStats {
  std::uint64_t acquire_ok = 0;
  std::uint64_t acquire_busy = 0;      // hijack attempts rejected
  std::uint64_t commands_ok = 0;
  std::uint64_t commands_rejected = 0; // no valid session
  std::uint64_t projections_started = 0;
  std::uint64_t projections_stopped = 0;
};

/// Device-side implementation (runs on the Aroma adapter node).
class SmartProjector {
 public:
  struct Params {
    SessionManager::Params session{};
    rfb::RfbServer::Params rfb{};          // unused server-side; kept for symmetry
    sim::Time renew_interval = sim::Time::sec(20.0);
  };

  SmartProjector(sim::World& world, net::NetStack& stack);
  SmartProjector(sim::World& world, net::NetStack& stack, Params params);
  ~SmartProjector();
  SmartProjector(const SmartProjector&) = delete;
  SmartProjector& operator=(const SmartProjector&) = delete;

  /// Registers both services with the lookup service via `jini`.
  void export_services(disco::JiniClient& jini,
                       std::function<void(bool)> done = {});

  const ProjectorState& state() const { return state_; }
  const ProjectorServiceStats& stats() const { return stats_; }
  SessionManager& projection_session() { return projection_session_; }
  SessionManager& control_session() { return control_session_; }

  /// The replica currently being projected (null before projection starts).
  const rfb::Framebuffer* projected() const {
    return viewer_ && viewer_->initialized() ? &viewer_->replica() : nullptr;
  }
  const rfb::RfbClient* viewer() const { return viewer_.get(); }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // save()/restore() cover the projector's own state (hardware state,
  // service stats, both session managers). The stream manager and viewer
  // are exposed so the checkpoint harness can serialize them into the
  // stream/RFB sections alongside their peers.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);
  net::StreamManager* stream_manager() { return streams_.get(); }
  rfb::RfbClient* viewer_client() { return viewer_.get(); }

 private:
  void on_projection_msg(const net::Datagram& dg);
  void on_control_msg(const net::Datagram& dg);
  void start_projection(net::NodeId rfb_node);
  void stop_projection();

  sim::World& world_;
  net::NetStack& stack_;
  Params params_;
  SessionManager projection_session_;
  SessionManager control_session_;
  ProjectorState state_;
  ProjectorServiceStats stats_;
  std::unique_ptr<net::StreamManager> streams_;
  std::shared_ptr<net::StreamConnection> viewer_conn_;
  std::unique_ptr<rfb::RfbClient> viewer_;
};

/// Client for one sessioned projector service (projection or control).
/// Handles acquire / renew / release; the projection variant also starts
/// and stops the display stream.
class ProjectorClient {
 public:
  using Ack = std::function<void(bool ok)>;

  /// `service_port` is kProjectionPort or kControlPort.
  ProjectorClient(sim::World& world, net::NetStack& stack,
                  net::NodeId projector_node, net::Port service_port);
  ~ProjectorClient();

  /// Acquire the session (rejected while another client holds it).
  void acquire(Ack cb);
  /// Projection only: tell the adapter to pull frames from `rfb_node`.
  void start_projection(net::NodeId rfb_node, Ack cb);
  void stop_projection();
  /// Control only.
  void command(ProjectorCommand cmd, std::int32_t arg, Ack cb);
  /// Release the session. Safe to skip — the lease will expire — but
  /// skipping keeps the projector busy for everyone else meanwhile.
  void release();

  bool has_session() const { return session_.has_value(); }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Pending acquire/start/command exchanges hold user callbacks (code), so
  // the client is only checkpointable with none in flight. The renewal
  // timer is a PeriodicTimer, re-armed verbatim.
  bool snap_quiescent(std::string* why) const;
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  void on_datagram(const net::Datagram& dg);
  void send_renew();

  sim::World& world_;
  net::NetStack& stack_;
  net::NodeId projector_;
  net::Port service_port_;
  net::Port local_port_;
  std::optional<SessionToken> session_;
  std::uint32_t next_token_ = 1;
  std::map<std::uint32_t, Ack> pending_acquire_;
  Ack pending_start_;
  Ack pending_command_;
  std::unique_ptr<sim::PeriodicTimer> renewer_;
};

/// Laptop-side presenter endpoint: the screen framebuffer plus the RFB
/// server the projector pulls from ("the VNC server must also be started
/// on the laptop for projection to succeed").
class PresenterDisplay {
 public:
  PresenterDisplay(sim::World& world, net::NetStack& stack, int width,
                   int height);
  PresenterDisplay(sim::World& world, net::NetStack& stack, int width,
                   int height, rfb::RfbServer::Params rfb_params);

  /// Starts accepting viewer connections (the "VNC server" switch).
  void start_server();
  bool server_running() const { return accepting_; }

  rfb::Framebuffer& screen() { return screen_; }
  /// Applies one workload step and nudges the server.
  void apply(rfb::ScreenWorkload& workload);

  const rfb::RfbServer* server() const { return server_.get(); }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // The display's own persistent state is just the accepting flag (the
  // server and connection are structural, rebuilt by warmup and validated
  // on restore). Screen pixels and the RFB server serialize into the pixel
  // and RFB sections via these accessors.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);
  net::StreamManager* stream_manager() { return streams_.get(); }
  rfb::RfbServer* server_mutable() { return server_.get(); }

 private:
  sim::World& world_;
  net::NetStack& stack_;
  rfb::Framebuffer screen_;
  rfb::RfbServer::Params rfb_params_;
  std::unique_ptr<net::StreamManager> streams_;
  std::unique_ptr<rfb::RfbServer> server_;
  std::shared_ptr<net::StreamConnection> conn_;
  bool accepting_ = false;
};

}  // namespace aroma::app
