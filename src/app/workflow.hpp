// Multi-step asynchronous workflows.
//
// Encodes "what the user must do to reach their goal" as an explicit list
// of steps ("start VNC server", "acquire projection", "start projection",
// ...). The step count and ordering constraints are the paper's
// "conceptual burden": FIG4 sweeps them against user faculties.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace aroma::app {

/// Outcome of a workflow run.
struct WorkflowResult {
  bool succeeded = false;
  std::size_t steps_completed = 0;
  std::string failed_step;
  sim::Time elapsed;
};

/// A linear asynchronous workflow: each step's action receives a
/// completion callback and reports success/failure; failure aborts.
class Workflow {
 public:
  /// An action calls done(true/false) exactly once, possibly after
  /// simulated delay (network round trips etc.).
  using Action = std::function<void(std::function<void(bool)> done)>;
  using Completion = std::function<void(const WorkflowResult&)>;

  explicit Workflow(sim::World& world) : world_(world) {}

  Workflow& step(std::string name, Action action);
  std::size_t size() const { return steps_.size(); }
  const std::string& step_name(std::size_t i) const { return steps_[i].name; }

  /// Runs the steps in order. Invokes `done` exactly once.
  void run(Completion done);

  /// Runs steps in a caller-supplied order (models a user attempting the
  /// procedure in the wrong order; steps still execute, and may fail).
  void run_order(const std::vector<std::size_t>& order, Completion done);

 private:
  struct Step {
    std::string name;
    Action action;
  };
  void run_index(std::vector<std::size_t> order, std::size_t pos,
                 sim::Time started, Completion done);

  sim::World& world_;
  std::vector<Step> steps_;
};

}  // namespace aroma::app
