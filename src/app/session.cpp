#include "app/session.hpp"

#include "snap/format.hpp"

namespace aroma::app {

SessionManager::SessionManager(sim::World& world, std::string resource_name)
    : SessionManager(world, std::move(resource_name), Params{}) {}

SessionManager::SessionManager(sim::World& world, std::string resource_name,
                               Params params)
    : world_(world), name_(std::move(resource_name)), params_(params),
      leases_(world) {}

std::optional<SessionToken> SessionManager::acquire(std::uint64_t owner) {
  if (current_) {
    const bool live = params_.gateway ? params_.gateway->active(gw_session_)
                                      : leases_.active(current_->token);
    if (current_->owner == owner && live) {
      if (params_.gateway) {
        params_.gateway->renew(gw_session_, params_.lease);
      } else {
        leases_.renew(current_->token, params_.lease);
      }
      return current_->token;
    }
    ++stats_.rejections;
    world_.tracer().log(world_.now(), sim::TraceLevel::kWarn, "session",
                        "another user attempted to hijack the " + name_ +
                            " session while it was busy");
    return std::nullopt;
  }
  const SessionToken token = next_token_++;
  current_ = Current{token, owner};
  ++stats_.acquisitions;
  if (params_.gateway) {
    gw_session_ =
        params_.gateway->open(owner, params_.lease, [this] { expire(); });
  } else {
    leases_.grant(token, params_.lease, [this] { expire(); });
  }
  if (on_change_) on_change_(owner);
  return token;
}

bool SessionManager::renew(SessionToken token) {
  if (!current_ || current_->token != token) return false;
  ++stats_.renewals;
  if (params_.gateway) return params_.gateway->renew(gw_session_, params_.lease);
  return leases_.renew(token, params_.lease);
}

bool SessionManager::release(SessionToken token) {
  if (!current_ || current_->token != token) return false;
  if (params_.gateway) {
    params_.gateway->close(gw_session_);
  } else {
    leases_.cancel(token);
  }
  current_.reset();
  ++stats_.releases;
  if (on_change_) on_change_(0);
  return true;
}

std::optional<std::uint64_t> SessionManager::owner() const {
  if (!current_) return std::nullopt;
  return current_->owner;
}

bool SessionManager::valid(SessionToken token) const {
  return current_ && current_->token == token;
}

void SessionManager::expire() {
  if (!current_) return;
  current_.reset();
  ++stats_.expirations;
  if (on_change_) on_change_(0);
}

void SessionManager::save(snap::SectionWriter& w) const {
  if (params_.gateway) {
    throw snap::SnapError("session manager '" + name_ +
                          "': gateway-backed sessions are not checkpointable");
  }
  w.u64(stats_.acquisitions);
  w.u64(stats_.rejections);
  w.u64(stats_.releases);
  w.u64(stats_.expirations);
  w.u64(stats_.renewals);
  w.u64(next_token_);
  w.b(current_.has_value());
  if (current_) {
    w.u64(current_->token);
    w.u64(current_->owner);
  }
  leases_.save(w);
}

void SessionManager::restore(snap::SectionReader& r) {
  stats_.acquisitions = r.u64();
  stats_.rejections = r.u64();
  stats_.releases = r.u64();
  stats_.expirations = r.u64();
  stats_.renewals = r.u64();
  next_token_ = r.u64();
  current_.reset();
  if (r.b()) {
    Current c{};
    c.token = r.u64();
    c.owner = r.u64();
    current_ = c;
  }
  // Every lease in this table guards the single current session; its expiry
  // callback is always the manager's own expire().
  leases_.restore(r, [this](std::uint64_t) {
    return [this] { expire(); };
  });
}

}  // namespace aroma::app
