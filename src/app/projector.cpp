#include "app/projector.hpp"

#include <algorithm>

#include "net/serialize.hpp"
#include "snap/format.hpp"

namespace aroma::app {

namespace {
// Local client ports; distinct per service so one node can run both clients.
constexpr net::Port kProjectionClientPort = 5810;
constexpr net::Port kControlClientPort = 5811;
}  // namespace

// ---------------------------------------------------------------------------
// SmartProjector

SmartProjector::SmartProjector(sim::World& world, net::NetStack& stack)
    : SmartProjector(world, stack, Params{}) {}

SmartProjector::SmartProjector(sim::World& world, net::NetStack& stack,
                               Params params)
    : world_(world), stack_(stack), params_(params),
      projection_session_(world, "projection", params.session),
      control_session_(world, "control", params.session) {
  stack_.bind(kProjectionPort,
              [this](const net::Datagram& dg) { on_projection_msg(dg); });
  stack_.bind(kControlPort,
              [this](const net::Datagram& dg) { on_control_msg(dg); });
  projection_session_.set_owner_change_callback([this](std::uint64_t owner) {
    if (owner == 0) stop_projection();
  });
}

SmartProjector::~SmartProjector() {
  stack_.unbind(kProjectionPort);
  stack_.unbind(kControlPort);
}

void SmartProjector::export_services(disco::JiniClient& jini,
                                     std::function<void(bool)> done) {
  disco::ServiceDescription proj;
  proj.type = kProjectionType;
  proj.endpoint = net::Endpoint{stack_.node_id(), kProjectionPort};
  proj.attributes["resolution"] = "1024x768";
  proj.attributes["room"] = "lab-a";

  disco::ServiceDescription ctrl;
  ctrl.type = kControlType;
  ctrl.endpoint = net::Endpoint{stack_.node_id(), kControlPort};
  ctrl.attributes["room"] = "lab-a";

  auto remaining = std::make_shared<int>(2);
  auto all_ok = std::make_shared<bool>(true);
  auto finish = [remaining, all_ok, done](bool ok, disco::ServiceId) {
    *all_ok = *all_ok && ok;
    if (--*remaining == 0 && done) done(*all_ok);
  };
  jini.register_service(proj, finish);
  jini.register_service(ctrl, finish);
}

void SmartProjector::start_projection(net::NodeId rfb_node) {
  stop_projection();
  if (!streams_) {
    streams_ = std::make_unique<net::StreamManager>(world_, stack_, kVncPort);
  }
  viewer_conn_ = streams_->connect(rfb_node);
  viewer_ = std::make_unique<rfb::RfbClient>(world_, viewer_conn_);
  viewer_->start();
  state_.projecting = true;
  ++stats_.projections_started;
}

void SmartProjector::stop_projection() {
  if (viewer_conn_) {
    viewer_conn_->close();
    viewer_conn_.reset();
  }
  if (state_.projecting) ++stats_.projections_stopped;
  // Keep the viewer's replica alive for inspection; it stops updating.
  state_.projecting = false;
}

void SmartProjector::on_projection_msg(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<ProjMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case ProjMsg::kAcquire: {
      const std::uint32_t token = r.u32();
      const auto session = projection_session_.acquire(dg.src.node);
      session ? ++stats_.acquire_ok : ++stats_.acquire_busy;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(ProjMsg::kAcquireResp));
      w.u32(token);
      w.u8(session ? 1 : 0);
      w.u64(session ? *session : 0);
      stack_.send(net::Endpoint{dg.src.node, dg.src.port}, kProjectionPort,
                  w.take());
      return;
    }
    case ProjMsg::kStart: {
      const SessionToken session = r.u64();
      const net::NodeId rfb_node = r.u64();
      const bool ok = projection_session_.valid(session);
      if (ok) start_projection(rfb_node);
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(ProjMsg::kStartResp));
      w.u8(ok ? 1 : 0);
      stack_.send(net::Endpoint{dg.src.node, dg.src.port}, kProjectionPort,
                  w.take());
      return;
    }
    case ProjMsg::kStop: {
      const SessionToken session = r.u64();
      if (projection_session_.valid(session)) stop_projection();
      return;
    }
    case ProjMsg::kRelease: {
      const SessionToken session = r.u64();
      projection_session_.release(session);
      return;
    }
    case ProjMsg::kRenew: {
      projection_session_.renew(r.u64());
      return;
    }
    default:
      return;
  }
}

void SmartProjector::on_control_msg(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<ProjMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case ProjMsg::kAcquire: {
      const std::uint32_t token = r.u32();
      const auto session = control_session_.acquire(dg.src.node);
      session ? ++stats_.acquire_ok : ++stats_.acquire_busy;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(ProjMsg::kAcquireResp));
      w.u32(token);
      w.u8(session ? 1 : 0);
      w.u64(session ? *session : 0);
      stack_.send(net::Endpoint{dg.src.node, dg.src.port}, kControlPort,
                  w.take());
      return;
    }
    case ProjMsg::kCommand: {
      const SessionToken session = r.u64();
      const auto cmd = static_cast<ProjectorCommand>(r.u8());
      const auto arg = static_cast<std::int32_t>(r.u32());
      bool ok = control_session_.valid(session);
      if (ok) {
        switch (cmd) {
          case ProjectorCommand::kPowerOn: state_.powered = true; break;
          case ProjectorCommand::kPowerOff: state_.powered = false; break;
          case ProjectorCommand::kSelectInput: state_.input = arg; break;
          case ProjectorCommand::kBrightness:
            state_.brightness = std::clamp(arg, 0, 100);
            break;
          default: ok = false; break;
        }
      }
      ok ? ++stats_.commands_ok : ++stats_.commands_rejected;
      net::ByteWriter w;
      w.u8(static_cast<std::uint8_t>(ProjMsg::kCommandResp));
      w.u8(ok ? 1 : 0);
      w.u8(static_cast<std::uint8_t>(cmd));
      stack_.send(net::Endpoint{dg.src.node, dg.src.port}, kControlPort,
                  w.take());
      return;
    }
    case ProjMsg::kRelease: {
      control_session_.release(r.u64());
      return;
    }
    case ProjMsg::kRenew: {
      control_session_.renew(r.u64());
      return;
    }
    default:
      return;
  }
}

void SmartProjector::save(snap::SectionWriter& w) const {
  w.b(state_.powered);
  w.i64(state_.input);
  w.i64(state_.brightness);
  w.b(state_.projecting);
  w.u64(stats_.acquire_ok);
  w.u64(stats_.acquire_busy);
  w.u64(stats_.commands_ok);
  w.u64(stats_.commands_rejected);
  w.u64(stats_.projections_started);
  w.u64(stats_.projections_stopped);
  projection_session_.save(w);
  control_session_.save(w);
}

void SmartProjector::restore(snap::SectionReader& r) {
  state_.powered = r.b();
  state_.input = static_cast<int>(r.i64());
  state_.brightness = static_cast<int>(r.i64());
  state_.projecting = r.b();
  stats_.acquire_ok = r.u64();
  stats_.acquire_busy = r.u64();
  stats_.commands_ok = r.u64();
  stats_.commands_rejected = r.u64();
  stats_.projections_started = r.u64();
  stats_.projections_stopped = r.u64();
  projection_session_.restore(r);
  control_session_.restore(r);
}

// ---------------------------------------------------------------------------
// ProjectorClient

ProjectorClient::ProjectorClient(sim::World& world, net::NetStack& stack,
                                 net::NodeId projector_node,
                                 net::Port service_port)
    : world_(world), stack_(stack), projector_(projector_node),
      service_port_(service_port),
      local_port_(service_port == kProjectionPort ? kProjectionClientPort
                                                  : kControlClientPort) {
  stack_.bind(local_port_,
              [this](const net::Datagram& dg) { on_datagram(dg); });
}

ProjectorClient::~ProjectorClient() { stack_.unbind(local_port_); }

void ProjectorClient::acquire(Ack cb) {
  const std::uint32_t token = next_token_++;
  pending_acquire_[token] = std::move(cb);
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kAcquire));
  w.u32(token);
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
}

void ProjectorClient::start_projection(net::NodeId rfb_node, Ack cb) {
  if (!session_) {
    if (cb) cb(false);
    return;
  }
  pending_start_ = std::move(cb);
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kStart));
  w.u64(*session_);
  w.u64(rfb_node);
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
}

void ProjectorClient::stop_projection() {
  if (!session_) return;
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kStop));
  w.u64(*session_);
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
}

void ProjectorClient::command(ProjectorCommand cmd, std::int32_t arg, Ack cb) {
  if (!session_) {
    if (cb) cb(false);
    return;
  }
  pending_command_ = std::move(cb);
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kCommand));
  w.u64(*session_);
  w.u8(static_cast<std::uint8_t>(cmd));
  w.u32(static_cast<std::uint32_t>(arg));
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
}

void ProjectorClient::release() {
  if (!session_) return;
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kRelease));
  w.u64(*session_);
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
  session_.reset();
  if (renewer_) renewer_->stop();
}

void ProjectorClient::send_renew() {
  if (!session_) return;
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ProjMsg::kRenew));
  w.u64(*session_);
  stack_.send(net::Endpoint{projector_, service_port_}, local_port_,
              w.take());
}

void ProjectorClient::on_datagram(const net::Datagram& dg) {
  net::ByteReader r(dg.data);
  const auto msg = static_cast<ProjMsg>(r.u8());
  if (!r.ok()) return;
  switch (msg) {
    case ProjMsg::kAcquireResp: {
      const std::uint32_t token = r.u32();
      const bool ok = r.u8() != 0;
      const SessionToken session = r.u64();
      auto it = pending_acquire_.find(token);
      if (it == pending_acquire_.end()) return;
      auto cb = std::move(it->second);
      pending_acquire_.erase(it);
      if (ok) {
        session_ = session;
        if (!renewer_) {
          renewer_ = std::make_unique<sim::PeriodicTimer>(
              world_.sim(), sim::Time::sec(20.0), [this] { send_renew(); });
        }
        renewer_->start();
      }
      if (cb) cb(ok);
      return;
    }
    case ProjMsg::kStartResp: {
      const bool ok = r.u8() != 0;
      auto cb = std::move(pending_start_);
      pending_start_ = {};
      if (cb) cb(ok);
      return;
    }
    case ProjMsg::kCommandResp: {
      const bool ok = r.u8() != 0;
      auto cb = std::move(pending_command_);
      pending_command_ = {};
      if (cb) cb(ok);
      return;
    }
    default:
      return;
  }
}

bool ProjectorClient::snap_quiescent(std::string* why) const {
  if (!pending_acquire_.empty()) {
    if (why) *why = "acquire exchange in flight";
    return false;
  }
  if (pending_start_) {
    if (why) *why = "start exchange in flight";
    return false;
  }
  if (pending_command_) {
    if (why) *why = "command exchange in flight";
    return false;
  }
  return true;
}

void ProjectorClient::save(snap::SectionWriter& w) const {
  w.b(session_.has_value());
  if (session_) w.u64(*session_);
  w.u32(next_token_);
  w.b(renewer_ != nullptr);
  if (renewer_) renewer_->save(w);
}

void ProjectorClient::restore(snap::SectionReader& r) {
  pending_acquire_.clear();
  pending_start_ = {};
  pending_command_ = {};
  session_.reset();
  if (r.b()) session_ = r.u64();
  next_token_ = r.u32();
  if (r.b()) {
    if (!renewer_) {
      renewer_ = std::make_unique<sim::PeriodicTimer>(
          world_.sim(), sim::Time::sec(20.0), [this] { send_renew(); });
    }
    renewer_->restore(r);
  } else if (renewer_) {
    // The warmed-up replica created a renewal timer the checkpointed world
    // never did — the structural rebuild diverged.
    throw snap::SnapError("projector client renewal timer mismatch");
  }
}

// ---------------------------------------------------------------------------
// PresenterDisplay

PresenterDisplay::PresenterDisplay(sim::World& world, net::NetStack& stack,
                                   int width, int height)
    : PresenterDisplay(world, stack, width, height, rfb::RfbServer::Params{}) {}

PresenterDisplay::PresenterDisplay(sim::World& world, net::NetStack& stack,
                                   int width, int height,
                                   rfb::RfbServer::Params rfb_params)
    : world_(world), stack_(stack), screen_(width, height, 0xff101010),
      rfb_params_(rfb_params) {}

void PresenterDisplay::start_server() {
  if (accepting_) return;
  streams_ = std::make_unique<net::StreamManager>(world_, stack_, kVncPort);
  streams_->listen([this](const std::shared_ptr<net::StreamConnection>& c) {
    conn_ = c;
    server_ = std::make_unique<rfb::RfbServer>(world_, screen_, conn_,
                                               rfb_params_);
  });
  accepting_ = true;
}

void PresenterDisplay::apply(rfb::ScreenWorkload& workload) {
  workload.step(screen_);
  if (server_) server_->notify_changed();
}

void PresenterDisplay::save(snap::SectionWriter& w) const {
  w.b(accepting_);
  w.b(server_ != nullptr);
}

void PresenterDisplay::restore(snap::SectionReader& r) {
  const bool accepting = r.b();
  const bool has_server = r.b();
  if (accepting != accepting_ || has_server != (server_ != nullptr)) {
    // Listen state and the accept-spawned server are structural; a mismatch
    // means the warmup replay did not reproduce the checkpointed topology.
    throw snap::SnapError("presenter display structural mismatch");
  }
}

}  // namespace aroma::app
