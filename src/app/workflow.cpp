#include "app/workflow.hpp"

#include <memory>
#include <numeric>

namespace aroma::app {

Workflow& Workflow::step(std::string name, Action action) {
  steps_.push_back(Step{std::move(name), std::move(action)});
  return *this;
}

void Workflow::run(Completion done) {
  std::vector<std::size_t> order(steps_.size());
  std::iota(order.begin(), order.end(), 0);
  run_order(order, std::move(done));
}

void Workflow::run_order(const std::vector<std::size_t>& order,
                         Completion done) {
  run_index(order, 0, world_.now(), std::move(done));
}

void Workflow::run_index(std::vector<std::size_t> order, std::size_t pos,
                         sim::Time started, Completion done) {
  if (pos >= order.size()) {
    WorkflowResult r;
    r.succeeded = true;
    r.steps_completed = order.size();
    r.elapsed = world_.now() - started;
    done(r);
    return;
  }
  const std::size_t idx = order[pos];
  if (idx >= steps_.size()) {
    WorkflowResult r;
    r.steps_completed = pos;
    r.failed_step = "<invalid step index>";
    r.elapsed = world_.now() - started;
    done(r);
    return;
  }
  // Guard against actions that call done twice.
  auto fired = std::make_shared<bool>(false);
  steps_[idx].action([this, order = std::move(order), pos, started,
                      done = std::move(done), idx, fired](bool ok) mutable {
    if (*fired) return;
    *fired = true;
    if (!ok) {
      WorkflowResult r;
      r.steps_completed = pos;
      r.failed_step = steps_[idx].name;
      r.elapsed = world_.now() - started;
      done(r);
      return;
    }
    run_index(std::move(order), pos + 1, started, std::move(done));
  });
}

}  // namespace aroma::app
