// Session objects: single-owner access control for shared services.
//
// "Session objects are used to ensure that another user cannot
// inadvertently 'hijack' either the use or control of the projector."
// Sessions are lease-backed so that a user who forgets to relinquish
// control is recovered automatically (the paper's abstract-layer wish).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "disco/gateway.hpp"
#include "disco/lease.hpp"
#include "sim/world.hpp"

namespace aroma::snap {
class SectionWriter;
class SectionReader;
}  // namespace aroma::snap

namespace aroma::app {

using SessionToken = std::uint64_t;

struct SessionStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t rejections = 0;       // busy: attempted hijack refused
  std::uint64_t releases = 0;
  std::uint64_t expirations = 0;      // forgotten sessions auto-recovered
  std::uint64_t renewals = 0;
};

/// Guards one shared resource. At most one owner at a time; ownership is a
/// lease that expires unless renewed.
class SessionManager {
 public:
  struct Params {
    sim::Time lease = sim::Time::sec(60.0);
    /// When set, expiry tracking is multiplexed onto this shared gateway
    /// (one batched wakeup per tick across all managers) instead of the
    /// manager's private LeaseTable. The gateway must outlive the manager.
    /// Gateway-backed managers are not checkpointable (see save()).
    disco::SessionGateway* gateway = nullptr;
  };

  SessionManager(sim::World& world, std::string resource_name);
  SessionManager(sim::World& world, std::string resource_name, Params params);

  /// Attempts to acquire for `owner`. Returns a token, or nullopt when the
  /// resource is held by someone else (hijack attempt -> rejected). An
  /// owner re-acquiring their own live session gets the same token.
  std::optional<SessionToken> acquire(std::uint64_t owner);

  /// Keeps the session alive. False for stale/foreign tokens.
  bool renew(SessionToken token);

  /// Releases if `token` is current. False otherwise.
  bool release(SessionToken token);

  bool busy() const { return current_.has_value(); }
  std::optional<std::uint64_t> owner() const;
  bool valid(SessionToken token) const;

  const SessionStats& stats() const { return stats_; }
  const std::string& resource_name() const { return name_; }

  /// Fires on every ownership change; `owner` is 0 when freed.
  void set_owner_change_callback(std::function<void(std::uint64_t)> cb) {
    on_change_ = std::move(cb);
  }

  // --- checkpoint/restore (see src/snap) ------------------------------------
  // Checkpointable at any instant: the only scheduled state is the lease
  // table's tracked expiry checks. The owner-change callback is structural
  // (re-bound by whoever owns the manager). In gateway mode the expiry
  // state lives in the shared gateway (whose bucket events hold closures),
  // so save() throws snap::SnapError.
  void save(snap::SectionWriter& w) const;
  void restore(snap::SectionReader& r);

 private:
  struct Current {
    SessionToken token;
    std::uint64_t owner;
  };
  void expire();

  sim::World& world_;
  std::string name_;
  Params params_;
  disco::LeaseTable leases_;
  // Gateway handle for the current session (gateway mode only).
  disco::GatewaySession gw_session_ = 0;
  std::optional<Current> current_;
  SessionToken next_token_ = 1;
  SessionStats stats_;
  std::function<void(std::uint64_t)> on_change_;
};

}  // namespace aroma::app
