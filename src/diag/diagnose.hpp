// Automated diagnosis and recovery.
//
// Maps monitor symptom patterns to a probable cause at an LPC layer and a
// named remedy, then drives registered recovery actions with backoff. The
// whole point, per the paper: "users are not system administrators" — the
// prototype assumed users could "fix whatever problems may arise with the
// wireless network, the Linux-based adapter, and the lookup service";
// this module is the machine doing that instead.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "diag/monitor.hpp"
#include "lpc/layers.hpp"
#include "sim/world.hpp"

namespace aroma::diag {

struct Diagnosis {
  lpc::Layer layer;
  std::string cause;      // e.g. "2.4 GHz interference"
  std::string remedy;     // name of the recovery action to try
  double confidence = 0.5;
  sim::Time when;
};

/// A diagnostic rule: a predicate over the monitor's current state plus
/// the diagnosis it implies when true.
struct Rule {
  std::string name;
  std::function<bool(const HealthMonitor&)> matches;
  lpc::Layer layer;
  std::string cause;
  std::string remedy;
  double confidence = 0.8;
};

class DiagnosisEngine {
 public:
  /// An engine preloaded with rules for the stock probes
  /// ("radio-retries", "discovery", "battery").
  static DiagnosisEngine with_default_rules();

  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  std::size_t rule_count() const { return rules_.size(); }

  /// Evaluates all rules against the monitor; returns every diagnosis that
  /// currently applies, highest confidence first.
  std::vector<Diagnosis> diagnose(const HealthMonitor& monitor,
                                  sim::Time now) const;

 private:
  std::vector<Rule> rules_;
};

/// Executes named recovery actions with per-remedy exponential backoff.
class RecoveryManager {
 public:
  struct Params {
    sim::Time initial_backoff = sim::Time::sec(5.0);
    sim::Time max_backoff = sim::Time::sec(120.0);
  };

  RecoveryManager(sim::World& world);
  RecoveryManager(sim::World& world, Params params);
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Registers what "remedy" means for this deployment.
  void register_action(const std::string& remedy, std::function<void()> fn);

  /// Applies the remedies of the given diagnoses, respecting backoff: a
  /// remedy re-fires only after its current backoff window elapses, which
  /// doubles on every attempt and resets when `report_recovered` is called.
  /// Returns how many actions actually ran.
  std::size_t apply(const std::vector<Diagnosis>& diagnoses);

  /// Tells the manager a remedy worked (resets its backoff).
  void report_recovered(const std::string& remedy);

  std::uint64_t actions_taken() const { return actions_taken_; }
  std::uint64_t actions_suppressed() const { return actions_suppressed_; }

 private:
  struct Backoff {
    sim::Time not_before;
    sim::Time window;
  };

  sim::World& world_;
  Params params_;
  std::map<std::string, std::function<void()>> actions_;
  std::map<std::string, Backoff> backoff_;
  std::uint64_t actions_taken_ = 0;
  std::uint64_t actions_suppressed_ = 0;
};

}  // namespace aroma::diag
