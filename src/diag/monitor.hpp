// Health monitoring: periodic probes with status history.
//
// Components register named probes tagged with the LPC layer whose health
// they reflect; the monitor samples them, tracks transitions, and feeds
// symptom vectors to the diagnosis engine.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lpc/layers.hpp"
#include "sim/world.hpp"

namespace aroma::obs {
class Counter;
}  // namespace aroma::obs

namespace aroma::diag {

enum class Health : std::uint8_t { kHealthy = 0, kDegraded, kFailed };

std::string_view to_string(Health health);

struct ProbeSample {
  sim::Time when;
  Health health;
  double metric;   // probe-defined (latency ms, retry rate, ...)
};

/// A registered probe: returns current health + a numeric metric.
struct Probe {
  std::string name;
  lpc::Layer layer;
  std::function<ProbeSample()> sample;
};

class HealthMonitor {
 public:
  struct Params {
    sim::Time interval = sim::Time::sec(5.0);
    /// Per-probe bound on retained samples; the oldest are evicted first,
    /// so long soaks hold at most history_limit samples per probe.
    std::size_t history_limit = 256;
  };

  HealthMonitor(sim::World& world);
  HealthMonitor(sim::World& world, Params params);
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registers a probe; the sampler is called on the monitor cadence.
  /// The helper form wraps a plain metric function with thresholds:
  /// metric >= failed_at -> failed, >= degraded_at -> degraded.
  void add_probe(Probe probe);
  void add_threshold_probe(std::string name, lpc::Layer layer,
                           std::function<double()> metric, double degraded_at,
                           double failed_at);

  void start();
  void stop();

  Health health_of(const std::string& probe) const;
  Health worst_health() const;
  /// Latest sample per probe.
  const std::map<std::string, ProbeSample>& latest() const { return latest_; }
  /// Retained samples for one probe, oldest first, at most
  /// Params::history_limit entries; empty for unknown probes.
  const std::deque<ProbeSample>& history(const std::string& probe) const;
  /// Probes currently at or beyond `at_least`, as (name, layer) pairs.
  std::vector<std::pair<std::string, lpc::Layer>> unhealthy(
      Health at_least = Health::kDegraded) const;

  /// Fires on every health transition of any probe.
  using TransitionHandler =
      std::function<void(const std::string& probe, Health from, Health to)>;
  void set_transition_handler(TransitionHandler h) { on_transition_ = std::move(h); }

  std::uint64_t samples_taken() const { return samples_taken_; }

 private:
  void tick();

  sim::World& world_;
  Params params_;
  std::vector<Probe> probes_;
  std::map<std::string, ProbeSample> latest_;
  std::map<std::string, std::deque<ProbeSample>> history_;
  TransitionHandler on_transition_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  std::uint64_t samples_taken_ = 0;

  // Telemetry handles; null when the world has no registry attached.
  obs::Counter* m_samples_ = nullptr;
  obs::Counter* m_transitions_ = nullptr;
};

}  // namespace aroma::diag
