#include "diag/diagnose.hpp"

#include <algorithm>

namespace aroma::diag {

DiagnosisEngine DiagnosisEngine::with_default_rules() {
  DiagnosisEngine e;
  // High MAC retry rate with discovery still alive: the band is hostile.
  e.add_rule(Rule{
      "interference",
      [](const HealthMonitor& m) {
        return m.health_of("radio-retries") >= Health::kDegraded;
      },
      lpc::Layer::kEnvironment,
      "2.4 GHz interference / congestion",
      "switch-channel",
      0.85});
  // Discovery failing while the radio itself looks fine: infrastructure.
  e.add_rule(Rule{
      "registrar-down",
      [](const HealthMonitor& m) {
        return m.health_of("discovery") >= Health::kFailed &&
               m.health_of("radio-retries") == Health::kHealthy;
      },
      lpc::Layer::kResource,
      "lookup service unreachable",
      "failover-registrar",
      0.9});
  // Both failing: likely the radio, not the registrar.
  e.add_rule(Rule{
      "link-down",
      [](const HealthMonitor& m) {
        return m.health_of("discovery") >= Health::kFailed &&
               m.health_of("radio-retries") >= Health::kDegraded;
      },
      lpc::Layer::kEnvironment,
      "wireless link unusable",
      "switch-channel",
      0.7});
  // Battery exhaustion is physical and terminal without action.
  e.add_rule(Rule{
      "battery-low",
      [](const HealthMonitor& m) {
        return m.health_of("battery") >= Health::kDegraded;
      },
      lpc::Layer::kPhysical,
      "battery nearly depleted",
      "shed-load",
      0.95});
  return e;
}

std::vector<Diagnosis> DiagnosisEngine::diagnose(const HealthMonitor& monitor,
                                                 sim::Time now) const {
  std::vector<Diagnosis> out;
  for (const Rule& rule : rules_) {
    if (rule.matches && rule.matches(monitor)) {
      out.push_back(
          Diagnosis{rule.layer, rule.cause, rule.remedy, rule.confidence, now});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnosis& a, const Diagnosis& b) {
                     return a.confidence > b.confidence;
                   });
  return out;
}

RecoveryManager::RecoveryManager(sim::World& world)
    : RecoveryManager(world, Params{}) {}

RecoveryManager::RecoveryManager(sim::World& world, Params params)
    : world_(world), params_(params) {}

void RecoveryManager::register_action(const std::string& remedy,
                                      std::function<void()> fn) {
  actions_[remedy] = std::move(fn);
}

std::size_t RecoveryManager::apply(const std::vector<Diagnosis>& diagnoses) {
  std::size_t ran = 0;
  const sim::Time now = world_.now();
  for (const Diagnosis& d : diagnoses) {
    auto action = actions_.find(d.remedy);
    if (action == actions_.end()) continue;
    Backoff& b = backoff_[d.remedy];
    if (now < b.not_before) {
      ++actions_suppressed_;
      continue;
    }
    if (b.window.is_zero()) b.window = params_.initial_backoff;
    b.not_before = now + b.window;
    b.window = std::min(b.window * 2, params_.max_backoff);
    ++actions_taken_;
    ++ran;
    action->second();
  }
  return ran;
}

void RecoveryManager::report_recovered(const std::string& remedy) {
  backoff_.erase(remedy);
}

}  // namespace aroma::diag
