#include "diag/monitor.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aroma::diag {

std::string_view to_string(Health health) {
  switch (health) {
    case Health::kHealthy: return "healthy";
    case Health::kDegraded: return "degraded";
    case Health::kFailed: return "failed";
  }
  return "?";
}

HealthMonitor::HealthMonitor(sim::World& world)
    : HealthMonitor(world, Params{}) {}

HealthMonitor::HealthMonitor(sim::World& world, Params params)
    : world_(world), params_(params) {
  timer_ = std::make_unique<sim::PeriodicTimer>(
      world_.sim(), params_.interval, [this] { tick(); });
  timer_->set_category(sim::EventCategory::kDiag);
  m_samples_ =
      obs::counter(world_, "diag.monitor.samples", lpc::Layer::kIntentional);
  m_transitions_ = obs::counter(world_, "diag.monitor.transitions",
                                lpc::Layer::kIntentional);
}

void HealthMonitor::add_probe(Probe probe) {
  probes_.push_back(std::move(probe));
}

void HealthMonitor::add_threshold_probe(std::string name, lpc::Layer layer,
                                        std::function<double()> metric,
                                        double degraded_at,
                                        double failed_at) {
  Probe p;
  p.name = std::move(name);
  p.layer = layer;
  p.sample = [this, metric = std::move(metric), degraded_at, failed_at] {
    const double v = metric();
    Health h = Health::kHealthy;
    if (v >= failed_at) {
      h = Health::kFailed;
    } else if (v >= degraded_at) {
      h = Health::kDegraded;
    }
    return ProbeSample{world_.now(), h, v};
  };
  probes_.push_back(std::move(p));
}

void HealthMonitor::start() { timer_->start_after(params_.interval); }
void HealthMonitor::stop() { timer_->stop(); }

void HealthMonitor::tick() {
  for (const Probe& p : probes_) {
    const ProbeSample sample = p.sample();
    ++samples_taken_;
    if (m_samples_) m_samples_->add();
    if (params_.history_limit > 0) {
      std::deque<ProbeSample>& h = history_[p.name];
      h.push_back(sample);
      while (h.size() > params_.history_limit) h.pop_front();
    }
    auto it = latest_.find(p.name);
    const Health prev =
        it != latest_.end() ? it->second.health : Health::kHealthy;
    latest_[p.name] = sample;
    if (sample.health != prev) {
      if (m_transitions_) m_transitions_->add();
      if (obs::SpanTracer* t = world_.spans(); t != nullptr && t->enabled()) {
        const obs::SpanId id = t->instant(
            world_.now(), "diag.monitor.transition", p.layer,
            world_.sim().trace_context(),
            sample.health > prev ? sim::TraceLevel::kWarn
                                 : sim::TraceLevel::kInfo);
        t->annotate(id, "probe", p.name);
        t->annotate(id, "from", to_string(prev));
        t->annotate(id, "to", to_string(sample.health));
      }
      if (on_transition_) on_transition_(p.name, prev, sample.health);
    }
  }
}

const std::deque<ProbeSample>& HealthMonitor::history(
    const std::string& probe) const {
  static const std::deque<ProbeSample> kEmpty;
  auto it = history_.find(probe);
  return it != history_.end() ? it->second : kEmpty;
}

Health HealthMonitor::health_of(const std::string& probe) const {
  auto it = latest_.find(probe);
  return it != latest_.end() ? it->second.health : Health::kHealthy;
}

Health HealthMonitor::worst_health() const {
  Health worst = Health::kHealthy;
  for (const auto& [name, s] : latest_) {
    worst = std::max(worst, s.health);
  }
  return worst;
}

std::vector<std::pair<std::string, lpc::Layer>> HealthMonitor::unhealthy(
    Health at_least) const {
  std::vector<std::pair<std::string, lpc::Layer>> out;
  for (const Probe& p : probes_) {
    auto it = latest_.find(p.name);
    if (it != latest_.end() && it->second.health >= at_least) {
      out.emplace_back(p.name, p.layer);
    }
  }
  return out;
}

}  // namespace aroma::diag
