#include "diag/faults.hpp"

namespace aroma::diag {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRfJamming: return "rf-jamming";
    case FaultKind::kServiceCrash: return "service-crash";
    case FaultKind::kPowerLoss: return "power-loss";
  }
  return "?";
}

void FaultInjector::inject(FaultKind kind, std::string target, sim::Time at,
                           sim::Time duration, Toggle toggle) {
  const std::size_t index = history_.size();
  history_.push_back(FaultRecord{kind, at, at + duration, std::move(target)});
  world_.sim().schedule_at(
      at, [toggle, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        toggle(true);
      });
  world_.sim().schedule_at(
      at + duration,
      [toggle, guard = std::weak_ptr<char>(alive_), index, this] {
        if (guard.expired()) return;
        toggle(false);
        (void)index;
      });
}

void FaultInjector::inject_permanent(FaultKind kind, std::string target,
                                     sim::Time at, Toggle toggle) {
  history_.push_back(
      FaultRecord{kind, at, sim::Time::max(), std::move(target)});
  world_.sim().schedule_at(at,
                           [toggle, guard = std::weak_ptr<char>(alive_)] {
                             if (guard.expired()) return;
                             toggle(true);
                           });
}

bool FaultInjector::active(FaultKind kind) const {
  const sim::Time now = world_.now();
  for (const auto& f : history_) {
    if (f.kind == kind && f.start <= now && now < f.end) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Jammer

Jammer::Jammer(sim::World& world, env::RadioMedium& medium,
               env::Vec2 position, int channel, double power_dbm)
    : world_(world), medium_(medium), position_(position),
      power_dbm_(power_dbm) {
  config_.channel = channel;
  // A distinctive id range well above device ids.
  config_.id = 0xFFFF0000ULL + static_cast<std::uint64_t>(channel);
  medium_.attach(this);
}

Jammer::~Jammer() {
  stop();
  medium_.detach(this);
}

void Jammer::start() {
  if (running_) return;
  running_ = true;
  emit();
}

void Jammer::stop() { running_ = false; }

void Jammer::emit() {
  if (!running_) return;
  // Back-to-back 2 ms bursts: effectively a continuous interference floor.
  const std::size_t bits = 4000;
  const double bitrate = 2e6;
  medium_.transmit(*this, bits, bitrate, power_dbm_, nullptr);
  world_.sim().schedule_in(sim::Time::sec(bits / bitrate),
                           [this, guard = std::weak_ptr<char>(alive_)] {
                             if (guard.expired()) return;
                             emit();
                           });
}

}  // namespace aroma::diag
