#include "diag/faults.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aroma::diag {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRfJamming: return "rf-jamming";
    case FaultKind::kServiceCrash: return "service-crash";
    case FaultKind::kPowerLoss: return "power-loss";
  }
  return "?";
}

namespace {

// Faults land on the layer they disturb: jamming is an environment-layer
// condition, power loss hits physical devices, crashes hit software.
lpc::Layer fault_layer(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRfJamming: return lpc::Layer::kEnvironment;
    case FaultKind::kPowerLoss: return lpc::Layer::kPhysical;
    case FaultKind::kServiceCrash: return lpc::Layer::kAbstract;
  }
  return lpc::Layer::kEnvironment;
}

// Runs a fault toggle under a "diag.fault" span so everything it causes —
// jammer transmissions, crash fallout, recovery traffic — parents to the
// injection in the trace.
void run_toggle(sim::World& world, FaultKind kind, const std::string& target,
                const FaultInjector::Toggle& toggle, bool active) {
  obs::ScopedSpan span(world, "diag.fault", fault_layer(kind),
                       active ? sim::TraceLevel::kWarn
                              : sim::TraceLevel::kInfo);
  span.annotate("kind", to_string(kind));
  span.annotate("target", target);
  span.annotate("active", active ? "1" : "0");
  toggle(active);
}

}  // namespace

void FaultInjector::inject(FaultKind kind, std::string target, sim::Time at,
                           sim::Time duration, Toggle toggle) {
  if (obs::Counter* c =
          obs::counter(world_, "diag.faults.injected", fault_layer(kind))) {
    c->add();
  }
  history_.push_back(FaultRecord{kind, at, at + duration, std::move(target)});
  const std::string& name = history_.back().target;
  world_.sim().schedule_at(
      at, sim::EventCategory::kDiag,
      [this, toggle, kind, name, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        run_toggle(world_, kind, name, toggle, true);
      });
  world_.sim().schedule_at(
      at + duration, sim::EventCategory::kDiag,
      [this, toggle, kind, name, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        run_toggle(world_, kind, name, toggle, false);
      });
}

void FaultInjector::inject_permanent(FaultKind kind, std::string target,
                                     sim::Time at, Toggle toggle) {
  if (obs::Counter* c =
          obs::counter(world_, "diag.faults.injected", fault_layer(kind))) {
    c->add();
  }
  history_.push_back(
      FaultRecord{kind, at, sim::Time::max(), std::move(target)});
  const std::string& name = history_.back().target;
  world_.sim().schedule_at(
      at, sim::EventCategory::kDiag,
      [this, toggle, kind, name, guard = std::weak_ptr<char>(alive_)] {
        if (guard.expired()) return;
        run_toggle(world_, kind, name, toggle, true);
      });
}

bool FaultInjector::active(FaultKind kind) const {
  const sim::Time now = world_.now();
  for (const auto& f : history_) {
    if (f.kind == kind && f.start <= now && now < f.end) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Jammer

Jammer::Jammer(sim::World& world, env::RadioMedium& medium,
               env::Vec2 position, int channel, double power_dbm)
    : world_(world), medium_(medium), position_(position),
      power_dbm_(power_dbm) {
  config_.channel = channel;
  // A distinctive id range well above device ids.
  config_.id = 0xFFFF0000ULL + static_cast<std::uint64_t>(channel);
  medium_.attach(this);
}

Jammer::~Jammer() {
  stop();
  medium_.detach(this);
}

void Jammer::start() {
  if (running_) return;
  running_ = true;
  emit();
}

void Jammer::stop() { running_ = false; }

void Jammer::emit() {
  if (!running_) return;
  // Back-to-back 2 ms bursts: effectively a continuous interference floor.
  const std::size_t bits = 4000;
  const double bitrate = 2e6;
  medium_.transmit(*this, bits, bitrate, power_dbm_, nullptr);
  world_.sim().schedule_in(sim::Time::sec(bits / bitrate),
                           sim::EventCategory::kDiag,
                           [this, guard = std::weak_ptr<char>(alive_)] {
                             if (guard.expired()) return;
                             emit();
                           });
}

}  // namespace aroma::diag
