// Fault injection for the pervasive stack.
//
// The paper's future-work list demands "automated diagnostics, fault
// tolerance and recovery". This module provides the faults to tolerate:
// RF jamming (a hostile 2.4 GHz environment), infrastructure crashes
// (the lookup service dies), and battery exhaustion.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "env/environment.hpp"
#include "sim/world.hpp"

namespace aroma::diag {

/// What kind of fault a record describes.
enum class FaultKind : std::uint8_t {
  kRfJamming,        // broadband interference floor raised
  kServiceCrash,     // a software component stops responding
  kPowerLoss,        // a device loses power
};

std::string_view to_string(FaultKind kind);

struct FaultRecord {
  FaultKind kind;
  sim::Time start;
  sim::Time end;       // Time::max() while active
  std::string target;  // free-form: device/service name
};

/// Schedules and tracks faults against a world. The injector itself only
/// knows generic hooks: concrete components register activate/deactivate
/// callbacks for named faults, which keeps diag decoupled from app code.
class FaultInjector {
 public:
  explicit FaultInjector(sim::World& world) : world_(world) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  using Toggle = std::function<void(bool active)>;

  /// Injects a fault over [at, at+duration). The toggle is called with
  /// true at start and false at end (omit duration for a permanent fault).
  void inject(FaultKind kind, std::string target, sim::Time at,
              sim::Time duration, Toggle toggle);
  void inject_permanent(FaultKind kind, std::string target, sim::Time at,
                        Toggle toggle);

  /// Is any fault of `kind` active right now?
  bool active(FaultKind kind) const;
  const std::vector<FaultRecord>& history() const { return history_; }

 private:
  sim::World& world_;
  std::vector<FaultRecord> history_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// Convenience: a jammer that raises the interference floor on the radio
/// medium by transmitting continuously from a position.
class Jammer : public env::RadioEndpoint {
 public:
  Jammer(sim::World& world, env::RadioMedium& medium, env::Vec2 position,
         int channel, double power_dbm);
  ~Jammer() override;

  void start();
  void stop();
  bool running() const { return running_; }

  // env::RadioEndpoint
  env::Vec2 position() const override { return position_; }
  const env::RadioConfig& radio_config() const override { return config_; }
  bool receiver_enabled() const override { return false; }
  void on_frame(const env::FrameDelivery&) override {}
  double max_speed_mps() const override { return 0.0; }

 private:
  void emit();

  sim::World& world_;
  env::RadioMedium& medium_;
  env::Vec2 position_;
  env::RadioConfig config_;
  double power_dbm_;
  bool running_ = false;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace aroma::diag
