// Simulation time: a strong integral type with nanosecond resolution.
//
// All layers of the Aroma stack share one deterministic time base. Using an
// integer tick count (rather than floating-point seconds) keeps event
// ordering exact and runs reproducible across platforms.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace aroma::sim {

/// A point in (or duration of) simulated time, in integer nanoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators support both uses. Construct values through the
/// named factories (`Time::ms(5)`, `Time::sec(1.5)`) rather than raw counts.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  /// Raw tick count (nanoseconds).
  constexpr std::int64_t count() const { return ns_; }
  /// Value in seconds as a double (for statistics and reporting only).
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "12.5ms".
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Scales a duration by a double factor, rounding to the nearest tick.
constexpr Time scale(Time t, double factor) {
  return Time::ns(static_cast<std::int64_t>(static_cast<double>(t.count()) * factor + 0.5));
}

/// Rounds `t` up to the next multiple of `quantum` (identity when already
/// aligned). Components that coalesce work onto a shared cadence — e.g. the
/// session gateway's batched ticks — align their wakeups with this so that
/// independent instances land on the same instant and the kernel's
/// same-time event trains absorb them.
constexpr Time align_up(Time t, Time quantum) {
  const std::int64_t q = quantum.count();
  return Time::ns(((t.count() + q - 1) / q) * q);
}

}  // namespace aroma::sim
