#include "sim/fleet.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>

#include "sim/random.hpp"

namespace aroma::sim {

std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard_id) {
  // Two splitmix64 rounds over a keyed counter. The first round spreads the
  // shard counter across the word; the second decorrelates nearby fleet
  // seeds. Purely functional: shard k's seed never depends on shards < k.
  std::uint64_t s = seed ^ (shard_id * 0x9e3779b97f4a7c15ULL);
  splitmix64(s);
  std::uint64_t derived = splitmix64(s);
  // Seed 0 would collapse xoshiro's splitmix seeding only if derived == 0;
  // nudge that single point off zero.
  return derived ? derived : 0x2545f4914f6cdd1dULL;
}

std::uint64_t fleet_fingerprint(const std::vector<std::uint64_t>& shard_fps) {
  std::uint64_t fp = 0x66c6cf59c06ee4bdULL;  // nonzero fold base
  for (const std::uint64_t shard_fp : shard_fps) fp = mix_hash(fp, shard_fp);
  return fp;
}

namespace {

/// One worker's deque. Owner pops from the front; thieves take the back
/// half. A plain mutex per deque keeps the invariants obvious (and TSan
/// quiet); the lock is touched once per task, which is noise next to a
/// shard's millions of events.
struct WorkerQueue {
  std::mutex m;
  std::deque<std::size_t> q;
};

}  // namespace

WorkStealingPool::Stats WorkStealingPool::run(
    std::size_t workers, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  Stats stats;
  if (count == 0) return stats;
  if (workers == 0) workers = hardware_workers();
  if (workers > count) workers = count;  // never spin up idle threads
  stats.tasks_run_per_worker.assign(workers, 0);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    stats.tasks_run_per_worker[0] = count;
    return stats;
  }

  std::vector<WorkerQueue> queues(workers);
  for (std::size_t i = 0; i < count; ++i) {
    queues[i % workers].q.push_back(i);  // round-robin initial placement
  }

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> stolen_tasks{0};
  std::atomic<std::size_t> remaining{count};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::uint64_t> ran(workers, 0);

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        std::vector<std::size_t> loot;  // scratch for steal-half transfers
        while (remaining.load(std::memory_order_acquire) > 0 &&
               !abort.load(std::memory_order_acquire)) {
          std::size_t task = count;  // sentinel: nothing claimed
          {
            const std::lock_guard<std::mutex> lock(queues[w].m);
            if (!queues[w].q.empty()) {
              task = queues[w].q.front();
              queues[w].q.pop_front();
            }
          }
          if (task == count) {
            // Steal: scan victims starting after us; take the back half.
            for (std::size_t k = 1; k < workers && task == count; ++k) {
              WorkerQueue& victim = queues[(w + k) % workers];
              const std::lock_guard<std::mutex> lock(victim.m);
              const std::size_t n = victim.q.size();
              if (n == 0) continue;
              const std::size_t take = (n + 1) / 2;
              loot.clear();
              for (std::size_t t = 0; t < take; ++t) {
                loot.push_back(victim.q.back());
                victim.q.pop_back();
              }
              task = loot.back();
              loot.pop_back();
              if (!loot.empty()) {
                const std::lock_guard<std::mutex> own(queues[w].m);
                // Preserve ascending-index order in our deque: loot was
                // popped back-first, so reinsert reversed.
                for (std::size_t t = loot.size(); t > 0; --t) {
                  queues[w].q.push_back(loot[t - 1]);
                }
              }
              steals.fetch_add(1, std::memory_order_relaxed);
              stolen_tasks.fetch_add(take, std::memory_order_relaxed);
            }
            if (task == count) {
              // Every deque we saw was empty; re-check the global count
              // (another worker may still be executing tasks that could
              // throw, but no queued work remains for us).
              if (remaining.load(std::memory_order_acquire) == 0) return;
              std::this_thread::yield();
              continue;
            }
          }
          try {
            fn(task, w);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            abort.store(true, std::memory_order_release);
          }
          ++ran[w];
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      });
    }
    // jthread joins on destruction.
  }

  stats.steals = steals.load();
  stats.stolen_tasks = stolen_tasks.load();
  stats.tasks_run_per_worker = std::move(ran);
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace aroma::sim
