// Parallel execution of independent simulation trials.
//
// Simulated worlds are single-threaded by design; experiments that sweep a
// parameter or average over seeds are embarrassingly parallel. ParallelRunner
// fans trial functions out over a pool of std::jthread workers. Each trial
// owns its world, so no synchronization beyond the work queue is needed.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace aroma::sim {

/// Runs `trials` calls of `fn(trial_index)` across up to `workers` threads.
/// Results are written into a caller-provided vector slot per trial, so the
/// caller never needs locks. Deterministic per trial (seed = f(index)).
class ParallelRunner {
 public:
  explicit ParallelRunner(std::size_t workers = 0)
      : workers_(workers ? workers : default_workers()) {}

  static std::size_t default_workers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
  }

  std::size_t workers() const { return workers_; }

  /// Executes fn(i) for i in [0, trials). Blocks until all complete. If any
  /// trial throws, no further trials are started, in-flight trials finish,
  /// and the first exception (by completion order) is rethrown on the
  /// caller's thread after all workers have joined.
  void run(std::size_t trials, const std::function<void(std::size_t)>& fn) const;

  /// Convenience: runs `trials` trials, each producing a T into out[i].
  template <typename T>
  std::vector<T> map(std::size_t trials,
                     const std::function<T(std::size_t)>& fn) const {
    std::vector<T> out(trials);
    run(trials, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  std::size_t workers_;
};

}  // namespace aroma::sim
