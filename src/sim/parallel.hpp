// Parallel execution of independent simulation trials.
//
// Simulated worlds are single-threaded by design; experiments that sweep a
// parameter or average over seeds are embarrassingly parallel.
// ParallelRunner fans trial functions out over the work-stealing pool in
// sim/fleet.hpp: trials are dealt round-robin to per-worker deques and idle
// workers steal the back half of a victim's queue, so a mix of short and
// long trials keeps every core busy. Each trial owns its world, so no
// synchronization beyond the deques is needed.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/fleet.hpp"

namespace aroma::sim {

/// Runs `trials` calls of `fn(trial_index)` across up to `workers` threads.
/// Results are written into a caller-provided vector slot per trial, so the
/// caller never needs locks. Deterministic per trial (seed = f(index)).
class ParallelRunner {
 public:
  using Stats = WorkStealingPool::Stats;

  explicit ParallelRunner(std::size_t workers = 0)
      : workers_(workers ? workers : default_workers()) {}

  static std::size_t default_workers() {
    return WorkStealingPool::hardware_workers();
  }

  /// Workers actually used for a batch of `trials`: never more threads than
  /// queued trials (8 workers for 2 trials would leave 6 spinning idle).
  static std::size_t default_workers(std::size_t trials) {
    const std::size_t hw = default_workers();
    return trials < hw ? (trials ? trials : 1) : hw;
  }

  std::size_t workers() const { return workers_; }

  /// Executes fn(i) for i in [0, trials). Blocks until all complete. If any
  /// trial throws, no further trials are started, in-flight trials finish,
  /// and the first exception (by completion order) is rethrown on the
  /// caller's thread after all workers have joined. Spawns
  /// min(workers(), trials) threads.
  void run(std::size_t trials, const std::function<void(std::size_t)>& fn) const;

  /// Scheduling stats (steals, per-worker task counts) of the last run()
  /// on this runner. tasks_run_per_worker.size() is the spawned worker
  /// count, so tests can assert the clamp and observe stealing.
  const Stats& last_stats() const { return stats_; }

  /// Convenience: runs `trials` trials, each producing a T into out[i].
  template <typename T>
  std::vector<T> map(std::size_t trials,
                     const std::function<T(std::size_t)>& fn) const {
    std::vector<T> out(trials);
    run(trials, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  std::size_t workers_;
  mutable Stats stats_;  // observation only; run() is logically const
};

}  // namespace aroma::sim
