#include "sim/simulator.hpp"

namespace aroma::sim {

EventHandle Simulator::schedule_at(Time when, Callback fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  const EventQueue::Ref ref = queue_.push(when, next_seq_++, id, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return EventHandle{id, ref.slot};
}

EventHandle Simulator::schedule_in(Time delay, Callback fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return queue_.cancel({h.slot_, h.id_});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the callback out before invoking: the event may schedule more
  // events, mutating the queue under us.
  Callback fn;
  now_ = queue_.pop_min(fn);
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.min_time() <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (running_) {
    running_ = false;
    sim_.cancel(pending_);
  }
}

}  // namespace aroma::sim
