#include "sim/simulator.hpp"

#include "sim/stats.hpp"

namespace aroma::sim {

EventHandle Simulator::schedule_at(Time when, Callback fn) {
  return schedule_at(when, current_category_, std::move(fn));
}

EventHandle Simulator::schedule_at(Time when, EventCategory category,
                                   Callback fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  const EventQueue::Ref ref = queue_.push(
      when, next_seq_++, id, {category, trace_ctx_}, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return EventHandle{id, ref.slot};
}

EventHandle Simulator::schedule_in(Time delay, Callback fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, current_category_, std::move(fn));
}

EventHandle Simulator::schedule_in(Time delay, EventCategory category,
                                   Callback fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, category, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (queue_.cancel({h.slot_, h.id_})) {
    ++cancelled_;
    return true;
  }
  ++stale_rejects_;
  return false;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the callback out before invoking: the event may schedule more
  // events, mutating the queue under us.
  Callback fn;
  EventQueue::EventMeta meta;
  now_ = queue_.pop_min(fn, meta);
  ++executed_;
  // The event's category and causal context hold while it executes, so
  // anything it schedules (or any span it opens) inherits its cause.
  current_category_ = meta.category;
  trace_ctx_ = meta.trace_ctx;
  if (profiler_ == nullptr) {
    fn();
  } else {
    profiler_->record_execute(meta.category);
    if (profiler_->timing_enabled()) {
      WallTimer timer;
      fn();
      profiler_->record_wall(meta.category, timer.elapsed_sec());
    } else {
      fn();
    }
  }
  current_category_ = EventCategory::kNone;
  trace_ctx_ = 0;
  return true;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.min_time() <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, category_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (running_) {
    running_ = false;
    sim_.cancel(pending_);
  }
}

}  // namespace aroma::sim
