#include "sim/simulator.hpp"

#include <algorithm>

namespace aroma::sim {

EventHandle Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

EventHandle Simulator::schedule_in(Time delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Only mark events that are plausibly still pending.
  if (h.id() >= next_id_) return false;
  if (is_cancelled(h.id())) return false;
  // We cannot cheaply verify membership in the heap; callers only hold
  // handles for events they scheduled and have not seen fire, so marking is
  // sufficient. Fired events purge their id lazily (ids are unique).
  cancelled_.push_back(h.id());
  ++cancelled_live_;
  return true;
}

bool Simulator::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), ev.id),
                       cancelled_.end());
      if (cancelled_live_ > 0) --cancelled_live_;
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    if (is_cancelled(top.id)) {
      const std::uint64_t id = top.id;
      queue_.pop();
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), id),
                       cancelled_.end());
      if (cancelled_live_ > 0) --cancelled_live_;
      continue;
    }
    if (step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (running_) {
    running_ = false;
    sim_.cancel(pending_);
  }
}

}  // namespace aroma::sim
