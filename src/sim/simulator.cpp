#include "sim/simulator.hpp"

#include "sim/stats.hpp"
#include "snap/format.hpp"

namespace aroma::sim {

EventHandle Simulator::schedule_at(Time when, Callback&& fn) {
  return schedule_at(when, current_category_, std::move(fn));
}

EventHandle Simulator::schedule_at(Time when, EventCategory category,
                                   Callback&& fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  const EventQueue::Ref ref = queue_.push(
      when, next_seq_++, id, {category, trace_ctx_}, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return EventHandle{id, ref.slot};
}

EventHandle Simulator::schedule_in(Time delay, Callback&& fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, current_category_, std::move(fn));
}

EventHandle Simulator::schedule_in(Time delay, EventCategory category,
                                   Callback&& fn) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, category, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (queue_.cancel({h.slot_, h.id_})) {
    ++cancelled_;
    return true;
  }
  ++stale_rejects_;
  return false;
}

Simulator::PendingEventInfo Simulator::pending_event_info(EventHandle h) const {
  PendingEventInfo info;
  if (!h.valid()) return info;
  if (queue_.lookup({h.slot_, h.id_}, info.when, info.seq)) {
    info.valid = true;
    info.id = h.id_;
  }
  return info;
}

std::size_t Simulator::clear_pending() {
  const std::size_t n = queue_.size();
  queue_.clear();
  return n;
}

EventHandle Simulator::restore_event(Time when, std::uint64_t seq,
                                     std::uint64_t id, EventCategory category,
                                     Callback&& fn) {
  const EventQueue::Ref ref =
      queue_.push(when, seq, id, {category, 0}, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return EventHandle{id, ref.slot};
}

void Simulator::restore_state(Time now, std::uint64_t next_seq,
                              std::uint64_t next_id, std::uint64_t executed,
                              std::uint64_t cancelled,
                              std::uint64_t stale_rejects,
                              std::size_t peak_pending) {
  now_ = now;
  next_seq_ = next_seq;
  next_id_ = next_id;
  executed_ = executed;
  cancelled_ = cancelled;
  stale_rejects_ = stale_rejects;
  peak_pending_ = peak_pending;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the callback out before invoking: the event may schedule more
  // events, mutating the queue under us.
  Callback fn;
  EventQueue::EventMeta meta;
  std::uint64_t seq, id;
  bool from_train;
  now_ = queue_.pop_min(fn, meta, seq, id, from_train);
  ++executed_;
  if (observer_) observer_(now_, id, seq);
  if (trace_ != nullptr) {
    TraceHot& h = *trace_;
    const std::int64_t t = now_.count();
    TraceRecord& r = h.ring[static_cast<std::size_t>(h.total) & h.mask];
    r.t_ns = t;
    r.kind = 0;
    r.code = static_cast<std::uint16_t>(meta.category);
    r.shard = h.shard;
    r.a = id;
    r.b = seq;
    ++h.total;
    if (t == h.last_t_ns) {
      if (++h.run_len == h.stall_run_limit) {
        h.slow->on_trace_stall(now_, h.run_len);
      }
    } else {
      h.last_t_ns = t;
      h.run_len = 1;
    }
    if (t >= h.next_wake_ns) h.slow->on_trace_wake(now_);
  } else if (tap_) {
    tap_->on_event(now_, id, seq, meta.category);
  }
  // The event's category and causal context hold while it executes, so
  // anything it schedules (or any span it opens) inherits its cause.
  current_category_ = meta.category;
  trace_ctx_ = meta.trace_ctx;
  if (profiler_ == nullptr) {
    fn();
  } else {
    profiler_->record_execute(meta.category, from_train);
    if (profiler_->timing_enabled()) {
      WallTimer timer;
      fn();
      profiler_->record_wall(meta.category, timer.elapsed_sec());
    } else {
      fn();
    }
  }
  current_category_ = EventCategory::kNone;
  trace_ctx_ = 0;
  return true;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.min_time() <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, category_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

void PeriodicTimer::stop() {
  if (running_) {
    running_ = false;
    sim_.cancel(pending_);
  }
}

void PeriodicTimer::save(snap::SectionWriter& w) const {
  w.b(running_);
  w.duration(period_);
  const Simulator::PendingEventInfo info = sim_.pending_event_info(pending_);
  w.b(info.valid);
  if (info.valid) {
    w.time_delta(info.when);
    w.u64(info.seq);
    w.u64(info.id);
  }
}

void PeriodicTimer::restore(snap::SectionReader& r) {
  // Only valid after Simulator::clear_pending(): the warmup-armed event is
  // already gone, so the stale handle is overwritten, never cancelled
  // (cancelling would bump the stale-reject counter and break bit-equality
  // with the uninterrupted run).
  running_ = r.b();
  period_ = sim::Time::ns(r.i64());
  pending_ = EventHandle{};
  if (r.b()) {
    const Time when = r.time_delta();
    const std::uint64_t seq = r.u64();
    const std::uint64_t id = r.u64();
    pending_ = sim_.restore_event(when, seq, id, category_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm(period_);
    });
  }
}

}  // namespace aroma::sim
