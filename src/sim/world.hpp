// A World bundles the three services every simulated component needs:
// the event kernel, the root RNG, and the tracer.
#pragma once

#include <cstdint>

#include "sim/arena.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace aroma::obs {
class MetricsRegistry;
class SpanTracer;
}  // namespace aroma::obs

namespace aroma::sim {

/// One self-contained simulated world. All higher-layer objects hold a
/// reference to the World that owns their time base; the World must outlive
/// them. Worlds are cheap to create — one per trial.
class World {
 public:
  explicit World(std::uint64_t seed = 1) : rng_(seed) {}
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  Rng& rng() { return rng_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  Time now() const { return sim_.now(); }

  /// Derives an independent RNG stream for a named subsystem.
  Rng fork_rng(std::uint64_t tag) { return rng_.fork(tag); }

  /// The world's frame/event arena (see sim/arena.hpp). Hot-path producers
  /// (MAC frames, datagrams, the radio medium's transmission log) allocate
  /// here instead of the global heap; per-world ownership means fleet shards
  /// never contend on one allocator. Allocation strategy never affects
  /// simulated behavior.
  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }

  // --- telemetry (obs) ------------------------------------------------------
  // Non-owning: obs::Telemetry attaches/detaches these (see
  // obs/telemetry.hpp). Null means telemetry is off, and producers reduce
  // to a single pointer check; sim itself never dereferences them, so sim
  // stays below obs in the build graph.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::SpanTracer* spans() const { return spans_; }
  void set_metrics(obs::MetricsRegistry* m) { metrics_ = m; }
  void set_spans(obs::SpanTracer* s) { spans_ = s; }

 private:
  // Declared first so it is destroyed last: pending callbacks, queued MAC
  // frames, and in-flight payload control blocks all recycle into it on
  // their way down.
  Arena arena_;
  Simulator sim_;
  Rng rng_;
  Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
};

}  // namespace aroma::sim
