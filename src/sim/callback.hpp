// Small-buffer-optimized callback for the event kernel.
//
// The kernel schedules millions of one-shot closures per run; wrapping each
// in std::function heap-allocates whenever the capture list exceeds the
// implementation's tiny (and trivially-copyable-only) SSO buffer. Callback
// inlines any nothrow-move-constructible callable up to kInlineSize bytes —
// sized so the common lambda captures in phys/, net/, and disco/ (a `this`
// pointer, a couple of ids, a shared_ptr payload) never touch the heap —
// and falls back to a heap allocation only beyond that.
//
// Move-only and invoke-at-most-once-at-a-time; no copy, no target type
// query. Exactly what a discrete-event queue needs and nothing more.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aroma::sim {

class Callback {
 public:
  /// Inline storage size: >= 48 bytes per the kernel's design budget (see
  /// DESIGN.md "Performance architecture"); 56 keeps sizeof(Callback) at 64,
  /// one cache line alongside the ops pointer.
  static constexpr std::size_t kInlineSize = 56;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* callsite
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// True when the target lives in the inline buffer (introspection for
  /// tests asserting the no-heap-allocation property).
  bool is_inline() const noexcept { return ops_ && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to) noexcept;  // move + destroy source
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      false,
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(Callback) == 64, "one cache line");

}  // namespace aroma::sim
