#include "sim/parallel.hpp"

#include <exception>
#include <mutex>

namespace aroma::sim {

void ParallelRunner::run(std::size_t trials,
                         const std::function<void(std::size_t)>& fn) const {
  if (trials == 0) return;
  const std::size_t nthreads = workers_ < trials ? workers_ : trials;
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < trials; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= trials) return;
          try {
            fn(i);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            // Stop handing out new trials; in-flight ones finish normally.
            next.store(trials, std::memory_order_relaxed);
          }
        }
      });
    }
    // jthread joins on destruction.
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace aroma::sim
