#include "sim/parallel.hpp"

namespace aroma::sim {

void ParallelRunner::run(std::size_t trials,
                         const std::function<void(std::size_t)>& fn) const {
  if (trials == 0) return;
  const std::size_t nthreads = workers_ < trials ? workers_ : trials;
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < trials; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> pool;
  pool.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= trials) return;
        fn(i);
      }
    });
  }
  // jthread joins on destruction.
}

}  // namespace aroma::sim
