#include "sim/parallel.hpp"

namespace aroma::sim {

void ParallelRunner::run(std::size_t trials,
                         const std::function<void(std::size_t)>& fn) const {
  if (trials == 0) {
    stats_ = Stats{};
    return;
  }
  stats_ = WorkStealingPool::run(workers_, trials,
                                 [&fn](std::size_t i, std::size_t) { fn(i); });
}

}  // namespace aroma::sim
