// Portable 16-byte-lane SIMD shim for the hot inner loops.
//
// One vector width (four 32-bit lanes, 16 bytes — the greatest common
// denominator of SSE2 and NEON), three backends selected at compile time:
//   * SSE2  — any x86-64 (baseline ISA; pmulld is used when SSE4.1 is on)
//   * NEON  — aarch64 / ARMv7 with Advanced SIMD
//   * scalar — everything else, or forced with -DAROMA_FORCE_SCALAR
//     (CMake option AROMA_FORCE_SCALAR; CI runs one leg with it on so the
//     fallback can never rot)
//
// The shim deliberately exposes only the handful of primitives the RFB
// tile loops need (load/broadcast/xor/mul/equality-mask) plus one shared
// utility, match_run_u32. Every operation is lane-exact: the scalar
// backend performs the same 32-bit arithmetic per lane, so results are
// bit-identical across backends and the reference oracles in rfb/ hold on
// every platform. Anything wider (AVX2, SVE) would change tail handling
// and is out of scope by design — see DESIGN.md "Batching & vectorization"
// for the portability rules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if !defined(AROMA_FORCE_SCALAR) && \
    (defined(__SSE2__) || defined(_M_X64) || \
     (defined(_M_IX86_FP) && _M_IX86_FP >= 2))
#define AROMA_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#elif !defined(AROMA_FORCE_SCALAR) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define AROMA_SIMD_NEON 1
#include <arm_neon.h>
#else
#define AROMA_SIMD_SCALAR 1
#endif

namespace aroma::sim::simd {

inline constexpr bool kEnabled =
#if defined(AROMA_SIMD_SCALAR)
    false;
#else
    true;
#endif

inline constexpr const char* kBackend =
#if defined(AROMA_SIMD_SSE2)
    "sse2";
#elif defined(AROMA_SIMD_NEON)
    "neon";
#else
    "scalar";
#endif

#if defined(AROMA_SIMD_SSE2)

using U32x4 = __m128i;

inline U32x4 load(const std::uint32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void store(std::uint32_t* p, U32x4 v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
inline U32x4 broadcast(std::uint32_t v) {
  return _mm_set1_epi32(static_cast<int>(v));
}
inline U32x4 xor4(U32x4 a, U32x4 b) { return _mm_xor_si128(a, b); }

/// Lane-wise 32-bit multiply (low halves). SSE2 has no pmulld, so the
/// baseline splices two widening pmuludq results; SSE4.1 gets the real one.
inline U32x4 mul4(U32x4 a, U32x4 b) {
#if defined(__SSE4_1__)
  return _mm_mullo_epi32(a, b);
#else
  const __m128i even = _mm_mul_epu32(a, b);  // lanes 0, 2 as u64
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
#endif
}

/// 4-bit mask, bit i set when lane i of a equals lane i of b.
inline unsigned eq_mask(U32x4 a, U32x4 b) {
  return static_cast<unsigned>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(a, b))));
}

#elif defined(AROMA_SIMD_NEON)

using U32x4 = uint32x4_t;

inline U32x4 load(const std::uint32_t* p) { return vld1q_u32(p); }
inline void store(std::uint32_t* p, U32x4 v) { vst1q_u32(p, v); }
inline U32x4 broadcast(std::uint32_t v) { return vdupq_n_u32(v); }
inline U32x4 xor4(U32x4 a, U32x4 b) { return veorq_u32(a, b); }
inline U32x4 mul4(U32x4 a, U32x4 b) { return vmulq_u32(a, b); }

inline unsigned eq_mask(U32x4 a, U32x4 b) {
  const uint32x4_t eq = vceqq_u32(a, b);  // all-ones / all-zeros per lane
  // Narrow each lane to one bit in the conventional little-endian order.
  const uint32x4_t bits = vandq_u32(eq, U32x4{1u, 2u, 4u, 8u});
#if defined(__aarch64__)
  return vaddvq_u32(bits);
#else
  const uint32x2_t sum = vpadd_u32(vget_low_u32(bits), vget_high_u32(bits));
  return vget_lane_u32(vpadd_u32(sum, sum), 0);
#endif
}

#else  // scalar fallback: same lane semantics, plain 32-bit arithmetic

struct U32x4 {
  std::uint32_t lane[4];
};

inline U32x4 load(const std::uint32_t* p) {
  return U32x4{{p[0], p[1], p[2], p[3]}};
}
inline void store(std::uint32_t* p, U32x4 v) {
  p[0] = v.lane[0];
  p[1] = v.lane[1];
  p[2] = v.lane[2];
  p[3] = v.lane[3];
}
inline U32x4 broadcast(std::uint32_t v) { return U32x4{{v, v, v, v}}; }
inline U32x4 xor4(U32x4 a, U32x4 b) {
  return U32x4{{a.lane[0] ^ b.lane[0], a.lane[1] ^ b.lane[1],
                a.lane[2] ^ b.lane[2], a.lane[3] ^ b.lane[3]}};
}
inline U32x4 mul4(U32x4 a, U32x4 b) {
  return U32x4{{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1],
                a.lane[2] * b.lane[2], a.lane[3] * b.lane[3]}};
}
inline unsigned eq_mask(U32x4 a, U32x4 b) {
  unsigned m = 0;
  for (int i = 0; i < 4; ++i) m |= (a.lane[i] == b.lane[i]) ? 1u << i : 0u;
  return m;
}

#endif

/// Length of the leading run of `v` in p[0..n): the one primitive behind
/// both solid-tile detection (run == n) and the RLE run scanner (extend the
/// current run). Exact — never overshoots a mismatch, including in the
/// non-multiple-of-4 tail.
inline std::size_t match_run_u32(const std::uint32_t* p, std::size_t n,
                                 std::uint32_t v) {
  // Mismatch-at-zero is the common case on incompressible content (every
  // pixel starts a fresh run); answer it before any vector setup.
  if (n == 0 || p[0] != v) return 0;
  std::size_t i = 1;
#if !defined(AROMA_SIMD_SCALAR)
  const U32x4 want = broadcast(v);
  while (i + 4 <= n) {
    const unsigned m = eq_mask(load(p + i), want);
    if (m != 0xFu) return i + std::countr_one(m);
    i += 4;
  }
#endif
  while (i < n && p[i] == v) ++i;
  return i;
}

}  // namespace aroma::sim::simd
