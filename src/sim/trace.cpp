#include "sim/trace.hpp"

#include <cstdio>

namespace aroma::sim {

std::string_view to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

void Tracer::log(Time now, TraceLevel level, std::string_view category,
                 std::string message) {
  if (!enabled(level)) return;
  TraceRecord rec{now, level, std::string(category), std::move(message)};
  if (to_stderr_) {
    std::fprintf(stderr, "[%s] %s %s: %s\n", now.to_string().c_str(),
                 std::string(to_string(level)).c_str(), rec.category.c_str(),
                 rec.message.c_str());
  }
  if (hook_) hook_(rec);
  if (capture_) {
    if (records_.size() < capture_limit_) {
      records_.push_back(std::move(rec));
    } else {
      ++dropped_;
    }
  }
}

std::size_t Tracer::count_with_category(std::string_view category) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.category == category) ++n;
  return n;
}

}  // namespace aroma::sim
