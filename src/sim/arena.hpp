// Per-world bump-pointer arena with size-class recycling.
//
// Every simulated world allocates short-lived frame/event objects at a high
// rate: MAC frames and ACKs, datagrams, stream segments, transmission-log
// entries. Routing those through the global heap costs a malloc/free pair
// per event and shares one allocator across every shard of a fleet run. An
// Arena gives each world its own allocator: allocation is a pointer bump
// into chunked slabs, and freed blocks go onto per-size-class free lists so
// steady-state traffic recycles the same few blocks with no heap calls at
// all.
//
// Arenas are deliberately NOT thread-safe: one Arena belongs to one World,
// and a world is only ever driven by one thread at a time (the fleet engine
// may migrate a shard between workers, but never runs it concurrently).
// Allocation strategy has zero effect on simulated behavior — no RNG draws,
// no ordering — so enabling or disabling the arena cannot perturb event
// order or any fingerprint (asserted by fleet_bench's alloc-mode check).
//
// Lifetime contract: anything that deallocates into the arena (including
// the control blocks of arena_shared pointers) must be destroyed before the
// arena. sim::World declares its arena first, so world-owned state is safe;
// components constructed on a world die before it by the existing rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace aroma::sim {

class Arena {
 public:
  struct Stats {
    std::uint64_t allocations = 0;   // total allocate() calls served
    std::uint64_t recycled = 0;      // ...of which came from a free list
    std::uint64_t heap_fallbacks = 0;  // oversized/overaligned -> heap
    std::uint64_t bytes_requested = 0;
    std::uint64_t chunks = 0;        // slabs obtained from the heap
    std::uint64_t chunk_bytes = 0;
  };

  /// Live-block accounting (arena-served blocks only, by rounded block
  /// size). `live_*` must be zero before reset() or teardown — restore
  /// paths assert this so rebuilding arena-backed containers can never
  /// leak chunks; `peak_*` is the high-water mark for capacity planning.
  struct HighWater {
    std::uint64_t live_blocks = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t peak_blocks = 0;
    std::uint64_t peak_bytes = 0;
  };

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kMaxBlockBytes ? kMaxBlockBytes
                                                  : chunk_bytes) {}
  ~Arena() {
    for (void* c : chunks_) ::operator delete(c);
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// When disabled, allocate/recycle pass straight through to the global
  /// heap. Exists so benches can measure the heap-allocation delta; flip it
  /// before any component resolves blocks from this arena.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Allocates `bytes` aligned to `align`. Requests larger than
  /// kMaxBlockBytes or stricter than alignof(max_align_t) fall back to the
  /// heap (counted in stats().heap_fallbacks).
  void* allocate(std::size_t bytes, std::size_t align) {
    if (!enabled_ || bytes > kMaxBlockBytes ||
        align > alignof(std::max_align_t)) {
      if (enabled_) ++stats_.heap_fallbacks;
      return ::operator new(bytes, std::align_val_t(align));
    }
    ++stats_.allocations;
    stats_.bytes_requested += bytes;
    const std::size_t cls = size_class(bytes);
    ++hw_.live_blocks;
    hw_.live_bytes += std::size_t{1} << cls;
    if (hw_.live_blocks > hw_.peak_blocks) hw_.peak_blocks = hw_.live_blocks;
    if (hw_.live_bytes > hw_.peak_bytes) hw_.peak_bytes = hw_.live_bytes;
    std::vector<void*>& free = free_lists_[cls];
    if (!free.empty()) {
      ++stats_.recycled;
      void* p = free.back();
      free.pop_back();
      return p;
    }
    const std::size_t block = std::size_t{1} << cls;
    if (bump_ + block > bump_end_) refill(block);
    void* p = bump_;
    bump_ += block;
    return p;
  }

  /// Returns a block to its size-class free list. `bytes` and `align` must
  /// match the original allocate() call (the std::allocator contract).
  void recycle(void* p, std::size_t bytes, std::size_t align) {
    if (!enabled_ || bytes > kMaxBlockBytes ||
        align > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t(align));
      return;
    }
    const std::size_t cls = size_class(bytes);
    --hw_.live_blocks;
    hw_.live_bytes -= std::size_t{1} << cls;
    free_lists_[cls].push_back(p);
  }

  /// Drops all free lists and rewinds into the first chunk. Only valid when
  /// nothing allocated from the arena is still live; meant for reusing one
  /// arena across sequential trials.
  void reset() {
    for (auto& list : free_lists_) list.clear();
    if (!chunks_.empty()) {
      bump_ = static_cast<std::byte*>(chunks_.front());
      bump_end_ = bump_ + chunk_sizes_.front();
      // Later chunks stay owned but unreachable until refill() reuses the
      // heap; simplicity beats reclaiming them for the trial-loop use case.
    }
    hw_.live_blocks = 0;
    hw_.live_bytes = 0;
  }

  const Stats& stats() const { return stats_; }

  /// Live/peak block accounting; see HighWater. A caller about to reset()
  /// or tear down checks high_water().live_blocks == 0 to prove every
  /// arena-backed container has already released its blocks.
  const HighWater& high_water() const { return hw_; }

  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} << 10;
  /// Largest bump-allocated block: 2^kMaxClass bytes.
  static constexpr std::size_t kMaxClass = 13;  // 8 KiB
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << kMaxClass;
  static constexpr std::size_t kMinClass = 4;  // 16 B floor keeps alignment

 private:
  /// Smallest c with 2^c >= bytes, clamped to [kMinClass, kMaxClass].
  /// Power-of-two classes keep every block max_align-aligned (chunks are
  /// max-aligned and blocks are carved at block-size boundaries).
  static std::size_t size_class(std::size_t bytes) {
    std::size_t cls = kMinClass;
    while ((std::size_t{1} << cls) < bytes) ++cls;
    return cls;
  }

  void refill(std::size_t need) {
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    void* c = ::operator new(size);
    chunks_.push_back(c);
    chunk_sizes_.push_back(size);
    ++stats_.chunks;
    stats_.chunk_bytes += size;
    bump_ = static_cast<std::byte*>(c);
    bump_end_ = bump_ + size;
  }

  bool enabled_ = true;
  std::size_t chunk_bytes_;
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  std::vector<void*> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::vector<void*> free_lists_[kMaxClass + 1];
  Stats stats_;
  HighWater hw_;
};

/// std-compatible allocator over an Arena; lets containers (the radio
/// medium's transmission log, scratch vectors) draw from the owning world's
/// arena. Default-constructed (or null-arena) instances pass through to the
/// heap, so allocator-aware members can be declared before the arena is
/// known and rebound by move-assignment (propagation traits below).
/// Comparison is identity of the arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return arena_ != nullptr
               ? static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)))
               : static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (arena_ != nullptr) {
      arena_->recycle(p, n * sizeof(T), alignof(T));
    } else {
      ::operator delete(p);
    }
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_;
};

/// make_shared into an arena: object and control block in one recycled
/// allocation. The arena must outlive the last copy of the returned pointer
/// (for world-scoped payloads that is the existing World-outlives-components
/// rule).
template <typename T, typename... Args>
std::shared_ptr<T> arena_shared(Arena& arena, Args&&... args) {
  return std::allocate_shared<T>(ArenaAllocator<T>(&arena),
                                 std::forward<Args>(args)...);
}

}  // namespace aroma::sim
