#include "sim/random.hpp"

#include <cmath>
#include <numbers>

namespace aroma::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_tag) {
  return Rng(mix_hash(next_u64(), stream_tag));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  // Inverse-CDF on the harmonic partial sums would need O(n) setup; use
  // rejection-inversion (Jacobi) which is O(1) per draw.
  if (n <= 1) return 1;
  const double b = std::pow(2.0, s - 1.0);
  double x, t;
  do {
    const double u = uniform();
    x = std::pow(static_cast<double>(n) + 1.0, u);  // maps to [1, n+1)
    x = std::floor(x);
    if (x < 1.0) x = 1.0;
    if (x > static_cast<double>(n)) x = static_cast<double>(n);
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
    // Acceptance test against the Zipf envelope.
  } while (uniform() * x * (t - 1.0) * b > t * (b - 1.0));
  return static_cast<std::int64_t>(x);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

}  // namespace aroma::sim
